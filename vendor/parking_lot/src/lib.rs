//! Offline stand-in for the subset of `parking_lot` used by Nepal:
//! non-poisoning `RwLock` and `Mutex` whose guards come straight from the
//! accessor without a `Result`. Backed by `std::sync`; a poisoned std lock
//! (a panic while holding the guard) is simply entered anyway, matching
//! parking_lot's no-poisoning semantics.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_read_write_round_trip() {
        let lock = RwLock::new(5);
        assert_eq!(*lock.read(), 5);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 6);
    }

    #[test]
    fn survives_poisoning_panic() {
        let lock = Arc::new(RwLock::new(1));
        let l2 = lock.clone();
        let _ = std::thread::spawn(move || {
            let _guard = l2.write();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*lock.read(), 1);
    }
}
