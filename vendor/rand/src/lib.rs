//! Offline stand-in for the subset of the `rand` 0.8 API used by Nepal.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a hand-rolled, dependency-free implementation. The generator is
//! xoshiro256++ seeded through splitmix64 — statistically solid for
//! workload synthesis, not cryptographic. The value stream differs from
//! upstream `rand`, so anything asserting on exact generated topologies
//! must assert on distributions, not literal values.

use std::ops::Range;

/// Seedable generators. Only `seed_from_u64` is needed by the workspace.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen_range` can sample uniformly from a `Range`.
pub trait SampleUniform: Sized {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                let span = (range.end as i128).wrapping_sub(range.start as i128) as u128;
                assert!(span > 0, "cannot sample from empty range");
                // Modulo bias is negligible for the span sizes used here.
                let v = (rng.next_u64() as u128) % span;
                ((range.start as i128) + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + (range.end - range.start) * unit
    }
}

/// The subset of `rand::Rng` the workspace calls.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ — the standard small-state generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            StdRng {
                s: [splitmix64(&mut state), splitmix64(&mut state), splitmix64(&mut state), splitmix64(&mut state)],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}
