//! Offline stand-in for the `criterion` API subset Nepal's benches use.
//!
//! Keeps the same calling shape (`Criterion`, `benchmark_group`,
//! `Bencher::iter`, `criterion_group!`/`criterion_main!`) but replaces the
//! statistical machinery with a simple calibrated timing loop: warm up,
//! then run the routine until both a minimum iteration count and a minimum
//! wall-clock budget are met, and report mean ns/iter on stdout.

use std::time::{Duration, Instant};

#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { prefix: name.into(), sample_size: self.sample_size, _parent: self }
    }
}

pub struct BenchmarkGroup<'a> {
    prefix: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.prefix, name.into());
        run_one(&full, self.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher { min_iters: sample_size.max(1) as u64, ns_per_iter: 0.0, iters: 0 };
    f(&mut bencher);
    println!("bench {name:<44} {:>12.1} ns/iter ({} iters)", bencher.ns_per_iter, bencher.iters);
}

pub struct Bencher {
    min_iters: u64,
    ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..2 {
            std::hint::black_box(routine());
        }
        let budget = Duration::from_millis(20);
        let start = Instant::now();
        let mut n = 0u64;
        while n < self.min_iters || start.elapsed() < budget {
            std::hint::black_box(routine());
            n += 1;
        }
        self.iters = n;
        self.ns_per_iter = start.elapsed().as_nanos() as f64 / n as f64;
    }
}

/// Re-exported so call sites can use `criterion::black_box` if they prefer
/// it over `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("grp");
        group.sample_size(3);
        group.bench_function("inner", |b| b.iter(|| 2 * 2));
        group.finish();
    }
}
