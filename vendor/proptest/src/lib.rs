//! Offline stand-in for the subset of `proptest` Nepal's property tests
//! use. Generates deterministic pseudo-random cases (seeded per case
//! index) with no shrinking: a failing case panics with the generated
//! value visible in the assertion message, and re-running reproduces it
//! exactly. Supported surface: `proptest!` with `proptest_config`,
//! range/tuple/`Just`/`any`/char-class string strategies, `prop_map`,
//! `prop_recursive`, `prop_oneof!`, and `collection::{vec, btree_map}`.

pub mod test_runner {
    /// Splitmix64 — deterministic, seeded per test case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(case: u64) -> Self {
            TestRng { state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03 }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;
    use std::sync::Arc;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(move |rng: &mut TestRng| self.generate(rng)))
        }

        /// Build a recursive strategy: each level unions the previous
        /// levels with `expand` applied to them, so generated values mix
        /// leaves and nested structures up to `depth` levels deep. The
        /// `_desired_size` / `_expected_branch` tuning knobs of upstream
        /// proptest are accepted and ignored.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            expand: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let mut strat = self.boxed();
            for _ in 0..depth {
                let deeper = expand(strat.clone()).boxed();
                strat = Union::new(vec![strat, deeper]).boxed();
            }
            strat
        }
    }

    /// Type-erased, cheaply cloneable strategy.
    pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union { options: self.options.clone() }
        }
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> i64 {
            rng.next_u64() as i64
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for i32 {
        fn arbitrary(rng: &mut TestRng) -> i32 {
            rng.next_u64() as i32
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }

    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                    assert!(span > 0, "cannot sample from empty range");
                    let v = (rng.next_u64() as u128) % span;
                    ((self.start as i128) + v as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    /// Char-class pattern strategy: `&str` patterns of the form
    /// `[<class>]{m,n}` (e.g. `"[a-d]{1,3}"`, `"[ -~]{0,12}"`) generate
    /// strings of length `m..=n` over the class. This is the only regex
    /// shape the workspace's tests use.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let (chars, min, max) =
                parse_char_class_pattern(self).unwrap_or_else(|| panic!("unsupported string pattern: {self:?}"));
            let len = min + rng.below((max - min + 1) as u64) as usize;
            (0..len).map(|_| chars[rng.below(chars.len() as u64) as usize]).collect()
        }
    }

    fn parse_char_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let counts = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = counts.split_once(',')?;
        let min: usize = lo.trim().parse().ok()?;
        let max: usize = hi.trim().parse().ok()?;
        if max < min {
            return None;
        }
        let mut chars = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (a, b) = (class[i], class[i + 2]);
                if b < a {
                    return None;
                }
                chars.extend((a..=b).filter(|c| c.is_ascii()));
                i += 3;
            } else {
                chars.push(class[i]);
                i += 1;
            }
        }
        if chars.is_empty() {
            return None;
        }
        Some((chars, min, max))
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    #[derive(Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            // Duplicate keys collapse, matching upstream's behaviour of
            // yielding maps up to the requested size.
            (0..len).map(|_| (self.key.generate(rng), self.value.generate(rng))).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let __strategy = ($($strategy,)+);
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::deterministic(__case as u64);
                let ($($pat,)+) =
                    $crate::strategy::Strategy::generate(&__strategy, &mut __rng);
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_respects_class_and_length() {
        let mut rng = crate::test_runner::TestRng::deterministic(3);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-d]{1,3}", &mut rng);
            assert!((1..=3).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='d').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn union_covers_all_alternatives() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = crate::test_runner::TestRng::deterministic(5);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[Strategy::generate(&strat, &mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursive_strategy_mixes_depths() {
        #[derive(Debug)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(i64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0i64..100)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 4, |inner| crate::collection::vec(inner, 0..4).prop_map(Tree::Node));
        let mut rng = crate::test_runner::TestRng::deterministic(9);
        let mut max_depth = 0;
        for _ in 0..300 {
            max_depth = max_depth.max(depth(&Strategy::generate(&strat, &mut rng)));
        }
        assert!(max_depth >= 2, "recursion never nested: max depth {max_depth}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_binds_multiple_patterns(a in 0u64..10, (b, c) in (0i64..5, 0i64..5)) {
            prop_assert!(a < 10);
            prop_assert_eq!((b - b) + (c - c), 0);
        }
    }
}
