//! Offline stand-in for the `crossbeam::channel` subset Nepal uses:
//! unbounded MPMC channels with cloneable ends. Backed by `std::sync::mpsc`
//! with the receiver behind a mutex to make it shareable.

pub mod channel {
    use std::fmt;
    use std::sync::{mpsc, Arc, Mutex};

    pub struct Sender<T>(mpsc::Sender<T>);

    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(self.0.clone())
        }
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let guard = self.0.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let guard = self.0.lock().unwrap_or_else(|e| e.into_inner());
            guard.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = channel::unbounded();
        let handle = std::thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        handle.join().unwrap();
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn recv_errors_when_all_senders_dropped() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }
}
