//! End-to-end tests of the anchored RPE evaluator against a small layered
//! topology mirroring Fig. 2 of the paper: VNFs composed of VFCs hosted on
//! VMs executing on Hosts, plus a physical Connects fabric.

use std::sync::Arc;

use nepal_graph::{GraphView, TemporalGraph, TimeFilter, Uid};
use nepal_rpe::{evaluate, parse_rpe, plan_rpe, EvalOptions, GraphEstimator, Seeds};
use nepal_schema::dsl::parse_schema;
use nepal_schema::{Schema, Value};

const SCHEMA: &str = r#"
    node VNF { vnf_id: int unique, status: str optional }
    node DNS : VNF { }
    node Firewall : VNF { }
    node VFC { vfc_id: int unique }
    node Container { status: str optional }
    node VM : Container { vm_id: int unique }
    node Docker : Container { docker_id: int unique }
    node Host { host_id: int unique }
    node Switch { switch_id: int unique }
    edge Vertical { }
    edge ComposedOf : Vertical { }
    edge HostedOn : Vertical { }
    edge ConnectedTo { }
    edge Connects : ConnectedTo { }
    allow ComposedOf (VNF -> VFC)
    allow HostedOn (VFC -> Container)
    allow HostedOn (Container -> Host)
    allow Connects (Host -> Switch)
    allow Connects (Switch -> Host)
    allow Connects (Switch -> Switch)
"#;

struct Fixture {
    g: TemporalGraph,
    vnf1: Uid,
    vnf2: Uid,
    host1: Uid,
    host2: Uid,
    vm1: Uid,
}

/// Two VNFs:
///   VNF1 -ComposedOf-> VFC1 -HostedOn-> VM1 -HostedOn-> Host1
///   VNF2 -ComposedOf-> VFC2 -HostedOn-> Docker1 -HostedOn-> Host2
/// Physical fabric: Host1 <-> Switch <-> Host2 (Connects both directions).
fn fixture() -> Fixture {
    let schema: Arc<Schema> = Arc::new(parse_schema(SCHEMA).unwrap());
    let c = |n: &str| schema.class_by_name(n).unwrap();
    let mut g = TemporalGraph::new(schema.clone());
    let t = 1000;
    let vnf1 = g.insert_node(c("DNS"), vec![Value::Int(1), Value::Null], t).unwrap();
    let vnf2 = g.insert_node(c("Firewall"), vec![Value::Int(2), Value::Null], t).unwrap();
    let vfc1 = g.insert_node(c("VFC"), vec![Value::Int(11)], t).unwrap();
    let vfc2 = g.insert_node(c("VFC"), vec![Value::Int(12)], t).unwrap();
    let vm1 = g.insert_node(c("VM"), vec![Value::Str("Green".into()), Value::Int(21)], t).unwrap();
    let dk1 = g.insert_node(c("Docker"), vec![Value::Str("Green".into()), Value::Int(22)], t).unwrap();
    let host1 = g.insert_node(c("Host"), vec![Value::Int(23245)], t).unwrap();
    let host2 = g.insert_node(c("Host"), vec![Value::Int(34356)], t).unwrap();
    let sw = g.insert_node(c("Switch"), vec![Value::Int(91)], t).unwrap();
    let e = |g: &mut TemporalGraph, cls: &str, a: Uid, b: Uid| g.insert_edge(c(cls), a, b, vec![], t).unwrap();
    e(&mut g, "ComposedOf", vnf1, vfc1);
    e(&mut g, "ComposedOf", vnf2, vfc2);
    e(&mut g, "HostedOn", vfc1, vm1);
    e(&mut g, "HostedOn", vfc2, dk1);
    e(&mut g, "HostedOn", vm1, host1);
    e(&mut g, "HostedOn", dk1, host2);
    e(&mut g, "Connects", host1, sw);
    e(&mut g, "Connects", sw, host1);
    e(&mut g, "Connects", host2, sw);
    e(&mut g, "Connects", sw, host2);
    Fixture { g, vnf1, vnf2, host1, host2, vm1 }
}

fn run(g: &TemporalGraph, rpe: &str) -> Vec<nepal_rpe::Pathway> {
    let plan = plan_rpe(g.schema(), &parse_rpe(rpe).unwrap(), &GraphEstimator { graph: g }).unwrap();
    let view = GraphView::new(g, TimeFilter::Current);
    evaluate(&view, &plan, Seeds::Anchor, &EvalOptions::default())
}

#[test]
fn explicit_layer_walk() {
    // The paper's first example: the engineer spells out every layer.
    let f = fixture();
    let paths = run(&f.g, "VNF()->VFC()->VM()->Host(host_id=23245)");
    assert_eq!(paths.len(), 1);
    let p = &paths[0];
    assert_eq!(p.source(), f.vnf1);
    assert_eq!(p.target(), f.host1);
    assert_eq!(p.elems.len(), 7); // 4 nodes + 3 edges
}

#[test]
fn generic_vertical_walk_insulates_from_details() {
    // Second example: Vertical{1,6} finds VNF1 regardless of whether the
    // container is a VM or Docker.
    let f = fixture();
    let paths = run(&f.g, "VNF()->[Vertical()]{1,6}->Host(host_id=23245)");
    assert!(paths.iter().any(|p| p.source() == f.vnf1 && p.target() == f.host1));
    // VNF2 runs on host2, not host1.
    assert!(!paths.iter().any(|p| p.source() == f.vnf2));
    // And the Docker-hosted VNF2 is found on host 34356 with the SAME query.
    let paths2 = run(&f.g, "VNF()->[Vertical()]{1,6}->Host(host_id=34356)");
    assert!(paths2.iter().any(|p| p.source() == f.vnf2 && p.target() == f.host2));
}

#[test]
fn subclass_atoms_narrow_the_concept() {
    let f = fixture();
    // Only the DNS VNF hosts on host1.
    let paths = run(&f.g, "DNS()->[Vertical()]{1,6}->Host()");
    assert!(paths.iter().all(|p| p.source() == f.vnf1));
    // Container() generalizes over VM and Docker.
    let paths = run(&f.g, "Container(status='Green')->HostedOn()->Host()");
    assert_eq!(paths.len(), 2);
}

#[test]
fn bottom_up_uses_backward_extends() {
    // Same RPE, anchored at the Host end: the plan extends backwards.
    let f = fixture();
    let plan = plan_rpe(
        f.g.schema(),
        &parse_rpe("VNF()->[Vertical()]{1,6}->Host(host_id=23245)").unwrap(),
        &GraphEstimator { graph: &f.g },
    )
    .unwrap();
    let anchor_atom = &plan.atoms[plan.anchor.atoms[0] as usize];
    assert_eq!(anchor_atom.class_name, "Host");
    let view = GraphView::new(&f.g, TimeFilter::Current);
    let paths = evaluate(&view, &plan, Seeds::Anchor, &EvalOptions::default());
    assert!(paths.iter().any(|p| p.source() == f.vnf1));
}

#[test]
fn horizontal_connects_walk() {
    let f = fixture();
    // Host1 to Host2 through the switch: 2 hops.
    let paths = run(&f.g, "Host(host_id=23245)->[Connects()]{1,4}->Host(host_id=34356)");
    assert_eq!(paths.len(), 1);
    assert_eq!(paths[0].len_edges(), 2);
}

#[test]
fn edge_atom_rpe_returns_endpoint_nodes() {
    let f = fixture();
    let paths = run(&f.g, "ComposedOf()");
    assert_eq!(paths.len(), 2);
    for p in &paths {
        assert_eq!(p.elems.len(), 3); // n, e, n — implicit endpoints
        assert!(f.g.is_node(p.source()));
        assert!(f.g.is_node(p.target()));
    }
}

#[test]
fn node_node_concat_skips_one_edge() {
    let f = fixture();
    // VFC()->VM(): the HostedOn edge is implicitly skipped (§3.3 cond. 3).
    let paths = run(&f.g, "VFC()->VM()");
    assert_eq!(paths.len(), 1);
    assert_eq!(paths[0].elems.len(), 3);
    assert_eq!(paths[0].target(), f.vm1);
}

#[test]
fn edge_edge_concat_skips_one_node() {
    let f = fixture();
    // ComposedOf()->HostedOn(): VFC in the middle is implicit (cond. 4).
    let paths = run(&f.g, "ComposedOf()->HostedOn()");
    assert_eq!(paths.len(), 2);
    for p in &paths {
        assert_eq!(p.elems.len(), 5);
    }
}

#[test]
fn alternation_anchor_merges_branches() {
    let f = fixture();
    let paths = run(&f.g, "VNF()->[Vertical()]{1,3}->(VM(vm_id=21)|Docker(docker_id=22))");
    // VNF1 reaches VM1, VNF2 reaches Docker1.
    assert!(paths.iter().any(|p| p.source() == f.vnf1));
    assert!(paths.iter().any(|p| p.source() == f.vnf2));
}

#[test]
fn seeded_sources_import_anchor_from_join() {
    // The paper's join example: Phys MATCHES Connects(){1,8} has no anchor
    // of its own; it is seeded from the join on source(Phys)=target(D1).
    let f = fixture();
    let plan = plan_rpe(f.g.schema(), &parse_rpe("Connects(){1,8}").unwrap(), &GraphEstimator { graph: &f.g }).unwrap();
    let view = GraphView::new(&f.g, TimeFilter::Current);
    let seeds = [f.host1];
    let paths = evaluate(&view, &plan, Seeds::Sources(&seeds), &EvalOptions::default());
    assert!(!paths.is_empty());
    assert!(paths.iter().all(|p| p.source() == f.host1));
    assert!(paths.iter().any(|p| p.target() == f.host2));
    // Targets seeding is symmetric.
    let tgt = [f.host2];
    let paths = evaluate(&view, &plan, Seeds::Targets(&tgt), &EvalOptions::default());
    assert!(paths.iter().all(|p| p.target() == f.host2));
    assert!(paths.iter().any(|p| p.source() == f.host1));
}

#[test]
fn cycles_are_pruned() {
    let f = fixture();
    // Host1 -> ... -> Host1 would require revisiting the switch or host.
    let paths = run(&f.g, "Host(host_id=23245)->[Connects()]{1,6}->Host(host_id=23245)");
    assert!(paths.is_empty());
}

#[test]
fn limit_truncates_results() {
    let f = fixture();
    let plan = plan_rpe(
        f.g.schema(),
        &parse_rpe("Container(status='Green')->HostedOn()->Host()").unwrap(),
        &GraphEstimator { graph: &f.g },
    )
    .unwrap();
    let view = GraphView::new(&f.g, TimeFilter::Current);
    let paths = evaluate(&view, &plan, Seeds::Anchor, &EvalOptions { limit: Some(1), ..Default::default() });
    assert_eq!(paths.len(), 1);
}

// ---------------------------------------------------------------------
// Temporal evaluation
// ---------------------------------------------------------------------

#[test]
fn as_of_sees_deleted_topology() {
    let mut f = fixture();
    // Delete VM1 at t=2000: the VNF1 vertical path disappears.
    f.g.delete(f.vm1, 2000).unwrap();
    let now = run(&f.g, "VNF()->[Vertical()]{1,6}->Host(host_id=23245)");
    assert!(now.is_empty());
    // But AT t=1500 the path is still there.
    let plan = plan_rpe(
        f.g.schema(),
        &parse_rpe("VNF()->[Vertical()]{1,6}->Host(host_id=23245)").unwrap(),
        &GraphEstimator { graph: &f.g },
    )
    .unwrap();
    let view = GraphView::new(&f.g, TimeFilter::AsOf(1500));
    let past = evaluate(&view, &plan, Seeds::Anchor, &EvalOptions::default());
    assert_eq!(past.len(), 1);
}

#[test]
fn range_query_reports_maximal_intervals() {
    let mut f = fixture();
    f.g.delete(f.vm1, 2000).unwrap();
    let plan = plan_rpe(
        f.g.schema(),
        &parse_rpe("VNF()->[Vertical()]{1,6}->Host(host_id=23245)").unwrap(),
        &GraphEstimator { graph: &f.g },
    )
    .unwrap();
    // Window [1500, 3000]: the pathway existed during [1000, 2000) — the
    // reported interval is maximal, starting BEFORE the window.
    let view = GraphView::new(&f.g, TimeFilter::Range(1500, 3000));
    let paths = evaluate(&view, &plan, Seeds::Anchor, &EvalOptions::default());
    assert_eq!(paths.len(), 1);
    let times = paths[0].times.as_ref().unwrap();
    assert_eq!(times.intervals().len(), 1);
    assert_eq!(times.intervals()[0].from, 1000);
    assert_eq!(times.intervals()[0].to, 2000);
    // Window entirely after the delete: no results.
    let view = GraphView::new(&f.g, TimeFilter::Range(2500, 3000));
    let paths = evaluate(&view, &plan, Seeds::Anchor, &EvalOptions::default());
    assert!(paths.is_empty());
}

#[test]
fn range_query_interval_is_intersection_of_elements() {
    let mut f = fixture();
    // VNF2's ComposedOf edge appears later: re-create it at t=5000.
    // (Simulate: delete vnf2's edge region by deleting vnf2 and reinserting.)
    f.g.delete(f.vnf2, 3000).unwrap();
    let c = f.g.schema().class_by_name("Firewall").unwrap();
    let vnf2b = f.g.insert_node(c, vec![Value::Int(2), Value::Null], 5000).unwrap();
    let co = f.g.schema().class_by_name("ComposedOf").unwrap();
    // VFC2 uid: find via query instead of bookkeeping.
    let vfc2 = run(&f.g, "VFC(vfc_id=12)")[0].source();
    f.g.insert_edge(co, vnf2b, vfc2, vec![], 5000).unwrap();
    let plan = plan_rpe(
        f.g.schema(),
        &parse_rpe("Firewall()->[Vertical()]{1,6}->Host(host_id=34356)").unwrap(),
        &GraphEstimator { graph: &f.g },
    )
    .unwrap();
    let view = GraphView::new(&f.g, TimeFilter::Range(0, 10_000));
    let paths = evaluate(&view, &plan, Seeds::Anchor, &EvalOptions::default());
    // Two distinct pathways (old and new VNF2 incarnations) with disjoint
    // assertion ranges.
    assert_eq!(paths.len(), 2);
    let mut ivs: Vec<(i64, i64)> = paths
        .iter()
        .map(|p| {
            let iv = p.times.as_ref().unwrap().intervals()[0];
            (iv.from, iv.to)
        })
        .collect();
    ivs.sort();
    assert_eq!(ivs[0], (1000, 3000));
    assert_eq!(ivs[1].0, 5000);
}

#[test]
fn predicate_versions_constrain_times() {
    let mut f = fixture();
    // VM1 turns Red during [2000, 3000).
    f.g.update(f.vm1, &[(0, Value::Str("Red".into()))], 2000).unwrap();
    f.g.update(f.vm1, &[(0, Value::Str("Green".into()))], 3000).unwrap();
    let plan = plan_rpe(
        f.g.schema(),
        &parse_rpe("VM(status='Green')->HostedOn()->Host(host_id=23245)").unwrap(),
        &GraphEstimator { graph: &f.g },
    )
    .unwrap();
    let view = GraphView::new(&f.g, TimeFilter::Range(0, 10_000));
    let paths = evaluate(&view, &plan, Seeds::Anchor, &EvalOptions::default());
    assert_eq!(paths.len(), 1);
    let times = paths[0].times.as_ref().unwrap();
    // Green during [1000,2000) and [3000,∞): two maximal components.
    assert_eq!(times.intervals().len(), 2);
    assert_eq!(times.intervals()[0].from, 1000);
    assert_eq!(times.intervals()[0].to, 2000);
    assert_eq!(times.intervals()[1].from, 3000);
    assert!(times.intervals()[1].is_current());
}
