//! Query access to structured data: dotted predicates into composite
//! `data_type` fields and `contains` on containers — the §5 "under
//! development" feature, implemented here.

use std::sync::Arc;

use nepal_graph::{GraphView, TemporalGraph, TimeFilter};
use nepal_rpe::{evaluate, parse_rpe, plan_rpe, EvalOptions, GraphEstimator, RpeError, Seeds};
use nepal_schema::dsl::parse_schema;
use nepal_schema::{Schema, Value};

fn fixture() -> TemporalGraph {
    let s: Arc<Schema> = Arc::new(
        parse_schema(
            r#"
            data geo { region: str, zone: int }
            data portSpec { port_name: str, speed_gbps: int, location: geo }
            node Port { port_id: int unique, spec: portSpec, tags: list<str> }
            "#,
        )
        .unwrap(),
    );
    let mut g = TemporalGraph::new(s.clone());
    let port = s.class_by_name("Port").unwrap();
    let spec = |name: &str, speed: i64, region: &str, zone: i64| {
        Value::Composite(vec![
            Value::Str(name.into()),
            Value::Int(speed),
            Value::Composite(vec![Value::Str(region.into()), Value::Int(zone)]),
        ])
    };
    let tags = |ts: &[&str]| Value::List(ts.iter().map(|t| Value::Str(t.to_string())).collect());
    g.insert_node(port, vec![Value::Int(1), spec("eth0", 10, "east", 1), tags(&["prod", "edge"])], 0).unwrap();
    g.insert_node(port, vec![Value::Int(2), spec("eth1", 100, "west", 2), tags(&["lab"])], 0).unwrap();
    g.insert_node(port, vec![Value::Int(3), spec("eth2", 100, "east", 3), tags(&["prod"])], 0).unwrap();
    g
}

fn ids(g: &TemporalGraph, rpe: &str) -> Vec<i64> {
    let plan = plan_rpe(g.schema(), &parse_rpe(rpe).unwrap(), &GraphEstimator { graph: g }).unwrap();
    let view = GraphView::new(g, TimeFilter::Current);
    let mut out: Vec<i64> = evaluate(&view, &plan, Seeds::Anchor, &EvalOptions::default())
        .iter()
        .map(|p| match &g.current_version(p.source()).unwrap().fields()[0] {
            Value::Int(i) => *i,
            _ => unreachable!(),
        })
        .collect();
    out.sort();
    out
}

#[test]
fn dotted_predicate_into_composite() {
    let g = fixture();
    assert_eq!(ids(&g, "Port(spec.speed_gbps>=100)"), vec![2, 3]);
    assert_eq!(ids(&g, "Port(spec.port_name='eth0')"), vec![1]);
}

#[test]
fn dotted_predicate_two_levels_deep() {
    let g = fixture();
    assert_eq!(ids(&g, "Port(spec.location.region='east')"), vec![1, 3]);
    assert_eq!(ids(&g, "Port(spec.location.region='east', spec.speed_gbps>=100)"), vec![3]);
    assert_eq!(ids(&g, "Port(spec.location.zone>1)"), vec![2, 3]);
}

#[test]
fn contains_on_list_field() {
    let g = fixture();
    assert_eq!(ids(&g, "Port(tags contains 'prod')"), vec![1, 3]);
    assert_eq!(ids(&g, "Port(tags contains 'lab')"), vec![2]);
}

#[test]
fn bad_paths_rejected_at_bind_time() {
    let g = fixture();
    let err = |rpe: &str| plan_rpe(g.schema(), &parse_rpe(rpe).unwrap(), &GraphEstimator { graph: &g }).unwrap_err();
    assert!(matches!(err("Port(spec.nope=1)"), RpeError::UnknownField { .. }));
    // Dotting into a scalar is a type error.
    assert!(matches!(err("Port(port_id.x=1)"), RpeError::PredicateType { .. }));
    // Type mismatch at the leaf.
    assert!(matches!(err("Port(spec.speed_gbps='fast')"), RpeError::PredicateType { .. }));
}
