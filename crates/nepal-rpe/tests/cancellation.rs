//! Cancellation safety: tripping a [`CancelToken`] at an arbitrary
//! checkpoint must never panic, never hang, and never return a silently
//! truncated result — evaluation either completes with exactly the
//! uncancelled answer or surfaces a typed [`RpeError`].
//!
//! The poll-budget constructor (`cancel_after_polls`) makes this
//! deterministic: proptest picks the checkpoint index, no clocks involved.

use std::sync::Arc;

use nepal_graph::{GraphView, TemporalGraph, TimeFilter, Uid};
use nepal_obs::SpanHandle;
use nepal_rpe::{evaluate_obs, parse_rpe, plan_rpe, CancelToken, EvalOptions, GraphEstimator, RpeError, Seeds};
use nepal_schema::dsl::parse_schema;
use nepal_schema::{Schema, Value};
use proptest::prelude::*;

const SCHEMA: &str = r#"
    node App { app_id: int unique }
    node Svc { svc_id: int unique }
    node Box { box_id: int unique }
    edge RunsOn { }
    edge Linked { }
    allow RunsOn (App -> Svc)
    allow RunsOn (Svc -> Box)
    allow Linked (Box -> Box)
    allow Linked (Svc -> Svc)
"#;

/// Deterministic xorshift so each proptest case maps to one graph.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        self.0 = x;
        x
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

fn random_graph(seed: u64) -> TemporalGraph {
    let schema: Arc<Schema> = Arc::new(parse_schema(SCHEMA).unwrap());
    let c = |n: &str| schema.class_by_name(n).unwrap();
    let mut g = TemporalGraph::new(schema.clone());
    let mut rng = Rng(seed);
    let n_apps = 3 + rng.below(4) as usize;
    let n_svcs = 5 + rng.below(5) as usize;
    let n_boxes = 4 + rng.below(4) as usize;
    let apps: Vec<Uid> = (0..n_apps)
        .map(|i| g.insert_node(c("App"), vec![Value::Int(i as i64)], rng.below(10) as i64).unwrap())
        .collect();
    let svcs: Vec<Uid> = (0..n_svcs)
        .map(|i| g.insert_node(c("Svc"), vec![Value::Int(i as i64)], rng.below(10) as i64).unwrap())
        .collect();
    let boxes: Vec<Uid> = (0..n_boxes)
        .map(|i| g.insert_node(c("Box"), vec![Value::Int(i as i64)], rng.below(10) as i64).unwrap())
        .collect();
    for &a in &apps {
        for _ in 0..(1 + rng.below(2)) {
            let s = svcs[rng.below(n_svcs as u64) as usize];
            let _ = g.insert_edge(c("RunsOn"), a, s, vec![], 10 + rng.below(10) as i64);
        }
    }
    for &s in &svcs {
        for _ in 0..(1 + rng.below(2)) {
            let b = boxes[rng.below(n_boxes as u64) as usize];
            let _ = g.insert_edge(c("RunsOn"), s, b, vec![], 10 + rng.below(10) as i64);
        }
        let s2 = svcs[rng.below(n_svcs as u64) as usize];
        if s != s2 {
            let _ = g.insert_edge(c("Linked"), s, s2, vec![], 12 + rng.below(8) as i64);
        }
    }
    for i in 0..n_boxes {
        let (a, b) = (boxes[i], boxes[rng.below(n_boxes as u64) as usize]);
        if a != b {
            let _ = g.insert_edge(c("Linked"), a, b, vec![], 12 + rng.below(8) as i64);
        }
    }
    g
}

const RPES: &[&str] = &[
    "App()->[RunsOn()]{1,4}->Box()",
    "Svc()->[Linked()]{1,3}->Svc()",
    "(App()|Svc())->RunsOn()->(Svc()|Box())",
    "Box()->[Linked()]{1,3}->Box(box_id=1)",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn cancel_at_any_checkpoint_is_typed_or_complete(
        seed in any::<u64>(),
        budget in 0u64..4096,
        threads in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        let g = random_graph(seed);
        let view = GraphView::new(&g, TimeFilter::Range(5, 60));
        for text in RPES {
            let rpe = parse_rpe(text).unwrap();
            let plan = plan_rpe(g.schema(), &rpe, &GraphEstimator { graph: &g }).unwrap();
            let baseline = evaluate_obs(
                &view,
                &plan,
                Seeds::Anchor,
                &EvalOptions { threads, ..Default::default() },
                None,
                &SpanHandle::none(),
            )
            .expect("token-free evaluation cannot be cancelled");

            let opts = EvalOptions {
                threads,
                cancel: Some(CancelToken::cancel_after_polls(budget)),
                ..Default::default()
            };
            match evaluate_obs(&view, &plan, Seeds::Anchor, &opts, None, &SpanHandle::none()) {
                // Finished under budget: the answer must be the full one,
                // bit-identical — cancellation must never truncate.
                Ok(paths) => prop_assert_eq!(
                    &paths, &baseline,
                    "truncated Ok under budget {} for {} (seed {})", budget, text, seed
                ),
                // Tripped: the poll budget reports as an explicit cancel.
                Err(RpeError::Cancelled) => {}
                Err(other) => prop_assert!(
                    false,
                    "unexpected error {:?} under budget {} for {}", other, budget, text
                ),
            }
        }
    }
}

/// An already-tripped explicit token cancels before any work is seeded,
/// and a zero deadline surfaces as `DeadlineExceeded` — the two causes
/// must stay distinguishable at the API boundary.
#[test]
fn causes_map_to_distinct_errors() {
    let g = random_graph(11);
    let view = GraphView::new(&g, TimeFilter::Current);
    let rpe = parse_rpe(RPES[0]).unwrap();
    let plan = plan_rpe(g.schema(), &rpe, &GraphEstimator { graph: &g }).unwrap();

    let tok = CancelToken::new();
    tok.cancel();
    let opts = EvalOptions { cancel: Some(tok), ..Default::default() };
    assert_eq!(
        evaluate_obs(&view, &plan, Seeds::Anchor, &opts, None, &SpanHandle::none()).unwrap_err(),
        RpeError::Cancelled
    );

    let opts =
        EvalOptions { cancel: Some(CancelToken::with_deadline(std::time::Duration::ZERO)), ..Default::default() };
    assert_eq!(
        evaluate_obs(&view, &plan, Seeds::Anchor, &opts, None, &SpanHandle::none()).unwrap_err(),
        RpeError::DeadlineExceeded
    );
}

/// Cancelling from another thread mid-evaluation (the REPL `:cancel` /
/// server-drain shape) terminates with the typed error; repeated runs with
/// the same token stay cancelled.
#[test]
fn external_cancel_mid_flight_terminates() {
    let g = random_graph(23);
    let view = GraphView::new(&g, TimeFilter::Range(5, 60));
    let rpe = parse_rpe("App()->[RunsOn()]{1,4}->Box()").unwrap();
    let plan = plan_rpe(g.schema(), &rpe, &GraphEstimator { graph: &g }).unwrap();

    let tok = CancelToken::new();
    let canceller = {
        let tok = tok.clone();
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(1));
            tok.cancel();
        })
    };
    // Keep evaluating until the trip lands (the query may finish first on
    // a fast machine, so loop — the token is sticky once cancelled).
    let opts = EvalOptions { threads: 4, cancel: Some(tok.clone()), ..Default::default() };
    let err = loop {
        match evaluate_obs(&view, &plan, Seeds::Anchor, &opts, None, &SpanHandle::none()) {
            Ok(_) if !tok.is_cancelled() => continue,
            Ok(_) => continue, // raced the flag between last poll and return
            Err(e) => break e,
        }
    };
    assert_eq!(err, RpeError::Cancelled);
    canceller.join().unwrap();
    // Sticky: the next evaluation with the same token fails immediately.
    assert_eq!(
        evaluate_obs(&view, &plan, Seeds::Anchor, &opts, None, &SpanHandle::none()).unwrap_err(),
        RpeError::Cancelled
    );
}
