//! Evaluator options and anchor-scan behaviour: length caps, limits, the
//! unique-index fast path vs full scans, and edge-field predicates.

use std::sync::Arc;

use nepal_graph::{GraphView, TemporalGraph, TimeFilter, Uid};
use nepal_rpe::{anchor_scan, bind, evaluate, parse_rpe, plan_rpe, EvalOptions, GraphEstimator, Seeds};
use nepal_schema::dsl::parse_schema;
use nepal_schema::{Schema, Value};

fn chain(n: usize) -> (TemporalGraph, Vec<Uid>) {
    // A linear chain: N0 -L-> N1 -L-> … -L-> N(n-1), L has a weight field.
    let s: Arc<Schema> = Arc::new(
        parse_schema(
            r#"
            node N { nid: int unique }
            edge L { weight: int }
            "#,
        )
        .unwrap(),
    );
    let c = |x: &str| s.class_by_name(x).unwrap();
    let mut g = TemporalGraph::new(s.clone());
    let nodes: Vec<Uid> = (0..n).map(|i| g.insert_node(c("N"), vec![Value::Int(i as i64)], 0).unwrap()).collect();
    for w in nodes.windows(2) {
        g.insert_edge(c("L"), w[0], w[1], vec![Value::Int((w[0].0 % 10) as i64)], 0).unwrap();
    }
    (g, nodes)
}

#[test]
fn max_elements_option_caps_expansion() {
    let (g, _) = chain(10);
    let plan =
        plan_rpe(g.schema(), &parse_rpe("N(nid=0)->[L()]{1,8}->N()").unwrap(), &GraphEstimator { graph: &g }).unwrap();
    let view = GraphView::new(&g, TimeFilter::Current);
    let all = evaluate(&view, &plan, Seeds::Anchor, &EvalOptions::default());
    assert_eq!(all.len(), 8); // 1..8 hops down the chain
    let capped = evaluate(
        &view,
        &plan,
        Seeds::Anchor,
        &EvalOptions { max_elements: Some(5), ..Default::default() }, // ≤ 2 hops (5 elems)
    );
    assert_eq!(capped.len(), 2);
    assert!(capped.iter().all(|p| p.elems.len() <= 5));
}

#[test]
fn limit_option_truncates_deterministically() {
    let (g, _) = chain(10);
    let plan =
        plan_rpe(g.schema(), &parse_rpe("N(nid=0)->[L()]{1,8}->N()").unwrap(), &GraphEstimator { graph: &g }).unwrap();
    let view = GraphView::new(&g, TimeFilter::Current);
    let l3 = evaluate(&view, &plan, Seeds::Anchor, &EvalOptions { limit: Some(3), ..Default::default() });
    assert_eq!(l3.len(), 3);
    // Results are sorted, so the limited set is a prefix of the full set.
    let all = evaluate(&view, &plan, Seeds::Anchor, &EvalOptions::default());
    assert_eq!(&all[..3], &l3[..]);
}

#[test]
fn unique_index_fast_path_matches_full_scan() {
    let (g, nodes) = chain(50);
    let schema = g.schema().clone();
    let bound = bind(&schema, &parse_rpe("N(nid=17)").unwrap()).unwrap();
    // Current: uses the unique index.
    let view = GraphView::new(&g, TimeFilter::Current);
    let fast = anchor_scan(&view, &schema, &bound.atoms[0]);
    assert_eq!(fast.len(), 1);
    assert_eq!(fast[0].0, nodes[17]);
    // AsOf: full scan path; same answer.
    let view2 = GraphView::new(&g, TimeFilter::AsOf(100));
    let slow = anchor_scan(&view2, &schema, &bound.atoms[0]);
    assert_eq!(slow.len(), 1);
    assert_eq!(slow[0].0, nodes[17]);
}

#[test]
fn unique_index_respects_deletions() {
    let (mut g, nodes) = chain(5);
    g.delete(nodes[2], 100).unwrap();
    let schema = g.schema().clone();
    let bound = bind(&schema, &parse_rpe("N(nid=2)").unwrap()).unwrap();
    let view = GraphView::new(&g, TimeFilter::Current);
    assert!(anchor_scan(&view, &schema, &bound.atoms[0]).is_empty());
    // But the historical scan still finds it.
    let view2 = GraphView::new(&g, TimeFilter::AsOf(50));
    assert_eq!(anchor_scan(&view2, &schema, &bound.atoms[0]).len(), 1);
}

#[test]
fn edge_field_predicates_filter_traversal() {
    let (g, _) = chain(12);
    // Only edges with weight >= 5 qualify: those leaving N5..N9 (uid%10).
    let plan =
        plan_rpe(g.schema(), &parse_rpe("N(nid=5)->[L(weight>=5)]{1,3}->N()").unwrap(), &GraphEstimator { graph: &g })
            .unwrap();
    let view = GraphView::new(&g, TimeFilter::Current);
    let paths = evaluate(&view, &plan, Seeds::Anchor, &EvalOptions::default());
    assert!(!paths.is_empty());
    for p in &paths {
        for e in p.edges() {
            match &g.current_version(e).unwrap().fields()[0] {
                Value::Int(w) => assert!(*w >= 5),
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}

#[test]
fn seeds_with_unknown_or_edge_uids_are_ignored() {
    let (g, nodes) = chain(5);
    let plan = plan_rpe(g.schema(), &parse_rpe("L(){1,2}").unwrap(), &GraphEstimator { graph: &g }).unwrap();
    let view = GraphView::new(&g, TimeFilter::Current);
    // An edge uid and an out-of-range uid as "source nodes": no panic,
    // no results from them.
    let edge_uid = g.out_adj(nodes[0])[0].edge;
    let seeds = [edge_uid, Uid(9_999), nodes[1]];
    let paths = evaluate(&view, &plan, Seeds::Sources(&seeds), &EvalOptions::default());
    assert!(paths.iter().all(|p| p.source() == nodes[1]));
    assert!(!paths.is_empty());
}
