//! Parallel/sequential equivalence: the work-stealing evaluator must be
//! bit-identical to the sequential path — same pathways, same order, same
//! interval sets — and merge its per-worker statistics to the same
//! operator rows and temporal-prune counts.

use std::sync::Arc;

use nepal_graph::{GraphView, TemporalGraph, TimeFilter, Uid};
use nepal_obs::ExecTrace;
use nepal_rpe::{evaluate, evaluate_traced, parse_rpe, plan_rpe, EvalOptions, GraphEstimator, Pathway, Seeds};
use nepal_schema::dsl::parse_schema;
use nepal_schema::{Schema, Value};
use proptest::prelude::*;

const SCHEMA: &str = r#"
    node App { app_id: int unique }
    node Svc { svc_id: int unique }
    node Box { box_id: int unique }
    edge RunsOn { }
    edge Linked { }
    allow RunsOn (App -> Svc)
    allow RunsOn (Svc -> Box)
    allow Linked (Box -> Box)
    allow Linked (Svc -> Svc)
"#;

/// Deterministic xorshift so each proptest case maps to one graph.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        self.0 = x;
        x
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// A layered random graph with temporal churn: inserts spread over time,
/// a fraction of edges deleted later, so Range queries produce non-trivial
/// interval sets.
fn random_graph(seed: u64) -> TemporalGraph {
    let schema: Arc<Schema> = Arc::new(parse_schema(SCHEMA).unwrap());
    let c = |n: &str| schema.class_by_name(n).unwrap();
    let mut g = TemporalGraph::new(schema.clone());
    let mut rng = Rng(seed);
    let n_apps = 3 + rng.below(4) as usize;
    let n_svcs = 5 + rng.below(5) as usize;
    let n_boxes = 4 + rng.below(4) as usize;
    let apps: Vec<Uid> = (0..n_apps)
        .map(|i| g.insert_node(c("App"), vec![Value::Int(i as i64)], rng.below(10) as i64).unwrap())
        .collect();
    let svcs: Vec<Uid> = (0..n_svcs)
        .map(|i| g.insert_node(c("Svc"), vec![Value::Int(i as i64)], rng.below(10) as i64).unwrap())
        .collect();
    let boxes: Vec<Uid> = (0..n_boxes)
        .map(|i| g.insert_node(c("Box"), vec![Value::Int(i as i64)], rng.below(10) as i64).unwrap())
        .collect();
    let mut edges = Vec::new();
    for &a in &apps {
        for _ in 0..(1 + rng.below(2)) {
            let s = svcs[rng.below(n_svcs as u64) as usize];
            if let Ok(e) = g.insert_edge(c("RunsOn"), a, s, vec![], 10 + rng.below(10) as i64) {
                edges.push(e);
            }
        }
    }
    for &s in &svcs {
        for _ in 0..(1 + rng.below(2)) {
            let b = boxes[rng.below(n_boxes as u64) as usize];
            if let Ok(e) = g.insert_edge(c("RunsOn"), s, b, vec![], 10 + rng.below(10) as i64) {
                edges.push(e);
            }
        }
        let s2 = svcs[rng.below(n_svcs as u64) as usize];
        if s != s2 {
            if let Ok(e) = g.insert_edge(c("Linked"), s, s2, vec![], 12 + rng.below(8) as i64) {
                edges.push(e);
            }
        }
    }
    for i in 0..n_boxes {
        let (a, b) = (boxes[i], boxes[rng.below(n_boxes as u64) as usize]);
        if a != b {
            if let Ok(e) = g.insert_edge(c("Linked"), a, b, vec![], 12 + rng.below(8) as i64) {
                edges.push(e);
            }
        }
    }
    // Delete ~a third of the edges at later timestamps.
    for (i, &e) in edges.iter().enumerate() {
        if i % 3 == 0 {
            let _ = g.delete(e, 40 + rng.below(20) as i64);
        }
    }
    g
}

const RPES: &[&str] = &[
    "App()->[RunsOn()]{1,4}->Box()",
    "[RunsOn()]{1,4}->Box(box_id=0)",
    "App(app_id=0)->[RunsOn()]{1,4}",
    "Svc()->[Linked()]{1,3}->Svc()",
    "(App()|Svc())->RunsOn()->(Svc()|Box())",
    "Box()->[Linked()]{1,3}->Box(box_id=1)",
];

fn eval_all(g: &TemporalGraph, filter: TimeFilter, threads: usize) -> Vec<Vec<Pathway>> {
    let view = GraphView::new(g, filter);
    let opts = EvalOptions { threads, ..Default::default() };
    RPES.iter()
        .map(|text| {
            let rpe = parse_rpe(text).unwrap();
            let plan = plan_rpe(g.schema(), &rpe, &GraphEstimator { graph: g }).unwrap();
            evaluate(&view, &plan, Seeds::Anchor, &opts)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn parallel_matches_sequential(seed in any::<u64>()) {
        let g = random_graph(seed);
        for filter in [TimeFilter::Current, TimeFilter::AsOf(30), TimeFilter::Range(5, 60)] {
            let seq = eval_all(&g, filter, 1);
            let par = eval_all(&g, filter, 4);
            // Full structural equality: elements, order, and interval sets.
            prop_assert_eq!(&seq, &par, "filter {:?} seed {}", filter, seed);
        }
    }
}

/// Per-worker `OpStats` and temporal-prune counters must merge to exactly
/// the sequential numbers (worker memo entries are the one documented
/// exception — workers re-derive matches the sequential pass would have
/// memoized, so only that counter may grow).
#[test]
fn merged_counters_equal_sequential() {
    let g = random_graph(7);
    let view = GraphView::new(&g, TimeFilter::Range(5, 60));
    for text in RPES {
        let rpe = parse_rpe(text).unwrap();
        let plan = plan_rpe(g.schema(), &rpe, &GraphEstimator { graph: &g }).unwrap();
        let mut seq_trace = ExecTrace::default();
        let mut par_trace = ExecTrace::default();
        let seq = evaluate_traced(
            &view,
            &plan,
            Seeds::Anchor,
            &EvalOptions { threads: 1, ..Default::default() },
            Some(&mut seq_trace),
        );
        let par = evaluate_traced(
            &view,
            &plan,
            Seeds::Anchor,
            &EvalOptions { threads: 4, ..Default::default() },
            Some(&mut par_trace),
        );
        assert_eq!(seq, par, "pathways differ for {text}");
        // Operator rows: same operators, same cardinalities, in order.
        let shape = |t: &ExecTrace| t.ops.iter().map(|o| (o.op.clone(), o.rows_in, o.rows_out)).collect::<Vec<_>>();
        assert_eq!(shape(&seq_trace), shape(&par_trace), "operator rows differ for {text}");
        let counter =
            |t: &ExecTrace, name: &str| t.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0);
        assert_eq!(
            counter(&seq_trace, "temporal_prunes"),
            counter(&par_trace, "temporal_prunes"),
            "temporal prune counts differ for {text}"
        );
        // The parallel run reports its pool usage.
        if !seq.is_empty() {
            assert!(counter(&par_trace, "rpe_parallel_chunks") > 0, "no parallel chunks recorded for {text}");
        }
    }
}
