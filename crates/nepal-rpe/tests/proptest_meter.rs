//! Meter determinism: the per-query [`ResourceMeter`] counts at *logical*
//! points of the evaluation (anchor scans on the calling thread, pure
//! access-cost reads), so every deterministic counter must be bit-identical
//! between the sequential path and the work-stealing pool — on churned
//! graphs, across time filters, at any thread count. Only `cpu_ns` is
//! physical (per-thread clock samples folded at job boundaries); it gets a
//! sanity bound, not an equality.

use std::sync::Arc;

use nepal_graph::{GraphView, TemporalGraph, TimeFilter, Uid};
use nepal_obs::{MeterSnapshot, ResourceMeter};
use nepal_rpe::{evaluate, parse_rpe, plan_rpe, EvalOptions, GraphEstimator, Seeds};
use nepal_schema::dsl::parse_schema;
use nepal_schema::{Schema, Value};
use proptest::prelude::*;

const SCHEMA: &str = r#"
    node App { app_id: int unique }
    node Svc { svc_id: int unique }
    node Box { box_id: int unique }
    edge RunsOn { }
    edge Linked { }
    allow RunsOn (App -> Svc)
    allow RunsOn (Svc -> Box)
    allow Linked (Box -> Box)
    allow Linked (Svc -> Svc)
"#;

/// Deterministic xorshift so each proptest case maps to one graph.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        self.0 = x;
        x
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// A layered random graph with temporal churn (same shape as the
/// parallel-equivalence suite): inserts spread over time, a third of the
/// edges deleted later, so history reads hit real delta chains.
fn random_graph(seed: u64) -> TemporalGraph {
    let schema: Arc<Schema> = Arc::new(parse_schema(SCHEMA).unwrap());
    let c = |n: &str| schema.class_by_name(n).unwrap();
    let mut g = TemporalGraph::new(schema.clone());
    let mut rng = Rng(seed);
    let n_apps = 3 + rng.below(4) as usize;
    let n_svcs = 5 + rng.below(5) as usize;
    let n_boxes = 4 + rng.below(4) as usize;
    let apps: Vec<Uid> = (0..n_apps)
        .map(|i| g.insert_node(c("App"), vec![Value::Int(i as i64)], rng.below(10) as i64).unwrap())
        .collect();
    let svcs: Vec<Uid> = (0..n_svcs)
        .map(|i| g.insert_node(c("Svc"), vec![Value::Int(i as i64)], rng.below(10) as i64).unwrap())
        .collect();
    let boxes: Vec<Uid> = (0..n_boxes)
        .map(|i| g.insert_node(c("Box"), vec![Value::Int(i as i64)], rng.below(10) as i64).unwrap())
        .collect();
    let mut edges = Vec::new();
    for &a in &apps {
        for _ in 0..(1 + rng.below(2)) {
            let s = svcs[rng.below(n_svcs as u64) as usize];
            if let Ok(e) = g.insert_edge(c("RunsOn"), a, s, vec![], 10 + rng.below(10) as i64) {
                edges.push(e);
            }
        }
    }
    for &s in &svcs {
        for _ in 0..(1 + rng.below(2)) {
            let b = boxes[rng.below(n_boxes as u64) as usize];
            if let Ok(e) = g.insert_edge(c("RunsOn"), s, b, vec![], 10 + rng.below(10) as i64) {
                edges.push(e);
            }
        }
        let s2 = svcs[rng.below(n_svcs as u64) as usize];
        if s != s2 {
            if let Ok(e) = g.insert_edge(c("Linked"), s, s2, vec![], 12 + rng.below(8) as i64) {
                edges.push(e);
            }
        }
    }
    for i in 0..n_boxes {
        let (a, b) = (boxes[i], boxes[rng.below(n_boxes as u64) as usize]);
        if a != b {
            if let Ok(e) = g.insert_edge(c("Linked"), a, b, vec![], 12 + rng.below(8) as i64) {
                edges.push(e);
            }
        }
    }
    for (i, &e) in edges.iter().enumerate() {
        if i % 3 == 0 {
            let _ = g.delete(e, 40 + rng.below(20) as i64);
        }
    }
    g
}

const RPES: &[&str] = &[
    "App()->[RunsOn()]{1,4}->Box()",
    "[RunsOn()]{1,4}->Box(box_id=0)",
    "Svc()->[Linked()]{1,3}->Svc()",
    "(App()|Svc())->RunsOn()->(Svc()|Box())",
];

/// Evaluate one RPE with a fresh meter attached; returns (paths, snapshot).
fn metered_eval(g: &TemporalGraph, text: &str, filter: TimeFilter, threads: usize) -> (usize, MeterSnapshot) {
    let view = GraphView::new(g, filter);
    let rpe = parse_rpe(text).unwrap();
    let plan = plan_rpe(g.schema(), &rpe, &GraphEstimator { graph: g }).unwrap();
    let meter = ResourceMeter::new();
    let opts = EvalOptions { threads, meter: Some(meter.clone()), ..Default::default() };
    let paths = evaluate(&view, &plan, Seeds::Anchor, &opts);
    (paths.len(), meter.snapshot())
}

/// The deterministic projection of a snapshot — everything but `cpu_ns`.
fn logical(s: &MeterSnapshot) -> (u64, u64, u64, u64, u64, u64, u64) {
    (
        s.rows_scanned,
        s.bytes_scanned,
        s.materializations,
        s.keyframe_hits,
        s.classes_visited,
        s.seeks,
        s.join_build_rows,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn parallel_meters_match_sequential(seed in any::<u64>()) {
        let g = random_graph(seed);
        for filter in [TimeFilter::Current, TimeFilter::AsOf(30), TimeFilter::Range(5, 60)] {
            for text in RPES {
                let (seq_paths, seq) = metered_eval(&g, text, filter, 1);
                let (par_paths, par) = metered_eval(&g, text, filter, 4);
                prop_assert_eq!(seq_paths, par_paths, "paths differ: {} {:?} seed {}", text, filter, seed);
                prop_assert_eq!(
                    logical(&seq), logical(&par),
                    "deterministic meters differ: {} {:?} seed {}", text, filter, seed
                );
                // A non-empty anchored evaluation must have scanned rows.
                if seq_paths > 0 {
                    prop_assert!(seq.rows_scanned > 0, "no rows metered for {} {:?}", text, filter);
                }
                // cpu_ns is physical: only sanity-bounded. Zero is legal on
                // hosts with a coarse thread clock; an hour is not.
                prop_assert!(seq.cpu_ns < 3_600_000_000_000, "seq cpu_ns insane: {}", seq.cpu_ns);
                prop_assert!(par.cpu_ns < 3_600_000_000_000, "par cpu_ns insane: {}", par.cpu_ns);
            }
        }
    }
}

/// Re-running the identical evaluation twice must meter identically — the
/// deterministic counters are a function of (graph, plan, filter), not of
/// scheduling. This is what makes per-fingerprint attribution comparable
/// across runs.
#[test]
fn repeated_runs_meter_identically() {
    let g = random_graph(11);
    for filter in [TimeFilter::Current, TimeFilter::Range(5, 60)] {
        for text in RPES {
            let (_, a) = metered_eval(&g, text, filter, 4);
            let (_, b) = metered_eval(&g, text, filter, 4);
            assert_eq!(logical(&a), logical(&b), "re-run meters differ for {text} {filter:?}");
        }
    }
}
