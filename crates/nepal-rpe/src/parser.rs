//! Text parser for Regular Pathway Expressions.
//!
//! Grammar (paper §3.3 plus the postfix repetition shorthand used in its
//! examples, e.g. `Vertical(){1,6}`):
//!
//! ```text
//! rpe      := seq
//! seq      := alt ( '->' alt )*
//! alt      := postfix ( '|' postfix )*
//! postfix  := primary ( '{' NUM ',' NUM '}' )?
//! primary  := atom | '(' rpe ')' | '[' rpe ']'
//! atom     := IDENT '(' [ pred (',' pred)* ] ')'
//! pred     := IDENT op literal
//! op       := '=' | '!=' | '<' | '<=' | '>' | '>=' | 'contains'
//! literal  := NUM | FLOAT | STRING | 'true' | 'false' | timestamp-string
//! ```
//!
//! Class names may be qualified with `:` (`VM:VMWare`).

use nepal_schema::{parse_ts, Value};

use crate::ast::{Atom, CmpOp, Pred, Rpe};
use crate::error::{Result, RpeError};

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Arrow,
    Pipe,
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

fn tokenize(text: &str) -> Result<Vec<(usize, Tok)>> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                out.push((i, Tok::LParen));
                i += 1;
            }
            ')' => {
                out.push((i, Tok::RParen));
                i += 1;
            }
            '[' => {
                out.push((i, Tok::LBracket));
                i += 1;
            }
            ']' => {
                out.push((i, Tok::RBracket));
                i += 1;
            }
            '{' => {
                out.push((i, Tok::LBrace));
                i += 1;
            }
            '}' => {
                out.push((i, Tok::RBrace));
                i += 1;
            }
            ',' => {
                out.push((i, Tok::Comma));
                i += 1;
            }
            '|' => {
                out.push((i, Tok::Pipe));
                i += 1;
            }
            '=' => {
                out.push((i, Tok::Eq));
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((i, Tok::Ne));
                    i += 2;
                } else {
                    return Err(RpeError::Parse { pos: i, msg: "expected `!=`".into() });
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((i, Tok::Le));
                    i += 2;
                } else {
                    out.push((i, Tok::Lt));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((i, Tok::Ge));
                    i += 2;
                } else {
                    out.push((i, Tok::Gt));
                    i += 1;
                }
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    out.push((i, Tok::Arrow));
                    i += 2;
                } else {
                    // Negative number literal.
                    let start = i;
                    i += 1;
                    let (tok, ni) = lex_number(text, start, i)?;
                    out.push((start, tok));
                    i = ni;
                }
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        Some(&b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                        None => return Err(RpeError::Parse { pos: start, msg: "unterminated string".into() }),
                    }
                }
                out.push((start, Tok::Str(s)));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let (tok, ni) = lex_number(text, start, i)?;
                out.push((start, tok));
                i = ni;
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let d = bytes[i] as char;
                    // `:` supports qualified class names; `.` supports
                    // dotted structured-data field paths in predicates.
                    if d.is_alphanumeric() || d == '_' || d == ':' || d == '.' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push((start, Tok::Ident(text[start..i].trim_end_matches(':').to_string())));
            }
            other => return Err(RpeError::Parse { pos: i, msg: format!("unexpected `{other}`") }),
        }
    }
    Ok(out)
}

fn lex_number(text: &str, start: usize, mut i: usize) -> Result<(Tok, usize)> {
    let bytes = text.as_bytes();
    let mut is_float = false;
    while i < bytes.len() {
        let d = bytes[i] as char;
        if d.is_ascii_digit() {
            i += 1;
        } else if d == '.' && !is_float && bytes.get(i + 1).is_some_and(|b| (*b as char).is_ascii_digit()) {
            is_float = true;
            i += 1;
        } else {
            break;
        }
    }
    let s = &text[start..i];
    if is_float {
        s.parse::<f64>()
            .map(|f| (Tok::Float(f), i))
            .map_err(|_| RpeError::Parse { pos: start, msg: "bad float".into() })
    } else {
        s.parse::<i64>()
            .map(|n| (Tok::Int(n), i))
            .map_err(|_| RpeError::Parse { pos: start, msg: "bad integer".into() })
    }
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.1)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.1.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn here(&self) -> usize {
        self.toks.get(self.pos).or_else(|| self.toks.last()).map(|t| t.0).unwrap_or(0)
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        Err(RpeError::Parse { pos: self.here(), msg: msg.into() })
    }

    fn expect(&mut self, t: Tok) -> Result<()> {
        match self.bump() {
            Some(got) if got == t => Ok(()),
            got => Err(RpeError::Parse { pos: self.here(), msg: format!("expected {t:?}, got {got:?}") }),
        }
    }

    fn seq(&mut self) -> Result<Rpe> {
        let mut parts: Vec<Rpe> = Vec::new();
        loop {
            // Concatenation is associative (§3.3), so nested sequences
            // from parenthesized groups flatten to a canonical form.
            match self.alt()? {
                Rpe::Seq(inner) => parts.extend(inner),
                other => parts.push(other),
            }
            if self.peek() == Some(&Tok::Arrow) {
                self.bump();
            } else {
                break;
            }
        }
        Ok(if parts.len() == 1 { parts.pop().unwrap() } else { Rpe::Seq(parts) })
    }

    fn alt(&mut self) -> Result<Rpe> {
        let mut parts: Vec<Rpe> = Vec::new();
        loop {
            // Disjunction is associative and flattens likewise.
            match self.postfix()? {
                Rpe::Alt(inner) => parts.extend(inner),
                other => parts.push(other),
            }
            if self.peek() == Some(&Tok::Pipe) {
                self.bump();
            } else {
                break;
            }
        }
        Ok(if parts.len() == 1 { parts.pop().unwrap() } else { Rpe::Alt(parts) })
    }

    fn postfix(&mut self) -> Result<Rpe> {
        let inner = self.primary()?;
        if self.peek() == Some(&Tok::LBrace) {
            self.bump();
            let min = match self.bump() {
                Some(Tok::Int(n)) if n >= 0 => n as u32,
                got => return self.err(format!("expected repetition lower bound, got {got:?}")),
            };
            // Accept both `{i,j}` and the paper's occasional `{i-j}` typo
            // style is NOT accepted; comma required.
            self.expect(Tok::Comma)?;
            let max = match self.bump() {
                Some(Tok::Int(n)) if n >= 0 => n as u32,
                got => return self.err(format!("expected repetition upper bound, got {got:?}")),
            };
            self.expect(Tok::RBrace)?;
            if min > max || max == 0 {
                return Err(RpeError::BadRepetition { min, max });
            }
            Ok(Rpe::Rep(Box::new(inner), min, max))
        } else {
            Ok(inner)
        }
    }

    fn primary(&mut self) -> Result<Rpe> {
        match self.bump() {
            Some(Tok::LParen) => {
                let r = self.seq()?;
                self.expect(Tok::RParen)?;
                Ok(r)
            }
            Some(Tok::LBracket) => {
                let r = self.seq()?;
                self.expect(Tok::RBracket)?;
                Ok(r)
            }
            Some(Tok::Ident(name)) => {
                self.expect(Tok::LParen)?;
                let mut preds = Vec::new();
                if self.peek() != Some(&Tok::RParen) {
                    loop {
                        preds.push(self.pred()?);
                        match self.peek() {
                            Some(Tok::Comma) => {
                                self.bump();
                            }
                            _ => break,
                        }
                    }
                }
                self.expect(Tok::RParen)?;
                Ok(Rpe::Atom(Atom { class: name, preds }))
            }
            got => self.err(format!("expected atom or group, got {got:?}")),
        }
    }

    fn pred(&mut self) -> Result<Pred> {
        let field = match self.bump() {
            Some(Tok::Ident(s)) => s,
            got => return self.err(format!("expected field name, got {got:?}")),
        };
        let op = match self.bump() {
            Some(Tok::Eq) => CmpOp::Eq,
            Some(Tok::Ne) => CmpOp::Ne,
            Some(Tok::Lt) => CmpOp::Lt,
            Some(Tok::Le) => CmpOp::Le,
            Some(Tok::Gt) => CmpOp::Gt,
            Some(Tok::Ge) => CmpOp::Ge,
            Some(Tok::Ident(kw)) if kw == "contains" => CmpOp::Contains,
            got => return self.err(format!("expected comparison operator, got {got:?}")),
        };
        let value = match self.bump() {
            Some(Tok::Int(n)) => Value::Int(n),
            Some(Tok::Float(f)) => Value::Float(f),
            Some(Tok::Str(s)) => {
                // A quoted literal that parses as a timestamp *and* looks
                // like one is kept as a string; timestamp coercion happens
                // at binding time against the declared field type.
                Value::Str(s)
            }
            Some(Tok::Ident(kw)) if kw == "true" => Value::Bool(true),
            Some(Tok::Ident(kw)) if kw == "false" => Value::Bool(false),
            got => return self.err(format!("expected literal, got {got:?}")),
        };
        let _ = parse_ts; // used by binder; referenced to document the flow
        Ok(Pred { field, op, value })
    }
}

/// Parse an RPE from text.
pub fn parse_rpe(text: &str) -> Result<Rpe> {
    let toks = tokenize(text)?;
    if toks.is_empty() {
        return Err(RpeError::Parse { pos: 0, msg: "empty RPE".into() });
    }
    let mut p = Parser { toks, pos: 0 };
    let r = p.seq()?;
    if p.pos != p.toks.len() {
        return p.err("trailing input after RPE");
    }
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(src: &str) -> String {
        parse_rpe(src).unwrap().to_string()
    }

    #[test]
    fn parses_paper_examples() {
        // §3.4 examples
        parse_rpe("VNF()->VFC()->VM()->Host(id=23245)").unwrap();
        parse_rpe("VNF()->[Vertical()]{1,6}->Host(id=23245)").unwrap();
        parse_rpe("VNF(id=123)->Vertical(){1,6}->Host()").unwrap();
        parse_rpe("ConnectsTo(){1,8}").unwrap();
        parse_rpe("(VNF()|VFC())->[HostedOn(){1,5}]->VM()").unwrap();
        parse_rpe("VM(status='Green')").unwrap();
        parse_rpe("VNF()->[HostedOn()]{1,3}->(VM(id=55)|Docker(id=66))->HostedOn(){1,2}->Host()").unwrap();
    }

    #[test]
    fn display_round_trip() {
        for src in [
            "VNF()->[Vertical()]{1,6}->Host(id=23245)",
            "(VM(id=55)|Docker(id=66))",
            "VM(status='Green', vm_id>=10)",
            "[HostedOn()|ConnectedTo()]{1,4}",
        ] {
            let once = rt(src);
            let twice = rt(&once);
            assert_eq!(once, twice, "not a fixpoint for {src}");
        }
    }

    #[test]
    fn qualified_class_names() {
        let r = parse_rpe("VM:VMWare()").unwrap();
        match r {
            Rpe::Atom(a) => assert_eq!(a.class, "VM:VMWare"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence_pipe_binds_tighter_than_arrow() {
        let r = parse_rpe("A()->B()|C()->D()").unwrap();
        match r {
            Rpe::Seq(parts) => {
                assert_eq!(parts.len(), 3);
                assert!(matches!(parts[1], Rpe::Alt(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_bounds_and_syntax() {
        assert!(matches!(parse_rpe("[A()]{3,1}"), Err(RpeError::BadRepetition { .. })));
        assert!(matches!(parse_rpe("[A()]{0,0}"), Err(RpeError::BadRepetition { .. })));
        assert!(parse_rpe("A()->").is_err());
        assert!(parse_rpe("A(").is_err());
        assert!(parse_rpe("A()->|B()").is_err());
        assert!(parse_rpe("").is_err());
    }

    #[test]
    fn predicate_literals() {
        let r = parse_rpe("X(a=1, b!=2.5, c<'z', d contains 'sub', e=true)").unwrap();
        match r {
            Rpe::Atom(a) => {
                assert_eq!(a.preds.len(), 5);
                assert_eq!(a.preds[1].op, CmpOp::Ne);
                assert_eq!(a.preds[3].op, CmpOp::Contains);
                assert_eq!(a.preds[4].value, Value::Bool(true));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negative_numbers() {
        let r = parse_rpe("X(a=-5)").unwrap();
        match r {
            Rpe::Atom(a) => assert_eq!(a.preds[0].value, Value::Int(-5)),
            other => panic!("unexpected {other:?}"),
        }
    }
}
