//! RPE query plans: bound atoms + compiled NFA + selected anchor.
//!
//! A plan corresponds to the paper's DAG of `Select` / `Extend` / `Union`
//! operators (§5.1): the anchor scan is the `Select`, each NFA transition
//! taken during evaluation is an `Extend` (forwards or backwards), and the
//! per-seed result merge is the `Union`.

use nepal_obs::SpanHandle;
use nepal_schema::{ClassId, Schema, NODE};

use crate::anchor::{select_anchor_threads, AnchorSet, CardinalityEstimator};
use crate::ast::Rpe;
use crate::bind::{bind, BoundAtom, Norm};
use crate::error::Result;
use crate::nfa::{compile, Label, Nfa};

/// A fully planned RPE, ready for evaluation or translation.
#[derive(Debug, Clone)]
pub struct RpePlan {
    /// Source text (best-effort reconstruction).
    pub text: String,
    pub atoms: Vec<BoundAtom>,
    pub norm: Norm,
    pub nfa: Nfa,
    /// The selected (cheapest) anchor.
    pub anchor: AnchorSet,
    /// All candidate anchors, cheapest first (introspection/tests).
    pub candidates: Vec<AnchorSet>,
    /// Length limit in elements implied by the expression.
    pub max_elements: usize,
    /// Static type of `source(P)`: the least common ancestor of every class
    /// that can begin a matching pathway.
    pub source_class: ClassId,
    /// Static type of `target(P)`.
    pub target_class: ClassId,
}

fn lca_of_labels(schema: &Schema, atoms: &[BoundAtom], labels: &[Label]) -> ClassId {
    // Wrapper AnyNode transitions exist unconditionally but can only fire
    // when the expression actually begins/ends with an edge atom (otherwise
    // the next consumed element would have the wrong kind). So: node atoms
    // contribute their class; edge atoms contribute NODE (the implicit
    // endpoint is unconstrained); AnyNode/AnyEdge labels are ignored.
    let mut acc: Option<ClassId> = None;
    for l in labels {
        let c = match l {
            Label::AnyNode | Label::AnyEdge => continue,
            Label::Atom(a) => {
                let at = &atoms[*a as usize];
                if at.is_node {
                    at.class
                } else {
                    NODE
                }
            }
        };
        acc = Some(match acc {
            None => c,
            Some(prev) => schema.lca(prev, c),
        });
    }
    acc.unwrap_or(NODE)
}

/// Bind, normalize, compile, and anchor an RPE.
pub fn plan_rpe(schema: &Schema, rpe: &Rpe, est: &dyn CardinalityEstimator) -> Result<RpePlan> {
    plan_rpe_spanned(schema, rpe, est, &SpanHandle::none())
}

/// [`plan_rpe`] under a live span: binding/compilation and the cost-based
/// anchor selection become child spans carrying candidate counts and the
/// chosen anchor's cost. An inactive span adds no work.
pub fn plan_rpe_spanned(
    schema: &Schema,
    rpe: &Rpe,
    est: &dyn CardinalityEstimator,
    span: &SpanHandle,
) -> Result<RpePlan> {
    plan_rpe_threads(schema, rpe, est, span, 1)
}

/// [`plan_rpe_spanned`] with the per-atom anchor cost probes fanned out
/// over up to `threads` pool workers (see
/// [`select_anchor_threads`]). The produced plan is identical at any
/// thread count.
pub fn plan_rpe_threads(
    schema: &Schema,
    rpe: &Rpe,
    est: &dyn CardinalityEstimator,
    span: &SpanHandle,
    threads: usize,
) -> Result<RpePlan> {
    let bind_span = span.child("bind+compile");
    let bound = bind(schema, rpe)?;
    let kinds: Vec<bool> = bound.atoms.iter().map(|a| a.is_node).collect();
    let nfa = compile(&bound.norm, &kinds);
    bind_span.attr("atoms", bound.atoms.len());
    bind_span.attr("nfa_states", nfa.n_states);
    drop(bind_span);
    let anchor_span = span.child("anchor-select");
    let (anchor, candidates) = select_anchor_threads(&bound.norm, &bound.atoms, schema, est, threads)?;
    anchor_span.attr("candidates", candidates.len());
    anchor_span.attr("cost", format!("{:.1}", anchor.cost));
    drop(anchor_span);
    let max_elements = nfa.max_elements();
    let source_class = lca_of_labels(schema, &bound.atoms, &nfa.first_labels());
    let target_class = lca_of_labels(schema, &bound.atoms, &nfa.last_labels());
    Ok(RpePlan {
        text: rpe.to_string(),
        atoms: bound.atoms,
        norm: bound.norm,
        nfa,
        anchor,
        candidates,
        max_elements,
        source_class,
        target_class,
    })
}

impl RpePlan {
    /// Render an anchor set's atoms, e.g. `VM(vm_id=55) | Docker(docker_id=66)`.
    pub fn anchor_desc(&self, set: &AnchorSet) -> String {
        let parts: Vec<&str> = set.atoms.iter().map(|&a| self.atoms[a as usize].display.as_str()).collect();
        parts.join(" | ")
    }

    /// Human-readable operator listing in the paper's style.
    pub fn operators(&self) -> Vec<String> {
        let mut ops = Vec::new();
        let anchor_desc: Vec<&str> =
            self.anchor.atoms.iter().map(|&a| self.atoms[a as usize].display.as_str()).collect();
        ops.push(format!("Select: {} [est. cardinality {:.1}]", anchor_desc.join(" | "), self.anchor.cost));
        let n_seeds: usize = self.anchor.atoms.iter().map(|&a| self.nfa.seeds_for(a).len()).sum();
        ops.push(format!("Extend: forwards and backwards from the anchor, ≤{} elements", self.max_elements));
        if n_seeds > 1 || self.anchor.atoms.len() > 1 {
            ops.push(format!("Union: merge results of {n_seeds} seed transitions"));
        }
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anchor::HintEstimator;
    use crate::parser::parse_rpe;
    use nepal_schema::dsl::parse_schema;

    fn schema() -> Schema {
        parse_schema(
            r#"
            node Container { }
            node VM : Container { vm_id: int unique }
            node Docker : Container { docker_id: int unique }
            node VNF { vnf_id: int unique }
            node Host { host_id: int unique }
            edge HostedOn { }
            hint VNF 33
            hint VM 2000
            hint Host 200
            hint HostedOn 11000
            "#,
        )
        .unwrap()
    }

    #[test]
    fn source_and_target_typing_via_lca() {
        let s = schema();
        let p = plan_rpe(&s, &parse_rpe("VNF()->[HostedOn()]{1,6}->Host(host_id=5)").unwrap(), &HintEstimator).unwrap();
        assert_eq!(p.source_class, s.class_by_name("VNF").unwrap());
        assert_eq!(p.target_class, s.class_by_name("Host").unwrap());
        // Alternation of sibling classes → LCA.
        let p2 = plan_rpe(&s, &parse_rpe("(VM(vm_id=1)|Docker(docker_id=2))").unwrap(), &HintEstimator).unwrap();
        assert_eq!(p2.source_class, s.class_by_name("Container").unwrap());
    }

    #[test]
    fn edge_initial_rpe_types_source_as_node_root() {
        let s = schema();
        let p = plan_rpe(&s, &parse_rpe("HostedOn(){1,8}").unwrap(), &HintEstimator).unwrap();
        assert_eq!(p.source_class, nepal_schema::NODE);
        assert_eq!(p.target_class, nepal_schema::NODE);
    }

    #[test]
    fn operator_listing_mentions_select() {
        let s = schema();
        let p =
            plan_rpe(&s, &parse_rpe("VNF()->[HostedOn()]{1,6}->Host(host_id=23245)").unwrap(), &HintEstimator).unwrap();
        let ops = p.operators();
        assert!(ops[0].starts_with("Select: Host(host_id=23245)"));
    }
}
