//! Pathways: the first-class result objects of Nepal queries.

use std::fmt;

use nepal_graph::{IntervalSet, TemporalGraph, Uid};

/// A pathway: an alternating sequence of node and edge uids that starts and
/// ends with a node (§3.3). For time-range queries, `times` carries the
/// maximal assertion intervals of the whole pathway (§4).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Pathway {
    /// Element uids: `n1, e1, n2, …, nk`.
    pub elems: Vec<Uid>,
    /// Maximal assertion intervals (range queries only).
    pub times: Option<IntervalSet>,
}

impl Pathway {
    /// Single-node pathway.
    pub fn node(uid: Uid) -> Pathway {
        Pathway { elems: vec![uid], times: None }
    }

    /// The source node (`source(P)` in the query language).
    pub fn source(&self) -> Uid {
        self.elems[0]
    }

    /// The target node (`target(P)`).
    pub fn target(&self) -> Uid {
        *self.elems.last().unwrap()
    }

    /// Number of edges (hops).
    pub fn len_edges(&self) -> usize {
        self.elems.len() / 2
    }

    /// Node uids, in order.
    pub fn nodes(&self) -> impl Iterator<Item = Uid> + '_ {
        self.elems.iter().step_by(2).copied()
    }

    /// Edge uids, in order.
    pub fn edges(&self) -> impl Iterator<Item = Uid> + '_ {
        self.elems.iter().skip(1).step_by(2).copied()
    }

    /// Render with class names resolved against the graph, e.g.
    /// `VNF#3 -ComposedOf#17-> VFC#4`.
    pub fn display<'a>(&'a self, g: &'a TemporalGraph) -> PathwayDisplay<'a> {
        PathwayDisplay { p: self, g }
    }
}

/// Helper for human-readable pathway rendering.
pub struct PathwayDisplay<'a> {
    p: &'a Pathway,
    g: &'a TemporalGraph,
}

impl fmt::Display for PathwayDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = |u: Uid| -> String {
            match self.g.class_of(u) {
                Some(c) => format!("{}#{}", self.g.schema().class(c).name, u.0),
                None => format!("?#{}", u.0),
            }
        };
        for (i, &u) in self.p.elems.iter().enumerate() {
            if i % 2 == 0 {
                write!(f, "{}", name(u))?;
            } else {
                write!(f, " -{}-> ", name(u))?;
            }
        }
        if let Some(times) = &self.p.times {
            write!(f, " @ {times}")?;
        }
        Ok(())
    }
}
