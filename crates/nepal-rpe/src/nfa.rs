//! NFA compilation of normalized RPEs.
//!
//! A pathway is matched as its *element sequence* `n1, e1, n2, …, nk`
//! (nodes and edges interleaved). Every atom consumes exactly one element.
//! The paper's concatenation semantics (§3.3) list four ways `p` can match
//! `r1->r2`; two of them skip exactly one unconstrained element at the
//! boundary (an edge between two node atoms, or a node between two edge
//! atoms). We compile this directly: each concatenation joint gets an
//! ε-transition *and* a pair of any-element transitions.
//!
//! Likewise, "a single edge has implicit nodes at its endpoints": the whole
//! expression is wrapped in optional any-node transitions so that
//! edge-initial / edge-final RPEs pick up their endpoint nodes. Because a
//! well-formed pathway alternates nodes and edges and always starts/ends
//! with a node, the unconstrained skip transitions can never fire in a
//! position that violates the formal definition.
//!
//! Normalized RPEs are repetition-free, so the resulting NFA is a **DAG**:
//! every RPE is length-limited by construction, as §3.3 requires.

use crate::bind::Norm;

/// A consuming transition label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Label {
    /// Consume one element matching bound atom `atoms[i]`.
    Atom(u32),
    /// Consume one node element, unconstrained (implicit boundary node).
    AnyNode,
    /// Consume one edge element, unconstrained (implicit boundary edge).
    AnyEdge,
}

/// A consuming transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    pub from: u32,
    pub label: Label,
    pub to: u32,
}

/// An ε-free NFA over pathway elements.
#[derive(Debug, Clone)]
pub struct Nfa {
    pub n_states: usize,
    /// Forward adjacency: `trans[s]` lists `(label, to)`.
    pub trans: Vec<Vec<(Label, u32)>>,
    /// Reverse adjacency: `rev[t]` lists `(label, from)`.
    pub rev: Vec<Vec<(Label, u32)>>,
    /// The unique start state.
    pub start: u32,
    /// `accepts[s]`: can the match end in state `s`?
    pub accepts: Vec<bool>,
    /// All transitions, for seed lookup.
    pub transitions: Vec<Transition>,
}

/// Which element kinds a fragment can consume first / last. Drives the
/// placement of the implicit skip transitions: per §3.3, an edge may be
/// skipped only between two node-consuming fragments (condition 3) and a
/// node only between two edge-consuming fragments (condition 4).
#[derive(Debug, Clone, Copy, Default)]
struct KindProfile {
    start_node: bool,
    start_edge: bool,
    end_node: bool,
    end_edge: bool,
}

fn profile(norm: &Norm, atom_is_node: &dyn Fn(u32) -> bool) -> KindProfile {
    match norm {
        Norm::Atom(a) => {
            let n = atom_is_node(*a);
            KindProfile { start_node: n, start_edge: !n, end_node: n, end_edge: !n }
        }
        Norm::Seq(parts) => {
            let first = profile(parts.first().unwrap(), atom_is_node);
            let last = profile(parts.last().unwrap(), atom_is_node);
            KindProfile {
                start_node: first.start_node,
                start_edge: first.start_edge,
                end_node: last.end_node,
                end_edge: last.end_edge,
            }
        }
        Norm::Alt(parts) => {
            let mut p = KindProfile::default();
            for part in parts {
                let q = profile(part, atom_is_node);
                p.start_node |= q.start_node;
                p.start_edge |= q.start_edge;
                p.end_node |= q.end_node;
                p.end_edge |= q.end_edge;
            }
            p
        }
    }
}

struct Builder {
    eps: Vec<Vec<u32>>,
    cons: Vec<Vec<(Label, u32)>>,
    accept_raw: Vec<bool>,
}

impl Builder {
    fn state(&mut self) -> u32 {
        self.eps.push(Vec::new());
        self.cons.push(Vec::new());
        self.accept_raw.push(false);
        (self.eps.len() - 1) as u32
    }

    fn add_eps(&mut self, a: u32, b: u32) {
        self.eps[a as usize].push(b);
    }

    fn add(&mut self, a: u32, l: Label, b: u32) {
        self.cons[a as usize].push((l, b));
    }

    /// Build the fragment for `n`; returns (entry, exit) states.
    fn fragment(&mut self, n: &Norm, is_node: &dyn Fn(u32) -> bool) -> (u32, u32) {
        match n {
            Norm::Atom(a) => {
                let s = self.state();
                let t = self.state();
                self.add(s, Label::Atom(*a), t);
                (s, t)
            }
            Norm::Seq(parts) => {
                let frags: Vec<(u32, u32)> = parts.iter().map(|p| self.fragment(p, is_node)).collect();
                for (w, pair) in frags.windows(2).zip(parts.windows(2)) {
                    let (prev_out, next_in) = (w[0].1, w[1].0);
                    let a = profile(&pair[0], is_node);
                    let b = profile(&pair[1], is_node);
                    // Direct adjacency (conditions 1/2 of §3.3)…
                    self.add_eps(prev_out, next_in);
                    // …or skip exactly one unconstrained element:
                    // condition 3 (an edge between two node atoms) /
                    // condition 4 (a node between two edge atoms).
                    if a.end_node && b.start_node {
                        self.add(prev_out, Label::AnyEdge, next_in);
                    }
                    if a.end_edge && b.start_edge {
                        self.add(prev_out, Label::AnyNode, next_in);
                    }
                }
                (frags.first().unwrap().0, frags.last().unwrap().1)
            }
            Norm::Alt(parts) => {
                let s = self.state();
                let t = self.state();
                for p in parts {
                    let (i, o) = self.fragment(p, is_node);
                    self.add_eps(s, i);
                    self.add_eps(o, t);
                }
                (s, t)
            }
        }
    }

    fn eps_closure(&self, s: u32) -> Vec<u32> {
        let mut seen = vec![false; self.eps.len()];
        let mut stack = vec![s];
        let mut out = Vec::new();
        while let Some(x) = stack.pop() {
            if seen[x as usize] {
                continue;
            }
            seen[x as usize] = true;
            out.push(x);
            stack.extend(self.eps[x as usize].iter().copied());
        }
        out
    }
}

/// Compile a normalized RPE into an ε-free NFA.
///
/// `atom_is_node[i]` gives the kind of bound atom `i` (drives the §3.3
/// implicit-skip placement).
pub fn compile(norm: &Norm, atom_is_node: &[bool]) -> Nfa {
    let kinds = atom_is_node.to_vec();
    let is_node = move |a: u32| kinds[a as usize];
    let mut b = Builder { eps: Vec::new(), cons: Vec::new(), accept_raw: Vec::new() };
    let start = b.state();
    let accept = b.state();
    let (i, o) = b.fragment(norm, &is_node);
    // Endpoint wrapper: an edge-initial RPE implicitly includes its source
    // node; an edge-final RPE its target node ("a single edge has implicit
    // nodes at its endpoints").
    let p = profile(norm, &is_node);
    b.add_eps(start, i);
    if p.start_edge {
        b.add(start, Label::AnyNode, i);
    }
    b.add_eps(o, accept);
    if p.end_edge {
        b.add(o, Label::AnyNode, accept);
    }
    b.accept_raw[accept as usize] = true;

    // ε-elimination.
    let n = b.eps.len();
    let mut trans: Vec<Vec<(Label, u32)>> = vec![Vec::new(); n];
    let mut accepts = vec![false; n];
    for s in 0..n as u32 {
        for c in b.eps_closure(s) {
            if b.accept_raw[c as usize] {
                accepts[s as usize] = true;
            }
            for &(l, t) in &b.cons[c as usize] {
                if !trans[s as usize].contains(&(l, t)) {
                    trans[s as usize].push((l, t));
                }
            }
        }
    }
    let mut rev: Vec<Vec<(Label, u32)>> = vec![Vec::new(); n];
    let mut transitions = Vec::new();
    for (s, list) in trans.iter().enumerate() {
        for &(l, t) in list {
            rev[t as usize].push((l, s as u32));
            transitions.push(Transition { from: s as u32, label: l, to: t });
        }
    }
    Nfa { n_states: n, trans, rev, start, accepts, transitions }
}

impl Nfa {
    /// Longest consuming path from the start state — the RPE's inherent
    /// length limit in *elements* (nodes + edges). The NFA is a DAG, so
    /// this is finite; computed by memoized DFS.
    pub fn max_elements(&self) -> usize {
        fn longest(nfa: &Nfa, s: u32, memo: &mut [Option<usize>]) -> usize {
            if let Some(v) = memo[s as usize] {
                return v;
            }
            // Temporarily mark to guard against (impossible) cycles.
            memo[s as usize] = Some(0);
            let mut best = 0;
            for &(_, t) in &nfa.trans[s as usize] {
                best = best.max(1 + longest(nfa, t, memo));
            }
            memo[s as usize] = Some(best);
            best
        }
        let mut memo = vec![None; self.n_states];
        longest(self, self.start, &mut memo)
    }

    /// All transitions carrying the given atom occurrence — the seed points
    /// of an anchored evaluation.
    pub fn seeds_for(&self, atom: u32) -> Vec<Transition> {
        self.transitions.iter().filter(|t| t.label == Label::Atom(atom)).copied().collect()
    }

    /// Classes of elements that can be consumed first (for `source(P)`
    /// typing): the labels of transitions out of the start state.
    pub fn first_labels(&self) -> Vec<Label> {
        self.trans[self.start as usize].iter().map(|&(l, _)| l).collect()
    }

    /// Labels of transitions that can end the match (for `target(P)`
    /// typing): transitions into an accepting state.
    pub fn last_labels(&self) -> Vec<Label> {
        let mut out = Vec::new();
        for t in &self.transitions {
            if self.accepts[t.to as usize] {
                out.push(t.label);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bind::bind;
    use crate::parser::parse_rpe;
    use nepal_schema::dsl::parse_schema;
    use nepal_schema::Schema;

    fn schema() -> Schema {
        parse_schema(
            r#"
            node VM { vm_id: int unique }
            node Host { host_id: int unique }
            edge HostedOn { }
            "#,
        )
        .unwrap()
    }

    fn nfa_of(src: &str) -> Nfa {
        let s = schema();
        let b = bind(&s, &parse_rpe(src).unwrap()).unwrap();
        let kinds: Vec<bool> = b.atoms.iter().map(|a| a.is_node).collect();
        compile(&b.norm, &kinds)
    }

    /// Reference matcher: does the label sequence reach an accept state?
    fn accepts(nfa: &Nfa, kinds: &[&str]) -> bool {
        // kinds: "n:<atom>"/"e:<atom>" where atom is the atom idx the
        // element satisfies, or "n"/"e" for elements satisfying no atom.
        let mut states = vec![nfa.start];
        for k in kinds {
            let (is_node, sat): (bool, Option<u32>) = match k.split_once(':') {
                Some((kk, a)) => (kk == "n", Some(a.parse().unwrap())),
                None => (*k == "n", None),
            };
            let mut next = Vec::new();
            for &s in &states {
                for &(l, t) in &nfa.trans[s as usize] {
                    let ok = match l {
                        Label::AnyNode => is_node,
                        Label::AnyEdge => !is_node,
                        Label::Atom(a) => sat == Some(a),
                    };
                    if ok && !next.contains(&t) {
                        next.push(t);
                    }
                }
            }
            states = next;
            if states.is_empty() {
                return false;
            }
        }
        states.iter().any(|&s| nfa.accepts[s as usize])
    }

    #[test]
    fn single_node_atom() {
        let nfa = nfa_of("VM()");
        assert!(accepts(&nfa, &["n:0"]));
        assert!(!accepts(&nfa, &["n"])); // node not satisfying the atom
        assert!(!accepts(&nfa, &["n:0", "e", "n:0"])); // longer pathway ≠ match
    }

    #[test]
    fn single_edge_atom_has_implicit_endpoints() {
        // HostedOn() ≡ n -HostedOn-> n'
        let nfa = nfa_of("HostedOn()");
        assert!(accepts(&nfa, &["n", "e:0", "n"]));
        // The NFA itself accepts the bare edge (the endpoint wrapper is
        // optional); the evaluator enforces that emitted pathways start and
        // end with nodes, so the bare edge can never be *returned*.
        assert!(accepts(&nfa, &["e:0"]));
        assert!(!accepts(&nfa, &["n", "e", "n"])); // edge must satisfy atom
    }

    #[test]
    fn node_node_concat_skips_the_edge() {
        // VM()->Host() matches n(VM), e(any), n(Host) — condition 3 of §3.3.
        let nfa = nfa_of("VM()->Host()");
        assert!(accepts(&nfa, &["n:0", "e", "n:1"]));
        // A node-node adjacency can never arise in a well-formed pathway
        // walk; the NFA accepts it via the direct-ε joint, which is
        // harmless because the graph walker only produces alternating
        // element sequences.
        assert!(accepts(&nfa, &["n:0", "n:1"]));
        assert!(!accepts(&nfa, &["n:0", "e", "n", "e", "n:1"])); // only ONE skip
    }

    #[test]
    fn edge_edge_concat_skips_the_node() {
        // HostedOn()->HostedOn() matches n,e,n,e,n with the middle node
        // unconstrained — condition 4.
        let nfa = nfa_of("HostedOn()->HostedOn()");
        assert!(accepts(&nfa, &["n", "e:0", "n", "e:1", "n"]));
        assert!(!accepts(&nfa, &["n", "e:0", "n", "e", "n", "e:1", "n"]));
    }

    #[test]
    fn mixed_node_edge_concat_direct_adjacency() {
        // VM()->HostedOn()->Host(): no skips needed.
        let nfa = nfa_of("VM()->HostedOn()->Host()");
        assert!(accepts(&nfa, &["n:0", "e:1", "n:2"]));
    }

    #[test]
    fn repetition_bounds_respected() {
        let nfa = nfa_of("VM()->[HostedOn()]{1,2}->Host()");
        // 1 hop: VM -e-> Host.
        assert!(accepts(&nfa, &["n:0", "e:1", "n:2"]));
        // 2 hops: VM -e-> (skip node) -e-> Host.
        assert!(accepts(&nfa, &["n:0", "e:1", "n", "e:1", "n:2"]));
        // 3 hops: rejected.
        assert!(!accepts(&nfa, &["n:0", "e:1", "n", "e:1", "n", "e:1", "n:2"]));
    }

    #[test]
    fn alternation() {
        let nfa = nfa_of("(VM(vm_id=55)|Host(host_id=66))");
        assert!(accepts(&nfa, &["n:0"]));
        assert!(accepts(&nfa, &["n:1"]));
        assert!(!accepts(&nfa, &["n"]));
    }

    #[test]
    fn max_elements_is_finite_and_tight() {
        let nfa = nfa_of("VM()->[HostedOn()]{1,3}->Host()");
        // Longest consuming walk: VM + e + skip-n + e + skip-n + e + Host
        // = 7 elements (skips are placed only where §3.3 permits them).
        assert_eq!(nfa.max_elements(), 7);
        // Single node atom: exactly one element.
        assert_eq!(nfa_of("VM()").max_elements(), 1);
        // Edge atom: implicit endpoint nodes → n, e, n.
        assert_eq!(nfa_of("HostedOn()").max_elements(), 3);
    }

    #[test]
    fn seeds_cover_expanded_copies() {
        let nfa = nfa_of("[HostedOn()]{1,3}");
        let seeds = nfa.seeds_for(0);
        // Occurrence 0 appears in chains of length 1, 2 and 3 → 6 copies,
        // possibly more after ε-elimination duplicates sources.
        assert!(seeds.len() >= 6);
        assert!(nfa.seeds_for(1).is_empty());
    }
}
