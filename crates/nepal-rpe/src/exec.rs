//! The native anchored evaluator.
//!
//! Implements the paper's evaluation strategy (§5.1/§5.2) directly against
//! the temporal graph store: a `Select` over the anchor atoms, then chained
//! `Extend` operators forwards and backwards with per-row NFA state and
//! uid-list cycle checks, and a `Union` merging the per-seed results.
//!
//! Temporal scope is threaded through every operator: under a
//! [`TimeFilter::Range`] each partial pathway carries the intersection of
//! its elements' maximal assertion intervals and is pruned the moment that
//! intersection becomes empty.

use std::collections::HashMap;
use std::time::Instant;

use nepal_graph::FOREVER;
use nepal_graph::{GraphView, Interval, IntervalSet, MatchTime, TemporalGraph, TimeFilter, Uid};
use nepal_obs::{ExecTrace, OpStats, SpanHandle};
use nepal_schema::Schema;

use crate::anchor::{apply_selectivity, CardinalityEstimator};
use crate::bind::BoundAtom;
use crate::nfa::Label;
use crate::path::Pathway;
use crate::plan::RpePlan;

/// Where evaluation starts.
#[derive(Debug, Clone, Copy)]
pub enum Seeds<'a> {
    /// Use the plan's anchor (the normal case).
    Anchor,
    /// Anchor "imported" from a join: pathways must *start* at these nodes
    /// (e.g. `source(Phys) = target(D1)` in the paper's join example).
    Sources(&'a [Uid]),
    /// Pathways must *end* at these nodes.
    Targets(&'a [Uid]),
}

/// Evaluation options.
#[derive(Debug, Clone, Copy, Default)]
pub struct EvalOptions {
    /// Stop after collecting this many pathways.
    pub limit: Option<usize>,
    /// Additional element-count cap on top of the RPE's own length limit.
    pub max_elements: Option<usize>,
}

/// Times attached to a partial match: `None` in point mode (Current/AsOf),
/// `Some` in range mode.
type Times = Option<IntervalSet>;

fn universal() -> IntervalSet {
    IntervalSet::from_interval(Interval::new(i64::MIN, FOREVER))
}

fn times_intersect(a: &Times, b: &Times) -> (Times, bool) {
    match (a, b) {
        (None, None) => (None, true),
        (Some(x), Some(y)) => {
            let r = x.intersect(y);
            let ok = !r.is_empty();
            (Some(r), ok)
        }
        (Some(x), None) | (None, Some(x)) => (Some(x.clone()), true),
    }
}

fn times_union(a: Times, b: &Times) -> Times {
    match (a, b) {
        (None, _) => None,
        (Some(x), None) => Some(x),
        (Some(x), Some(y)) => Some(x.union(y)),
    }
}

/// One entry in an on-the-fly subset construction: an NFA state plus the
/// times during which this state is reachable for the current partial path.
type StateSet = Vec<(u32, Times)>;

fn push_state(set: &mut StateSet, s: u32, t: Times) {
    for (s2, t2) in set.iter_mut() {
        if *s2 == s {
            *t2 = times_union(std::mem::take(t2), &t);
            return;
        }
    }
    set.push((s, t));
}

/// Per-element memo of label match results.
struct ElemMatcher<'a> {
    view: &'a GraphView<'a>,
    schema: &'a Schema,
    atoms: &'a [BoundAtom],
    range_mode: bool,
    memo: HashMap<(Uid, Label), Option<Times>>,
    /// Partial matches dropped because their interval intersection became
    /// empty (§5 temporal pruning). A plain increment — counted even
    /// untraced, and only reported when a trace is attached.
    temporal_prunes: u64,
}

impl<'a> ElemMatcher<'a> {
    fn new(view: &'a GraphView<'a>, schema: &'a Schema, atoms: &'a [BoundAtom]) -> Self {
        ElemMatcher {
            view,
            schema,
            atoms,
            range_mode: view.filter.is_range(),
            memo: HashMap::new(),
            temporal_prunes: 0,
        }
    }

    /// `None` → element does not satisfy the label; `Some(times)` → it
    /// does, with assertion times in range mode.
    fn matches(&mut self, uid: Uid, is_node: bool, label: Label) -> Option<Times> {
        // Fast path: kind and class mismatches are decided from two array
        // reads, without touching versions or the memo. This is what makes
        // class-partitioned storage pay off (§6: "the automatic elimination
        // of many useless edges from the navigation joins").
        if let Label::Atom(a) = label {
            let atom = &self.atoms[a as usize];
            if atom.is_node != is_node {
                return None;
            }
            let class = self.view.graph.class_of(uid)?;
            if !self.schema.is_subclass(class, atom.class) {
                return None;
            }
        } else if matches!(label, Label::AnyNode) != is_node {
            return None;
        }
        if let Some(hit) = self.memo.get(&(uid, label)) {
            return hit.clone();
        }
        let result = self.compute(uid, is_node, label);
        self.memo.insert((uid, label), result.clone());
        result
    }

    fn compute(&self, uid: Uid, is_node: bool, label: Label) -> Option<Times> {
        let to_times = |mt: MatchTime| -> Times {
            match mt {
                MatchTime::Point => None,
                MatchTime::Intervals(set) => Some(set),
            }
        };
        match label {
            Label::AnyNode => {
                if !is_node {
                    return None;
                }
                self.view.matching(uid, |_| true).map(to_times)
            }
            Label::AnyEdge => {
                if is_node {
                    return None;
                }
                self.view.matching(uid, |_| true).map(to_times)
            }
            Label::Atom(a) => {
                let atom = &self.atoms[a as usize];
                if atom.is_node != is_node {
                    return None;
                }
                let class = self.view.graph.class_of(uid)?;
                if !self.schema.is_subclass(class, atom.class) {
                    return None;
                }
                self.view.matching(uid, |f| atom.matches_fields(f)).map(to_times)
            }
        }
        .map(|t| if self.range_mode && t.is_none() { Some(universal()) } else { t })
    }
}

/// Step a state set forward over one element.
fn step_fwd(plan: &RpePlan, m: &mut ElemMatcher, states: &StateSet, uid: Uid, is_node: bool) -> StateSet {
    let mut next: StateSet = Vec::new();
    for (s, t) in states {
        for &(label, to) in &plan.nfa.trans[*s as usize] {
            if let Some(lt) = m.matches(uid, is_node, label) {
                let (nt, ok) = times_intersect(t, &lt);
                if ok {
                    push_state(&mut next, to, nt);
                } else {
                    m.temporal_prunes += 1;
                }
            }
        }
    }
    next
}

/// Step a state set backward over one element (states are *before*-states).
fn step_bwd(plan: &RpePlan, m: &mut ElemMatcher, states: &StateSet, uid: Uid, is_node: bool) -> StateSet {
    let mut next: StateSet = Vec::new();
    for (s, t) in states {
        for &(label, from) in &plan.nfa.rev[*s as usize] {
            if let Some(lt) = m.matches(uid, is_node, label) {
                let (nt, ok) = times_intersect(t, &lt);
                if ok {
                    push_state(&mut next, from, nt);
                } else {
                    m.temporal_prunes += 1;
                }
            }
        }
    }
    next
}

fn accepting_times(plan: &RpePlan, states: &StateSet) -> Option<Times> {
    let mut found = false;
    let mut acc: Times = None;
    let mut first = true;
    for (s, t) in states {
        if plan.nfa.accepts[*s as usize] {
            found = true;
            if first {
                acc = t.clone();
                first = false;
            } else {
                acc = times_union(acc, t);
            }
        }
    }
    found.then_some(acc)
}

fn start_times(plan: &RpePlan, states: &StateSet) -> Option<Times> {
    let mut found = false;
    let mut acc: Times = None;
    let mut first = true;
    for (s, t) in states {
        if *s == plan.nfa.start {
            found = true;
            if first {
                acc = t.clone();
                first = false;
            } else {
                acc = times_union(acc, t);
            }
        }
    }
    found.then_some(acc)
}

/// A completed half-match: the elements on one side of the seed (seed
/// included on the forward side only) plus the times of the half.
#[derive(Debug, Clone)]
struct Half {
    elems: Vec<Uid>,
    times: Times,
}

struct Ctx<'a> {
    view: &'a GraphView<'a>,
    plan: &'a RpePlan,
    cap: usize,
}

/// Depth-first forward extension. `path` ends with a node; `states` are the
/// NFA states after consuming all of `path`.
fn fwd_search(ctx: &Ctx, m: &mut ElemMatcher, path: &mut Vec<Uid>, states: &StateSet, out: &mut Vec<Half>) {
    if let Some(times) = accepting_times(ctx.plan, states) {
        out.push(Half { elems: path.clone(), times });
    }
    if path.len() + 2 > ctx.cap {
        return;
    }
    let last = *path.last().unwrap();
    for adj in ctx.view.graph.out_adj(last) {
        if path.contains(&adj.edge) || path.contains(&adj.other) {
            continue;
        }
        let s1 = step_fwd(ctx.plan, m, states, adj.edge, false);
        if s1.is_empty() {
            continue;
        }
        let s2 = step_fwd(ctx.plan, m, &s1, adj.other, true);
        if s2.is_empty() {
            continue;
        }
        path.push(adj.edge);
        path.push(adj.other);
        fwd_search(ctx, m, path, &s2, out);
        path.pop();
        path.pop();
    }
}

/// Depth-first backward extension. `path` holds elements to the LEFT of the
/// seed in right-to-left order (so `path.last()` is the leftmost element,
/// always a node once non-empty); `states` are before-states.
fn bwd_search(
    ctx: &Ctx,
    m: &mut ElemMatcher,
    path: &mut Vec<Uid>,
    states: &StateSet,
    leftmost_is_node: bool,
    out: &mut Vec<Half>,
) {
    if leftmost_is_node {
        if let Some(times) = start_times(ctx.plan, states) {
            out.push(Half { elems: path.clone(), times });
        }
    }
    if path.len() + 2 > ctx.cap {
        return;
    }
    let leftmost = match path.last() {
        Some(&u) => u,
        None => return, // caller seeds with at least the anchor-adjacent node
    };
    for adj in ctx.view.graph.in_adj(leftmost) {
        if path.contains(&adj.edge) || path.contains(&adj.other) {
            continue;
        }
        let s1 = step_bwd(ctx.plan, m, states, adj.edge, false);
        if s1.is_empty() {
            continue;
        }
        let s2 = step_bwd(ctx.plan, m, &s1, adj.other, true);
        if s2.is_empty() {
            continue;
        }
        path.push(adj.edge);
        path.push(adj.other);
        bwd_search(ctx, m, path, &s2, true, out);
        path.pop();
        path.pop();
    }
}

/// Scan the store for elements satisfying an anchor atom (`Select`).
/// Uses the unique index when the atom has a unique-equality predicate.
pub fn anchor_scan(view: &GraphView, schema: &Schema, atom: &BoundAtom) -> Vec<(Uid, Times)> {
    anchor_scan_counted(view, schema, atom).0
}

/// [`anchor_scan`] plus the number of stored elements examined, so a trace
/// can report the `Select` operator's input cardinality (1 on the
/// unique-index fast path, the extent size on the scan path).
pub fn anchor_scan_counted(view: &GraphView, schema: &Schema, atom: &BoundAtom) -> (Vec<(Uid, Times)>, u64) {
    let range_mode = view.filter.is_range();
    let to_times = |mt: MatchTime| -> Times {
        match mt {
            MatchTime::Point => {
                if range_mode {
                    Some(universal())
                } else {
                    None
                }
            }
            MatchTime::Intervals(set) => Some(set),
        }
    };
    // Unique-index fast path — only valid against the current snapshot,
    // since the index tracks currently asserted holders.
    if view.filter == TimeFilter::Current {
        if let Some((idx, value)) = atom.unique_eq_pred(schema) {
            if let Some(uid) = view.graph.find_unique(atom.class, idx, value) {
                if let Some(mt) = view.matching(uid, |f| atom.matches_fields(f)) {
                    return (vec![(uid, to_times(mt))], 1);
                }
                return (Vec::new(), 1);
            }
            return (Vec::new(), 0);
        }
    }
    let mut out = Vec::new();
    let mut scanned = 0u64;
    for c in schema.descendants(atom.class) {
        for &uid in view.graph.extent_exact(c) {
            scanned += 1;
            if let Some(mt) = view.matching(uid, |f| atom.matches_fields(f)) {
                out.push((uid, to_times(mt)));
            }
        }
    }
    (out, scanned)
}

fn finalize(view: &GraphView, times: Times) -> Option<Times> {
    match (view.filter, times) {
        (TimeFilter::Range(a, b), Some(set)) => {
            let probe = Interval::new(a, b.saturating_add(1));
            let comps = set.components_overlapping(&probe);
            if comps.is_empty() {
                None
            } else {
                Some(Some(IntervalSet::from_intervals(comps)))
            }
        }
        (TimeFilter::Range(_, _), None) => None, // range mode must carry times
        (_, _) => Some(None),
    }
}

/// Evaluate a planned RPE under a time-filtered view.
pub fn evaluate(view: &GraphView, plan: &RpePlan, seeds: Seeds, opts: &EvalOptions) -> Vec<Pathway> {
    evaluate_traced(view, plan, seeds, opts, None)
}

/// [`evaluate`] with an optional [`ExecTrace`] collecting one [`OpStats`]
/// per §5 operator instance plus free-form counters (temporal prunes, memo
/// size). With `trace == None` no clock is ever read; the only residual
/// cost of instrumentation on the untraced path is plain integer
/// increments.
pub fn evaluate_traced(
    view: &GraphView,
    plan: &RpePlan,
    seeds: Seeds,
    opts: &EvalOptions,
    trace: Option<&mut ExecTrace>,
) -> Vec<Pathway> {
    evaluate_obs(view, plan, seeds, opts, trace, &SpanHandle::none())
}

/// The fully observable evaluator: optional profiling trace *and* an
/// optional live span. Operator instances become child spans of `span`
/// (the `Select` as a real child, the accumulated `Extend`/`Union` work as
/// duration spans) in addition to the [`OpStats`] rows. An inactive span
/// plus `trace == None` keeps the no-clock-reads contract.
pub fn evaluate_obs(
    view: &GraphView,
    plan: &RpePlan,
    seeds: Seeds,
    opts: &EvalOptions,
    mut trace: Option<&mut ExecTrace>,
    span: &SpanHandle,
) -> Vec<Pathway> {
    let enabled = trace.is_some() || span.is_active();
    let schema = view.graph.schema().clone();
    let cap = opts.max_elements.map(|m| m.min(plan.max_elements)).unwrap_or(plan.max_elements);
    let ctx = Ctx { view, plan, cap };
    let mut m = ElemMatcher::new(view, &schema, &plan.atoms);
    // elems → merged times. BTreeMap-free: HashMap then sort at the end.
    let mut results: HashMap<Vec<Uid>, Times> = HashMap::new();
    let add_result = |elems: Vec<Uid>, times: Times, results: &mut HashMap<Vec<Uid>, Times>| {
        results.entry(elems).and_modify(|t| *t = times_union(std::mem::take(t), &times)).or_insert(times);
    };

    match seeds {
        Seeds::Anchor => {
            for &occ in &plan.anchor.atoms {
                let atom = &plan.atoms[occ as usize];
                let t_sel = enabled.then(Instant::now);
                let sel_span = span.child("Select");
                sel_span.attr("atom", &atom.display);
                let (candidates, scanned) = anchor_scan_counted(view, &schema, atom);
                sel_span.attr("rows_in", scanned);
                sel_span.attr("rows_out", candidates.len());
                drop(sel_span);
                if let Some(trc) = trace.as_deref_mut() {
                    let mut op = OpStats::new("Select", &atom.display);
                    op.rows_in = scanned;
                    op.rows_out = candidates.len() as u64;
                    op.elapsed_ns = t_sel.map_or(0, |t| t.elapsed().as_nanos() as u64);
                    trc.ops.push(op);
                }
                let seed_trans = plan.nfa.seeds_for(occ);
                let (mut fwd_halves, mut bwd_halves) = (0u64, 0u64);
                let (mut fwd_ns, mut bwd_ns) = (0u64, 0u64);
                let (mut union_in, mut union_ns) = (0u64, 0u64);
                let union_before = results.len() as u64;
                for (elem, times0) in &candidates {
                    let edge_ends = if atom.is_node {
                        None
                    } else {
                        match view.graph.edge(*elem) {
                            Ok(e) => Some((e.src, e.dst)),
                            Err(_) => continue,
                        }
                    };
                    // ε-elimination can leave the anchor occurrence on
                    // several transitions; the forward half depends only on
                    // the target state, so search each distinct state once
                    // (`None` marks a state the edge seed cannot even step
                    // into) and skip duplicate (from, to) pairs outright.
                    let mut fwd_runs: Vec<(u32, Option<Vec<Half>>)> = Vec::new();
                    let mut seen_pairs: Vec<(u32, u32)> = Vec::new();
                    for tr in &seed_trans {
                        if seen_pairs.contains(&(tr.from, tr.to)) {
                            continue;
                        }
                        seen_pairs.push((tr.from, tr.to));
                        let mut bwd: Vec<Half> = Vec::new();
                        let fwd_idx = match fwd_runs.iter().position(|(s, _)| *s == tr.to) {
                            Some(i) => i,
                            None => {
                                let states: StateSet = vec![(tr.to, times0.clone())];
                                let run = if let Some((_, dst)) = edge_ends {
                                    // Edge seed: forward must consume the
                                    // edge's target node first.
                                    let s2 = step_fwd(plan, &mut m, &states, dst, true);
                                    if s2.is_empty() {
                                        None
                                    } else {
                                        let mut fwd: Vec<Half> = Vec::new();
                                        let mut path = vec![*elem, dst];
                                        let t0 = enabled.then(Instant::now);
                                        fwd_search(&ctx, &mut m, &mut path, &s2, &mut fwd);
                                        if let Some(t) = t0 {
                                            fwd_ns += t.elapsed().as_nanos() as u64;
                                        }
                                        Some(fwd)
                                    }
                                } else {
                                    let mut fwd: Vec<Half> = Vec::new();
                                    let mut path = vec![*elem];
                                    let t0 = enabled.then(Instant::now);
                                    fwd_search(&ctx, &mut m, &mut path, &states, &mut fwd);
                                    if let Some(t) = t0 {
                                        fwd_ns += t.elapsed().as_nanos() as u64;
                                    }
                                    Some(fwd)
                                };
                                if let Some(fwd) = &run {
                                    fwd_halves += fwd.len() as u64;
                                }
                                fwd_runs.push((tr.to, run));
                                fwd_runs.len() - 1
                            }
                        };
                        if fwd_runs[fwd_idx].1.is_none() {
                            continue;
                        }
                        if let Some((src, _)) = edge_ends {
                            let bstates: StateSet = vec![(tr.from, times0.clone())];
                            let b1 = step_bwd(plan, &mut m, &bstates, src, true);
                            if b1.is_empty() {
                                continue;
                            }
                            let mut bpath = vec![src];
                            let t0 = enabled.then(Instant::now);
                            bwd_search(&ctx, &mut m, &mut bpath, &b1, true, &mut bwd);
                            if let Some(t) = t0 {
                                bwd_ns += t.elapsed().as_nanos() as u64;
                            }
                        } else {
                            let t0 = enabled.then(Instant::now);
                            let bstates: StateSet = vec![(tr.from, times0.clone())];
                            let mut bpath = Vec::new();
                            // The seed node itself is the (current) leftmost
                            // element; acceptance before extending is legal.
                            if let Some(t) = start_times(plan, &bstates) {
                                bwd.push(Half { elems: Vec::new(), times: t });
                            }
                            // Extend left of the seed node.
                            for adj in view.graph.in_adj(*elem) {
                                if adj.edge == *elem || adj.other == *elem {
                                    continue;
                                }
                                let s1 = step_bwd(plan, &mut m, &bstates, adj.edge, false);
                                if s1.is_empty() {
                                    continue;
                                }
                                let s2 = step_bwd(plan, &mut m, &s1, adj.other, true);
                                if s2.is_empty() {
                                    continue;
                                }
                                bpath.push(adj.edge);
                                bpath.push(adj.other);
                                bwd_search(&ctx, &mut m, &mut bpath, &s2, true, &mut bwd);
                                bpath.pop();
                                bpath.pop();
                            }
                            if let Some(t) = t0 {
                                bwd_ns += t.elapsed().as_nanos() as u64;
                            }
                        }
                        let fwd = fwd_runs[fwd_idx].1.as_ref().expect("checked above");
                        bwd_halves += bwd.len() as u64;
                        union_in += (bwd.len() * fwd.len()) as u64;
                        // Union: cross-combine halves.
                        let t0 = enabled.then(Instant::now);
                        for b in &bwd {
                            'combine: for fh in fwd {
                                // Cycle check across the two halves.
                                for u in &b.elems {
                                    if fh.elems.contains(u) {
                                        continue 'combine;
                                    }
                                }
                                let (t, ok) = times_intersect(&b.times, &fh.times);
                                if !ok {
                                    m.temporal_prunes += 1;
                                    continue;
                                }
                                let mut elems = b.elems.clone();
                                elems.reverse();
                                elems.extend_from_slice(&fh.elems);
                                if elems.len() > cap {
                                    continue;
                                }
                                add_result(elems, t, &mut results);
                            }
                        }
                        if let Some(t) = t0 {
                            union_ns += t.elapsed().as_nanos() as u64;
                        }
                        if let Some(limit) = opts.limit {
                            if results.len() >= limit {
                                break;
                            }
                        }
                    }
                }
                if let Some(trc) = trace.as_deref_mut() {
                    let n_cand = candidates.len() as u64;
                    let mut op = OpStats::new("Extend(fwd)", &atom.display);
                    op.rows_in = n_cand;
                    op.rows_out = fwd_halves;
                    op.elapsed_ns = fwd_ns;
                    op.depth = 1;
                    trc.ops.push(op);
                    let mut op = OpStats::new("Extend(bwd)", &atom.display);
                    op.rows_in = n_cand;
                    op.rows_out = bwd_halves;
                    op.elapsed_ns = bwd_ns;
                    op.depth = 1;
                    trc.ops.push(op);
                    let mut op = OpStats::new("Union", &atom.display);
                    op.rows_in = union_in;
                    op.rows_out = results.len() as u64 - union_before;
                    op.elapsed_ns = union_ns;
                    op.depth = 1;
                    trc.ops.push(op);
                }
                // The extend/union work is interleaved across the candidate
                // loop; report the accumulated durations as completed spans.
                span.span_dur(
                    "Extend(fwd)",
                    fwd_ns,
                    &[("atom", atom.display.clone()), ("halves", fwd_halves.to_string())],
                );
                span.span_dur(
                    "Extend(bwd)",
                    bwd_ns,
                    &[("atom", atom.display.clone()), ("halves", bwd_halves.to_string())],
                );
                span.span_dur("Union", union_ns, &[("atom", atom.display.clone()), ("pairs_in", union_in.to_string())]);
            }
        }
        Seeds::Sources(srcs) => {
            let t0 = enabled.then(Instant::now);
            let mut seeded = 0u64;
            let mut halves = 0u64;
            for &src in srcs {
                if !view.graph.is_node(src) {
                    continue;
                }
                let init: StateSet =
                    vec![(plan.nfa.start, if view.filter.is_range() { Some(universal()) } else { None })];
                let s1 = step_fwd(plan, &mut m, &init, src, true);
                if s1.is_empty() {
                    continue;
                }
                seeded += 1;
                let mut path = vec![src];
                let mut fwd = Vec::new();
                fwd_search(&ctx, &mut m, &mut path, &s1, &mut fwd);
                halves += fwd.len() as u64;
                for h in fwd {
                    add_result(h.elems, h.times, &mut results);
                }
            }
            let elapsed_ns = t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
            if let Some(trc) = trace.as_deref_mut() {
                let mut op = OpStats::new("Select", "imported source seeds");
                op.rows_in = srcs.len() as u64;
                op.rows_out = seeded;
                trc.ops.push(op);
                let mut op = OpStats::new("Extend(fwd)", "from imported sources");
                op.rows_in = seeded;
                op.rows_out = halves;
                op.elapsed_ns = elapsed_ns;
                op.depth = 1;
                trc.ops.push(op);
            }
            span.span_dur(
                "Extend(fwd)",
                elapsed_ns,
                &[("seeds", format!("{seeded}/{}", srcs.len())), ("halves", halves.to_string())],
            );
        }
        Seeds::Targets(tgts) => {
            let t0 = enabled.then(Instant::now);
            let mut seeded = 0u64;
            let mut halves = 0u64;
            let accept_states: StateSet = (0..plan.nfa.n_states as u32)
                .filter(|&s| plan.nfa.accepts[s as usize])
                .map(|s| (s, if view.filter.is_range() { Some(universal()) } else { None }))
                .collect();
            for &tgt in tgts {
                if !view.graph.is_node(tgt) {
                    continue;
                }
                let b1 = step_bwd(plan, &mut m, &accept_states, tgt, true);
                if b1.is_empty() {
                    continue;
                }
                seeded += 1;
                let mut path = vec![tgt];
                let mut bwd = Vec::new();
                bwd_search(&ctx, &mut m, &mut path, &b1, true, &mut bwd);
                halves += bwd.len() as u64;
                for h in bwd {
                    let mut elems = h.elems;
                    elems.reverse();
                    add_result(elems, h.times, &mut results);
                }
            }
            let elapsed_ns = t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
            if let Some(trc) = trace.as_deref_mut() {
                let mut op = OpStats::new("Select", "imported target seeds");
                op.rows_in = tgts.len() as u64;
                op.rows_out = seeded;
                trc.ops.push(op);
                let mut op = OpStats::new("Extend(bwd)", "from imported targets");
                op.rows_in = seeded;
                op.rows_out = halves;
                op.elapsed_ns = elapsed_ns;
                op.depth = 1;
                trc.ops.push(op);
            }
            span.span_dur(
                "Extend(bwd)",
                elapsed_ns,
                &[("seeds", format!("{seeded}/{}", tgts.len())), ("halves", halves.to_string())],
            );
        }
    }

    if let Some(trc) = trace {
        trc.bump("temporal_prunes", m.temporal_prunes);
        trc.bump("match_memo_entries", m.memo.len() as u64);
    }
    span.attr("temporal_prunes", m.temporal_prunes);
    span.attr("match_memo_entries", m.memo.len());

    let mut out: Vec<Pathway> = Vec::new();
    for (elems, times) in results {
        if let Some(t) = finalize(view, times) {
            out.push(Pathway { elems, times: t });
        }
    }
    out.sort_by(|a, b| a.elems.cmp(&b.elems));
    if let Some(limit) = opts.limit {
        out.truncate(limit);
    }
    out
}

/// Live-statistics estimator backed by the store (§5.1: "database
/// statistics are used if available; otherwise schema hints are used").
pub struct GraphEstimator<'g> {
    pub graph: &'g TemporalGraph,
}

impl CardinalityEstimator for GraphEstimator<'_> {
    fn estimate(&self, schema: &Schema, atom: &BoundAtom) -> f64 {
        if atom.unique_eq_pred(schema).is_some() {
            return 1.0;
        }
        let count = self.graph.alive_count(atom.class);
        let base = if count == 0 {
            schema
                .descendants(atom.class)
                .into_iter()
                .filter_map(|c| schema.class(c).hint_cardinality)
                .sum::<u64>()
                .max(1) as f64
        } else {
            count as f64
        };
        apply_selectivity(base, atom)
    }
}
