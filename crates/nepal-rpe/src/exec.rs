//! The native anchored evaluator.
//!
//! Implements the paper's evaluation strategy (§5.1/§5.2) directly against
//! the temporal graph store: a `Select` over the anchor atoms, then chained
//! `Extend` operators forwards and backwards with per-row NFA state and
//! uid-list cycle checks, and a `Union` merging the per-seed results.
//!
//! Temporal scope is threaded through every operator: under a
//! [`TimeFilter::Range`] each partial pathway carries the intersection of
//! its elements' maximal assertion intervals and is pruned the moment that
//! intersection becomes empty.

use std::collections::VecDeque;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use nepal_graph::FOREVER;
use nepal_graph::{FxHashMap, GraphView, Interval, IntervalSet, MatchTime, TemporalGraph, TimeFilter, Uid};
use nepal_obs::{thread_cpu_ns, ExecTrace, MetricsRegistry, OpStats, ResourceMeter, SpanHandle};
use nepal_schema::{ClassId, Schema};

use crate::anchor::{apply_selectivity, CardinalityEstimator};
use crate::bind::BoundAtom;
use crate::cancel::{CancelCause, CancelToken};
use crate::error::RpeError;
use crate::nfa::Label;
use crate::par;
use crate::path::Pathway;
use crate::plan::RpePlan;

/// Where evaluation starts.
#[derive(Debug, Clone, Copy)]
pub enum Seeds<'a> {
    /// Use the plan's anchor (the normal case).
    Anchor,
    /// Anchor "imported" from a join: pathways must *start* at these nodes
    /// (e.g. `source(Phys) = target(D1)` in the paper's join example).
    Sources(&'a [Uid]),
    /// Pathways must *end* at these nodes.
    Targets(&'a [Uid]),
}

/// Evaluation options.
#[derive(Debug, Clone, Default)]
pub struct EvalOptions {
    /// Stop after collecting this many pathways.
    pub limit: Option<usize>,
    /// Additional element-count cap on top of the RPE's own length limit.
    pub max_elements: Option<usize>,
    /// Worker threads for the parallel evaluator. `0` (the default)
    /// resolves via [`resolved_threads`]: the `NEPAL_THREADS` environment
    /// variable if set, otherwise the host's available parallelism.
    /// `1` forces the sequential path. When a `limit` is set evaluation
    /// also stays sequential, because the limit's early exit is
    /// traversal-order-dependent.
    pub threads: usize,
    /// Cooperative cancellation: polled at bounded intervals (anchor
    /// scans, every few node expansions, pool job boundaries). A tripped
    /// token surfaces as [`RpeError::DeadlineExceeded`] /
    /// [`RpeError::Cancelled`] from the fallible entry points
    /// ([`evaluate_obs`] / [`evaluate_metered`]) — never as a panic or a
    /// silently truncated result.
    pub cancel: Option<CancelToken>,
    /// Per-query resource meter. When set, the evaluator charges the
    /// meter with deterministic work counters (rows / bytes scanned,
    /// materializations, keyframe hits, classes visited, seeks) at the
    /// anchor-scan boundary — on the calling thread in both the
    /// sequential and parallel modes, so the logical counts are identical
    /// across thread counts — plus thread-CPU time sampled at entry/exit
    /// and at pool job boundaries (physical, mode-dependent). `None` (the
    /// default) keeps the no-clock-reads contract.
    pub meter: Option<Arc<ResourceMeter>>,
}

impl EvalOptions {
    /// Options carrying a fresh deadline token.
    pub fn with_deadline(deadline: std::time::Duration) -> EvalOptions {
        EvalOptions { cancel: Some(CancelToken::with_deadline(deadline)), ..Default::default() }
    }
}

/// Resolve an [`EvalOptions::threads`] value to a concrete worker count:
/// any explicit `n >= 1` wins; `0` falls back to `NEPAL_THREADS` (cached
/// after the first read) or, failing that, `available_parallelism()`.
pub fn resolved_threads(threads: usize) -> usize {
    if threads != 0 {
        return threads;
    }
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| match std::env::var("NEPAL_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    })
}

/// Times attached to a partial match: `None` in point mode (Current/AsOf),
/// `Some` in range mode.
type Times = Option<IntervalSet>;

fn universal() -> IntervalSet {
    IntervalSet::from_interval(Interval::new(i64::MIN, FOREVER))
}

fn times_intersect(a: &Times, b: &Times) -> (Times, bool) {
    match (a, b) {
        (None, None) => (None, true),
        (Some(x), Some(y)) => {
            let r = x.intersect(y);
            let ok = !r.is_empty();
            (Some(r), ok)
        }
        (Some(x), None) | (None, Some(x)) => (Some(x.clone()), true),
    }
}

fn times_union(a: Times, b: &Times) -> Times {
    match (a, b) {
        (None, _) => None,
        (Some(x), None) => Some(x),
        (Some(x), Some(y)) => Some(x.union(y)),
    }
}

/// One entry in an on-the-fly subset construction: an NFA state plus the
/// times during which this state is reachable for the current partial path.
type StateSet = Vec<(u32, Times)>;

fn push_state(set: &mut StateSet, s: u32, t: Times) {
    for (s2, t2) in set.iter_mut() {
        if *s2 == s {
            *t2 = times_union(std::mem::take(t2), &t);
            return;
        }
    }
    set.push((s, t));
}

/// Per-element memo of label match results.
struct ElemMatcher<'a> {
    view: &'a GraphView<'a>,
    schema: &'a Schema,
    atoms: &'a [BoundAtom],
    range_mode: bool,
    memo: FxHashMap<(Uid, Label), Option<Times>>,
    /// Partial matches dropped because their interval intersection became
    /// empty (§5 temporal pruning). A plain increment — counted even
    /// untraced, and only reported when a trace is attached.
    temporal_prunes: u64,
    /// Cooperative cancellation: the token (if any), a checkpoint counter
    /// bounding poll frequency, and the sticky cause once tripped.
    cancel: Option<CancelToken>,
    cancel_ctr: u32,
    cancel_cause: Option<CancelCause>,
}

/// Poll the cancel token once per this many search checkpoints (node
/// expansions / scanned elements), bounding both the poll overhead and the
/// cancellation latency.
const CANCEL_CHECK_MASK: u32 = 0x3F; // every 64 checkpoints

impl<'a> ElemMatcher<'a> {
    fn with_cancel(
        view: &'a GraphView<'a>,
        schema: &'a Schema,
        atoms: &'a [BoundAtom],
        cancel: Option<CancelToken>,
    ) -> Self {
        ElemMatcher {
            view,
            schema,
            atoms,
            range_mode: view.filter.is_range(),
            memo: FxHashMap::default(),
            temporal_prunes: 0,
            cancel,
            cancel_ctr: 0,
            cancel_cause: None,
        }
    }

    /// One search checkpoint: `true` → the token tripped, abandon work and
    /// unwind. Sticky, and rate-limited to one token poll per
    /// [`CANCEL_CHECK_MASK`]+1 calls.
    #[inline]
    fn checkpoint(&mut self) -> bool {
        if self.cancel_cause.is_some() {
            return true;
        }
        let Some(tok) = &self.cancel else { return false };
        self.cancel_ctr = self.cancel_ctr.wrapping_add(1);
        if self.cancel_ctr & CANCEL_CHECK_MASK != 0 {
            return false;
        }
        match tok.poll() {
            Some(cause) => {
                self.cancel_cause = Some(cause);
                true
            }
            None => false,
        }
    }

    /// `None` → element does not satisfy the label; `Some(times)` → it
    /// does, with assertion times in range mode.
    fn matches(&mut self, uid: Uid, is_node: bool, label: Label) -> Option<Times> {
        // Fast path: kind and class mismatches are decided from two array
        // reads, without touching versions or the memo. This is what makes
        // class-partitioned storage pay off (§6: "the automatic elimination
        // of many useless edges from the navigation joins").
        if let Label::Atom(a) = label {
            let atom = &self.atoms[a as usize];
            if atom.is_node != is_node {
                return None;
            }
            let class = self.view.graph.class_of(uid)?;
            if !self.schema.is_subclass(class, atom.class) {
                return None;
            }
        } else if matches!(label, Label::AnyNode) != is_node {
            return None;
        }
        if let Some(hit) = self.memo.get(&(uid, label)) {
            return hit.clone();
        }
        let result = self.compute(uid, is_node, label);
        self.memo.insert((uid, label), result.clone());
        result
    }

    fn compute(&self, uid: Uid, is_node: bool, label: Label) -> Option<Times> {
        let to_times = |mt: MatchTime| -> Times {
            match mt {
                MatchTime::Point => None,
                MatchTime::Intervals(set) => Some(set),
            }
        };
        match label {
            Label::AnyNode => {
                if !is_node {
                    return None;
                }
                self.view.matching(uid, |_| true).map(to_times)
            }
            Label::AnyEdge => {
                if is_node {
                    return None;
                }
                self.view.matching(uid, |_| true).map(to_times)
            }
            Label::Atom(a) => {
                let atom = &self.atoms[a as usize];
                if atom.is_node != is_node {
                    return None;
                }
                let class = self.view.graph.class_of(uid)?;
                if !self.schema.is_subclass(class, atom.class) {
                    return None;
                }
                self.view.matching(uid, |f| atom.matches_fields(f)).map(to_times)
            }
        }
        .map(|t| if self.range_mode && t.is_none() { Some(universal()) } else { t })
    }
}

/// Step a state set forward over one element.
fn step_fwd(plan: &RpePlan, m: &mut ElemMatcher, states: &StateSet, uid: Uid, is_node: bool) -> StateSet {
    let mut next: StateSet = Vec::new();
    for (s, t) in states {
        for &(label, to) in &plan.nfa.trans[*s as usize] {
            if let Some(lt) = m.matches(uid, is_node, label) {
                let (nt, ok) = times_intersect(t, &lt);
                if ok {
                    push_state(&mut next, to, nt);
                } else {
                    m.temporal_prunes += 1;
                }
            }
        }
    }
    next
}

/// Step a state set backward over one element (states are *before*-states).
fn step_bwd(plan: &RpePlan, m: &mut ElemMatcher, states: &StateSet, uid: Uid, is_node: bool) -> StateSet {
    let mut next: StateSet = Vec::new();
    for (s, t) in states {
        for &(label, from) in &plan.nfa.rev[*s as usize] {
            if let Some(lt) = m.matches(uid, is_node, label) {
                let (nt, ok) = times_intersect(t, &lt);
                if ok {
                    push_state(&mut next, from, nt);
                } else {
                    m.temporal_prunes += 1;
                }
            }
        }
    }
    next
}

fn accepting_times(plan: &RpePlan, states: &StateSet) -> Option<Times> {
    let mut found = false;
    let mut acc: Times = None;
    let mut first = true;
    for (s, t) in states {
        if plan.nfa.accepts[*s as usize] {
            found = true;
            if first {
                acc = t.clone();
                first = false;
            } else {
                acc = times_union(acc, t);
            }
        }
    }
    found.then_some(acc)
}

fn start_times(plan: &RpePlan, states: &StateSet) -> Option<Times> {
    let mut found = false;
    let mut acc: Times = None;
    let mut first = true;
    for (s, t) in states {
        if *s == plan.nfa.start {
            found = true;
            if first {
                acc = t.clone();
                first = false;
            } else {
                acc = times_union(acc, t);
            }
        }
    }
    found.then_some(acc)
}

/// A completed half-match: the elements on one side of the seed (seed
/// included on the forward side only) plus the times of the half.
#[derive(Debug, Clone)]
struct Half {
    elems: Vec<Uid>,
    times: Times,
}

struct Ctx<'a> {
    view: &'a GraphView<'a>,
    plan: &'a RpePlan,
    cap: usize,
}

/// Can an edge of exact `class` satisfy *any* edge-label transition out of
/// (`fwd`) or into (`!fwd`) the live states? When not, the whole adjacency
/// bucket is skipped without touching per-neighbor state. The test mirrors
/// [`ElemMatcher::matches`]'s fast-path rejections exactly (kind + class
/// only), so skipping a bucket never changes match results or prune counts
/// — every skipped neighbor would have produced `None` without counting.
fn class_viable(
    plan: &RpePlan,
    atoms: &[BoundAtom],
    schema: &Schema,
    states: &StateSet,
    class: ClassId,
    fwd: bool,
) -> bool {
    let table = if fwd { &plan.nfa.trans } else { &plan.nfa.rev };
    for (s, _) in states {
        for &(label, _) in &table[*s as usize] {
            match label {
                Label::AnyEdge => return true,
                Label::AnyNode => {}
                Label::Atom(a) => {
                    let atom = &atoms[a as usize];
                    if !atom.is_node && schema.is_subclass(class, atom.class) {
                        return true;
                    }
                }
            }
        }
    }
    false
}

/// Depth-first forward extension. `path` ends with a node; `states` are the
/// NFA states after consuming all of `path`.
fn fwd_search(ctx: &Ctx, m: &mut ElemMatcher, path: &mut Vec<Uid>, states: &StateSet, out: &mut Vec<Half>) {
    if m.checkpoint() {
        return; // cancelled: unwind quickly, caller surfaces the cause
    }
    if let Some(times) = accepting_times(ctx.plan, states) {
        out.push(Half { elems: path.clone(), times });
    }
    if path.len() + 2 > ctx.cap {
        return;
    }
    let last = *path.last().unwrap();
    for (class, entries) in ctx.view.graph.out_adj_list(last).buckets() {
        if !class_viable(ctx.plan, m.atoms, m.schema, states, class, true) {
            continue;
        }
        for adj in entries {
            if path.contains(&adj.edge) || path.contains(&adj.other) {
                continue;
            }
            let s1 = step_fwd(ctx.plan, m, states, adj.edge, false);
            if s1.is_empty() {
                continue;
            }
            let s2 = step_fwd(ctx.plan, m, &s1, adj.other, true);
            if s2.is_empty() {
                continue;
            }
            path.push(adj.edge);
            path.push(adj.other);
            fwd_search(ctx, m, path, &s2, out);
            path.pop();
            path.pop();
        }
    }
}

/// Depth-first backward extension. `path` holds elements to the LEFT of the
/// seed in right-to-left order (so `path.last()` is the leftmost element,
/// always a node once non-empty); `states` are before-states.
fn bwd_search(
    ctx: &Ctx,
    m: &mut ElemMatcher,
    path: &mut Vec<Uid>,
    states: &StateSet,
    leftmost_is_node: bool,
    out: &mut Vec<Half>,
) {
    if m.checkpoint() {
        return; // cancelled: unwind quickly, caller surfaces the cause
    }
    if leftmost_is_node {
        if let Some(times) = start_times(ctx.plan, states) {
            out.push(Half { elems: path.clone(), times });
        }
    }
    if path.len() + 2 > ctx.cap {
        return;
    }
    let leftmost = match path.last() {
        Some(&u) => u,
        None => return, // caller seeds with at least the anchor-adjacent node
    };
    for (class, entries) in ctx.view.graph.in_adj_list(leftmost).buckets() {
        if !class_viable(ctx.plan, m.atoms, m.schema, states, class, false) {
            continue;
        }
        for adj in entries {
            if path.contains(&adj.edge) || path.contains(&adj.other) {
                continue;
            }
            let s1 = step_bwd(ctx.plan, m, states, adj.edge, false);
            if s1.is_empty() {
                continue;
            }
            let s2 = step_bwd(ctx.plan, m, &s1, adj.other, true);
            if s2.is_empty() {
                continue;
            }
            path.push(adj.edge);
            path.push(adj.other);
            bwd_search(ctx, m, path, &s2, true, out);
            path.pop();
            path.pop();
        }
    }
}

/// Scan the store for elements satisfying an anchor atom (`Select`).
/// Uses the unique index when the atom has a unique-equality predicate.
pub fn anchor_scan(view: &GraphView, schema: &Schema, atom: &BoundAtom) -> Vec<(Uid, Times)> {
    anchor_scan_counted(view, schema, atom).0
}

/// [`anchor_scan`] plus the number of stored elements examined, so a trace
/// can report the `Select` operator's input cardinality (1 on the
/// unique-index fast path, the extent size on the scan path).
pub fn anchor_scan_counted(view: &GraphView, schema: &Schema, atom: &BoundAtom) -> (Vec<(Uid, Times)>, u64) {
    anchor_scan_cancel(view, schema, atom, None, None).expect("no cancel token supplied")
}

/// [`anchor_scan_counted`] polling `cancel` every 1024 scanned elements;
/// returns the trip cause instead of a truncated candidate set. This is
/// the deterministic metering boundary: it always runs on the calling
/// thread (both evaluator modes), and the per-uid access costs it charges
/// are pure functions of store state, so a metered query reports the same
/// logical rows / bytes / materializations at any thread count.
fn anchor_scan_cancel(
    view: &GraphView,
    schema: &Schema,
    atom: &BoundAtom,
    cancel: Option<&CancelToken>,
    meter: Option<&ResourceMeter>,
) -> std::result::Result<(Vec<(Uid, Times)>, u64), CancelCause> {
    let range_mode = view.filter.is_range();
    let to_times = |mt: MatchTime| -> Times {
        match mt {
            MatchTime::Point => {
                if range_mode {
                    Some(universal())
                } else {
                    None
                }
            }
            MatchTime::Intervals(set) => Some(set),
        }
    };
    // Unique-index fast path — only valid against the current snapshot,
    // since the index tracks currently asserted holders.
    if view.filter == TimeFilter::Current {
        if let Some((idx, value)) = atom.unique_eq_pred(schema) {
            if let Some(mm) = meter {
                mm.add_seeks(1);
                mm.add_classes(1);
            }
            if let Some(uid) = view.graph.find_unique(atom.class, idx, value) {
                if let Some(mm) = meter {
                    mm.add_rows(1);
                    let cost = view.access_cost(uid);
                    mm.add_bytes(cost.bytes);
                    mm.add_materializations(cost.materializations);
                    mm.add_keyframe_hits(cost.keyframe_hits);
                }
                if let Some(mt) = view.matching(uid, |f| atom.matches_fields(f)) {
                    return Ok((vec![(uid, to_times(mt))], 1));
                }
                return Ok((Vec::new(), 1));
            }
            return Ok((Vec::new(), 0));
        }
    }
    let mut out = Vec::new();
    let mut scanned = 0u64;
    // Local tallies so the metered scan issues one atomic add per counter,
    // not one per row.
    let (mut m_bytes, mut m_mat, mut m_kf, mut m_classes) = (0u64, 0u64, 0u64, 0u64);
    for c in schema.descendants(atom.class) {
        let ext = view.graph.extent_exact(c);
        if meter.is_some() && !ext.is_empty() {
            m_classes += 1;
        }
        for &uid in ext {
            scanned += 1;
            if scanned & 0x3FF == 0 {
                if let Some(cause) = cancel.and_then(|t| t.poll()) {
                    return Err(cause);
                }
            }
            if meter.is_some() {
                let cost = view.access_cost(uid);
                m_bytes += cost.bytes;
                m_mat += cost.materializations;
                m_kf += cost.keyframe_hits;
            }
            if let Some(mt) = view.matching(uid, |f| atom.matches_fields(f)) {
                out.push((uid, to_times(mt)));
            }
        }
    }
    if let Some(mm) = meter {
        mm.add_rows(scanned);
        mm.add_bytes(m_bytes);
        mm.add_materializations(m_mat);
        mm.add_keyframe_hits(m_kf);
        mm.add_classes(m_classes);
    }
    Ok((out, scanned))
}

fn finalize(view: &GraphView, times: Times) -> Option<Times> {
    match (view.filter, times) {
        (TimeFilter::Range(a, b), Some(set)) => {
            let probe = Interval::new(a, b.saturating_add(1));
            let comps = set.components_overlapping(&probe);
            if comps.is_empty() {
                None
            } else {
                Some(Some(IntervalSet::from_intervals(comps)))
            }
        }
        (TimeFilter::Range(_, _), None) => None, // range mode must carry times
        (_, _) => Some(None),
    }
}

/// Accumulated results: elems → merged times. Both evaluator paths insert
/// through [`add_result`], whose merge (`IntervalSet::union`, re-normalized)
/// is commutative and associative — final contents are independent of
/// insertion order, which is what makes the parallel merge deterministic.
type ResultMap = FxHashMap<Vec<Uid>, Times>;

fn add_result(elems: Vec<Uid>, times: Times, results: &mut ResultMap) {
    results.entry(elems).and_modify(|t| *t = times_union(std::mem::take(t), &times)).or_insert(times);
}

/// Evaluate a planned RPE under a time-filtered view.
///
/// Infallible convenience wrapper for token-free options: panics if
/// `opts.cancel` trips mid-evaluation. Callers that set a cancel token
/// must use the fallible [`evaluate_obs`] / [`evaluate_metered`].
pub fn evaluate(view: &GraphView, plan: &RpePlan, seeds: Seeds, opts: &EvalOptions) -> Vec<Pathway> {
    evaluate_traced(view, plan, seeds, opts, None)
}

/// [`evaluate`] with an optional [`ExecTrace`] collecting one [`OpStats`]
/// per §5 operator instance plus free-form counters (temporal prunes, memo
/// size). With `trace == None` no clock is ever read; the only residual
/// cost of instrumentation on the untraced path is plain integer
/// increments. Infallible like [`evaluate`]: use the fallible entry points
/// when a cancel token is set.
pub fn evaluate_traced(
    view: &GraphView,
    plan: &RpePlan,
    seeds: Seeds,
    opts: &EvalOptions,
    trace: Option<&mut ExecTrace>,
) -> Vec<Pathway> {
    evaluate_obs(view, plan, seeds, opts, trace, &SpanHandle::none())
        .expect("evaluation with a cancel token must go through evaluate_obs/evaluate_metered")
}

/// The fully observable evaluator: optional profiling trace *and* an
/// optional live span. Operator instances become child spans of `span`
/// (the `Select` as a real child, the accumulated `Extend`/`Union` work as
/// duration spans) in addition to the [`OpStats`] rows. An inactive span
/// plus `trace == None` keeps the no-clock-reads contract.
pub fn evaluate_obs(
    view: &GraphView,
    plan: &RpePlan,
    seeds: Seeds,
    opts: &EvalOptions,
    trace: Option<&mut ExecTrace>,
    span: &SpanHandle,
) -> Result<Vec<Pathway>, RpeError> {
    evaluate_metered(view, plan, seeds, opts, trace, span, None)
}

/// [`evaluate_obs`] plus an optional [`MetricsRegistry`] receiving the
/// parallel evaluator's counters (`nepal_rpe_parallel_chunks_total`,
/// `nepal_rpe_steals_total`) and the per-worker busy-time histogram
/// (`nepal_rpe_worker_busy_ns`). Dispatches to the parallel
/// evaluator when [`EvalOptions::threads`] resolves above 1 and no result
/// `limit` is set; the parallel path produces bit-identical pathways,
/// `OpStats` rows, and temporal-prune counts (see DESIGN.md).
pub fn evaluate_metered(
    view: &GraphView,
    plan: &RpePlan,
    seeds: Seeds,
    opts: &EvalOptions,
    trace: Option<&mut ExecTrace>,
    span: &SpanHandle,
    metrics: Option<&MetricsRegistry>,
) -> Result<Vec<Pathway>, RpeError> {
    // Coordinator CPU: one clock pair around the whole evaluation, on the
    // calling thread. Worker CPU is folded in separately at pool
    // boundaries (note_pool), so the meter's total covers every thread
    // that touched the query.
    let cpu0 = opts.meter.as_ref().map(|_| thread_cpu_ns());
    if let Some(mm) = opts.meter.as_ref() {
        match seeds {
            Seeds::Sources(s) => mm.add_rows(s.len() as u64),
            Seeds::Targets(t) => mm.add_rows(t.len() as u64),
            Seeds::Anchor => {}
        }
    }
    let result = evaluate_dispatch(view, plan, seeds, opts, trace, span, metrics);
    if let (Some(mm), Some(c0)) = (opts.meter.as_ref(), cpu0) {
        mm.add_cpu_ns(thread_cpu_ns().saturating_sub(c0));
    }
    result
}

fn evaluate_dispatch(
    view: &GraphView,
    plan: &RpePlan,
    seeds: Seeds,
    opts: &EvalOptions,
    trace: Option<&mut ExecTrace>,
    span: &SpanHandle,
    metrics: Option<&MetricsRegistry>,
) -> Result<Vec<Pathway>, RpeError> {
    // Fast-fail: a request arriving with an already-tripped token (server
    // drain, expired deadline) must not seed any work, however small the
    // graph — checkpoint polls inside the evaluator are rate-limited and
    // may never fire on tiny inputs.
    if let Some(cause) = opts.cancel.as_ref().and_then(|t| t.poll()) {
        return Err(RpeError::from(cause));
    }
    let threads = resolved_threads(opts.threads);
    let parallel = threads > 1
        && opts.limit.is_none()
        && match seeds {
            Seeds::Anchor => true,
            Seeds::Sources(s) => s.len() >= 2,
            Seeds::Targets(t) => t.len() >= 2,
        };
    if parallel {
        evaluate_parallel(view, plan, seeds, opts, trace, span, metrics, threads)
    } else {
        evaluate_sequential(view, plan, seeds, opts, trace, span)
    }
}

fn evaluate_sequential(
    view: &GraphView,
    plan: &RpePlan,
    seeds: Seeds,
    opts: &EvalOptions,
    mut trace: Option<&mut ExecTrace>,
    span: &SpanHandle,
) -> Result<Vec<Pathway>, RpeError> {
    let enabled = trace.is_some() || span.is_active();
    let schema = view.graph.schema().clone();
    let cap = opts.max_elements.map(|m| m.min(plan.max_elements)).unwrap_or(plan.max_elements);
    let ctx = Ctx { view, plan, cap };
    let mut m = ElemMatcher::with_cancel(view, &schema, &plan.atoms, opts.cancel.clone());
    // elems → merged times. BTreeMap-free: HashMap then sort at the end.
    let mut results: ResultMap = ResultMap::default();

    match seeds {
        Seeds::Anchor => {
            for &occ in &plan.anchor.atoms {
                let atom = &plan.atoms[occ as usize];
                let t_sel = enabled.then(Instant::now);
                let sel_span = span.child("Select");
                sel_span.attr("atom", &atom.display);
                let (candidates, scanned) =
                    anchor_scan_cancel(view, &schema, atom, opts.cancel.as_ref(), opts.meter.as_deref())
                        .map_err(RpeError::from)?;
                sel_span.attr("rows_in", scanned);
                sel_span.attr("rows_out", candidates.len());
                drop(sel_span);
                if let Some(trc) = trace.as_deref_mut() {
                    let mut op = OpStats::new("Select", &atom.display);
                    op.rows_in = scanned;
                    op.rows_out = candidates.len() as u64;
                    op.elapsed_ns = t_sel.map_or(0, |t| t.elapsed().as_nanos() as u64);
                    trc.ops.push(op);
                }
                let seed_trans = plan.nfa.seeds_for(occ);
                let (mut fwd_halves, mut bwd_halves) = (0u64, 0u64);
                let (mut fwd_ns, mut bwd_ns) = (0u64, 0u64);
                let (mut union_in, mut union_ns) = (0u64, 0u64);
                let union_before = results.len() as u64;
                for (elem, times0) in &candidates {
                    if m.cancel_cause.is_some() {
                        break; // cancelled: stop seeding, surface below
                    }
                    let edge_ends = if atom.is_node {
                        None
                    } else {
                        match view.graph.edge(*elem) {
                            Ok(e) => Some((e.src, e.dst)),
                            Err(_) => continue,
                        }
                    };
                    // ε-elimination can leave the anchor occurrence on
                    // several transitions; the forward half depends only on
                    // the target state, so search each distinct state once
                    // (`None` marks a state the edge seed cannot even step
                    // into) and skip duplicate (from, to) pairs outright.
                    let mut fwd_runs: Vec<(u32, Option<Vec<Half>>)> = Vec::new();
                    let mut seen_pairs: Vec<(u32, u32)> = Vec::new();
                    for tr in &seed_trans {
                        if seen_pairs.contains(&(tr.from, tr.to)) {
                            continue;
                        }
                        seen_pairs.push((tr.from, tr.to));
                        let mut bwd: Vec<Half> = Vec::new();
                        let fwd_idx = match fwd_runs.iter().position(|(s, _)| *s == tr.to) {
                            Some(i) => i,
                            None => {
                                let states: StateSet = vec![(tr.to, times0.clone())];
                                let run = if let Some((_, dst)) = edge_ends {
                                    // Edge seed: forward must consume the
                                    // edge's target node first.
                                    let s2 = step_fwd(plan, &mut m, &states, dst, true);
                                    if s2.is_empty() {
                                        None
                                    } else {
                                        let mut fwd: Vec<Half> = Vec::new();
                                        let mut path = vec![*elem, dst];
                                        let t0 = enabled.then(Instant::now);
                                        fwd_search(&ctx, &mut m, &mut path, &s2, &mut fwd);
                                        if let Some(t) = t0 {
                                            fwd_ns += t.elapsed().as_nanos() as u64;
                                        }
                                        Some(fwd)
                                    }
                                } else {
                                    let mut fwd: Vec<Half> = Vec::new();
                                    let mut path = vec![*elem];
                                    let t0 = enabled.then(Instant::now);
                                    fwd_search(&ctx, &mut m, &mut path, &states, &mut fwd);
                                    if let Some(t) = t0 {
                                        fwd_ns += t.elapsed().as_nanos() as u64;
                                    }
                                    Some(fwd)
                                };
                                if let Some(fwd) = &run {
                                    fwd_halves += fwd.len() as u64;
                                }
                                fwd_runs.push((tr.to, run));
                                fwd_runs.len() - 1
                            }
                        };
                        if fwd_runs[fwd_idx].1.is_none() {
                            continue;
                        }
                        if let Some((src, _)) = edge_ends {
                            let bstates: StateSet = vec![(tr.from, times0.clone())];
                            let b1 = step_bwd(plan, &mut m, &bstates, src, true);
                            if b1.is_empty() {
                                continue;
                            }
                            let mut bpath = vec![src];
                            let t0 = enabled.then(Instant::now);
                            bwd_search(&ctx, &mut m, &mut bpath, &b1, true, &mut bwd);
                            if let Some(t) = t0 {
                                bwd_ns += t.elapsed().as_nanos() as u64;
                            }
                        } else {
                            let t0 = enabled.then(Instant::now);
                            let bstates: StateSet = vec![(tr.from, times0.clone())];
                            let mut bpath = Vec::new();
                            // The seed node itself is the (current) leftmost
                            // element; acceptance before extending is legal.
                            if let Some(t) = start_times(plan, &bstates) {
                                bwd.push(Half { elems: Vec::new(), times: t });
                            }
                            // Extend left of the seed node.
                            for adj in view.graph.in_adj(*elem) {
                                if adj.edge == *elem || adj.other == *elem {
                                    continue;
                                }
                                let s1 = step_bwd(plan, &mut m, &bstates, adj.edge, false);
                                if s1.is_empty() {
                                    continue;
                                }
                                let s2 = step_bwd(plan, &mut m, &s1, adj.other, true);
                                if s2.is_empty() {
                                    continue;
                                }
                                bpath.push(adj.edge);
                                bpath.push(adj.other);
                                bwd_search(&ctx, &mut m, &mut bpath, &s2, true, &mut bwd);
                                bpath.pop();
                                bpath.pop();
                            }
                            if let Some(t) = t0 {
                                bwd_ns += t.elapsed().as_nanos() as u64;
                            }
                        }
                        let fwd = fwd_runs[fwd_idx].1.as_ref().expect("checked above");
                        bwd_halves += bwd.len() as u64;
                        union_in += (bwd.len() * fwd.len()) as u64;
                        // Union: cross-combine halves.
                        let t0 = enabled.then(Instant::now);
                        for b in &bwd {
                            if m.checkpoint() {
                                break;
                            }
                            'combine: for fh in fwd {
                                // Cycle check across the two halves.
                                for u in &b.elems {
                                    if fh.elems.contains(u) {
                                        continue 'combine;
                                    }
                                }
                                let (t, ok) = times_intersect(&b.times, &fh.times);
                                if !ok {
                                    m.temporal_prunes += 1;
                                    continue;
                                }
                                let mut elems = b.elems.clone();
                                elems.reverse();
                                elems.extend_from_slice(&fh.elems);
                                if elems.len() > cap {
                                    continue;
                                }
                                add_result(elems, t, &mut results);
                            }
                        }
                        if let Some(t) = t0 {
                            union_ns += t.elapsed().as_nanos() as u64;
                        }
                        if let Some(limit) = opts.limit {
                            if results.len() >= limit {
                                break;
                            }
                        }
                    }
                }
                if let Some(trc) = trace.as_deref_mut() {
                    let n_cand = candidates.len() as u64;
                    let mut op = OpStats::new("Extend(fwd)", &atom.display);
                    op.rows_in = n_cand;
                    op.rows_out = fwd_halves;
                    op.elapsed_ns = fwd_ns;
                    op.depth = 1;
                    trc.ops.push(op);
                    let mut op = OpStats::new("Extend(bwd)", &atom.display);
                    op.rows_in = n_cand;
                    op.rows_out = bwd_halves;
                    op.elapsed_ns = bwd_ns;
                    op.depth = 1;
                    trc.ops.push(op);
                    let mut op = OpStats::new("Union", &atom.display);
                    op.rows_in = union_in;
                    op.rows_out = results.len() as u64 - union_before;
                    op.elapsed_ns = union_ns;
                    op.depth = 1;
                    trc.ops.push(op);
                }
                // The extend/union work is interleaved across the candidate
                // loop; report the accumulated durations as completed spans.
                span.span_dur(
                    "Extend(fwd)",
                    fwd_ns,
                    &[("atom", atom.display.clone()), ("halves", fwd_halves.to_string())],
                );
                span.span_dur(
                    "Extend(bwd)",
                    bwd_ns,
                    &[("atom", atom.display.clone()), ("halves", bwd_halves.to_string())],
                );
                span.span_dur("Union", union_ns, &[("atom", atom.display.clone()), ("pairs_in", union_in.to_string())]);
            }
        }
        Seeds::Sources(srcs) => {
            let t0 = enabled.then(Instant::now);
            let mut seeded = 0u64;
            let mut halves = 0u64;
            for &src in srcs {
                if m.cancel_cause.is_some() {
                    break;
                }
                if !view.graph.is_node(src) {
                    continue;
                }
                let init: StateSet =
                    vec![(plan.nfa.start, if view.filter.is_range() { Some(universal()) } else { None })];
                let s1 = step_fwd(plan, &mut m, &init, src, true);
                if s1.is_empty() {
                    continue;
                }
                seeded += 1;
                let mut path = vec![src];
                let mut fwd = Vec::new();
                fwd_search(&ctx, &mut m, &mut path, &s1, &mut fwd);
                halves += fwd.len() as u64;
                for h in fwd {
                    add_result(h.elems, h.times, &mut results);
                }
            }
            let elapsed_ns = t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
            if let Some(trc) = trace.as_deref_mut() {
                let mut op = OpStats::new("Select", "imported source seeds");
                op.rows_in = srcs.len() as u64;
                op.rows_out = seeded;
                trc.ops.push(op);
                let mut op = OpStats::new("Extend(fwd)", "from imported sources");
                op.rows_in = seeded;
                op.rows_out = halves;
                op.elapsed_ns = elapsed_ns;
                op.depth = 1;
                trc.ops.push(op);
            }
            span.span_dur(
                "Extend(fwd)",
                elapsed_ns,
                &[("seeds", format!("{seeded}/{}", srcs.len())), ("halves", halves.to_string())],
            );
        }
        Seeds::Targets(tgts) => {
            let t0 = enabled.then(Instant::now);
            let mut seeded = 0u64;
            let mut halves = 0u64;
            let accept_states: StateSet = (0..plan.nfa.n_states as u32)
                .filter(|&s| plan.nfa.accepts[s as usize])
                .map(|s| (s, if view.filter.is_range() { Some(universal()) } else { None }))
                .collect();
            for &tgt in tgts {
                if m.cancel_cause.is_some() {
                    break;
                }
                if !view.graph.is_node(tgt) {
                    continue;
                }
                let b1 = step_bwd(plan, &mut m, &accept_states, tgt, true);
                if b1.is_empty() {
                    continue;
                }
                seeded += 1;
                let mut path = vec![tgt];
                let mut bwd = Vec::new();
                bwd_search(&ctx, &mut m, &mut path, &b1, true, &mut bwd);
                halves += bwd.len() as u64;
                for h in bwd {
                    let mut elems = h.elems;
                    elems.reverse();
                    add_result(elems, h.times, &mut results);
                }
            }
            let elapsed_ns = t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
            if let Some(trc) = trace.as_deref_mut() {
                let mut op = OpStats::new("Select", "imported target seeds");
                op.rows_in = tgts.len() as u64;
                op.rows_out = seeded;
                trc.ops.push(op);
                let mut op = OpStats::new("Extend(bwd)", "from imported targets");
                op.rows_in = seeded;
                op.rows_out = halves;
                op.elapsed_ns = elapsed_ns;
                op.depth = 1;
                trc.ops.push(op);
            }
            span.span_dur(
                "Extend(bwd)",
                elapsed_ns,
                &[("seeds", format!("{seeded}/{}", tgts.len())), ("halves", halves.to_string())],
            );
        }
    }

    if let Some(trc) = trace {
        trc.bump("temporal_prunes", m.temporal_prunes);
        trc.bump("match_memo_entries", m.memo.len() as u64);
    }
    span.attr("temporal_prunes", m.temporal_prunes);
    span.attr("match_memo_entries", m.memo.len());

    // A tripped checkpoint anywhere above means the accumulated results
    // are partial — surface the typed error, never a truncated Ok.
    if let Some(cause) = m.cancel_cause {
        return Err(cause.into());
    }

    let mut out: Vec<Pathway> = Vec::new();
    for (elems, times) in results {
        if let Some(t) = finalize(view, times) {
            out.push(Pathway { elems, times: t });
        }
    }
    out.sort_by(|a, b| a.elems.cmp(&b.elems));
    if let Some(limit) = opts.limit {
        out.truncate(limit);
    }
    Ok(out)
}

/// One search unit during parallel evaluation: every frontier root of one
/// `(candidate, NFA seed transition)` extension tree, plus the halves
/// already completed on the coordinator (root accepts collected while
/// carving out the frontier). After the search pool runs, `halves` holds
/// the unit's full half-match list.
struct ParUnit {
    fwd: bool,
    roots: Vec<(Vec<Uid>, StateSet)>,
    halves: Vec<Half>,
}

/// Consume search-tree levels breadth-first on the coordinator until the
/// frontier holds at least `want` independent subtrees (or the tree is
/// exhausted). Accepts found at consumed roots go to `prefix`; the
/// returned frontier items become pool jobs. The step calls made here are
/// exactly the ones the depth-first search would have made for the same
/// prefix paths, so match results and prune counts are unchanged — the
/// work is split, not redone.
fn expand_frontier(
    ctx: &Ctx,
    m: &mut ElemMatcher,
    roots: Vec<(Vec<Uid>, StateSet)>,
    fwd: bool,
    want: usize,
    prefix: &mut Vec<Half>,
) -> Vec<(Vec<Uid>, StateSet)> {
    let mut queue: VecDeque<(Vec<Uid>, StateSet)> = roots.into();
    let mut popped = 0usize;
    while queue.len() < want && popped < want.saturating_mul(4) {
        if m.checkpoint() {
            break; // cancelled: the caller checks the cause before merging
        }
        let Some((path, states)) = queue.pop_front() else { break };
        popped += 1;
        let accept = if fwd { accepting_times(ctx.plan, &states) } else { start_times(ctx.plan, &states) };
        if let Some(times) = accept {
            prefix.push(Half { elems: path.clone(), times });
        }
        if path.len() + 2 > ctx.cap {
            continue;
        }
        let last = *path.last().expect("expansion roots are non-empty");
        let adj = if fwd { ctx.view.graph.out_adj_list(last) } else { ctx.view.graph.in_adj_list(last) };
        for (class, entries) in adj.buckets() {
            if !class_viable(ctx.plan, m.atoms, m.schema, &states, class, fwd) {
                continue;
            }
            for a in entries {
                if path.contains(&a.edge) || path.contains(&a.other) {
                    continue;
                }
                let step = if fwd { step_fwd } else { step_bwd };
                let s1 = step(ctx.plan, m, &states, a.edge, false);
                if s1.is_empty() {
                    continue;
                }
                let s2 = step(ctx.plan, m, &s1, a.other, true);
                if s2.is_empty() {
                    continue;
                }
                let mut p = path.clone();
                p.push(a.edge);
                p.push(a.other);
                queue.push_back((p, s2));
            }
        }
    }
    queue.into_iter().collect()
}

/// Record one pool run's observability: total chunks/steals, a child span
/// per worker, and the per-worker busy-time histogram.
#[allow(clippy::too_many_arguments)]
fn note_pool<W>(
    span: &SpanHandle,
    metrics: Option<&MetricsRegistry>,
    meter: Option<&ResourceMeter>,
    reports: &[par::WorkerReport<W>],
    stats: &par::PoolStats,
    stage: &str,
    chunks: &mut u64,
    steals: &mut u64,
) {
    *chunks += stats.jobs;
    *steals += stats.steals;
    if let Some(mm) = meter {
        // Pool workers sample their own thread-CPU clock at job
        // boundaries; fold the per-worker totals into the query's meter.
        mm.add_cpu_ns(reports.iter().map(|r| r.cpu_ns).sum());
    }
    for (i, r) in reports.iter().enumerate() {
        if r.busy_ns > 0 {
            span.span_dur(
                "worker",
                r.busy_ns,
                &[
                    ("stage", stage.to_string()),
                    ("worker", i.to_string()),
                    ("jobs", r.jobs.to_string()),
                    ("steals", r.steals.to_string()),
                ],
            );
        }
        if let Some(reg) = metrics {
            reg.histogram("nepal_rpe_worker_busy_ns", "Per-worker busy time per parallel evaluation stage (ns)")
                .observe(r.busy_ns);
        }
    }
}

/// The parallel evaluator. Produces bit-identical output to
/// [`evaluate_sequential`]: the anchor seed set is partitioned into
/// independent extension subtrees run on a work-stealing pool (each worker
/// with a private [`ElemMatcher`] memo), and the `Union` merges per-chunk
/// results in seed order through the same commutative [`add_result`]
/// merge, followed by the same final sort. Only called with no `limit`
/// set — the limit's early exit is traversal-order-dependent.
#[allow(clippy::too_many_arguments)]
fn evaluate_parallel(
    view: &GraphView,
    plan: &RpePlan,
    seeds: Seeds,
    opts: &EvalOptions,
    mut trace: Option<&mut ExecTrace>,
    span: &SpanHandle,
    metrics: Option<&MetricsRegistry>,
    threads: usize,
) -> Result<Vec<Pathway>, RpeError> {
    let enabled = trace.is_some() || span.is_active();
    let timed = enabled || metrics.is_some() || opts.meter.is_some();
    let schema = view.graph.schema().clone();
    let cap = opts.max_elements.map(|m| m.min(plan.max_elements)).unwrap_or(plan.max_elements);
    let ctx = Ctx { view, plan, cap };
    let mut m = ElemMatcher::with_cancel(view, &schema, &plan.atoms, opts.cancel.clone());
    let mut results: ResultMap = ResultMap::default();
    let (mut total_chunks, mut total_steals) = (0u64, 0u64);
    // Per-worker memo entries: workers re-derive matches the coordinator
    // or a sibling may also hold (the memo-locality trade-off), so this
    // can exceed the sequential memo size.
    let mut worker_memo = 0u64;

    match seeds {
        Seeds::Anchor => {
            for &occ in &plan.anchor.atoms {
                let atom = &plan.atoms[occ as usize];
                let t_sel = enabled.then(Instant::now);
                let sel_span = span.child("Select");
                sel_span.attr("atom", &atom.display);
                let (candidates, scanned) =
                    anchor_scan_cancel(view, &schema, atom, opts.cancel.as_ref(), opts.meter.as_deref())
                        .map_err(RpeError::from)?;
                sel_span.attr("rows_in", scanned);
                sel_span.attr("rows_out", candidates.len());
                drop(sel_span);
                if let Some(trc) = trace.as_deref_mut() {
                    let mut op = OpStats::new("Select", &atom.display);
                    op.rows_in = scanned;
                    op.rows_out = candidates.len() as u64;
                    op.elapsed_ns = t_sel.map_or(0, |t| t.elapsed().as_nanos() as u64);
                    trc.ops.push(op);
                }
                let seed_trans = plan.nfa.seeds_for(occ);
                let (mut fwd_halves, mut bwd_halves) = (0u64, 0u64);
                let (mut fwd_ns, mut bwd_ns) = (0u64, 0u64);
                let (mut union_in, mut union_ns) = (0u64, 0u64);
                let union_before = results.len() as u64;

                // Pass 1: replay the sequential seeding steps, but collect
                // search units instead of recursing. Units and pairs are
                // enumerated in candidate order, so the later merge replays
                // the sequential union order.
                let mut units: Vec<ParUnit> = Vec::new();
                let mut pairs: Vec<(usize, usize)> = Vec::new(); // (bwd unit, fwd unit)
                for (elem, times0) in &candidates {
                    if m.cancel_cause.is_some() {
                        break; // cancelled: stop seeding, surface below
                    }
                    let edge_ends = if atom.is_node {
                        None
                    } else {
                        match view.graph.edge(*elem) {
                            Ok(e) => Some((e.src, e.dst)),
                            Err(_) => continue,
                        }
                    };
                    // Same dedup as the sequential path: distinct (from, to)
                    // pairs, one forward unit per distinct target state
                    // (`None` marks a state the edge seed cannot step into).
                    let mut fwd_units: Vec<(u32, Option<usize>)> = Vec::new();
                    let mut seen_pairs: Vec<(u32, u32)> = Vec::new();
                    for tr in &seed_trans {
                        if seen_pairs.contains(&(tr.from, tr.to)) {
                            continue;
                        }
                        seen_pairs.push((tr.from, tr.to));
                        let fu = match fwd_units.iter().find(|(s, _)| *s == tr.to) {
                            Some(&(_, u)) => u,
                            None => {
                                let states: StateSet = vec![(tr.to, times0.clone())];
                                let u = if let Some((_, dst)) = edge_ends {
                                    // Edge seed: forward must consume the
                                    // edge's target node first.
                                    let s2 = step_fwd(plan, &mut m, &states, dst, true);
                                    if s2.is_empty() {
                                        None
                                    } else {
                                        units.push(ParUnit {
                                            fwd: true,
                                            roots: vec![(vec![*elem, dst], s2)],
                                            halves: Vec::new(),
                                        });
                                        Some(units.len() - 1)
                                    }
                                } else {
                                    units.push(ParUnit {
                                        fwd: true,
                                        roots: vec![(vec![*elem], states)],
                                        halves: Vec::new(),
                                    });
                                    Some(units.len() - 1)
                                };
                                fwd_units.push((tr.to, u));
                                u
                            }
                        };
                        let Some(fu) = fu else { continue };
                        let bstates: StateSet = vec![(tr.from, times0.clone())];
                        let bu = if let Some((src, _)) = edge_ends {
                            let b1 = step_bwd(plan, &mut m, &bstates, src, true);
                            if b1.is_empty() {
                                continue;
                            }
                            units.push(ParUnit { fwd: false, roots: vec![(vec![src], b1)], halves: Vec::new() });
                            units.len() - 1
                        } else {
                            // Node seed: the seed itself is the (current)
                            // leftmost element; acceptance before extending
                            // is legal, and the first hop left of the seed
                            // happens here — exactly as the sequential path
                            // does it — so every root below is a standard
                            // bwd_search root.
                            let mut halves = Vec::new();
                            if let Some(t) = start_times(plan, &bstates) {
                                halves.push(Half { elems: Vec::new(), times: t });
                            }
                            let mut roots = Vec::new();
                            for adj in view.graph.in_adj(*elem) {
                                if adj.edge == *elem || adj.other == *elem {
                                    continue;
                                }
                                let s1 = step_bwd(plan, &mut m, &bstates, adj.edge, false);
                                if s1.is_empty() {
                                    continue;
                                }
                                let s2 = step_bwd(plan, &mut m, &s1, adj.other, true);
                                if s2.is_empty() {
                                    continue;
                                }
                                roots.push((vec![adj.edge, adj.other], s2));
                            }
                            units.push(ParUnit { fwd: false, roots, halves });
                            units.len() - 1
                        };
                        pairs.push((bu, fu));
                    }
                }

                // Pass 2: with few candidates (unique anchors — the common
                // Table-1 shape) there are too few roots to keep a pool
                // busy; carve deeper frontiers out of each unit's tree.
                let total_roots: usize = units.iter().map(|u| u.roots.len()).sum();
                let target = threads * 3;
                if total_roots < target && !units.is_empty() {
                    let want = (target.div_ceil(units.len())).max(2);
                    for u in units.iter_mut() {
                        if u.roots.len() >= want {
                            continue;
                        }
                        let t0 = enabled.then(Instant::now);
                        let roots = std::mem::take(&mut u.roots);
                        u.roots = expand_frontier(&ctx, &mut m, roots, u.fwd, want, &mut u.halves);
                        if let Some(t) = t0 {
                            let ns = t.elapsed().as_nanos() as u64;
                            if u.fwd {
                                fwd_ns += ns;
                            } else {
                                bwd_ns += ns;
                            }
                        }
                    }
                }

                // Pass 3: run every frontier subtree on the pool, each
                // worker carrying its own memo across the jobs it executes.
                let mut jobs: Vec<(usize, Vec<Uid>, StateSet, bool)> = Vec::new();
                for (ui, u) in units.iter_mut().enumerate() {
                    for (path, states) in std::mem::take(&mut u.roots) {
                        jobs.push((ui, path, states, u.fwd));
                    }
                }
                let (outs, reports, stats) = par::run_jobs_cancel(
                    jobs.len(),
                    threads,
                    timed,
                    opts.cancel.as_ref(),
                    |_| ElemMatcher::with_cancel(view, &schema, &plan.atoms, opts.cancel.clone()),
                    |mw: &mut ElemMatcher, j: usize| {
                        let (_, path, states, fwd) = &jobs[j];
                        let mut out = Vec::new();
                        let mut p = path.clone();
                        let t0 = enabled.then(Instant::now);
                        if *fwd {
                            fwd_search(&ctx, mw, &mut p, states, &mut out);
                        } else {
                            bwd_search(&ctx, mw, &mut p, states, true, &mut out);
                        }
                        (out, t0.map_or(0, |t| t.elapsed().as_nanos() as u64))
                    },
                );
                for r in &reports {
                    m.temporal_prunes += r.state.temporal_prunes;
                    worker_memo += r.state.memo.len() as u64;
                    if m.cancel_cause.is_none() {
                        m.cancel_cause = r.state.cancel_cause;
                    }
                }
                // Abandoned slots mean the pool observed a tripped token
                // between jobs; the flag is sticky, so this poll records it.
                if m.cancel_cause.is_none() && outs.iter().any(|o| o.is_none()) {
                    m.cancel_cause = opts.cancel.as_ref().and_then(|t| t.poll());
                }
                note_pool(
                    span,
                    metrics,
                    opts.meter.as_deref(),
                    &reports,
                    &stats,
                    "search",
                    &mut total_chunks,
                    &mut total_steals,
                );
                for (j, slot) in outs.into_iter().enumerate() {
                    let Some((halves, ns)) = slot else { continue };
                    let (ui, _, _, fwd) = &jobs[j];
                    if *fwd {
                        fwd_ns += ns;
                    } else {
                        bwd_ns += ns;
                    }
                    units[*ui].halves.extend(halves);
                }
                for u in &units {
                    if u.fwd {
                        fwd_halves += u.halves.len() as u64;
                    } else {
                        bwd_halves += u.halves.len() as u64;
                    }
                }

                // Pass 4: Union. Cross-combines are independent per
                // (backward half, forward half) pair; big pairs are split
                // over backward-half ranges. Results merge in job order —
                // and add_result's merge is commutative anyway.
                let mut ujobs: Vec<(usize, usize, usize)> = Vec::new(); // (pair, b_lo, b_hi)
                for (pi, &(bu, fu)) in pairs.iter().enumerate() {
                    let (b, f) = (units[bu].halves.len(), units[fu].halves.len());
                    union_in += (b * f) as u64;
                    if b == 0 || f == 0 {
                        continue;
                    }
                    let splits = if b * f > 2048 { threads.min(b) } else { 1 };
                    for c in 0..splits {
                        let (lo, hi) = (c * b / splits, (c + 1) * b / splits);
                        if lo < hi {
                            ujobs.push((pi, lo, hi));
                        }
                    }
                }
                let (uouts, ureports, ustats) = par::run_jobs_cancel(
                    ujobs.len(),
                    threads,
                    timed,
                    opts.cancel.as_ref(),
                    |_| None::<CancelCause>,
                    |tripped: &mut Option<CancelCause>, j: usize| {
                        let (pi, lo, hi) = ujobs[j];
                        let (bu, fu) = pairs[pi];
                        let bwd = &units[bu].halves[lo..hi];
                        let fwd = &units[fu].halves;
                        let mut out: Vec<(Vec<Uid>, Times)> = Vec::new();
                        let mut prunes = 0u64;
                        let t0 = enabled.then(Instant::now);
                        'rows: for (bi, b) in bwd.iter().enumerate() {
                            if bi as u32 & CANCEL_CHECK_MASK == 0 {
                                if let Some(cause) = opts.cancel.as_ref().and_then(|t| t.poll()) {
                                    *tripped = Some(cause);
                                    break 'rows;
                                }
                            }
                            'combine: for fh in fwd {
                                // Cycle check across the two halves.
                                for u in &b.elems {
                                    if fh.elems.contains(u) {
                                        continue 'combine;
                                    }
                                }
                                let (t, ok) = times_intersect(&b.times, &fh.times);
                                if !ok {
                                    prunes += 1;
                                    continue;
                                }
                                let mut elems = b.elems.clone();
                                elems.reverse();
                                elems.extend_from_slice(&fh.elems);
                                if elems.len() > cap {
                                    continue;
                                }
                                out.push((elems, t));
                            }
                        }
                        (out, prunes, t0.map_or(0, |t| t.elapsed().as_nanos() as u64))
                    },
                );
                for r in &ureports {
                    if m.cancel_cause.is_none() {
                        m.cancel_cause = r.state;
                    }
                }
                if m.cancel_cause.is_none() && uouts.iter().any(|o| o.is_none()) {
                    m.cancel_cause = opts.cancel.as_ref().and_then(|t| t.poll());
                }
                note_pool(
                    span,
                    metrics,
                    opts.meter.as_deref(),
                    &ureports,
                    &ustats,
                    "union",
                    &mut total_chunks,
                    &mut total_steals,
                );
                for slot in uouts {
                    let Some((out, prunes, ns)) = slot else { continue };
                    m.temporal_prunes += prunes;
                    union_ns += ns;
                    for (e, t) in out {
                        add_result(e, t, &mut results);
                    }
                }

                if let Some(trc) = trace.as_deref_mut() {
                    let n_cand = candidates.len() as u64;
                    let mut op = OpStats::new("Extend(fwd)", &atom.display);
                    op.rows_in = n_cand;
                    op.rows_out = fwd_halves;
                    op.elapsed_ns = fwd_ns;
                    op.depth = 1;
                    trc.ops.push(op);
                    let mut op = OpStats::new("Extend(bwd)", &atom.display);
                    op.rows_in = n_cand;
                    op.rows_out = bwd_halves;
                    op.elapsed_ns = bwd_ns;
                    op.depth = 1;
                    trc.ops.push(op);
                    let mut op = OpStats::new("Union", &atom.display);
                    op.rows_in = union_in;
                    op.rows_out = results.len() as u64 - union_before;
                    op.elapsed_ns = union_ns;
                    op.depth = 1;
                    trc.ops.push(op);
                }
                span.span_dur(
                    "Extend(fwd)",
                    fwd_ns,
                    &[("atom", atom.display.clone()), ("halves", fwd_halves.to_string())],
                );
                span.span_dur(
                    "Extend(bwd)",
                    bwd_ns,
                    &[("atom", atom.display.clone()), ("halves", bwd_halves.to_string())],
                );
                span.span_dur("Union", union_ns, &[("atom", atom.display.clone()), ("pairs_in", union_in.to_string())]);
            }
        }
        Seeds::Sources(srcs) => {
            let t0 = enabled.then(Instant::now);
            let n_chunks = (threads * 4).min(srcs.len());
            let bounds: Vec<(usize, usize)> =
                (0..n_chunks).map(|c| (c * srcs.len() / n_chunks, (c + 1) * srcs.len() / n_chunks)).collect();
            let (outs, reports, stats) = par::run_jobs_cancel(
                n_chunks,
                threads,
                timed,
                opts.cancel.as_ref(),
                |_| ElemMatcher::with_cancel(view, &schema, &plan.atoms, opts.cancel.clone()),
                |mw: &mut ElemMatcher, ci: usize| {
                    let (lo, hi) = bounds[ci];
                    let mut res: Vec<(Vec<Uid>, Times)> = Vec::new();
                    let (mut seeded, mut halves) = (0u64, 0u64);
                    for &src in &srcs[lo..hi] {
                        if mw.cancel_cause.is_some() {
                            break;
                        }
                        if !view.graph.is_node(src) {
                            continue;
                        }
                        let init: StateSet =
                            vec![(plan.nfa.start, if view.filter.is_range() { Some(universal()) } else { None })];
                        let s1 = step_fwd(plan, mw, &init, src, true);
                        if s1.is_empty() {
                            continue;
                        }
                        seeded += 1;
                        let mut path = vec![src];
                        let mut fwd = Vec::new();
                        fwd_search(&ctx, mw, &mut path, &s1, &mut fwd);
                        halves += fwd.len() as u64;
                        for h in fwd {
                            res.push((h.elems, h.times));
                        }
                    }
                    (res, seeded, halves)
                },
            );
            for r in &reports {
                m.temporal_prunes += r.state.temporal_prunes;
                worker_memo += r.state.memo.len() as u64;
                if m.cancel_cause.is_none() {
                    m.cancel_cause = r.state.cancel_cause;
                }
            }
            if m.cancel_cause.is_none() && outs.iter().any(|o| o.is_none()) {
                m.cancel_cause = opts.cancel.as_ref().and_then(|t| t.poll());
            }
            note_pool(
                span,
                metrics,
                opts.meter.as_deref(),
                &reports,
                &stats,
                "search",
                &mut total_chunks,
                &mut total_steals,
            );
            let (mut seeded, mut halves) = (0u64, 0u64);
            for slot in outs {
                let Some((res, s, h)) = slot else { continue };
                seeded += s;
                halves += h;
                for (e, t) in res {
                    add_result(e, t, &mut results);
                }
            }
            let elapsed_ns = t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
            if let Some(trc) = trace.as_deref_mut() {
                let mut op = OpStats::new("Select", "imported source seeds");
                op.rows_in = srcs.len() as u64;
                op.rows_out = seeded;
                trc.ops.push(op);
                let mut op = OpStats::new("Extend(fwd)", "from imported sources");
                op.rows_in = seeded;
                op.rows_out = halves;
                op.elapsed_ns = elapsed_ns;
                op.depth = 1;
                trc.ops.push(op);
            }
            span.span_dur(
                "Extend(fwd)",
                elapsed_ns,
                &[("seeds", format!("{seeded}/{}", srcs.len())), ("halves", halves.to_string())],
            );
        }
        Seeds::Targets(tgts) => {
            let t0 = enabled.then(Instant::now);
            let accept_states: StateSet = (0..plan.nfa.n_states as u32)
                .filter(|&s| plan.nfa.accepts[s as usize])
                .map(|s| (s, if view.filter.is_range() { Some(universal()) } else { None }))
                .collect();
            let n_chunks = (threads * 4).min(tgts.len());
            let bounds: Vec<(usize, usize)> =
                (0..n_chunks).map(|c| (c * tgts.len() / n_chunks, (c + 1) * tgts.len() / n_chunks)).collect();
            let (outs, reports, stats) = par::run_jobs_cancel(
                n_chunks,
                threads,
                timed,
                opts.cancel.as_ref(),
                |_| ElemMatcher::with_cancel(view, &schema, &plan.atoms, opts.cancel.clone()),
                |mw: &mut ElemMatcher, ci: usize| {
                    let (lo, hi) = bounds[ci];
                    let mut res: Vec<(Vec<Uid>, Times)> = Vec::new();
                    let (mut seeded, mut halves) = (0u64, 0u64);
                    for &tgt in &tgts[lo..hi] {
                        if mw.cancel_cause.is_some() {
                            break;
                        }
                        if !view.graph.is_node(tgt) {
                            continue;
                        }
                        let b1 = step_bwd(plan, mw, &accept_states, tgt, true);
                        if b1.is_empty() {
                            continue;
                        }
                        seeded += 1;
                        let mut path = vec![tgt];
                        let mut bwd = Vec::new();
                        bwd_search(&ctx, mw, &mut path, &b1, true, &mut bwd);
                        halves += bwd.len() as u64;
                        for h in bwd {
                            let mut elems = h.elems;
                            elems.reverse();
                            res.push((elems, h.times));
                        }
                    }
                    (res, seeded, halves)
                },
            );
            for r in &reports {
                m.temporal_prunes += r.state.temporal_prunes;
                worker_memo += r.state.memo.len() as u64;
                if m.cancel_cause.is_none() {
                    m.cancel_cause = r.state.cancel_cause;
                }
            }
            if m.cancel_cause.is_none() && outs.iter().any(|o| o.is_none()) {
                m.cancel_cause = opts.cancel.as_ref().and_then(|t| t.poll());
            }
            note_pool(
                span,
                metrics,
                opts.meter.as_deref(),
                &reports,
                &stats,
                "search",
                &mut total_chunks,
                &mut total_steals,
            );
            let (mut seeded, mut halves) = (0u64, 0u64);
            for slot in outs {
                let Some((res, s, h)) = slot else { continue };
                seeded += s;
                halves += h;
                for (e, t) in res {
                    add_result(e, t, &mut results);
                }
            }
            let elapsed_ns = t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
            if let Some(trc) = trace.as_deref_mut() {
                let mut op = OpStats::new("Select", "imported target seeds");
                op.rows_in = tgts.len() as u64;
                op.rows_out = seeded;
                trc.ops.push(op);
                let mut op = OpStats::new("Extend(bwd)", "from imported targets");
                op.rows_in = seeded;
                op.rows_out = halves;
                op.elapsed_ns = elapsed_ns;
                op.depth = 1;
                trc.ops.push(op);
            }
            span.span_dur(
                "Extend(bwd)",
                elapsed_ns,
                &[("seeds", format!("{seeded}/{}", tgts.len())), ("halves", halves.to_string())],
            );
        }
    }

    if let Some(trc) = trace {
        trc.bump("temporal_prunes", m.temporal_prunes);
        trc.bump("match_memo_entries", m.memo.len() as u64 + worker_memo);
        trc.bump("rpe_parallel_chunks", total_chunks);
        trc.bump("rpe_steal_count", total_steals);
    }
    span.attr("temporal_prunes", m.temporal_prunes);
    span.attr("match_memo_entries", m.memo.len() as u64 + worker_memo);
    span.attr("threads", threads);
    span.attr("rpe_parallel_chunks", total_chunks);
    span.attr("rpe_steal_count", total_steals);
    if let Some(reg) = metrics {
        reg.counter("nepal_rpe_parallel_chunks_total", "Parallel evaluation chunks (pool jobs) executed")
            .add(total_chunks);
        reg.counter("nepal_rpe_steals_total", "Cross-worker steals in the parallel evaluator").add(total_steals);
    }

    // Any trip — coordinator checkpoint, worker checkpoint, or abandoned
    // pool jobs — means partial results: surface the typed error.
    if let Some(cause) = m.cancel_cause {
        return Err(cause.into());
    }

    let mut out: Vec<Pathway> = Vec::new();
    for (elems, times) in results {
        if let Some(t) = finalize(view, times) {
            out.push(Pathway { elems, times: t });
        }
    }
    out.sort_by(|a, b| a.elems.cmp(&b.elems));
    if let Some(limit) = opts.limit {
        out.truncate(limit);
    }
    Ok(out)
}

/// Live-statistics estimator backed by the store (§5.1: "database
/// statistics are used if available; otherwise schema hints are used").
pub struct GraphEstimator<'g> {
    pub graph: &'g TemporalGraph,
}

impl CardinalityEstimator for GraphEstimator<'_> {
    fn estimate(&self, schema: &Schema, atom: &BoundAtom) -> f64 {
        if atom.unique_eq_pred(schema).is_some() {
            return 1.0;
        }
        let count = self.graph.alive_count(atom.class);
        let base = if count == 0 {
            schema
                .descendants(atom.class)
                .into_iter()
                .filter_map(|c| schema.class(c).hint_cardinality)
                .sum::<u64>()
                .max(1) as f64
        } else {
            count as f64
        };
        apply_selectivity(base, atom)
    }
}
