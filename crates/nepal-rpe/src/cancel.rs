//! Cooperative cancellation: a shared deadline/flag token polled at
//! bounded intervals by every evaluation loop.
//!
//! A [`CancelToken`] is a cheap `Arc` handle carrying three independent
//! trip conditions:
//!
//! * an **explicit flag** ([`CancelToken::cancel`]) — set by a REPL
//!   `:cancel`, a server drain, or any other controller;
//! * a **deadline** (fixed at construction) — the wall-clock instant after
//!   which every poll reports [`CancelCause::Deadline`];
//! * a **poll budget** ([`CancelToken::cancel_after_polls`]) — trips after
//!   a fixed number of polls, giving tests a deterministic way to cancel
//!   "at the N-th checkpoint" without any clock involved.
//!
//! Tokens form chains: a child token created with [`CancelToken::child`]
//! trips when *either* it or its parent trips, so a server can hold one
//! drain token and hand each request a child with its own deadline.
//!
//! Polling is designed for hot loops: the explicit flag is one relaxed
//! atomic load, and the clock is only read when a deadline is actually
//! set. Callers are expected to poll every few hundred work items (the
//! evaluator polls every 64 node expansions), keeping the cancellation
//! latency bounded by checkpoint granularity, not by luck.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a token tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelCause {
    /// The deadline passed.
    Deadline,
    /// Someone called [`CancelToken::cancel`] (or a poll budget ran out).
    Explicit,
}

#[derive(Debug)]
struct Inner {
    /// Explicit cancellation (also set when the poll budget runs out, so
    /// later polls stay tripped without re-counting).
    flag: AtomicBool,
    /// Cause recorded when `flag` was set; meaningful only once it is.
    flag_cause: AtomicBool, // true = deadline
    /// Absolute deadline, fixed at construction.
    deadline: Option<Instant>,
    /// Remaining polls before an automatic trip; `u64::MAX` = disabled.
    budget: AtomicU64,
    /// Chained parent: a tripped parent trips this token too.
    parent: Option<Arc<Inner>>,
}

impl Inner {
    fn poll(&self) -> Option<CancelCause> {
        if self.flag.load(Ordering::Relaxed) {
            return Some(if self.flag_cause.load(Ordering::Relaxed) {
                CancelCause::Deadline
            } else {
                CancelCause::Explicit
            });
        }
        if self.budget.load(Ordering::Relaxed) != u64::MAX {
            // Saturating decrement: the first poll to observe 0 trips.
            let prev = self.budget.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1)).ok();
            if prev == Some(0) || prev.is_none() {
                if !self.flag.swap(true, Ordering::Relaxed) {
                    nepal_obs::flight::emit(nepal_obs::FlightKind::CancelTrip, 0, 0, 0, "poll-budget");
                }
                return Some(CancelCause::Explicit);
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                self.flag_cause.store(true, Ordering::Relaxed);
                if !self.flag.swap(true, Ordering::Relaxed) {
                    nepal_obs::flight::emit(nepal_obs::FlightKind::DeadlineTrip, 0, 0, 0, "token");
                }
                return Some(CancelCause::Deadline);
            }
        }
        match &self.parent {
            Some(p) => p.poll(),
            None => None,
        }
    }
}

/// Shared cancellation handle (see module docs). Clones share state.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    fn build(deadline: Option<Instant>, budget: u64, parent: Option<Arc<Inner>>) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                flag_cause: AtomicBool::new(false),
                deadline,
                budget: AtomicU64::new(budget),
                parent,
            }),
        }
    }

    /// A token that only trips on an explicit [`CancelToken::cancel`].
    pub fn new() -> CancelToken {
        CancelToken::build(None, u64::MAX, None)
    }

    /// A token that trips once `deadline` has elapsed from now.
    pub fn with_deadline(deadline: Duration) -> CancelToken {
        CancelToken::build(Some(Instant::now() + deadline), u64::MAX, None)
    }

    /// A token that trips on the `n`-th poll — deterministic cancellation
    /// for tests ("cancel at checkpoint N"), no clock involved.
    pub fn cancel_after_polls(n: u64) -> CancelToken {
        CancelToken::build(None, n, None)
    }

    /// A child that trips when either it or `self` trips. `deadline`
    /// bounds the child only.
    pub fn child(&self, deadline: Option<Duration>) -> CancelToken {
        CancelToken::build(deadline.map(|d| Instant::now() + d), u64::MAX, Some(self.inner.clone()))
    }

    /// Trip the token explicitly. Idempotent; never overrides an earlier
    /// deadline trip.
    pub fn cancel(&self) {
        if !self.inner.flag.swap(true, Ordering::Relaxed) {
            nepal_obs::flight::emit(nepal_obs::FlightKind::CancelTrip, 0, 0, 0, "explicit");
        }
    }

    /// One cancellation checkpoint: `None` → keep going, `Some(cause)` →
    /// abandon work and surface the typed error.
    #[inline]
    pub fn poll(&self) -> Option<CancelCause> {
        self.inner.poll()
    }

    /// Has the token tripped? (Polls, so a deadline is noticed here too.)
    pub fn is_cancelled(&self) -> bool {
        self.poll().is_some()
    }

    /// Remaining time before the deadline (`None` when no deadline is set;
    /// zero once passed).
    pub fn remaining(&self) -> Option<Duration> {
        self.inner.deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_cancel_trips() {
        let t = CancelToken::new();
        assert_eq!(t.poll(), None);
        t.cancel();
        assert_eq!(t.poll(), Some(CancelCause::Explicit));
        assert!(t.is_cancelled());
    }

    #[test]
    fn deadline_trips_and_is_sticky() {
        let t = CancelToken::with_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(t.poll(), Some(CancelCause::Deadline));
        // Sticky: an explicit cancel after the fact keeps the deadline cause.
        t.cancel();
        assert_eq!(t.poll(), Some(CancelCause::Deadline));
    }

    #[test]
    fn poll_budget_is_deterministic() {
        let t = CancelToken::cancel_after_polls(3);
        assert_eq!(t.poll(), None);
        assert_eq!(t.poll(), None);
        assert_eq!(t.poll(), None);
        assert_eq!(t.poll(), Some(CancelCause::Explicit));
        assert_eq!(t.poll(), Some(CancelCause::Explicit)); // stays tripped
    }

    #[test]
    fn child_observes_parent() {
        let parent = CancelToken::new();
        let child = parent.child(None);
        assert_eq!(child.poll(), None);
        parent.cancel();
        assert_eq!(child.poll(), Some(CancelCause::Explicit));
        // Sibling unaffected by a child trip.
        let child2 = CancelToken::new().child(None);
        child2.cancel();
        assert_eq!(child2.poll(), Some(CancelCause::Explicit));
    }

    #[test]
    fn child_deadline_does_not_leak_upward() {
        let parent = CancelToken::new();
        let child = parent.child(Some(Duration::from_millis(0)));
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(child.poll(), Some(CancelCause::Deadline));
        assert_eq!(parent.poll(), None);
    }

    #[test]
    fn remaining_counts_down() {
        let t = CancelToken::with_deadline(Duration::from_secs(60));
        let r = t.remaining().unwrap();
        assert!(r <= Duration::from_secs(60) && r > Duration::from_secs(50));
        assert_eq!(CancelToken::new().remaining(), None);
    }
}
