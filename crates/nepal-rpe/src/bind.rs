//! Binding and normalization of RPEs against a schema.
//!
//! Binding resolves every atom's class name to a [`ClassId`], checks that
//! predicate fields are visible on the named concept (strong typing of
//! atoms, §3.3), and coerces literals to the declared field types
//! (timestamps and IP addresses arrive as quoted strings).
//!
//! Normalization expands bounded repetitions into explicit alternations of
//! chains — `[r]{1,3}` becomes `r | r->r | r->r->r` — which is exactly the
//! paper's definition of repetition satisfaction, preserves the 4-way
//! concatenation semantics between copies, and turns every RPE into an
//! acyclic expression whose NFA is a DAG (RPEs are length-limited by
//! definition).

use std::cmp::Ordering;

use nepal_schema::{parse_ts, ClassId, ClassKind, FieldType, Schema, Value};

use crate::ast::{Atom, CmpOp, Rpe};
use crate::error::{Result, RpeError};

/// Cap on the number of alternation branches produced by normalization.
const MAX_EXPANSION: usize = 4096;
/// Cap on repetition upper bounds.
pub const MAX_REPETITION: u32 = 32;

/// A bound predicate: resolved field index and coerced literal.
///
/// `sub_path` supports dotted access into composite `data_type` fields
/// (e.g. `VirtualPort(spec.speed_gbps>=10)`): each entry is a positional
/// index into the next level's composite layout. (The paper lists "full
/// query access to structured data" as still under development, §5; this
/// implements the composite-field part of it.)
#[derive(Debug, Clone, PartialEq)]
pub struct BoundPred {
    pub field_idx: usize,
    pub field_name: String,
    pub sub_path: Vec<usize>,
    pub op: CmpOp,
    pub value: Value,
}

impl BoundPred {
    /// Evaluate the predicate against a record.
    pub fn eval(&self, fields: &[Value]) -> bool {
        let mut v = match fields.get(self.field_idx) {
            Some(v) => v,
            None => return false,
        };
        // Walk into composite data-type fields.
        for &idx in &self.sub_path {
            v = match v {
                Value::Composite(inner) => match inner.get(idx) {
                    Some(x) => x,
                    None => return false,
                },
                _ => return false,
            };
        }
        if v.is_null() {
            return false;
        }
        match self.op {
            CmpOp::Contains => match v {
                Value::Str(s) => match &self.value {
                    Value::Str(sub) => s.contains(sub.as_str()),
                    _ => false,
                },
                Value::List(items) | Value::Set(items) => items.contains(&self.value),
                Value::Map(m) => m.contains_key(&self.value),
                _ => false,
            },
            op => match v.query_cmp(&self.value) {
                None => false,
                Some(ord) => match op {
                    CmpOp::Eq => ord == Ordering::Equal,
                    CmpOp::Ne => ord != Ordering::Equal,
                    CmpOp::Lt => ord == Ordering::Less,
                    CmpOp::Le => ord != Ordering::Greater,
                    CmpOp::Gt => ord == Ordering::Greater,
                    CmpOp::Ge => ord != Ordering::Less,
                    CmpOp::Contains => unreachable!(),
                },
            },
        }
    }
}

/// A bound atom: resolved class, kind, and predicates. Each distinct atom
/// occurrence in the source RPE gets one `BoundAtom`, identified by its
/// index (repetition expansion shares occurrences across copies, which is
/// what lets anchor selection treat all copies of an atom as one anchor).
#[derive(Debug, Clone, PartialEq)]
pub struct BoundAtom {
    pub class: ClassId,
    pub class_name: String,
    pub is_node: bool,
    pub preds: Vec<BoundPred>,
    /// Source text of the atom, for plan display.
    pub display: String,
}

impl BoundAtom {
    /// Do the given record fields satisfy every predicate?
    pub fn matches_fields(&self, fields: &[Value]) -> bool {
        self.preds.iter().all(|p| p.eval(fields))
    }

    /// Does the atom carry an equality predicate on a unique field?
    /// (The classic high-selectivity anchor, e.g. `VM(id=55)`.)
    pub fn unique_eq_pred(&self, schema: &Schema) -> Option<(usize, &Value)> {
        self.preds.iter().find_map(|p| {
            if p.op != CmpOp::Eq || !p.sub_path.is_empty() {
                return None;
            }
            let (_, fd) = schema.resolve_field(self.class, &p.field_name)?;
            fd.unique.then_some((p.field_idx, &p.value))
        })
    }
}

/// Repetition-free, empty-free normalized RPE over bound-atom indexes.
#[derive(Debug, Clone, PartialEq)]
pub enum Norm {
    Atom(u32),
    Seq(Vec<Norm>),
    Alt(Vec<Norm>),
}

impl Norm {
    fn branch_count(&self) -> usize {
        match self {
            Norm::Atom(_) => 1,
            Norm::Seq(parts) => parts.iter().map(|p| p.branch_count()).product(),
            Norm::Alt(parts) => parts.iter().map(|p| p.branch_count()).sum(),
        }
    }
}

/// The result of binding + normalization.
#[derive(Debug, Clone)]
pub struct BoundRpe {
    pub atoms: Vec<BoundAtom>,
    pub norm: Norm,
}

/// Intermediate form during expansion: may contain Empty.
#[derive(Debug, Clone)]
enum Work {
    Atom(u32),
    Seq(Vec<Work>),
    Alt(Vec<Work>),
    Empty,
}

fn coerce_literal(ty: &FieldType, v: Value) -> Option<Value> {
    match (ty, &v) {
        (FieldType::Ts, Value::Str(s)) => parse_ts(s).map(Value::Ts),
        (FieldType::Ip, Value::Str(s)) => s.parse().ok().map(Value::Ip),
        (FieldType::Float, Value::Int(i)) => Some(Value::Float(*i as f64)),
        _ => Some(v),
    }
}

fn literal_compatible(ty: &FieldType, v: &Value, op: CmpOp) -> bool {
    if op == CmpOp::Contains {
        // `contains` compares against element/key types; accept any scalar.
        return true;
    }
    matches!(
        (ty, v),
        (FieldType::Bool, Value::Bool(_))
            | (FieldType::Int, Value::Int(_))
            | (FieldType::Float, Value::Float(_))
            | (FieldType::Float, Value::Int(_))
            | (FieldType::Int, Value::Float(_))
            | (FieldType::Str, Value::Str(_))
            | (FieldType::Ts, Value::Ts(_))
            | (FieldType::Ip, Value::Ip(_))
    )
}

fn bind_atom(schema: &Schema, atom: &Atom) -> Result<BoundAtom> {
    let class = schema.class_by_name(&atom.class).ok_or_else(|| RpeError::UnknownClass(atom.class.clone()))?;
    let is_node = schema.kind(class) == ClassKind::Node;
    let mut preds = Vec::with_capacity(atom.preds.len());
    for p in &atom.preds {
        let mut segments = p.field.split('.');
        let base = segments.next().expect("split yields at least one segment");
        let (idx, fd) = schema
            .resolve_field(class, base)
            .ok_or_else(|| RpeError::UnknownField { class: atom.class.clone(), field: p.field.clone() })?;
        // Dotted segments walk through composite data types.
        let mut sub_path = Vec::new();
        let mut ty = fd.ty.clone();
        for seg in segments {
            let dt = match &ty {
                FieldType::Data(id) => *id,
                other => {
                    return Err(RpeError::PredicateType {
                        class: atom.class.clone(),
                        field: p.field.clone(),
                        msg: format!("`{seg}` applied to non-composite type {other}"),
                    })
                }
            };
            let layout = schema.data_types().all_fields(dt);
            let pos = layout
                .iter()
                .position(|f| f.name == seg)
                .ok_or_else(|| RpeError::UnknownField { class: atom.class.clone(), field: p.field.clone() })?;
            ty = layout[pos].ty.clone();
            sub_path.push(pos);
        }
        let value = coerce_literal(&ty, p.value.clone()).ok_or_else(|| RpeError::PredicateType {
            class: atom.class.clone(),
            field: p.field.clone(),
            msg: format!("cannot coerce {} to {}", p.value, ty),
        })?;
        if !literal_compatible(&ty, &value, p.op) {
            return Err(RpeError::PredicateType {
                class: atom.class.clone(),
                field: p.field.clone(),
                msg: format!("{} is not comparable to {}", value.kind_name(), ty),
            });
        }
        preds.push(BoundPred { field_idx: idx, field_name: p.field.clone(), sub_path, op: p.op, value });
    }
    Ok(BoundAtom { class, class_name: atom.class.clone(), is_node, preds, display: atom.to_string() })
}

fn lower(schema: &Schema, rpe: &Rpe, atoms: &mut Vec<BoundAtom>) -> Result<Work> {
    Ok(match rpe {
        Rpe::Atom(a) => {
            let bound = bind_atom(schema, a)?;
            atoms.push(bound);
            Work::Atom(atoms.len() as u32 - 1)
        }
        Rpe::Seq(parts) => Work::Seq(parts.iter().map(|p| lower(schema, p, atoms)).collect::<Result<Vec<_>>>()?),
        Rpe::Alt(parts) => Work::Alt(parts.iter().map(|p| lower(schema, p, atoms)).collect::<Result<Vec<_>>>()?),
        Rpe::Rep(inner, min, max) => {
            if *min > *max || *max == 0 || *max > MAX_REPETITION {
                return Err(RpeError::BadRepetition { min: *min, max: *max });
            }
            let body = lower(schema, inner, atoms)?;
            // [r]{i,j} = chain_i | chain_{i+1} | … | chain_j, chain_0 = ε.
            let mut alts = Vec::new();
            for k in *min..=*max {
                if k == 0 {
                    alts.push(Work::Empty);
                } else {
                    alts.push(Work::Seq(vec![body.clone(); k as usize]));
                }
            }
            if alts.len() == 1 {
                alts.pop().unwrap()
            } else {
                Work::Alt(alts)
            }
        }
    })
}

/// Remove `Empty` by distribution. Returns the non-empty residue (if the
/// expression can match something non-empty) and whether it can match the
/// empty pathway.
fn elim_empty(w: Work) -> (Option<Norm>, bool) {
    match w {
        Work::Empty => (None, true),
        Work::Atom(a) => (Some(Norm::Atom(a)), false),
        Work::Alt(parts) => {
            let mut non_empty = Vec::new();
            let mut nullable = false;
            for p in parts {
                let (res, n) = elim_empty(p);
                nullable |= n;
                if let Some(r) = res {
                    non_empty.push(r);
                }
            }
            match non_empty.len() {
                0 => (None, nullable),
                1 => (Some(non_empty.pop().unwrap()), nullable),
                _ => (Some(Norm::Alt(non_empty)), nullable),
            }
        }
        Work::Seq(parts) => {
            // Each member is Required(r), Optional(r), or vanishes.
            // Distribute optionals: Seq(A, Opt(B), C) = A->B->C | A->C.
            // This is necessary (not just convenient): an elided member must
            // not leave its concatenation skip-transitions behind.
            let mut members: Vec<(Option<Norm>, bool)> = Vec::new();
            for p in parts {
                members.push(elim_empty(p));
            }
            let mut variants: Vec<Vec<Norm>> = vec![Vec::new()];
            let mut seq_nullable = true;
            for (res, nullable) in members {
                seq_nullable &= nullable;
                match (res, nullable) {
                    (None, true) => {} // vanishes entirely
                    (None, false) => unreachable!("member matches nothing"),
                    (Some(r), false) => {
                        for v in &mut variants {
                            v.push(r.clone());
                        }
                    }
                    (Some(r), true) => {
                        let mut with: Vec<Vec<Norm>> = variants.clone();
                        for v in &mut with {
                            v.push(r.clone());
                        }
                        variants.extend(with);
                    }
                }
            }
            let mut alts: Vec<Norm> = Vec::new();
            let mut nullable = false;
            for v in variants {
                match v.len() {
                    0 => nullable = true,
                    1 => alts.push(v.into_iter().next().unwrap()),
                    _ => alts.push(Norm::Seq(v)),
                }
            }
            nullable |= seq_nullable && alts.is_empty();
            match alts.len() {
                0 => (None, nullable),
                1 => (Some(alts.pop().unwrap()), nullable),
                _ => (Some(Norm::Alt(alts)), nullable),
            }
        }
    }
}

/// Bind an RPE against a schema and normalize it.
///
/// Fails with [`RpeError::Nullable`] if the expression can match the empty
/// pathway — such RPEs cannot be anchored (§3.3: "the empty path satisfies
/// the RPE … our implementation rejects" them).
pub fn bind(schema: &Schema, rpe: &Rpe) -> Result<BoundRpe> {
    let mut atoms = Vec::new();
    let work = lower(schema, rpe, &mut atoms)?;
    let (norm, nullable) = elim_empty(work);
    if nullable {
        return Err(RpeError::Nullable);
    }
    let norm = norm.ok_or(RpeError::Nullable)?;
    let branches = norm.branch_count();
    if branches > MAX_EXPANSION {
        return Err(RpeError::TooLarge(branches));
    }
    Ok(BoundRpe { atoms, norm })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rpe;
    use nepal_schema::dsl::parse_schema;

    fn schema() -> Schema {
        parse_schema(
            r#"
            node VM { vm_id: int unique, status: str, boot_ts: ts optional, addr: ip optional }
            node Host { host_id: int unique }
            edge HostedOn { }
            edge Vertical { }
            "#,
        )
        .unwrap()
    }

    fn bind_src(src: &str) -> Result<BoundRpe> {
        bind(&schema(), &parse_rpe(src).unwrap())
    }

    #[test]
    fn binds_and_counts_occurrences() {
        let b = bind_src("VM(status='Green')->[HostedOn()]{1,3}->Host(host_id=7)").unwrap();
        // Repetition copies share ONE atom occurrence.
        assert_eq!(b.atoms.len(), 3);
        assert!(b.atoms[0].is_node);
        assert!(!b.atoms[1].is_node);
    }

    #[test]
    fn rep_expansion_is_alternation_of_chains() {
        let b = bind_src("[HostedOn()]{1,2}").unwrap();
        match &b.norm {
            Norm::Alt(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[0], Norm::Atom(0)));
                assert!(matches!(&parts[1], Norm::Seq(s) if s.len() == 2));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn zero_min_inside_seq_distributes() {
        let b = bind_src("VM()->[HostedOn()]{0,1}->Host()").unwrap();
        // Variants: VM->HostedOn->Host and VM->Host.
        match &b.norm {
            Norm::Alt(parts) => assert_eq!(parts.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fully_nullable_rejected() {
        // The paper's example: [VNF()]{0,4}->[Vertical()]{0,4} has no anchor.
        assert!(matches!(bind_src("[VM()]{0,4}->[Vertical()]{0,4}"), Err(RpeError::Nullable)));
        assert!(matches!(bind_src("[VM()]{0,3}"), Err(RpeError::Nullable)));
    }

    #[test]
    fn unknown_class_and_field_rejected() {
        assert!(matches!(bind_src("Nope()"), Err(RpeError::UnknownClass(_))));
        assert!(matches!(bind_src("VM(nonfield=1)"), Err(RpeError::UnknownField { .. })));
    }

    #[test]
    fn timestamp_and_ip_literals_coerced() {
        let b = bind_src("VM(boot_ts>='2017-02-15 10:00', addr='10.0.0.1')").unwrap();
        assert!(matches!(b.atoms[0].preds[0].value, Value::Ts(_)));
        assert!(matches!(b.atoms[0].preds[1].value, Value::Ip(_)));
        // Type mismatch detected.
        assert!(matches!(bind_src("VM(status=5)"), Err(RpeError::PredicateType { .. })));
    }

    #[test]
    fn unique_eq_detection() {
        let s = schema();
        let b = bind(&s, &parse_rpe("VM(vm_id=55)").unwrap()).unwrap();
        assert!(b.atoms[0].unique_eq_pred(&s).is_some());
        let b = bind(&s, &parse_rpe("VM(vm_id>55)").unwrap()).unwrap();
        assert!(b.atoms[0].unique_eq_pred(&s).is_none());
        let b = bind(&s, &parse_rpe("VM(status='x')").unwrap()).unwrap();
        assert!(b.atoms[0].unique_eq_pred(&s).is_none());
    }

    #[test]
    fn predicate_eval_semantics() {
        let p = BoundPred {
            field_idx: 0,
            field_name: "x".into(),
            sub_path: Vec::new(),
            op: CmpOp::Ge,
            value: Value::Int(10),
        };
        assert!(p.eval(&[Value::Int(10)]));
        assert!(!p.eval(&[Value::Int(9)]));
        assert!(!p.eval(&[Value::Null]));
        let c = BoundPred {
            field_idx: 0,
            field_name: "x".into(),
            sub_path: Vec::new(),
            op: CmpOp::Contains,
            value: Value::Int(2),
        };
        assert!(c.eval(&[Value::List(vec![Value::Int(1), Value::Int(2)])]));
        assert!(!c.eval(&[Value::List(vec![Value::Int(3)])]));
    }
}
