//! Anchor enumeration and cost-based selection (§5.1).
//!
//! Anchored evaluation starts at the atoms with the fewest matching
//! elements and extends outward. An anchor is a set of atoms that *splits*
//! the RPE: every accepting pathway must contain an element matched by one
//! of the anchor atoms. The paper's rules:
//!
//! - **Atom** — the atom itself is a candidate anchor.
//! - **Sequence** — every member's candidates are candidates (every match
//!   passes through every member).
//! - **Alternation** — the cross-product of member anchors splits the RPE;
//!   to avoid exponential blowup, cost each member's candidates eagerly and
//!   take the union of the per-member best ("the current implementation
//!   avoids this problem by costing the anchor sets when an Alternation
//!   block is encountered, and returning the union of the best anchor from
//!   each alternate Ri").
//! - **Repetition** — handled upstream: normalization expands repetitions
//!   while *sharing atom occurrences* across copies, so the anchors of a
//!   repetition are the anchors of its body.
//!
//! Costing uses database statistics when available, otherwise schema hints
//! (`hint` declarations), exactly as §5.1 describes.

use nepal_schema::Schema;

use crate::bind::{BoundAtom, Norm};
use crate::error::{Result, RpeError};
use crate::par;

/// Estimates the number of elements matching an atom. Implemented by the
/// native graph store (live statistics) and by a schema-hint fallback.
/// `Sync` so per-atom cost probes can fan out across the worker pool.
pub trait CardinalityEstimator: Sync {
    fn estimate(&self, schema: &Schema, atom: &BoundAtom) -> f64;
}

/// Fallback estimator using schema `hint` cardinalities only.
pub struct HintEstimator;

impl CardinalityEstimator for HintEstimator {
    fn estimate(&self, schema: &Schema, atom: &BoundAtom) -> f64 {
        if atom.unique_eq_pred(schema).is_some() {
            return 1.0;
        }
        let base: u64 =
            schema.descendants(atom.class).into_iter().filter_map(|c| schema.class(c).hint_cardinality).sum();
        let base = if base == 0 { 10_000.0 } else { base as f64 };
        apply_selectivity(base, atom)
    }
}

/// Heuristic predicate selectivity: 10% per equality predicate, 30% per
/// range predicate, floored at one row.
pub fn apply_selectivity(base: f64, atom: &BoundAtom) -> f64 {
    let mut est = base;
    for p in &atom.preds {
        est *= match p.op {
            crate::ast::CmpOp::Eq => 0.1,
            crate::ast::CmpOp::Ne => 0.9,
            _ => 0.3,
        };
    }
    est.max(1.0)
}

/// A candidate anchor: the set of atom occurrences (sorted, deduplicated)
/// plus its estimated total cardinality.
#[derive(Debug, Clone, PartialEq)]
pub struct AnchorSet {
    pub atoms: Vec<u32>,
    pub cost: f64,
}

impl AnchorSet {
    fn of(mut atoms: Vec<u32>, costs: &[f64]) -> AnchorSet {
        atoms.sort_unstable();
        atoms.dedup();
        let cost = atoms.iter().map(|&a| costs[a as usize]).sum();
        AnchorSet { atoms, cost }
    }
}

/// Probe the per-atom cardinalities once up front. An atom occurrence can
/// appear in many candidate sets (and did get re-estimated per set before
/// this table existed); with `threads > 1` the probes fan out across the
/// worker pool — useful when the estimator goes to a remote backend.
fn atom_costs(atoms: &[BoundAtom], schema: &Schema, est: &dyn CardinalityEstimator, threads: usize) -> Vec<f64> {
    if threads > 1 && atoms.len() >= 4 {
        let (costs, _, _) = par::run_jobs(atoms.len(), threads, false, |_| (), |_, i| est.estimate(schema, &atoms[i]));
        costs
    } else {
        atoms.iter().map(|a| est.estimate(schema, a)).collect()
    }
}

fn candidates(norm: &Norm, costs: &[f64]) -> Vec<AnchorSet> {
    match norm {
        Norm::Atom(a) => vec![AnchorSet::of(vec![*a], costs)],
        Norm::Seq(parts) => {
            let mut out = Vec::new();
            for p in parts {
                out.extend(candidates(p, costs));
            }
            out
        }
        Norm::Alt(parts) => {
            // Union of the best candidate of each alternative.
            let mut union: Vec<u32> = Vec::new();
            for p in parts {
                let cands = candidates(p, costs);
                let best = cands.into_iter().min_by(|a, b| a.cost.total_cmp(&b.cost)).expect("non-empty alternative");
                union.extend(best.atoms);
            }
            vec![AnchorSet::of(union, costs)]
        }
    }
}

/// Enumerate candidate anchors and pick the cheapest.
pub fn select_anchor(
    norm: &Norm,
    atoms: &[BoundAtom],
    schema: &Schema,
    est: &dyn CardinalityEstimator,
) -> Result<(AnchorSet, Vec<AnchorSet>)> {
    select_anchor_threads(norm, atoms, schema, est, 1)
}

/// [`select_anchor`] with the per-atom cost probes run on up to `threads`
/// pool workers. Selection itself is deterministic either way — the cost
/// table is fully materialized before enumeration starts.
pub fn select_anchor_threads(
    norm: &Norm,
    atoms: &[BoundAtom],
    schema: &Schema,
    est: &dyn CardinalityEstimator,
    threads: usize,
) -> Result<(AnchorSet, Vec<AnchorSet>)> {
    let costs = atom_costs(atoms, schema, est, threads);
    let mut cands = candidates(norm, &costs);
    // Deduplicate identical candidate sets, keeping the cheapest ordering
    // stable for deterministic plans.
    cands.sort_by(|a, b| a.cost.total_cmp(&b.cost).then_with(|| a.atoms.cmp(&b.atoms)));
    cands.dedup_by(|a, b| a.atoms == b.atoms);
    let best = cands.first().cloned().ok_or(RpeError::NoAnchor)?;
    Ok((best, cands))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bind::bind;
    use crate::parser::parse_rpe;
    use nepal_schema::dsl::parse_schema;

    fn schema() -> Schema {
        parse_schema(
            r#"
            node VNF { vnf_id: int unique }
            node VM { vm_id: int unique }
            node Docker { docker_id: int unique }
            node Host { host_id: int unique }
            edge HostedOn { }
            hint VNF 33
            hint VM 2000
            hint Docker 500
            hint Host 200
            hint HostedOn 11000
            "#,
        )
        .unwrap()
    }

    fn anchor_for(src: &str) -> (AnchorSet, Vec<AnchorSet>, Vec<BoundAtom>) {
        let s = schema();
        let b = bind(&s, &parse_rpe(src).unwrap()).unwrap();
        let (best, cands) = select_anchor(&b.norm, &b.atoms, &s, &HintEstimator).unwrap();
        (best, cands, b.atoms)
    }

    #[test]
    fn unique_eq_atom_wins() {
        // Paper: "VM() is (probably) not an anchor, but VM(id=55) is."
        let (best, _, atoms) = anchor_for("VNF()->[HostedOn()]{1,6}->Host(host_id=23245)");
        assert_eq!(best.atoms.len(), 1);
        assert_eq!(atoms[best.atoms[0] as usize].class_name, "Host");
        assert_eq!(best.cost, 1.0);
    }

    #[test]
    fn alternation_anchor_is_pairwise_union() {
        // Paper's example: the anchor of
        //   VNF()->[HostedOn()]{1,3}->(VM(id=55)|Docker(id=66))->HostedOn(){1,2}->Host()
        // is the pair {VM(id=55), Docker(id=66)}.
        let (best, _, atoms) =
            anchor_for("VNF()->[HostedOn()]{1,3}->(VM(vm_id=55)|Docker(docker_id=66))->HostedOn(){1,2}->Host()");
        assert_eq!(best.atoms.len(), 2);
        let names: Vec<&str> = best.atoms.iter().map(|&a| atoms[a as usize].class_name.as_str()).collect();
        assert!(names.contains(&"VM"));
        assert!(names.contains(&"Docker"));
        assert_eq!(best.cost, 2.0);
    }

    #[test]
    fn smallest_extent_chosen_without_predicates() {
        // No selective predicate anywhere: the 33-VNF extent is cheapest.
        let (best, cands, atoms) = anchor_for("VNF()->[HostedOn()]{1,6}->Host()");
        assert_eq!(atoms[best.atoms[0] as usize].class_name, "VNF");
        // Candidates include Host() and HostedOn() too.
        assert!(cands.len() >= 3);
    }

    #[test]
    fn repetition_shares_anchor_occurrence() {
        let (best, _, atoms) = anchor_for("[HostedOn()]{1,4}");
        assert_eq!(best.atoms.len(), 1);
        assert_eq!(atoms[best.atoms[0] as usize].class_name, "HostedOn");
    }

    #[test]
    fn selectivity_discounts_predicates() {
        let s = schema();
        let b = bind(&s, &parse_rpe("VM(vm_id>100)").unwrap()).unwrap();
        let est = HintEstimator.estimate(&s, &b.atoms[0]);
        assert!((est - 600.0).abs() < 1.0); // 2000 * 0.3
    }
}
