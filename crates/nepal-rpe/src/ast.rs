//! Abstract syntax of Regular Pathway Expressions (§3.3).
//!
//! An RPE is built from *atoms* — class names with optional field
//! predicates, e.g. `VM(status='Green')` — combined by concatenation
//! (`->`), disjunction (`|`), and bounded repetition (`[r]{i,j}`). Atoms
//! may name node classes or edge classes; Nepal treats the two
//! symmetrically.

use std::fmt;

use nepal_schema::Value;

/// Comparison operator in an atom predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// Container/string membership: `field contains x`.
    Contains,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Contains => " contains ",
        };
        write!(f, "{s}")
    }
}

/// One field predicate inside an atom.
#[derive(Debug, Clone, PartialEq)]
pub struct Pred {
    pub field: String,
    pub op: CmpOp,
    pub value: Value,
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}{}", self.field, self.op, self.value)
    }
}

/// An atom: a strongly-typed concept name plus predicates. The class name
/// may be qualified (`VM:VMWare`); it refers to the named class *and all of
/// its subclasses*, but predicates may reference only fields visible at the
/// named class.
#[derive(Debug, Clone, PartialEq)]
pub struct Atom {
    pub class: String,
    pub preds: Vec<Pred>,
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.class)?;
        for (i, p) in self.preds.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ")")
    }
}

/// A regular pathway expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Rpe {
    Atom(Atom),
    /// Concatenation `r1 -> r2 -> …` with the paper's 4-way boundary
    /// semantics (a single unconstrained element may be skipped at each
    /// boundary to restore node/edge alternation).
    Seq(Vec<Rpe>),
    /// Disjunction `(r1 | r2 | …)`.
    Alt(Vec<Rpe>),
    /// Bounded repetition `[r]{min,max}`.
    Rep(Box<Rpe>, u32, u32),
}

impl Rpe {
    /// Number of atoms in the expression.
    pub fn atom_count(&self) -> usize {
        match self {
            Rpe::Atom(_) => 1,
            Rpe::Seq(rs) | Rpe::Alt(rs) => rs.iter().map(|r| r.atom_count()).sum(),
            Rpe::Rep(r, _, _) => r.atom_count(),
        }
    }

    /// Visit every atom in the expression.
    pub fn visit_atoms<'a>(&'a self, f: &mut impl FnMut(&'a Atom)) {
        match self {
            Rpe::Atom(a) => f(a),
            Rpe::Seq(rs) | Rpe::Alt(rs) => rs.iter().for_each(|r| r.visit_atoms(f)),
            Rpe::Rep(r, _, _) => r.visit_atoms(f),
        }
    }
}

impl fmt::Display for Rpe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rpe::Atom(a) => write!(f, "{a}"),
            Rpe::Seq(rs) => {
                for (i, r) in rs.iter().enumerate() {
                    if i > 0 {
                        write!(f, "->")?;
                    }
                    match r {
                        Rpe::Alt(_) => write!(f, "({r})")?,
                        _ => write!(f, "{r}")?,
                    }
                }
                Ok(())
            }
            Rpe::Alt(rs) => {
                for (i, r) in rs.iter().enumerate() {
                    if i > 0 {
                        write!(f, "|")?;
                    }
                    match r {
                        Rpe::Seq(_) | Rpe::Alt(_) => write!(f, "({r})")?,
                        _ => write!(f, "{r}")?,
                    }
                }
                Ok(())
            }
            Rpe::Rep(r, i, j) => write!(f, "[{r}]{{{i},{j}}}"),
        }
    }
}
