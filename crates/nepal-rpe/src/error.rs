//! Errors for RPE parsing, binding, and planning.

use std::fmt;

/// Errors raised by the RPE subsystem.
#[derive(Debug, Clone, PartialEq)]
pub enum RpeError {
    /// Syntax error in the RPE text.
    Parse { pos: usize, msg: String },
    /// Atom references a class not present in the schema.
    UnknownClass(String),
    /// Predicate references a field not visible on the atom's class.
    UnknownField { class: String, field: String },
    /// Predicate literal type does not match the field type.
    PredicateType { class: String, field: String, msg: String },
    /// The RPE can match the empty pathway (only `{0,n}` repetition blocks),
    /// which the paper's planner rejects as unanchorable (§3.3).
    Nullable,
    /// No anchor candidate could be found (should not happen for
    /// non-nullable RPEs; kept for defensive completeness).
    NoAnchor,
    /// Repetition bounds are invalid (`i > j`, or `j` above the cap).
    BadRepetition { min: u32, max: u32 },
    /// The expanded RPE exceeds internal size limits.
    TooLarge(usize),
    /// Evaluation abandoned at a cancellation checkpoint because the
    /// query's deadline passed.
    DeadlineExceeded,
    /// Evaluation abandoned at a cancellation checkpoint after an explicit
    /// cancel (REPL `:cancel`, server drain, …).
    Cancelled,
}

impl From<crate::cancel::CancelCause> for RpeError {
    fn from(c: crate::cancel::CancelCause) -> RpeError {
        match c {
            crate::cancel::CancelCause::Deadline => RpeError::DeadlineExceeded,
            crate::cancel::CancelCause::Explicit => RpeError::Cancelled,
        }
    }
}

impl fmt::Display for RpeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpeError::Parse { pos, msg } => write!(f, "RPE parse error at byte {pos}: {msg}"),
            RpeError::UnknownClass(c) => write!(f, "unknown class `{c}` in RPE atom"),
            RpeError::UnknownField { class, field } => {
                write!(
                    f,
                    "class `{class}` has no field `{field}` (atoms may only reference fields of the named concept)"
                )
            }
            RpeError::PredicateType { class, field, msg } => {
                write!(f, "bad predicate on `{class}.{field}`: {msg}")
            }
            RpeError::Nullable => write!(
                f,
                "RPE matches the empty pathway (repetition blocks with lower bound 0 only) and cannot be anchored"
            ),
            RpeError::NoAnchor => write!(f, "no anchor candidate found for RPE"),
            RpeError::BadRepetition { min, max } => {
                write!(f, "bad repetition bounds {{{min},{max}}}")
            }
            RpeError::TooLarge(n) => write!(f, "expanded RPE too large ({n} nodes)"),
            RpeError::DeadlineExceeded => write!(f, "query deadline exceeded during evaluation"),
            RpeError::Cancelled => write!(f, "query cancelled during evaluation"),
        }
    }
}

impl std::error::Error for RpeError {}

/// Result alias for RPE operations.
pub type Result<T> = std::result::Result<T, RpeError>;
