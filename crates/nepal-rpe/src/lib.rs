//! # nepal-rpe — Regular Pathway Expressions
//!
//! The path machinery at the core of Nepal (§3.3/§5.1 of the paper):
//!
//! - [`ast`] / [`parser`] — RPE syntax: atoms over node *and* edge classes
//!   treated symmetrically, concatenation, disjunction, bounded repetition.
//! - [`mod@bind`] — binding against a [`nepal_schema::Schema`] (strongly-typed
//!   atoms) and normalization (repetition expansion preserving the 4-way
//!   concatenation semantics).
//! - [`nfa`] — compilation to an ε-free NFA over pathway elements; RPEs are
//!   length-limited by construction, so the NFA is a DAG.
//! - [`anchor`] — anchor enumeration and cost-based selection, including
//!   the alternation cross-product rule.
//! - [`plan`] — the complete plan: the paper's `Select`/`Extend`/`Union`
//!   operator DAG.
//! - [`exec`] — the native anchored evaluator over time-filtered graph
//!   views, with anchor import for join queries.
//! - [`path`] — [`path::Pathway`], the first-class result object.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use nepal_graph::{GraphView, TemporalGraph, TimeFilter};
//! use nepal_rpe::{evaluate, parse_rpe, plan_rpe, EvalOptions, GraphEstimator, Seeds};
//! use nepal_schema::dsl::parse_schema;
//! use nepal_schema::Value;
//!
//! let schema = Arc::new(parse_schema(r#"
//!     node VM { vm_id: int unique }
//!     node Host { host_id: int unique }
//!     edge HostedOn { }
//! "#).unwrap());
//! let mut g = TemporalGraph::new(schema.clone());
//! let vm = g.insert_node(schema.class_by_name("VM").unwrap(), vec![Value::Int(55)], 0).unwrap();
//! let host = g.insert_node(schema.class_by_name("Host").unwrap(), vec![Value::Int(7)], 0).unwrap();
//! g.insert_edge(schema.class_by_name("HostedOn").unwrap(), vm, host, vec![], 0).unwrap();
//!
//! // Parse, plan (anchor = the unique VM), and evaluate.
//! let rpe = parse_rpe("VM(vm_id=55)->HostedOn()->Host()").unwrap();
//! let plan = plan_rpe(&schema, &rpe, &GraphEstimator { graph: &g }).unwrap();
//! let view = GraphView::new(&g, TimeFilter::Current);
//! let paths = evaluate(&view, &plan, Seeds::Anchor, &EvalOptions::default());
//! assert_eq!(paths.len(), 1);
//! assert_eq!(paths[0].source(), vm);
//! assert_eq!(paths[0].target(), host);
//! ```

pub mod anchor;
pub mod ast;
pub mod bind;
pub mod cancel;
pub mod error;
pub mod exec;
pub mod nfa;
pub mod par;
pub mod parser;
pub mod path;
pub mod plan;

pub use anchor::{select_anchor, select_anchor_threads, AnchorSet, CardinalityEstimator, HintEstimator};
pub use ast::{Atom, CmpOp, Pred, Rpe};
pub use bind::{bind, BoundAtom, BoundPred, BoundRpe, Norm};
pub use cancel::{CancelCause, CancelToken};
pub use error::{Result, RpeError};
pub use exec::{
    anchor_scan, evaluate, evaluate_metered, evaluate_obs, evaluate_traced, resolved_threads, EvalOptions,
    GraphEstimator, Seeds,
};
pub use nfa::{compile, Label, Nfa, Transition};
pub use parser::parse_rpe;
pub use path::Pathway;
pub use plan::{plan_rpe, plan_rpe_spanned, plan_rpe_threads, RpePlan};
