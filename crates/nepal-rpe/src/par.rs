//! Scoped work-stealing worker pool.
//!
//! The evaluator's unit of work is independent and read-only against the
//! graph, so the pool is deliberately simple: jobs are dealt into
//! per-worker deques up front (contiguous blocks, preserving locality of
//! neighbouring seeds), each worker pops from the front of its own deque
//! and steals from the back of a sibling's when it runs dry. Results are
//! returned over the vendored `crossbeam` channel and re-ordered by job
//! index, so callers observe a deterministic result order regardless of
//! which worker ran which job.
//!
//! Built on `std::thread::scope` — workers may borrow the caller's stack
//! (graph views, plans, job lists) without any `'static` gymnastics.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

use crossbeam::channel;

use crate::cancel::CancelToken;

/// Per-worker accounting returned by [`run_jobs`], including the worker's
/// final state (e.g. its private memo, for cache-size reporting).
pub struct WorkerReport<W> {
    pub state: W,
    /// Wall time spent inside job bodies (0 unless `timed`).
    pub busy_ns: u64,
    /// Thread CPU time spent inside job bodies (0 unless `timed`; 0 on
    /// platforms without a per-thread CPU clock). Sampled at job
    /// boundaries on the worker's own thread, so it sums cleanly into a
    /// query's resource meter no matter which worker ran which job.
    pub cpu_ns: u64,
    /// Jobs this worker executed.
    pub jobs: u64,
    /// Jobs this worker stole from a sibling's deque.
    pub steals: u64,
}

/// Pool-level accounting returned by [`run_jobs`].
pub struct PoolStats {
    /// Total jobs executed (= chunks of parallel work).
    pub jobs: u64,
    /// Total cross-worker steals.
    pub steals: u64,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Run `n_jobs` jobs on up to `threads` scoped workers and return the
/// results indexed by job id, plus per-worker and pool totals.
///
/// `make_worker` builds one private state per worker (its memo); `run`
/// executes a single job against that state. Job bodies must not panic —
/// a panicking job takes the whole pool down (propagated to the caller).
/// With `timed == false` no clock is ever read.
pub fn run_jobs<T, W, FW, F>(
    n_jobs: usize,
    threads: usize,
    timed: bool,
    make_worker: FW,
    run: F,
) -> (Vec<T>, Vec<WorkerReport<W>>, PoolStats)
where
    T: Send,
    W: Send,
    FW: Fn(usize) -> W + Sync,
    F: Fn(&mut W, usize) -> T + Sync,
{
    let (slots, reports, stats) = run_jobs_cancel(n_jobs, threads, timed, None, make_worker, run);
    let results = slots.into_iter().map(|o| o.expect("every job ran exactly once")).collect();
    (results, reports, stats)
}

/// [`run_jobs`] observing a [`CancelToken`] between jobs: a worker polls
/// the token before claiming its next job (own deque or a steal) and
/// stops claiming once it trips, abandoning the remaining dealt blocks
/// cleanly — the job currently running finishes (its body carries its own
/// checkpoints). Unrun jobs come back as `None` slots; `PoolStats::jobs`
/// counts jobs actually executed.
pub fn run_jobs_cancel<T, W, FW, F>(
    n_jobs: usize,
    threads: usize,
    timed: bool,
    cancel: Option<&CancelToken>,
    make_worker: FW,
    run: F,
) -> (Vec<Option<T>>, Vec<WorkerReport<W>>, PoolStats)
where
    T: Send,
    W: Send,
    FW: Fn(usize) -> W + Sync,
    F: Fn(&mut W, usize) -> T + Sync,
{
    if n_jobs == 0 {
        return (Vec::new(), Vec::new(), PoolStats { jobs: 0, steals: 0 });
    }
    let workers = threads.min(n_jobs).max(1);
    // Deal jobs as contiguous blocks: worker i owns [i*n/w, (i+1)*n/w).
    let deques: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|i| Mutex::new((i * n_jobs / workers..(i + 1) * n_jobs / workers).collect())).collect();
    let (tx, rx) = channel::unbounded::<(usize, T)>();
    let steal_total = AtomicU64::new(0);
    let mut reports: Vec<WorkerReport<W>> = Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(workers);
        for wi in 0..workers {
            let tx = tx.clone();
            let (deques, steal_total) = (&deques, &steal_total);
            let (make_worker, run) = (&make_worker, &run);
            handles.push(s.spawn(move || {
                let mut state = make_worker(wi);
                let (mut busy, mut cpu, mut jobs, mut steals) = (0u64, 0u64, 0u64, 0u64);
                loop {
                    // Cancellation boundary: stop claiming work (own block
                    // or steals) once the token trips.
                    if cancel.is_some_and(|t| t.is_cancelled()) {
                        break;
                    }
                    // Bind before matching: the guard temporary would
                    // otherwise live for the whole `match`, holding this
                    // worker's deque lock while the steal arm locks a
                    // sibling's — a circular wait once every worker runs
                    // dry at the same time.
                    let own = lock(&deques[wi]).pop_front();
                    let job = match own {
                        Some(j) => j,
                        None => {
                            // Own deque dry: steal from the back of the
                            // next sibling that still has work.
                            let mut stolen = None;
                            for off in 1..workers {
                                if let Some(j) = lock(&deques[(wi + off) % workers]).pop_back() {
                                    stolen = Some(j);
                                    break;
                                }
                            }
                            match stolen {
                                Some(j) => {
                                    steals += 1;
                                    j
                                }
                                None => break,
                            }
                        }
                    };
                    let t0 = timed.then(Instant::now);
                    let c0 = timed.then(nepal_obs::thread_cpu_ns);
                    let out = run(&mut state, job);
                    if let Some(t) = t0 {
                        busy += t.elapsed().as_nanos() as u64;
                    }
                    if let Some(c) = c0 {
                        cpu += nepal_obs::thread_cpu_ns().saturating_sub(c);
                    }
                    jobs += 1;
                    let _ = tx.send((job, out));
                }
                steal_total.fetch_add(steals, Ordering::Relaxed);
                WorkerReport { state, busy_ns: busy, cpu_ns: cpu, jobs, steals }
            }));
        }
        for h in handles {
            match h.join() {
                Ok(r) => reports.push(r),
                Err(p) => std::panic::resume_unwind(p),
            }
        }
    });
    drop(tx);
    let mut slots: Vec<Option<T>> = (0..n_jobs).map(|_| None).collect();
    let mut executed = 0u64;
    while let Ok((j, t)) = rx.try_recv() {
        slots[j] = Some(t);
        executed += 1;
    }
    // Flight-recorder pool activity: one park event per worker, emitted
    // from the (long-lived) caller thread so ephemeral scoped workers
    // never register rings of their own.
    if nepal_obs::flight::recorder().is_enabled() {
        for r in &reports {
            nepal_obs::flight::emit(nepal_obs::FlightKind::PoolPark, r.jobs, r.steals, r.busy_ns / 1_000, "rpe-pool");
        }
    }
    (slots, reports, PoolStats { jobs: executed, steals: steal_total.load(Ordering::Relaxed) })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_ordered_by_job_index() {
        let (results, reports, stats) = run_jobs(100, 4, false, |_| (), |_, j| j * 2);
        assert_eq!(results, (0..100).map(|j| j * 2).collect::<Vec<_>>());
        assert_eq!(stats.jobs, 100);
        assert_eq!(reports.iter().map(|r| r.jobs).sum::<u64>(), 100);
        assert_eq!(reports.iter().map(|r| r.steals).sum::<u64>(), stats.steals);
    }

    #[test]
    fn worker_state_accumulates_across_jobs() {
        let (results, reports, _) = run_jobs(
            10,
            3,
            true,
            |_| 0u64,
            |seen, j| {
                *seen += 1;
                j
            },
        );
        assert_eq!(results, (0..10).collect::<Vec<_>>());
        assert_eq!(reports.iter().map(|r| r.state).sum::<u64>(), 10);
        assert_eq!(reports.iter().map(|r| r.jobs).sum::<u64>(), 10);
    }

    #[test]
    fn more_threads_than_jobs_and_zero_jobs() {
        let (results, reports, _) = run_jobs(2, 8, false, |_| (), |_, j| j);
        assert_eq!(results, vec![0, 1]);
        assert_eq!(reports.len(), 2);
        let (results, reports, stats) = run_jobs(0, 4, false, |_| (), |_, j| j);
        assert!(results.is_empty() && reports.is_empty());
        assert_eq!(stats.jobs, 0);
    }

    #[test]
    fn pre_cancelled_pool_runs_nothing() {
        let tok = CancelToken::new();
        tok.cancel();
        let (slots, reports, stats) = run_jobs_cancel(64, 4, false, Some(&tok), |_| (), |_, j| j);
        assert_eq!(slots.len(), 64);
        assert!(slots.iter().all(|s| s.is_none()));
        assert_eq!(stats.jobs, 0);
        assert!(reports.iter().all(|r| r.jobs == 0));
    }

    #[test]
    fn mid_run_cancel_abandons_remaining_jobs() {
        // Single worker: the first job trips the token, so exactly one job
        // runs and the rest of the dealt block is abandoned.
        let tok = CancelToken::new();
        let (slots, _, stats) = run_jobs_cancel(
            16,
            1,
            false,
            Some(&tok),
            |_| (),
            |_, j| {
                tok.cancel();
                j
            },
        );
        assert_eq!(stats.jobs, 1);
        assert_eq!(slots.iter().flatten().count(), 1);
    }

    #[test]
    fn uncancelled_cancel_variant_matches_run_jobs() {
        let tok = CancelToken::new();
        let (slots, _, stats) = run_jobs_cancel(20, 3, false, Some(&tok), |_| (), |_, j| j * 3);
        assert_eq!(stats.jobs, 20);
        let vals: Vec<usize> = slots.into_iter().map(|o| o.unwrap()).collect();
        assert_eq!(vals, (0..20).map(|j| j * 3).collect::<Vec<_>>());
    }

    #[test]
    fn cpu_time_is_sampled_only_when_timed() {
        let (_, reports, _) = run_jobs(32, 2, false, |_| (), |_, j| j);
        assert!(reports.iter().all(|r| r.cpu_ns == 0 && r.busy_ns == 0));
        let (_, reports, _) = run_jobs(
            32,
            2,
            true,
            |_| (),
            |_, j: usize| {
                // Burn a little CPU so the per-thread clock visibly advances.
                let mut acc = j as u64;
                for i in 0..20_000u64 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                }
                acc
            },
        );
        // The clock exists on linux; elsewhere the sample is a harmless 0.
        if nepal_obs::thread_cpu_ns() > 0 {
            assert!(reports.iter().any(|r| r.cpu_ns > 0), "expected some worker CPU time");
        }
    }

    #[test]
    fn idle_workers_steal_queued_work() {
        // Worker 0 owns a slow job first; its remaining jobs should be
        // stolen by the other workers, and all results still land in order.
        let (results, _, _) = run_jobs(
            16,
            4,
            false,
            |_| (),
            |_, j| {
                if j == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                j
            },
        );
        assert_eq!(results, (0..16).collect::<Vec<_>>());
    }
}
