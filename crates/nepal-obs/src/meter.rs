//! Per-query resource metering: a [`ResourceMeter`] threaded through
//! evaluation via relaxed atomics, accumulating thread-CPU time sampled at
//! work-stealing job boundaries plus exact counters for rows/bytes scanned,
//! delta-chain materializations, keyframe hits, classes visited, seeks and
//! join build sizes.
//!
//! The accounting model splits two concerns:
//!
//! * **Deterministic (logical) counters** — rows, bytes, materializations,
//!   keyframe hits, classes, seeks — are bumped at logical points that
//!   execute identically in sequential and parallel evaluation (anchor
//!   scans run on the calling thread in both modes), so a query reports the
//!   same numbers at any thread count. This is what per-fingerprint
//!   attribution aggregates.
//! * **CPU nanoseconds** are physical: the calling thread's
//!   `CLOCK_THREAD_CPUTIME_ID` delta across evaluation plus per-job deltas
//!   sampled inside the work-stealing pool. CPU is only sanity-bounded
//!   (&gt; 0, &le; wall &times; threads), never expected to be bit-equal
//!   across schedules.
//!
//! When no meter is attached the cost is a single `Option` check per site —
//! the same near-zero-overhead pattern the query log uses.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Thread CPU time in nanoseconds (`CLOCK_THREAD_CPUTIME_ID`). Returns 0 on
/// platforms without the clock, so meters degrade to wall-less counters
/// instead of breaking the build.
#[cfg(target_os = "linux")]
pub fn thread_cpu_ns() -> u64 {
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }
    extern "C" {
        fn clock_gettime(clockid: i32, tp: *mut Timespec) -> i32;
    }
    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
    let mut ts = Timespec { tv_sec: 0, tv_nsec: 0 };
    // SAFETY: `ts` is a valid, writable timespec; the clock id is a
    // compile-time constant the kernel supports on every Linux target.
    let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    if rc != 0 {
        return 0;
    }
    (ts.tv_sec as u64).saturating_mul(1_000_000_000).saturating_add(ts.tv_nsec as u64)
}

#[cfg(not(target_os = "linux"))]
pub fn thread_cpu_ns() -> u64 {
    0
}

/// Shared, thread-safe resource counters for one query evaluation. Cloned
/// as an `Arc` into evaluation options; workers add into it with relaxed
/// atomics.
#[derive(Debug, Default)]
pub struct ResourceMeter {
    /// Thread-CPU nanoseconds summed across the coordinator and every
    /// pool job that ran on behalf of this query.
    pub cpu_ns: AtomicU64,
    /// Elements examined by extent scans and unique-index seeks.
    pub rows_scanned: AtomicU64,
    /// Field-slot bytes read while scanning (width x slot size per row).
    pub bytes_scanned: AtomicU64,
    /// Delta-chain materializations implied by the scanned versions.
    pub materializations: AtomicU64,
    /// Reads satisfied directly by a full (keyframe) version.
    pub keyframe_hits: AtomicU64,
    /// Class partitions (extents) visited by anchor scans.
    pub classes_visited: AtomicU64,
    /// Unique-index point lookups.
    pub seeks: AtomicU64,
    /// Rows fed into hash-join builds by the engine.
    pub join_build_rows: AtomicU64,
}

impl ResourceMeter {
    pub fn new() -> Arc<ResourceMeter> {
        Arc::new(ResourceMeter::default())
    }

    #[inline]
    pub fn add_cpu_ns(&self, ns: u64) {
        self.cpu_ns.fetch_add(ns, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_rows(&self, n: u64) {
        self.rows_scanned.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_bytes(&self, n: u64) {
        self.bytes_scanned.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_materializations(&self, n: u64) {
        self.materializations.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_keyframe_hits(&self, n: u64) {
        self.keyframe_hits.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_classes(&self, n: u64) {
        self.classes_visited.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_seeks(&self, n: u64) {
        self.seeks.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_join_build_rows(&self, n: u64) {
        self.join_build_rows.fetch_add(n, Ordering::Relaxed);
    }

    /// Plain-value copy of the counters.
    pub fn snapshot(&self) -> MeterSnapshot {
        MeterSnapshot {
            cpu_ns: self.cpu_ns.load(Ordering::Relaxed),
            rows_scanned: self.rows_scanned.load(Ordering::Relaxed),
            bytes_scanned: self.bytes_scanned.load(Ordering::Relaxed),
            materializations: self.materializations.load(Ordering::Relaxed),
            keyframe_hits: self.keyframe_hits.load(Ordering::Relaxed),
            classes_visited: self.classes_visited.load(Ordering::Relaxed),
            seeks: self.seeks.load(Ordering::Relaxed),
            join_build_rows: self.join_build_rows.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of a [`ResourceMeter`], attached to query profiles
/// and fed into per-fingerprint statement statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MeterSnapshot {
    pub cpu_ns: u64,
    pub rows_scanned: u64,
    pub bytes_scanned: u64,
    pub materializations: u64,
    pub keyframe_hits: u64,
    pub classes_visited: u64,
    pub seeks: u64,
    pub join_build_rows: u64,
}

impl MeterSnapshot {
    /// One-line human rendering, used by profile output.
    pub fn render(&self) -> String {
        format!(
            "cpu {}ns  rows {}  bytes {}  mat {}  keyframes {}  classes {}  seeks {}  join-build {}",
            self.cpu_ns,
            self.rows_scanned,
            self.bytes_scanned,
            self.materializations,
            self.keyframe_hits,
            self.classes_visited,
            self.seeks,
            self.join_build_rows
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = ResourceMeter::new();
        m.add_rows(10);
        m.add_rows(5);
        m.add_bytes(256);
        m.add_materializations(3);
        m.add_keyframe_hits(7);
        m.add_classes(2);
        m.add_seeks(1);
        m.add_join_build_rows(42);
        m.add_cpu_ns(1000);
        let s = m.snapshot();
        assert_eq!(s.rows_scanned, 15);
        assert_eq!(s.bytes_scanned, 256);
        assert_eq!(s.materializations, 3);
        assert_eq!(s.keyframe_hits, 7);
        assert_eq!(s.classes_visited, 2);
        assert_eq!(s.seeks, 1);
        assert_eq!(s.join_build_rows, 42);
        assert_eq!(s.cpu_ns, 1000);
        assert!(s.render().contains("rows 15"));
    }

    #[test]
    fn thread_cpu_clock_is_monotonic() {
        let a = thread_cpu_ns();
        // Burn a little CPU so the clock has something to advance over.
        let mut x = 0u64;
        for i in 0..200_000u64 {
            x = x.wrapping_mul(31).wrapping_add(i);
        }
        std::hint::black_box(x);
        let b = thread_cpu_ns();
        assert!(b >= a, "thread CPU clock went backwards: {a} -> {b}");
        #[cfg(target_os = "linux")]
        assert!(b > 0, "CLOCK_THREAD_CPUTIME_ID returned 0 on linux");
    }
}
