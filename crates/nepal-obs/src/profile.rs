//! Query profiles: the trace a profiled execution leaves behind.
//!
//! A [`QueryProfile`] is assembled by the engine and filled in by the
//! backends through [`ExecTrace`] — a plain collector the evaluators push
//! [`OpStats`] into, one per §5 operator instance (`Select`, `Extend`
//! forward/backward, `Union`, plus backend-specific operators such as
//! relational scans or Gremlin `ExtendBlock` rounds). Profiling is
//! strictly opt-in: the untraced paths pass `None` and skip every clock
//! read.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Stats for one operator instance in the §5 operator DAG.
#[derive(Debug, Clone, Default)]
pub struct OpStats {
    /// Operator kind: `Select`, `Extend(fwd)`, `Extend(bwd)`, `Union`, …
    pub op: String,
    /// Human detail — the atom or label the operator works on.
    pub detail: String,
    pub rows_in: u64,
    pub rows_out: u64,
    pub elapsed_ns: u64,
    /// Indentation level when rendering the operator tree.
    pub depth: u8,
}

impl OpStats {
    pub fn new(op: impl Into<String>, detail: impl Into<String>) -> OpStats {
        OpStats { op: op.into(), detail: detail.into(), ..Default::default() }
    }
}

/// Collector the evaluators fill during a traced run.
#[derive(Debug, Clone, Default)]
pub struct ExecTrace {
    pub ops: Vec<OpStats>,
    /// Free-form counters: temporal prunes, rows scanned, wire bytes, …
    pub counters: Vec<(String, u64)>,
}

impl ExecTrace {
    /// Accumulate into a named counter (creates it at 0 first).
    pub fn bump(&mut self, name: &str, by: u64) {
        if let Some((_, v)) = self.counters.iter_mut().find(|(n, _)| n == name) {
            *v += by;
        } else {
            self.counters.push((name.to_string(), by));
        }
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0)
    }

    /// Sum of `rows_out` over operators of the given kind.
    pub fn rows_out_of(&self, op: &str) -> u64 {
        self.ops.iter().filter(|o| o.op == op).map(|o| o.rows_out).sum()
    }
}

/// One anchor set the planner considered for a variable.
#[derive(Debug, Clone)]
pub struct AnchorCandidate {
    /// Rendered atom list, e.g. `VNF()` or `VM(vm_id=55)|Docker(docker_id=66)`.
    pub desc: String,
    pub cost: f64,
    pub chosen: bool,
}

/// One hash-join step in the engine's cross-variable join.
#[derive(Debug, Clone, Default)]
pub struct JoinStep {
    pub var: String,
    /// Rows on the probe side (partial result rows so far).
    pub probe_rows: u64,
    /// Rows on the build side (the joining variable's pathways).
    pub build_rows: u64,
    pub emitted: u64,
    pub elapsed_ns: u64,
}

/// Per-range-variable profile.
#[derive(Debug, Clone, Default)]
pub struct VarProfile {
    pub var: String,
    pub backend: String,
    pub plan_ns: u64,
    pub eval_ns: u64,
    /// Every anchor set considered, with the winner flagged.
    pub anchors: Vec<AnchorCandidate>,
    /// Seed count when the anchor was imported from a join (§3.4).
    pub imported_seeds: Option<u64>,
    pub pathways: u64,
    pub trace: ExecTrace,
    /// Generated SQL / Gremlin, when the backend translates.
    pub generated: Vec<String>,
}

/// The full trace of one profiled query execution.
#[derive(Debug, Clone, Default)]
pub struct QueryProfile {
    pub query: String,
    pub parse_ns: u64,
    pub plan_ns: u64,
    pub exec_ns: u64,
    pub total_ns: u64,
    pub vars: Vec<VarProfile>,
    pub joins: Vec<JoinStep>,
    /// Result rows dropped by the joint temporal coexistence check.
    pub coexistence_pruned: u64,
    /// Result rows dropped by EXISTS / NOT EXISTS conditions.
    pub exists_pruned: u64,
    pub result_rows: u64,
    /// Resource counters when metering was on for this query (cpu-ns,
    /// rows/bytes scanned, materializations, keyframe hits, ...).
    pub meter: Option<crate::meter::MeterSnapshot>,
}

/// Format nanoseconds with a sensible unit.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl QueryProfile {
    /// Render the profile as an indented operator tree, the form printed
    /// by `EXPLAIN ANALYZE` and the REPL's `:profile`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "phases: parse {}  plan {}  execute {}  total {}\n",
            fmt_ns(self.parse_ns),
            fmt_ns(self.plan_ns),
            fmt_ns(self.exec_ns),
            fmt_ns(self.total_ns)
        ));
        for v in &self.vars {
            out.push_str(&format!(
                "variable {} [backend {}]: {} pathway(s), plan {}, eval {}\n",
                v.var,
                v.backend,
                v.pathways,
                fmt_ns(v.plan_ns),
                fmt_ns(v.eval_ns)
            ));
            if let Some(n) = v.imported_seeds {
                out.push_str(&format!("  anchor imported from join: {n} seed node(s)\n"));
            }
            if !v.anchors.is_empty() {
                out.push_str("  anchor candidates considered:\n");
                for a in &v.anchors {
                    let marker = if a.chosen { "*" } else { " " };
                    out.push_str(&format!(
                        "   {marker} {:<40} est. cost {:.1}{}\n",
                        a.desc,
                        a.cost,
                        if a.chosen { "  <- chosen" } else { "" }
                    ));
                }
            }
            if !v.trace.ops.is_empty() {
                out.push_str("  operators:\n");
                for op in &v.trace.ops {
                    let indent = "  ".repeat(op.depth as usize);
                    out.push_str(&format!(
                        "    {indent}{:<14} {:<34} rows_in={:<8} rows_out={:<8} {}\n",
                        op.op,
                        op.detail,
                        op.rows_in,
                        op.rows_out,
                        fmt_ns(op.elapsed_ns)
                    ));
                }
            }
            if !v.trace.counters.is_empty() {
                let rendered: Vec<String> = v.trace.counters.iter().map(|(n, c)| format!("{n}={c}")).collect();
                out.push_str(&format!("  counters: {}\n", rendered.join("  ")));
            }
            if !v.generated.is_empty() {
                out.push_str("  generated:\n");
                for g in &v.generated {
                    out.push_str(&format!("    {g}\n"));
                }
            }
        }
        for j in &self.joins {
            out.push_str(&format!(
                "join {} probe={} build={} emitted={} {}\n",
                j.var,
                j.probe_rows,
                j.build_rows,
                j.emitted,
                fmt_ns(j.elapsed_ns)
            ));
        }
        if self.coexistence_pruned > 0 {
            out.push_str(&format!("coexistence pruned: {} row(s)\n", self.coexistence_pruned));
        }
        if self.exists_pruned > 0 {
            out.push_str(&format!("exists pruned: {} row(s)\n", self.exists_pruned));
        }
        if let Some(m) = &self.meter {
            out.push_str(&format!("resources: {}\n", m.render()));
        }
        out.push_str(&format!("result: {} row(s)\n", self.result_rows));
        out
    }
}

/// One slow query captured by the ring buffer.
#[derive(Debug, Clone)]
pub struct SlowQuery {
    pub query: String,
    pub total_ns: u64,
    pub result_rows: u64,
    /// Trace id when the query also produced a trace — the key that keeps
    /// `/slow` and the trace ring deduplicated (one entry per trace, even
    /// when a query is both sampled and slow).
    pub trace_id: Option<u64>,
}

/// Bounded ring buffer of the most recent queries slower than a threshold.
///
/// All methods take `&self`: the threshold is an atomic and the ring sits
/// behind a mutex, so the log can be shared between the engine and the
/// telemetry endpoint without wrapping it in another lock.
#[derive(Debug)]
pub struct SlowQueryLog {
    threshold_ns: AtomicU64,
    capacity: usize,
    entries: Mutex<VecDeque<SlowQuery>>,
}

impl Default for SlowQueryLog {
    fn default() -> Self {
        // 10ms threshold, last 32 offenders.
        SlowQueryLog::new(10_000_000, 32)
    }
}

impl SlowQueryLog {
    pub fn new(threshold_ns: u64, capacity: usize) -> Self {
        SlowQueryLog {
            threshold_ns: AtomicU64::new(threshold_ns),
            capacity: capacity.max(1),
            entries: Mutex::new(VecDeque::new()),
        }
    }

    pub fn threshold_ns(&self) -> u64 {
        self.threshold_ns.load(Ordering::Relaxed)
    }

    pub fn set_threshold_ns(&self, ns: u64) {
        self.threshold_ns.store(ns, Ordering::Relaxed);
    }

    /// Record a query if it crossed the threshold; evicts the oldest entry
    /// once full. Returns whether it was recorded.
    pub fn record(&self, query: &str, total_ns: u64, result_rows: u64) -> bool {
        self.record_traced(query, total_ns, result_rows, None)
    }

    /// Like [`SlowQueryLog::record`], keyed by trace id: if an entry with
    /// the same trace id is already in the ring (e.g. the sampled and the
    /// slow path both reported the query), it is updated in place rather
    /// than duplicated.
    pub fn record_traced(&self, query: &str, total_ns: u64, result_rows: u64, trace_id: Option<u64>) -> bool {
        if total_ns < self.threshold_ns() {
            return false;
        }
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(id) = trace_id {
            if let Some(existing) = entries.iter_mut().find(|e| e.trace_id == Some(id)) {
                existing.query = query.to_string();
                existing.total_ns = total_ns;
                existing.result_rows = result_rows;
                return true;
            }
        }
        if entries.len() == self.capacity {
            entries.pop_front();
        }
        entries.push_back(SlowQuery { query: query.to_string(), total_ns, result_rows, trace_id });
        true
    }

    /// Snapshot of the ring, oldest first.
    pub fn entries(&self) -> Vec<SlowQuery> {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).iter().cloned().collect()
    }

    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// JSON array of the ring (the `/slow` endpoint body).
    pub fn render_json(&self) -> String {
        let items: Vec<String> = self
            .entries()
            .iter()
            .map(|e| {
                format!(
                    "{{\"query\":\"{}\",\"total_ns\":{},\"result_rows\":{},\"trace_id\":{}}}",
                    crate::trace::esc(&e.query),
                    e.total_ns,
                    e.result_rows,
                    e.trace_id.map(|t| t.to_string()).unwrap_or_else(|| "null".into())
                )
            })
            .collect();
        format!("{{\"threshold_ns\":{},\"entries\":[{}]}}\n", self.threshold_ns(), items.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_trace_accumulates_counters_and_rows() {
        let mut t = ExecTrace::default();
        t.bump("temporal_prunes", 3);
        t.bump("temporal_prunes", 2);
        assert_eq!(t.counter("temporal_prunes"), 5);
        assert_eq!(t.counter("missing"), 0);
        t.ops.push(OpStats { op: "Extend(fwd)".into(), rows_out: 7, ..Default::default() });
        t.ops.push(OpStats { op: "Extend(fwd)".into(), rows_out: 4, ..Default::default() });
        t.ops.push(OpStats { op: "Select".into(), rows_out: 100, ..Default::default() });
        assert_eq!(t.rows_out_of("Extend(fwd)"), 11);
    }

    #[test]
    fn slow_query_log_is_a_bounded_ring() {
        let log = SlowQueryLog::new(1000, 2);
        assert!(!log.record("fast", 999, 0));
        assert!(log.record("q1", 1000, 1));
        assert!(log.record("q2", 2000, 2));
        assert!(log.record("q3", 3000, 3));
        let entries = log.entries();
        let queries: Vec<&str> = entries.iter().map(|e| e.query.as_str()).collect();
        assert_eq!(queries, vec!["q2", "q3"], "oldest entry evicted");
        assert_eq!(log.len(), 2);
        let json = log.render_json();
        assert!(json.contains("\"threshold_ns\":1000"));
        assert!(json.contains("\"query\":\"q3\""));
    }

    #[test]
    fn slow_query_log_dedupes_by_trace_id() {
        let log = SlowQueryLog::new(1000, 4);
        assert!(log.record_traced("q1", 2000, 1, Some(7)));
        // Same trace reported again (sampled AND slow): updated in place.
        assert!(log.record_traced("q1", 2500, 1, Some(7)));
        assert_eq!(log.len(), 1, "one entry per trace id");
        assert_eq!(log.entries()[0].total_ns, 2500);
        assert_eq!(log.entries()[0].trace_id, Some(7));
        // Untraced entries never dedupe against each other.
        assert!(log.record_traced("q2", 3000, 2, None));
        assert!(log.record_traced("q2", 3000, 2, None));
        assert_eq!(log.len(), 3);
        assert!(log.render_json().contains("\"trace_id\":7"));
        assert!(log.render_json().contains("\"trace_id\":null"));
    }

    #[test]
    fn render_mentions_anchors_operators_and_phases() {
        let mut p = QueryProfile { query: "q".into(), ..Default::default() };
        p.parse_ns = 1_500;
        p.total_ns = 2_000_000;
        let mut v = VarProfile { var: "P".into(), backend: "native".into(), ..Default::default() };
        v.anchors.push(AnchorCandidate { desc: "VNF()".into(), cost: 33.0, chosen: true });
        v.anchors.push(AnchorCandidate { desc: "Host()".into(), cost: 1100.0, chosen: false });
        v.trace.ops.push(OpStats {
            op: "Select".into(),
            detail: "VNF()".into(),
            rows_in: 2194,
            rows_out: 33,
            elapsed_ns: 120_000,
            depth: 0,
        });
        p.vars.push(v);
        let text = p.render();
        assert!(text.contains("parse 1.5µs"));
        assert!(text.contains("* VNF()"));
        assert!(text.contains("<- chosen"));
        assert!(text.contains("Select"));
        assert!(text.contains("rows_out=33"));
    }
}
