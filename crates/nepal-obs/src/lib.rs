//! Observability for Nepal: engine metrics, query profiling, span tracing,
//! and the live telemetry endpoint.
//!
//! Dependency-free by design (the build environment is offline). Four
//! halves:
//!
//! - [`metrics`] — atomic [`Counter`]/[`Gauge`]/[`Histogram`] primitives in
//!   a [`MetricsRegistry`], renderable as Prometheus text exposition format
//!   or JSON. Histograms use log₂ buckets, sized for nanosecond latencies,
//!   with estimated p50/p95/p99 quantiles.
//! - [`profile`] — the [`QueryProfile`] trace threaded through the query
//!   pipeline: parse/plan/execute phase timings, the anchor candidates the
//!   planner considered with their costs, per-operator
//!   rows-in/rows-out/duration for every `Select`/`Extend`/`Union`, join
//!   build/probe sizes, and free-form backend counters. Plus the bounded
//!   [`SlowQueryLog`] ring buffer.
//! - [`trace`] — hierarchical [`SpanHandle`] spans under a [`Tracer`] with
//!   head-based sampling, a bounded trace ring, and a Chrome trace-event
//!   JSON exporter (Perfetto / `chrome://tracing`). Disabled tracing takes
//!   no clock reads on the hot path.
//! - [`http`] — a std-only HTTP listener ([`TelemetryServer`]) serving
//!   `/metrics`, `/metrics.json`, `/healthz`, `/slow`, `/qlog`, and
//!   `/traces/<id>`.
//! - [`qlog`] — the durable query log: append-only JSONL records
//!   ([`QlogRecord`]) with bounded rotation ([`QueryLog`]), normalized
//!   query [`fingerprint`]s, and the per-fingerprint planner
//!   estimate-vs-actual q-error aggregator ([`EstimateFeedback`]).
//! - [`flight`] — the black-box flight recorder: per-thread lock-free
//!   rings of compact wide events ([`WideEvent`]) stitched into one
//!   chronological stream, plus anomaly-triggered diagnostics snapshot
//!   bundles (panic hook, firing alert, SIGQUIT, `POST /snapshot`).
//! - [`slo`] — declarative SLO rules ([`SloRule`]) evaluated by the
//!   pull-time burn-rate engine ([`SloEngine`]): latency-quantile,
//!   error-rate, memory-watermark and probe ceilings with
//!   firing/pending/resolved alert state, exported as
//!   `nepal_alerts_firing` and served at `/alerts`.

pub mod flight;
pub mod history;
pub mod http;
pub mod meter;
pub mod metrics;
pub mod profile;
pub mod qlog;
pub mod slo;
pub mod stmt;
pub mod trace;

pub use flight::{FlightHandle, FlightKind, FlightRecorder, FlightStats, WideEvent, DEFAULT_RING_EVENTS};
pub use history::{sparkline, HistoryRing, HistorySnapshot};
pub use http::{
    fmt_bytes, install_panic_hook, ResourceClass, ResourceSummary, SnapshotConfig, Telemetry, TelemetryServer,
};
pub use meter::{thread_cpu_ns, MeterSnapshot, ResourceMeter};
pub use metrics::{quantile_from_counts, Counter, Gauge, Histogram, MetricsRegistry, HISTOGRAM_BUCKETS};
pub use profile::{
    fmt_ns, AnchorCandidate, ExecTrace, JoinStep, OpStats, QueryProfile, SlowQuery, SlowQueryLog, VarProfile,
};
pub use qlog::{
    fingerprint, qerror, EstimateFeedback, FingerprintStats, PlanFeedback, QlogRecord, QueryLog, VarFeedback,
};
pub use slo::{alerts_json, alerts_text, AlertState, AlertStatus, SloEngine, SloRule, SloSignal};
pub use stmt::{StmtEntry, StmtOutcome, StmtSort, StmtStats};
pub use trace::{chrome_trace_json, SpanHandle, SpanRecord, Trace, TraceSummary, Tracer, TRACK_CLIENT, TRACK_SERVER};
