//! Observability for Nepal: engine metrics and query profiling.
//!
//! Dependency-free by design (the build environment is offline). Two
//! halves:
//!
//! - [`metrics`] — atomic [`Counter`]/[`Gauge`]/[`Histogram`] primitives in
//!   a [`MetricsRegistry`], renderable as Prometheus text exposition format
//!   or JSON. Histograms use log₂ buckets, sized for nanosecond latencies.
//! - [`profile`] — the [`QueryProfile`] trace threaded through the query
//!   pipeline: parse/plan/execute phase timings, the anchor candidates the
//!   planner considered with their costs, per-operator
//!   rows-in/rows-out/duration for every `Select`/`Extend`/`Union`, join
//!   build/probe sizes, and free-form backend counters. Plus the bounded
//!   [`SlowQueryLog`] ring buffer.

pub mod metrics;
pub mod profile;

pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry};
pub use profile::{
    fmt_ns, AnchorCandidate, ExecTrace, JoinStep, OpStats, QueryProfile, SlowQuery, SlowQueryLog, VarProfile,
};
