//! Metrics history ring: periodic self-scrape snapshots of the registry,
//! held in a bounded ring with downsampling so ~an hour of history fits a
//! fixed memory budget. Served at `/history.json`, rendered as dashboard
//! sparklines, and appended to flight-recorder bundles so a crash snapshot
//! shows the minutes *before* the anomaly, not just the instant.
//!
//! Retention model: snapshots are admitted at most once per `resolution`.
//! When the ring is full, the **older half** is thinned by dropping every
//! second snapshot — recent history stays at full resolution while older
//! history degrades gracefully to half, quarter, … resolution instead of
//! falling off a cliff.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use crate::metrics::MetricsRegistry;

/// One self-scrape: a timestamp plus every series' numeric value.
#[derive(Debug, Clone, PartialEq)]
pub struct HistorySnapshot {
    pub unix_ms: u64,
    pub values: Vec<(String, f64)>,
}

struct Inner {
    snaps: VecDeque<HistorySnapshot>,
    last_ms: u64,
    /// Snapshots thinned out by downsampling since creation.
    downsampled: u64,
}

/// Bounded, downsampling ring of metrics snapshots.
pub struct HistoryRing {
    resolution_ms: u64,
    capacity: usize,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for HistoryRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistoryRing")
            .field("resolution_ms", &self.resolution_ms)
            .field("capacity", &self.capacity)
            .finish()
    }
}

fn unix_ms_now() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0)
}

impl HistoryRing {
    /// `resolution` is the minimum spacing between admitted snapshots;
    /// `capacity` bounds held snapshots (so memory). The default serving
    /// configuration (5s x 720) covers one hour at full resolution and
    /// degrades older history from there.
    pub fn new(resolution: Duration, capacity: usize) -> HistoryRing {
        HistoryRing {
            resolution_ms: (resolution.as_millis() as u64).max(1),
            capacity: capacity.max(2),
            inner: Mutex::new(Inner { snaps: VecDeque::new(), last_ms: 0, downsampled: 0 }),
        }
    }

    /// One hour of 5-second snapshots — the serving default.
    pub fn serving_default() -> HistoryRing {
        HistoryRing::new(Duration::from_secs(5), 720)
    }

    pub fn resolution_ms(&self) -> u64 {
        self.resolution_ms
    }

    /// Scrape `reg` now if at least one resolution interval has elapsed.
    /// Returns whether a snapshot was admitted. Cheap to call from a tight
    /// poll loop: the off-interval path is one lock + compare.
    pub fn tick(&self, reg: &MetricsRegistry) -> bool {
        self.tick_at(unix_ms_now(), reg)
    }

    /// Whether a [`HistoryRing::tick`] now would admit a snapshot. Lets a
    /// driver skip (possibly costly) pre-scrape work on off-interval polls.
    pub fn due(&self) -> bool {
        self.due_at(unix_ms_now())
    }

    /// [`HistoryRing::due`] at an explicit timestamp (test hook).
    pub fn due_at(&self, unix_ms: u64) -> bool {
        let inner = self.inner.lock().unwrap();
        inner.last_ms == 0 || unix_ms >= inner.last_ms.saturating_add(self.resolution_ms)
    }

    /// [`HistoryRing::tick`] at an explicit timestamp (test hook).
    pub fn tick_at(&self, unix_ms: u64, reg: &MetricsRegistry) -> bool {
        {
            let inner = self.inner.lock().unwrap();
            if inner.last_ms != 0 && unix_ms < inner.last_ms.saturating_add(self.resolution_ms) {
                return false;
            }
        }
        // Scrape outside the ring lock — the registry takes its own.
        let snap = HistorySnapshot { unix_ms, values: reg.scrape() };
        let mut inner = self.inner.lock().unwrap();
        if inner.last_ms != 0 && unix_ms < inner.last_ms.saturating_add(self.resolution_ms) {
            return false; // raced with another ticker
        }
        inner.last_ms = unix_ms;
        inner.snaps.push_back(snap);
        if inner.snaps.len() > self.capacity {
            // Thin the older half: keep indices 0, 2, 4, … of it, so old
            // history halves in resolution instead of being truncated.
            let half = inner.snaps.len() / 2;
            let older: Vec<HistorySnapshot> = inner.snaps.drain(..half).collect();
            let kept = older.len().div_ceil(2);
            inner.downsampled += (older.len() - kept) as u64;
            for (i, s) in older.into_iter().enumerate().rev() {
                if i % 2 == 0 {
                    inner.snaps.push_front(s);
                }
            }
        }
        true
    }

    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().snaps.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshots thinned out by downsampling since creation.
    pub fn downsampled(&self) -> u64 {
        self.inner.lock().unwrap().downsampled
    }

    /// The most recent `tail` snapshots (all of them if `None`), oldest
    /// first.
    pub fn snapshots(&self, tail: Option<usize>) -> Vec<HistorySnapshot> {
        let inner = self.inner.lock().unwrap();
        let skip = tail.map(|t| inner.snaps.len().saturating_sub(t)).unwrap_or(0);
        inner.snaps.iter().skip(skip).cloned().collect()
    }

    /// One series' `(unix_ms, value)` trajectory across the ring — the
    /// sparkline input.
    pub fn series(&self, name: &str) -> Vec<(u64, f64)> {
        let inner = self.inner.lock().unwrap();
        inner
            .snaps
            .iter()
            .filter_map(|s| s.values.iter().find(|(k, _)| k == name).map(|(_, v)| (s.unix_ms, *v)))
            .collect()
    }

    /// JSON for `/history.json` and bundle inclusion: ring configuration
    /// plus the most recent `tail` snapshots (oldest first), each carrying
    /// its full series map.
    pub fn render_json(&self, tail: Option<usize>) -> String {
        let snaps = self.snapshots(tail);
        let mut out = format!(
            "{{\"resolution_ms\":{},\"capacity\":{},\"len\":{},\"downsampled\":{},\"snapshots\":[",
            self.resolution_ms,
            self.capacity,
            self.len(),
            self.downsampled()
        );
        for (i, s) in snaps.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"unix_ms\":{},\"values\":{{", s.unix_ms));
            for (j, (k, v)) in s.values.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let v = if v.is_finite() { *v } else { 0.0 };
                out.push_str(&format!("\"{}\":{}", jesc(k), v));
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

fn jesc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Render values as a unicode block sparkline (`▁▂▃▄▅▆▇█`), scaled to the
/// slice's own min/max. Empty input renders empty; a flat series renders
/// at the lowest block.
pub fn sparkline(vals: &[f64]) -> String {
    const BLOCKS: [char; 8] =
        ['\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}', '\u{2588}'];
    let finite: Vec<f64> = vals.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return String::new();
    }
    let (min, max) = finite.iter().fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    let span = max - min;
    vals.iter()
        .map(|v| {
            if !v.is_finite() {
                return BLOCKS[0];
            }
            if span <= 0.0 {
                return BLOCKS[0];
            }
            let idx = (((v - min) / span) * 7.0).round() as usize;
            BLOCKS[idx.min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg_with(v: u64) -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter("h_total", "history test counter").add(v);
        reg
    }

    #[test]
    fn respects_resolution() {
        let ring = HistoryRing::new(Duration::from_millis(100), 16);
        let reg = reg_with(1);
        assert!(ring.tick_at(1000, &reg));
        assert!(!ring.tick_at(1050, &reg), "inside the resolution window");
        assert!(ring.tick_at(1100, &reg));
        assert_eq!(ring.len(), 2);
        let snaps = ring.snapshots(None);
        assert_eq!(snaps[0].unix_ms, 1000);
        assert_eq!(snaps[1].unix_ms, 1100);
    }

    #[test]
    fn downsamples_older_half_at_capacity() {
        let ring = HistoryRing::new(Duration::from_millis(1), 8);
        let reg = reg_with(1);
        for i in 0..32u64 {
            assert!(ring.tick_at(1000 + i * 10, &reg));
        }
        // Bounded: never exceeds capacity.
        assert!(ring.len() <= 8, "len {}", ring.len());
        assert!(ring.downsampled() > 0);
        let snaps = ring.snapshots(None);
        // Still ordered oldest -> newest, and the newest snapshot is the
        // last tick (recent history is never thinned).
        for w in snaps.windows(2) {
            assert!(w[0].unix_ms < w[1].unix_ms);
        }
        assert_eq!(snaps.last().unwrap().unix_ms, 1000 + 31 * 10);
        // Older spacing is coarser than the newest spacing.
        let oldest_gap = snaps[1].unix_ms - snaps[0].unix_ms;
        let n = snaps.len();
        let newest_gap = snaps[n - 1].unix_ms - snaps[n - 2].unix_ms;
        assert!(oldest_gap >= newest_gap, "old {oldest_gap} new {newest_gap}");
    }

    #[test]
    fn series_and_tail_render() {
        let ring = HistoryRing::new(Duration::from_millis(1), 32);
        let reg = MetricsRegistry::new();
        let c = reg.counter("h_total", "history test counter");
        for i in 0..5u64 {
            c.add(10);
            ring.tick_at(2000 + i * 5, &reg);
        }
        let series = ring.series("h_total");
        assert_eq!(series.len(), 5);
        assert_eq!(series[0], (2000, 10.0));
        assert_eq!(series[4], (2020, 50.0));
        let json = ring.render_json(Some(2));
        assert!(json.contains("\"len\":5"), "{json}");
        assert!(json.contains("\"unix_ms\":2020"), "{json}");
        assert!(!json.contains("\"unix_ms\":2000"), "tail should drop oldest: {json}");
        assert!(json.contains("\"h_total\":50"), "{json}");
    }

    #[test]
    fn sparkline_scales_to_range() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[3.0, 3.0]), "\u{2581}\u{2581}");
        let s = sparkline(&[0.0, 7.0]);
        assert_eq!(s.chars().next(), Some('\u{2581}'));
        assert_eq!(s.chars().nth(1), Some('\u{2588}'));
    }
}
