//! Black-box flight recorder: per-thread ring buffers of compact wide
//! events, written lock-free on the hot path and stitched into one
//! chronological stream on read.
//!
//! Every interesting moment in the serving path — a query finishing, an
//! admission decision, a deadline trip, a journal torn-tail recovery, a
//! pool worker parking, an alert changing state — is a [`WideEvent`]: one
//! cache line of atomics (sequence, timestamp, kind, three payload words,
//! sixteen bytes of inline label). Each thread writes into its own
//! fixed-size ring, so the hot path is a handful of relaxed stores plus
//! two release stores and never takes a lock or allocates. Readers stitch
//! all rings into one stream ordered by the global sequence counter.
//!
//! Per-slot consistency uses a seqlock-style stamp: the writer clears the
//! stamp, publishes the payload, then stores the event's (unique, nonzero)
//! sequence number as the stamp with release ordering. A reader accepts a
//! slot only when the stamp reads the same nonzero sequence before and
//! after copying the payload (with an acquire fence in between), so a
//! wrap-around overwrite racing the read is detected and the slot skipped
//! rather than surfaced torn. Sequence numbers are process-unique, so the
//! double-read can never ABA.
//!
//! The recorder is **off by default**: a disabled [`emit`] is one relaxed
//! atomic load. [`recorder`] is the process-global instance used by the
//! emit points threaded through the engine, server, pool, and journal;
//! standalone [`FlightRecorder`] instances exist for tests.

use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant, SystemTime};

use crate::trace::esc;

/// Default per-thread ring capacity (events).
pub const DEFAULT_RING_EVENTS: usize = 4096;

/// What a wide event records. Encoded as one byte in the slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FlightKind {
    /// A query entered the engine. `a` = fingerprint.
    QueryStart = 1,
    /// A query completed. `a` = fingerprint, `b` = latency µs, `c` = rows;
    /// label = chosen anchor (class/index) of the first planned variable.
    QueryEnd = 2,
    /// A query failed. `a` = fingerprint, `b` = latency µs; label = error kind.
    QueryError = 3,
    /// The server admitted a connection. `a` = queue depth after push.
    AdmissionAccept = 4,
    /// The server shed a connection. `a` = queue depth, `b` = retry-after ms.
    AdmissionShed = 5,
    /// A deadline tripped mid-evaluation. `a` = fingerprint (0 when
    /// unknown); label = scope (`engine` / `serve`).
    DeadlineTrip = 6,
    /// An explicit cancellation tripped. label = scope.
    CancelTrip = 7,
    /// A store mutation (the journal's write stream). `a` = uid, `b` =
    /// class id; label = op (`insert_node`, `update`, …).
    JournalMutation = 8,
    /// A torn trailing record was dropped during recovery. `a` = line
    /// number, `b` = dropped lines; label = `journal` or `qlog`.
    TornTail = 9,
    /// A pool worker finished (parked): `a` = jobs run, `b` = steals,
    /// `c` = busy µs.
    PoolPark = 10,
    /// An SLO alert changed state. `a` = from, `b` = to (state codes);
    /// label = rule name.
    AlertTransition = 11,
    /// Server drain began. `a` = inflight, `b` = queued at drain start.
    DrainStart = 12,
    /// Server drain finished. `a` = clean (0/1), `b` = shed queued,
    /// `c` = waited ms.
    DrainEnd = 13,
    /// A diagnostics snapshot was written. label = trigger.
    Snapshot = 14,
    /// A panic unwound through the panic hook. label = thread name.
    Panic = 15,
    /// A served request completed. `a` = status code, `b` = latency µs.
    RequestDone = 16,
}

impl FlightKind {
    fn from_u8(v: u8) -> Option<FlightKind> {
        Some(match v {
            1 => FlightKind::QueryStart,
            2 => FlightKind::QueryEnd,
            3 => FlightKind::QueryError,
            4 => FlightKind::AdmissionAccept,
            5 => FlightKind::AdmissionShed,
            6 => FlightKind::DeadlineTrip,
            7 => FlightKind::CancelTrip,
            8 => FlightKind::JournalMutation,
            9 => FlightKind::TornTail,
            10 => FlightKind::PoolPark,
            11 => FlightKind::AlertTransition,
            12 => FlightKind::DrainStart,
            13 => FlightKind::DrainEnd,
            14 => FlightKind::Snapshot,
            15 => FlightKind::Panic,
            16 => FlightKind::RequestDone,
            _ => return None,
        })
    }

    /// Stable snake_case name used in JSON and on the dashboard.
    pub fn name(self) -> &'static str {
        match self {
            FlightKind::QueryStart => "query_start",
            FlightKind::QueryEnd => "query_end",
            FlightKind::QueryError => "query_error",
            FlightKind::AdmissionAccept => "admission_accept",
            FlightKind::AdmissionShed => "admission_shed",
            FlightKind::DeadlineTrip => "deadline_trip",
            FlightKind::CancelTrip => "cancel_trip",
            FlightKind::JournalMutation => "journal_mutation",
            FlightKind::TornTail => "torn_tail",
            FlightKind::PoolPark => "pool_park",
            FlightKind::AlertTransition => "alert_transition",
            FlightKind::DrainStart => "drain_start",
            FlightKind::DrainEnd => "drain_end",
            FlightKind::Snapshot => "snapshot",
            FlightKind::Panic => "panic",
            FlightKind::RequestDone => "request_done",
        }
    }
}

/// One decoded flight-recorder event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WideEvent {
    /// Process-unique, monotonically assigned sequence number — the
    /// stitch order across threads.
    pub seq: u64,
    /// Microseconds since the recorder's epoch.
    pub ts_us: u64,
    /// Ring ordinal (registration order) of the writing thread.
    pub thread: u32,
    pub kind: FlightKind,
    pub a: u64,
    pub b: u64,
    pub c: u64,
    /// Inline label, truncated to 16 bytes at write time.
    pub label: String,
}

impl WideEvent {
    /// Compact human-readable payload rendering for the dashboard.
    pub fn describe(&self) -> String {
        match self.kind {
            FlightKind::QueryStart => format!("fp={:016x}", self.a),
            FlightKind::QueryEnd => {
                format!("fp={:016x} lat={}µs rows={} anchor={}", self.a, self.b, self.c, self.label)
            }
            FlightKind::QueryError => format!("fp={:016x} lat={}µs err={}", self.a, self.b, self.label),
            FlightKind::AdmissionAccept => format!("queue={}", self.a),
            FlightKind::AdmissionShed => format!("queue={} retry_after={}ms", self.a, self.b),
            FlightKind::DeadlineTrip => format!("fp={:016x} scope={}", self.a, self.label),
            FlightKind::CancelTrip => format!("scope={}", self.label),
            FlightKind::JournalMutation => format!("op={} uid={} class={}", self.label, self.a, self.b),
            FlightKind::TornTail => format!("source={} line={} dropped={}", self.label, self.a, self.b),
            FlightKind::PoolPark => format!("jobs={} steals={} busy={}µs", self.a, self.b, self.c),
            FlightKind::AlertTransition => format!("rule={} {}→{}", self.label, state_name(self.a), state_name(self.b)),
            FlightKind::DrainStart => format!("inflight={} queued={}", self.a, self.b),
            FlightKind::DrainEnd => {
                format!("clean={} shed_queued={} waited={}ms", self.a != 0, self.b, self.c)
            }
            FlightKind::Snapshot => format!("trigger={}", self.label),
            FlightKind::Panic => format!("thread={}", self.label),
            FlightKind::RequestDone => format!("status={} lat={}µs", self.a, self.b),
        }
    }

    /// One event as a JSON object (no trailing newline).
    pub fn to_json(&self, epoch_unix_ms: u64) -> String {
        format!(
            "{{\"seq\":{},\"unix_ms\":{},\"ts_us\":{},\"thread\":{},\"kind\":\"{}\",\"a\":{},\"b\":{},\"c\":{},\
             \"label\":\"{}\",\"detail\":\"{}\"}}",
            self.seq,
            epoch_unix_ms + self.ts_us / 1000,
            self.ts_us,
            self.thread,
            self.kind.name(),
            self.a,
            self.b,
            self.c,
            esc(&self.label),
            esc(&self.describe())
        )
    }
}

fn state_name(code: u64) -> &'static str {
    // Mirrors the SLO alert state machine codes (see `slo::AlertState`).
    match code {
        0 => "ok",
        1 => "pending",
        2 => "firing",
        3 => "resolved",
        _ => "?",
    }
}

/// Slot layout: 8 atomics = 64 bytes = one cache line.
/// `[stamp, ts_us, kind, a, b, c, label_lo, label_hi]`.
const SLOT_WORDS: usize = 8;

struct Ring {
    ordinal: u32,
    /// Name of the (latest) owning thread — rings are recycled when a
    /// thread exits, so short-lived threads don't grow the registry.
    name: Mutex<String>,
    /// Total events ever written to this ring (tail accounting only; the
    /// per-slot stamps carry the consistency protocol).
    written: AtomicU64,
    slots: Vec<AtomicU64>,
    capacity: usize,
}

impl Ring {
    fn new(ordinal: u32, name: String, capacity: usize) -> Ring {
        let capacity = capacity.max(8);
        let mut slots = Vec::with_capacity(capacity * SLOT_WORDS);
        for _ in 0..capacity * SLOT_WORDS {
            slots.push(AtomicU64::new(0));
        }
        Ring { ordinal, name: Mutex::new(name), written: AtomicU64::new(0), slots, capacity }
    }

    #[allow(clippy::too_many_arguments)]
    fn write(&self, seq: u64, ts_us: u64, kind: FlightKind, a: u64, b: u64, c: u64, label: &str) {
        let n = self.written.load(Ordering::Relaxed);
        let base = (n as usize % self.capacity) * SLOT_WORDS;
        let s = &self.slots[base..base + SLOT_WORDS];
        // Seqlock write: invalidate, publish payload, stamp with the
        // event's unique sequence. The release fence keeps the payload
        // stores from becoming visible before the invalidation, so a
        // reader that observes new payload under an old stamp re-reads
        // the stamp and rejects the slot.
        s[0].store(0, Ordering::Relaxed);
        fence(Ordering::Release);
        s[1].store(ts_us, Ordering::Relaxed);
        s[2].store(kind as u8 as u64, Ordering::Relaxed);
        s[3].store(a, Ordering::Relaxed);
        s[4].store(b, Ordering::Relaxed);
        s[5].store(c, Ordering::Relaxed);
        let (lo, hi) = encode_label(label);
        s[6].store(lo, Ordering::Relaxed);
        s[7].store(hi, Ordering::Relaxed);
        s[0].store(seq, Ordering::Release);
        self.written.store(n + 1, Ordering::Relaxed);
    }

    fn read_slot(&self, idx: usize) -> Option<WideEvent> {
        let base = idx * SLOT_WORDS;
        let s = &self.slots[base..base + SLOT_WORDS];
        let s1 = s[0].load(Ordering::Acquire);
        if s1 == 0 {
            return None;
        }
        let ts_us = s[1].load(Ordering::Relaxed);
        let kind = s[2].load(Ordering::Relaxed);
        let a = s[3].load(Ordering::Relaxed);
        let b = s[4].load(Ordering::Relaxed);
        let c = s[5].load(Ordering::Relaxed);
        let lo = s[6].load(Ordering::Relaxed);
        let hi = s[7].load(Ordering::Relaxed);
        fence(Ordering::Acquire);
        let s2 = s[0].load(Ordering::Relaxed);
        if s1 != s2 {
            // Overwritten mid-read: skip rather than surface a torn event.
            return None;
        }
        let kind = FlightKind::from_u8(kind as u8)?;
        Some(WideEvent { seq: s1, ts_us, thread: self.ordinal, kind, a, b, c, label: decode_label(lo, hi) })
    }
}

fn encode_label(label: &str) -> (u64, u64) {
    let mut bytes = [0u8; 16];
    let src = label.as_bytes();
    let n = src.len().min(16);
    bytes[..n].copy_from_slice(&src[..n]);
    (u64::from_le_bytes(bytes[..8].try_into().unwrap()), u64::from_le_bytes(bytes[8..].try_into().unwrap()))
}

fn decode_label(lo: u64, hi: u64) -> String {
    let mut bytes = [0u8; 16];
    bytes[..8].copy_from_slice(&lo.to_le_bytes());
    bytes[8..].copy_from_slice(&hi.to_le_bytes());
    let end = bytes.iter().position(|&b| b == 0).unwrap_or(16);
    String::from_utf8_lossy(&bytes[..end]).into_owned()
}

struct Inner {
    enabled: AtomicBool,
    /// Next sequence number; starts at 1 so 0 can mean "empty slot".
    seq: AtomicU64,
    /// Per-ring capacity applied to rings registered from now on.
    capacity: AtomicUsize,
    epoch: Instant,
    epoch_unix_ms: u64,
    rings: Mutex<Vec<Arc<Ring>>>,
    /// Rings whose owning thread has exited, available for reuse — keeps
    /// the registry bounded by peak thread count, not thread churn.
    free: Mutex<Vec<Arc<Ring>>>,
}

/// One ring's registration info plus write/drop counters.
#[derive(Debug, Clone)]
pub struct RingStats {
    pub thread: u32,
    pub name: String,
    pub capacity: usize,
    pub written: u64,
    /// Events pushed out of the ring by wrap-around.
    pub dropped: u64,
}

/// Recorder-wide counters for `/flight` and the snapshot bundle.
#[derive(Debug, Clone)]
pub struct FlightStats {
    pub enabled: bool,
    pub rings: Vec<RingStats>,
    pub total_written: u64,
    pub total_dropped: u64,
}

/// The flight recorder: a registry of per-thread rings sharing one
/// sequence counter and epoch. Cheap to clone (all state is shared).
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<Inner>,
}

/// A registered per-thread writer. Cheap to clone; writes are only safe
/// from one thread at a time per handle's ring (the registration model —
/// one handle per thread — guarantees this in practice; concurrent use
/// degrades to skipped slots, never torn reads).
#[derive(Clone)]
pub struct FlightHandle {
    inner: Arc<Inner>,
    ring: Arc<Ring>,
}

impl FlightHandle {
    /// Record one wide event. Lock-free: a seq fetch_add, one clock read,
    /// and nine atomic stores into this thread's own ring.
    pub fn emit(&self, kind: FlightKind, a: u64, b: u64, c: u64, label: &str) {
        if !self.inner.enabled.load(Ordering::Relaxed) {
            return;
        }
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        let ts_us = self.inner.epoch.elapsed().as_micros() as u64;
        self.ring.write(seq, ts_us, kind, a, b, c, label);
    }

    /// Return the ring to the recorder's free list for reuse by a future
    /// thread. Recorded events stay readable until overwritten.
    fn release(&self) {
        self.inner.free.lock().unwrap_or_else(|e| e.into_inner()).push(self.ring.clone());
    }
}

impl FlightRecorder {
    /// A standalone recorder (enabled) with the given per-thread ring
    /// capacity — for tests. The process-global instance is [`recorder`].
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            inner: Arc::new(Inner {
                enabled: AtomicBool::new(true),
                seq: AtomicU64::new(1),
                capacity: AtomicUsize::new(capacity.max(8)),
                epoch: Instant::now(),
                epoch_unix_ms: unix_ms(),
                rings: Mutex::new(Vec::new()),
                free: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Register a ring for the calling thread and return its writer.
    /// Reuses a released ring when one is available.
    pub fn handle(&self, name: &str) -> FlightHandle {
        if let Some(ring) = self.inner.free.lock().unwrap_or_else(|e| e.into_inner()).pop() {
            *ring.name.lock().unwrap_or_else(|e| e.into_inner()) = name.to_string();
            return FlightHandle { inner: self.inner.clone(), ring };
        }
        let mut rings = self.inner.rings.lock().unwrap_or_else(|e| e.into_inner());
        let ordinal = rings.len() as u32;
        let capacity = self.inner.capacity.load(Ordering::Relaxed);
        let ring = Arc::new(Ring::new(ordinal, name.to_string(), capacity));
        rings.push(ring.clone());
        FlightHandle { inner: self.inner.clone(), ring }
    }

    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Set the capacity used by rings registered *from now on* (existing
    /// rings keep theirs) — call before the first emit on each thread.
    pub fn set_capacity(&self, events: usize) {
        self.inner.capacity.store(events.max(8), Ordering::Relaxed);
    }

    /// Milliseconds of UNIX time at the recorder's epoch (ts_us = 0).
    pub fn epoch_unix_ms(&self) -> u64 {
        self.inner.epoch_unix_ms
    }

    /// Microseconds elapsed since the recorder's epoch.
    pub fn now_us(&self) -> u64 {
        self.inner.epoch.elapsed().as_micros() as u64
    }

    /// Stitch every ring into one stream ordered by sequence number.
    pub fn events(&self) -> Vec<WideEvent> {
        let rings: Vec<Arc<Ring>> =
            self.inner.rings.lock().unwrap_or_else(|e| e.into_inner()).iter().cloned().collect();
        let mut out = Vec::new();
        for ring in &rings {
            for idx in 0..ring.capacity {
                if let Some(e) = ring.read_slot(idx) {
                    out.push(e);
                }
            }
        }
        out.sort_unstable_by_key(|e| e.seq);
        out
    }

    /// The stitched stream restricted to the trailing `window`.
    pub fn events_since(&self, window: Duration) -> Vec<WideEvent> {
        let now = self.now_us();
        let cutoff = now.saturating_sub(window.as_micros() as u64);
        let mut v = self.events();
        v.retain(|e| e.ts_us >= cutoff);
        v
    }

    pub fn stats(&self) -> FlightStats {
        let rings = self.inner.rings.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = Vec::with_capacity(rings.len());
        let (mut total_written, mut total_dropped) = (0u64, 0u64);
        for r in rings.iter() {
            let written = r.written.load(Ordering::Relaxed);
            let dropped = written.saturating_sub(r.capacity as u64);
            total_written += written;
            total_dropped += dropped;
            out.push(RingStats {
                thread: r.ordinal,
                name: r.name.lock().unwrap_or_else(|e| e.into_inner()).clone(),
                capacity: r.capacity,
                written,
                dropped,
            });
        }
        FlightStats { enabled: self.is_enabled(), rings: out, total_written, total_dropped }
    }

    /// The `/flight` document: recorder stats plus the stitched stream
    /// (trailing `window`, newest last), capped at `limit` events.
    pub fn render_json(&self, window: Duration, limit: usize) -> String {
        let stats = self.stats();
        let mut events = self.events_since(window);
        let skipped = events.len().saturating_sub(limit);
        if skipped > 0 {
            events.drain(..skipped);
        }
        let mut s = String::from("{");
        s.push_str(&format!(
            "\"enabled\":{},\"epoch_unix_ms\":{},\"window_secs\":{},\"total_written\":{},\"total_dropped\":{},\
             \"omitted\":{},",
            stats.enabled,
            self.epoch_unix_ms(),
            window.as_secs(),
            stats.total_written,
            stats.total_dropped,
            skipped
        ));
        s.push_str("\"threads\":[");
        for (i, r) in stats.rings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"thread\":{},\"name\":\"{}\",\"capacity\":{},\"written\":{},\"dropped\":{}}}",
                r.thread,
                esc(&r.name),
                r.capacity,
                r.written,
                r.dropped
            ));
        }
        s.push_str("],\"events\":[");
        let epoch = self.epoch_unix_ms();
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&e.to_json(epoch));
        }
        s.push_str("]}\n");
        s
    }
}

fn unix_ms() -> u64 {
    SystemTime::now().duration_since(SystemTime::UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0)
}

// --- process-global recorder -------------------------------------------------

static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();

/// The process-global recorder used by all built-in emit points.
/// Created disabled; `nepal-serve` (or a test) switches it on.
pub fn recorder() -> &'static FlightRecorder {
    GLOBAL.get_or_init(|| {
        let r = FlightRecorder::new(DEFAULT_RING_EVENTS);
        r.set_enabled(false);
        r
    })
}

/// TLS wrapper returning the ring to the free list when the thread exits.
struct TlsGuard(FlightHandle);

impl Drop for TlsGuard {
    fn drop(&mut self) {
        self.0.release();
    }
}

thread_local! {
    static TLS_HANDLE: std::cell::RefCell<Option<TlsGuard>> = const { std::cell::RefCell::new(None) };
}

/// Record one wide event on the process-global recorder. When the
/// recorder is disabled this is a single relaxed atomic load; when
/// enabled, the calling thread's ring is registered on first use (named
/// after the OS thread, recycled on thread exit) and written lock-free
/// thereafter.
pub fn emit(kind: FlightKind, a: u64, b: u64, c: u64, label: &str) {
    let g = recorder();
    if !g.is_enabled() {
        return;
    }
    TLS_HANDLE.with(|h| {
        let mut h = h.borrow_mut();
        if h.is_none() {
            let name = std::thread::current().name().map(str::to_string).unwrap_or_else(|| "anon".to_string());
            *h = Some(TlsGuard(g.handle(&name)));
        }
        h.as_ref().unwrap().0.emit(kind, a, b, c, label);
    });
}

// --- recovery counters -------------------------------------------------------
//
// Torn-tail recoveries happen during load, usually before any
// MetricsRegistry exists, so they land in process-global counters that
// `Telemetry` exports as `nepal_journal_torn_tail_total` /
// `nepal_qlog_torn_tail_total` via a delta refresher.

/// Journal loads that dropped a torn trailing record.
pub static JOURNAL_TORN_TAIL: AtomicU64 = AtomicU64::new(0);
/// Query-log reads that dropped a torn trailing record.
pub static QLOG_TORN_TAIL: AtomicU64 = AtomicU64::new(0);

/// Record a journal torn-tail recovery: bump the process counter and
/// emit a wide event.
pub fn note_journal_torn_tail(line: u64, dropped_lines: u64) {
    JOURNAL_TORN_TAIL.fetch_add(1, Ordering::Relaxed);
    emit(FlightKind::TornTail, line, dropped_lines, 0, "journal");
}

/// Record a qlog torn-tail recovery.
pub fn note_qlog_torn_tail(line: u64) {
    QLOG_TORN_TAIL.fetch_add(1, Ordering::Relaxed);
    emit(FlightKind::TornTail, line, 1, 0, "qlog");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_payload_and_label() {
        let r = FlightRecorder::new(16);
        let h = r.handle("main");
        h.emit(FlightKind::QueryEnd, 0xabcd, 1500, 42, "VM.uid");
        h.emit(FlightKind::AdmissionShed, 3, 250, 0, "");
        let ev = r.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].kind, FlightKind::QueryEnd);
        assert_eq!((ev[0].a, ev[0].b, ev[0].c), (0xabcd, 1500, 42));
        assert_eq!(ev[0].label, "VM.uid");
        assert!(ev[0].seq < ev[1].seq);
        assert_eq!(ev[1].kind, FlightKind::AdmissionShed);
        assert_eq!(ev[1].label, "");
    }

    #[test]
    fn labels_truncate_at_sixteen_bytes() {
        let r = FlightRecorder::new(8);
        let h = r.handle("main");
        h.emit(FlightKind::Snapshot, 0, 0, 0, "a-very-long-trigger-name");
        assert_eq!(r.events()[0].label, "a-very-long-trig");
    }

    #[test]
    fn ring_wraps_and_keeps_newest() {
        let r = FlightRecorder::new(8);
        let h = r.handle("main");
        for i in 0..20 {
            h.emit(FlightKind::QueryStart, i, 0, 0, "");
        }
        let ev = r.events();
        assert_eq!(ev.len(), 8, "capacity bounds retention");
        // Newest 8 survive, in order.
        let kept: Vec<u64> = ev.iter().map(|e| e.a).collect();
        assert_eq!(kept, (12..20).collect::<Vec<u64>>());
        let st = r.stats();
        assert_eq!(st.total_written, 20);
        assert_eq!(st.total_dropped, 12);
    }

    #[test]
    fn stitching_interleaves_rings_by_sequence() {
        let r = FlightRecorder::new(64);
        let h1 = r.handle("t1");
        let h2 = r.handle("t2");
        h1.emit(FlightKind::QueryStart, 1, 0, 0, "");
        h2.emit(FlightKind::QueryStart, 2, 0, 0, "");
        h1.emit(FlightKind::QueryEnd, 1, 0, 0, "");
        h2.emit(FlightKind::QueryEnd, 2, 0, 0, "");
        let ev = r.events();
        assert_eq!(ev.len(), 4);
        let seqs: Vec<u64> = ev.iter().map(|e| e.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted, "stream must be seq-ordered");
        assert_eq!(ev.iter().filter(|e| e.thread == 0).count(), 2);
        assert_eq!(ev.iter().filter(|e| e.thread == 1).count(), 2);
    }

    #[test]
    fn disabled_recorder_drops_events() {
        let r = FlightRecorder::new(8);
        let h = r.handle("main");
        r.set_enabled(false);
        h.emit(FlightKind::QueryStart, 1, 0, 0, "");
        assert!(r.events().is_empty());
        r.set_enabled(true);
        h.emit(FlightKind::QueryStart, 2, 0, 0, "");
        assert_eq!(r.events().len(), 1);
    }

    #[test]
    fn window_filter_keeps_recent_events() {
        let r = FlightRecorder::new(8);
        let h = r.handle("main");
        h.emit(FlightKind::QueryStart, 1, 0, 0, "");
        assert_eq!(r.events_since(Duration::from_secs(60)).len(), 1);
        std::thread::sleep(Duration::from_millis(5));
        assert!(r.events_since(Duration::from_micros(1)).is_empty(), "stale events fall out of the window");
    }

    #[test]
    fn render_json_is_parseable_shape() {
        let r = FlightRecorder::new(8);
        let h = r.handle("writer");
        h.emit(FlightKind::DrainEnd, 1, 0, 12, "");
        let json = r.render_json(Duration::from_secs(30), 100);
        assert!(json.contains("\"kind\":\"drain_end\""), "{json}");
        assert!(json.contains("\"name\":\"writer\""), "{json}");
        assert!(json.contains("\"enabled\":true"), "{json}");
    }

    #[test]
    fn global_emit_is_noop_while_disabled() {
        // The global recorder defaults off; an emit must not register a ring.
        let before = recorder().stats().rings.len();
        emit(FlightKind::QueryStart, 9, 0, 0, "");
        assert_eq!(recorder().stats().rings.len(), before);
    }

    #[test]
    fn concurrent_writers_lose_nothing_within_capacity() {
        let r = FlightRecorder::new(1024);
        let threads = 4;
        let per = 500;
        let mut handles = Vec::new();
        for t in 0..threads {
            let h = r.handle(&format!("w{t}"));
            handles.push(std::thread::spawn(move || {
                for i in 0..per {
                    h.emit(FlightKind::QueryStart, (t * per + i) as u64, 0, 0, "");
                }
            }));
        }
        for th in handles {
            th.join().unwrap();
        }
        let ev = r.events();
        assert_eq!(ev.len(), threads * per);
        let mut payloads: Vec<u64> = ev.iter().map(|e| e.a).collect();
        payloads.sort_unstable();
        payloads.dedup();
        assert_eq!(payloads.len(), threads * per, "no lost or duplicated events");
    }
}
