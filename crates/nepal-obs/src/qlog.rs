//! Durable query log, workload capture, and planner estimate-vs-actual
//! feedback.
//!
//! Three pieces, all std-only:
//!
//! - [`QueryLog`] — an append-only JSONL log with bounded rotation. Every
//!   executed query becomes one [`QlogRecord`] line: text, normalized
//!   [`fingerprint`], plan summary (chosen anchor plus every candidate with
//!   its estimated cost), per-variable **estimated vs actual**
//!   cardinalities, phase timings, worker-thread count, a deterministic
//!   result digest, and the trace id. Records parse back losslessly
//!   ([`QlogRecord::parse`]) so a captured log can be replayed against a
//!   later build and digest-compared.
//! - [`PlanFeedback`] — the estimate-vs-actual surface distilled from a
//!   [`QueryProfile`]: for each range variable the planner's chosen anchor
//!   and its estimated cardinality next to the observed anchor-scan output,
//!   plus the join probe/build/emitted counts.
//! - [`EstimateFeedback`] — the per-fingerprint aggregator: q-error
//!   (`max(est/actual, actual/est)`) counts, the chosen anchor, and the
//!   *best-in-hindsight* anchor (re-rank the candidates with the chosen
//!   one's estimate replaced by its observed cardinality — would the
//!   planner still pick it knowing the truth?). Rendered by `/qlog`,
//!   `/qlog.json`, and the REPL's `:qlog top N`; q-errors also land in the
//!   [`MetricsRegistry`] so misestimates show up on `/metrics`.
//!
//! The overhead contract matches tracing: a disabled query log costs the
//! engine nothing — no clock reads, no hashing, no allocation.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::metrics::{Counter, Histogram, MetricsRegistry};
use crate::profile::QueryProfile;
use crate::trace::esc;

// ---------------------------------------------------------------------
// Hashing: FNV-1a, shared by fingerprints and result digests
// ---------------------------------------------------------------------

/// FNV-1a 64-bit hasher (std's `DefaultHasher` is not stable across
/// releases; log digests must be comparable between builds).
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    pub fn new() -> Fnv64 {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    pub fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
    }

    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    pub fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

// ---------------------------------------------------------------------
// Query normalization and fingerprints
// ---------------------------------------------------------------------

/// Normalize a query text modulo literals and whitespace: predicate
/// literals (numbers and `'…'` strings) become `?`, whitespace collapses
/// to the minimum that keeps identifiers apart. Repetition bounds
/// (`{1,6}`) are structural — they change the plan — and are kept.
pub fn normalize(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars().peekable();
    let mut brace_depth = 0usize;
    while let Some(c) = chars.next() {
        match c {
            '\'' => {
                // String literal → `?` (terminating quote consumed).
                for n in chars.by_ref() {
                    if n == '\'' {
                        break;
                    }
                }
                out.push('?');
            }
            '{' => {
                brace_depth += 1;
                out.push(c);
            }
            '}' => {
                brace_depth = brace_depth.saturating_sub(1);
                out.push(c);
            }
            c if c.is_ascii_digit() => {
                // A digit continuing an identifier (`host1`) stays; a free
                // number is a literal unless it's a `{m,n}` bound.
                let prev_ident = out.chars().last().is_some_and(|p| p.is_ascii_alphanumeric() || p == '_');
                if prev_ident || brace_depth > 0 {
                    out.push(c);
                } else {
                    while chars.peek().is_some_and(|n| n.is_ascii_digit() || *n == '.') {
                        chars.next();
                    }
                    out.push('?');
                }
            }
            c if c.is_whitespace() => {
                while chars.peek().is_some_and(|n| n.is_whitespace()) {
                    chars.next();
                }
                // A single space survives only between word characters.
                let prev = out.chars().last();
                let next = chars.peek().copied();
                if prev.is_some_and(|p| p.is_ascii_alphanumeric() || p == '_' || p == '?')
                    && next.is_some_and(|n| n.is_ascii_alphanumeric() || n == '_')
                {
                    out.push(' ');
                }
            }
            c => out.push(c),
        }
    }
    out
}

/// Stable fingerprint of a query modulo literals and whitespace.
pub fn fingerprint(text: &str) -> u64 {
    let mut h = Fnv64::new();
    h.write_str(&normalize(text));
    h.finish()
}

/// The q-error of a cardinality estimate: `max(est/actual, actual/est)`,
/// both sides clamped to ≥ 1 (the standard convention — a q-error of 1 is
/// a perfect estimate, 10 is an order of magnitude off either way).
pub fn qerror(est: f64, actual: u64) -> f64 {
    let est = if est.is_finite() { est.max(1.0) } else { 1.0 };
    let act = actual.max(1) as f64;
    (est / act).max(act / est)
}

// ---------------------------------------------------------------------
// Plan feedback: estimated vs actual, per operator
// ---------------------------------------------------------------------

/// Estimate-vs-actual feedback for one range variable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VarFeedback {
    pub var: String,
    pub backend: String,
    /// Chosen anchor (empty for view-sourced variables, which have no plan).
    pub anchor: String,
    /// The planner's estimated anchor cardinality.
    pub est_rows: f64,
    /// Observed anchor-scan output (`Select` rows_out; backends without
    /// per-operator stats fall back to the pathway count).
    pub actual_rows: u64,
    pub pathways: u64,
    pub eval_ns: u64,
    /// Every anchor candidate the planner considered: `(desc, est cost)`.
    pub candidates: Vec<(String, f64)>,
}

impl VarFeedback {
    /// q-error of the chosen anchor's estimate.
    pub fn qerror(&self) -> f64 {
        qerror(self.est_rows, self.actual_rows)
    }

    /// The anchor the planner would pick knowing the chosen one's true
    /// cardinality: re-rank the candidates with the chosen estimate
    /// replaced by the observed count. Equal to [`VarFeedback::anchor`]
    /// when the choice was robust to the misestimate.
    pub fn hindsight_anchor(&self) -> String {
        let mut best: Option<(&str, f64)> = None;
        let mut chosen_seen = false;
        for (desc, cost) in &self.candidates {
            let cost = if !chosen_seen && *desc == self.anchor {
                chosen_seen = true;
                self.actual_rows.max(1) as f64
            } else {
                *cost
            };
            match best {
                Some((_, b)) if b <= cost => {}
                _ => best = Some((desc, cost)),
            }
        }
        best.map(|(d, _)| d.to_string()).unwrap_or_default()
    }
}

/// One engine join step's observed sizes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JoinFeedback {
    pub var: String,
    pub probe: u64,
    pub build: u64,
    pub emitted: u64,
}

/// The estimate-vs-actual surface of one executed query, distilled from
/// its [`QueryProfile`] (which the engine threads from `plan_rpe` through
/// the backend evaluators).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlanFeedback {
    pub vars: Vec<VarFeedback>,
    pub joins: Vec<JoinFeedback>,
}

impl PlanFeedback {
    pub fn from_profile(p: &QueryProfile) -> PlanFeedback {
        let vars = p
            .vars
            .iter()
            .map(|v| {
                let chosen = v.anchors.iter().find(|a| a.chosen);
                let has_select = v.trace.ops.iter().any(|o| o.op == "Select");
                let select_rows: u64 = v.trace.ops.iter().filter(|o| o.op == "Select").map(|o| o.rows_out).sum();
                VarFeedback {
                    var: v.var.clone(),
                    backend: v.backend.clone(),
                    anchor: chosen.map(|a| a.desc.clone()).unwrap_or_default(),
                    est_rows: chosen.map(|a| a.cost).unwrap_or(0.0),
                    actual_rows: if has_select { select_rows } else { v.pathways },
                    pathways: v.pathways,
                    eval_ns: v.eval_ns,
                    candidates: v.anchors.iter().map(|a| (a.desc.clone(), a.cost)).collect(),
                }
            })
            .collect();
        let joins = p
            .joins
            .iter()
            .map(|j| JoinFeedback { var: j.var.clone(), probe: j.probe_rows, build: j.build_rows, emitted: j.emitted })
            .collect();
        PlanFeedback { vars, joins }
    }

    /// The worst (largest) per-variable q-error, if any variable carried
    /// an estimate.
    pub fn worst_var(&self) -> Option<&VarFeedback> {
        self.vars.iter().filter(|v| !v.candidates.is_empty()).max_by(|a, b| a.qerror().total_cmp(&b.qerror()))
    }
}

// ---------------------------------------------------------------------
// Qlog records: one JSONL line per executed query
// ---------------------------------------------------------------------

/// One durable query-log entry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QlogRecord {
    /// Capture wall-clock time (Unix milliseconds; 0 when not stamped).
    pub ts_ms: u64,
    pub query: String,
    pub fingerprint: u64,
    pub trace_id: Option<u64>,
    /// Resolved evaluator worker threads at execution time.
    pub threads: u64,
    pub parse_ns: u64,
    pub plan_ns: u64,
    pub exec_ns: u64,
    pub total_ns: u64,
    pub rows: u64,
    /// Deterministic digest of the full result (0 for errors).
    pub digest: u64,
    pub error: Option<String>,
    pub feedback: PlanFeedback,
}

fn jnum(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

impl QlogRecord {
    /// A record for a query that failed before producing a result.
    pub fn for_error(query: &str, total_ns: u64, error: &str, trace_id: Option<u64>, threads: u64) -> QlogRecord {
        QlogRecord {
            query: query.to_string(),
            fingerprint: fingerprint(query),
            trace_id,
            threads,
            total_ns,
            error: Some(error.to_string()),
            ..Default::default()
        }
    }

    /// Serialize as a single JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push_str(&format!(
            "{{\"ts_ms\":{},\"query\":\"{}\",\"fp\":\"{:016x}\",\"trace\":{},\"threads\":{},",
            self.ts_ms,
            esc(&self.query),
            self.fingerprint,
            self.trace_id.map(|t| t.to_string()).unwrap_or_else(|| "null".into()),
            self.threads
        ));
        s.push_str(&format!(
            "\"parse_ns\":{},\"plan_ns\":{},\"exec_ns\":{},\"total_ns\":{},\"rows\":{},\"digest\":\"{:016x}\",",
            self.parse_ns, self.plan_ns, self.exec_ns, self.total_ns, self.rows, self.digest
        ));
        match &self.error {
            Some(e) => s.push_str(&format!("\"error\":\"{}\",", esc(e))),
            None => s.push_str("\"error\":null,"),
        }
        let vars: Vec<String> = self
            .feedback
            .vars
            .iter()
            .map(|v| {
                let cands: Vec<String> =
                    v.candidates.iter().map(|(d, c)| format!("[\"{}\",{}]", esc(d), jnum(*c))).collect();
                format!(
                    "{{\"var\":\"{}\",\"backend\":\"{}\",\"anchor\":\"{}\",\"est\":{},\"actual\":{},\
                     \"pathways\":{},\"eval_ns\":{},\"candidates\":[{}]}}",
                    esc(&v.var),
                    esc(&v.backend),
                    esc(&v.anchor),
                    jnum(v.est_rows),
                    v.actual_rows,
                    v.pathways,
                    v.eval_ns,
                    cands.join(",")
                )
            })
            .collect();
        let joins: Vec<String> = self
            .feedback
            .joins
            .iter()
            .map(|j| {
                format!(
                    "{{\"var\":\"{}\",\"probe\":{},\"build\":{},\"emitted\":{}}}",
                    esc(&j.var),
                    j.probe,
                    j.build,
                    j.emitted
                )
            })
            .collect();
        s.push_str(&format!("\"vars\":[{}],\"joins\":[{}]}}", vars.join(","), joins.join(",")));
        s
    }

    /// Parse a JSONL line written by [`QlogRecord::to_json_line`].
    pub fn parse(line: &str) -> Option<QlogRecord> {
        let v = json_parse(line)?;
        let obj = v.as_obj()?;
        let num = |k: &str| obj_get(obj, k).and_then(JVal::as_u64).unwrap_or(0);
        let hexnum =
            |k: &str| obj_get(obj, k).and_then(JVal::as_str).and_then(|s| u64::from_str_radix(s, 16).ok()).unwrap_or(0);
        let vars = obj_get(obj, "vars")
            .and_then(JVal::as_arr)
            .map(|arr| {
                arr.iter()
                    .filter_map(|jv| {
                        let o = jv.as_obj()?;
                        let gets = |k: &str| obj_get(o, k).and_then(JVal::as_str).unwrap_or("").to_string();
                        let getn = |k: &str| obj_get(o, k).and_then(JVal::as_u64).unwrap_or(0);
                        let candidates = obj_get(o, "candidates")
                            .and_then(JVal::as_arr)
                            .map(|cs| {
                                cs.iter()
                                    .filter_map(|c| {
                                        let pair = c.as_arr()?;
                                        Some((pair.first()?.as_str()?.to_string(), pair.get(1)?.as_f64()?))
                                    })
                                    .collect()
                            })
                            .unwrap_or_default();
                        Some(VarFeedback {
                            var: gets("var"),
                            backend: gets("backend"),
                            anchor: gets("anchor"),
                            est_rows: obj_get(o, "est").and_then(JVal::as_f64).unwrap_or(0.0),
                            actual_rows: getn("actual"),
                            pathways: getn("pathways"),
                            eval_ns: getn("eval_ns"),
                            candidates,
                        })
                    })
                    .collect()
            })
            .unwrap_or_default();
        let joins = obj_get(obj, "joins")
            .and_then(JVal::as_arr)
            .map(|arr| {
                arr.iter()
                    .filter_map(|jv| {
                        let o = jv.as_obj()?;
                        let getn = |k: &str| obj_get(o, k).and_then(JVal::as_u64).unwrap_or(0);
                        Some(JoinFeedback {
                            var: obj_get(o, "var").and_then(JVal::as_str).unwrap_or("").to_string(),
                            probe: getn("probe"),
                            build: getn("build"),
                            emitted: getn("emitted"),
                        })
                    })
                    .collect()
            })
            .unwrap_or_default();
        Some(QlogRecord {
            ts_ms: num("ts_ms"),
            query: obj_get(obj, "query").and_then(JVal::as_str).unwrap_or("").to_string(),
            fingerprint: hexnum("fp"),
            trace_id: obj_get(obj, "trace").and_then(JVal::as_u64),
            threads: num("threads"),
            parse_ns: num("parse_ns"),
            plan_ns: num("plan_ns"),
            exec_ns: num("exec_ns"),
            total_ns: num("total_ns"),
            rows: num("rows"),
            digest: hexnum("digest"),
            error: obj_get(obj, "error").and_then(JVal::as_str).map(str::to_string),
            feedback: PlanFeedback { vars, joins },
        })
    }
}

// ---------------------------------------------------------------------
// The durable log: append-only JSONL with bounded rotation
// ---------------------------------------------------------------------

struct LogState {
    file: Option<File>,
    bytes: u64,
}

/// Append-only JSONL query log with size-bounded rotation: when the live
/// file exceeds `max_bytes` it is renamed to `<path>.1` (shifting older
/// generations up, dropping past `max_files`) and a fresh file is opened.
/// All methods take `&self`; the writer sits behind a mutex.
pub struct QueryLog {
    path: PathBuf,
    max_bytes: u64,
    max_files: usize,
    state: Mutex<LogState>,
    records: AtomicU64,
    rotations: AtomicU64,
}

impl QueryLog {
    /// Open (appending) or create the log file.
    pub fn open(path: impl AsRef<Path>, max_bytes: u64, max_files: usize) -> std::io::Result<QueryLog> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let bytes = file.metadata().map(|m| m.len()).unwrap_or(0);
        Ok(QueryLog {
            path,
            max_bytes: max_bytes.max(1),
            max_files,
            state: Mutex::new(LogState { file: Some(file), bytes }),
            records: AtomicU64::new(0),
            rotations: AtomicU64::new(0),
        })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records appended through this handle (not lines in the file — an
    /// opened log may carry earlier sessions).
    pub fn records(&self) -> u64 {
        self.records.load(Ordering::Relaxed)
    }

    pub fn rotations(&self) -> u64 {
        self.rotations.load(Ordering::Relaxed)
    }

    /// Bytes in the live (unrotated) file.
    pub fn bytes(&self) -> u64 {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).bytes
    }

    fn rotated_path(&self, n: usize) -> PathBuf {
        let mut os = self.path.as_os_str().to_os_string();
        os.push(format!(".{n}"));
        PathBuf::from(os)
    }

    /// Append one record. Write errors are swallowed (observability must
    /// never fail a query); rotation errors fall back to truncation.
    pub fn append(&self, rec: &QlogRecord) {
        let mut line = rec.to_json_line();
        line.push('\n');
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(f) = state.file.as_mut() {
            if f.write_all(line.as_bytes()).is_ok() {
                state.bytes += line.len() as u64;
                self.records.fetch_add(1, Ordering::Relaxed);
            }
        }
        if state.bytes > self.max_bytes {
            self.rotate(&mut state);
        }
    }

    fn rotate(&self, state: &mut LogState) {
        state.file = None; // close before renaming
        if self.max_files == 0 {
            let _ = std::fs::remove_file(&self.path);
        } else {
            let _ = std::fs::remove_file(self.rotated_path(self.max_files));
            for i in (1..self.max_files).rev() {
                let _ = std::fs::rename(self.rotated_path(i), self.rotated_path(i + 1));
            }
            let _ = std::fs::rename(&self.path, self.rotated_path(1));
        }
        state.file = OpenOptions::new().create(true).append(true).truncate(false).open(&self.path).ok();
        state.bytes = 0;
        self.rotations.fetch_add(1, Ordering::Relaxed);
    }

    /// Read every parseable record from a log file (live generation only).
    /// A torn trailing line — a crash mid-append — is skipped with a
    /// warning rather than silently dropped like any other unparseable
    /// line, so replay tooling can tell recovery from corruption.
    pub fn read_records(path: impl AsRef<Path>) -> std::io::Result<Vec<QlogRecord>> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)?;
        let mut out = Vec::new();
        let lines: Vec<&str> = text.lines().collect();
        for (i, line) in lines.iter().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match QlogRecord::parse(line) {
                Some(r) => out.push(r),
                None if i + 1 == lines.len() && !text.ends_with('\n') => {
                    // Unterminated final line: a partial append, not data
                    // corruption. Recover everything before it, and make
                    // the recovery observable (`nepal_qlog_torn_tail_total`
                    // plus a flight-recorder wide event) instead of
                    // warn-only.
                    crate::flight::note_qlog_torn_tail(i as u64 + 1);
                    eprintln!(
                        "warning: query log `{}` has a torn trailing line ({} bytes); skipping it",
                        path.display(),
                        line.len()
                    );
                }
                None => {} // malformed interior line: drop, as before
            }
        }
        Ok(out)
    }

    /// Status fields for `/qlog.json`.
    pub fn status_json(&self) -> String {
        format!(
            "\"path\":\"{}\",\"records\":{},\"bytes\":{},\"rotations\":{}",
            esc(&self.path.display().to_string()),
            self.records(),
            self.bytes(),
            self.rotations()
        )
    }
}

// ---------------------------------------------------------------------
// Estimate feedback: per-fingerprint q-error aggregation
// ---------------------------------------------------------------------

/// Aggregated planner accuracy for one query fingerprint. The anchor
/// fields describe the *worst* variable of the most recent observation.
#[derive(Debug, Clone)]
pub struct FingerprintStats {
    pub fingerprint: u64,
    /// An example query text carrying this fingerprint.
    pub example: String,
    pub count: u64,
    pub max_qerror: f64,
    pub sum_qerror: f64,
    pub last_est: f64,
    pub last_actual: u64,
    pub anchor: String,
    pub hindsight_anchor: String,
}

impl FingerprintStats {
    pub fn mean_qerror(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_qerror / self.count as f64
        }
    }

    /// Whether hindsight would have picked a different anchor.
    pub fn mischosen(&self) -> bool {
        !self.hindsight_anchor.is_empty() && self.hindsight_anchor != self.anchor
    }
}

/// Per-fingerprint estimation-accuracy aggregator. Bounded: once `cap`
/// fingerprints are tracked, a new one only enters by evicting a tracked
/// fingerprint with a smaller worst-case q-error.
pub struct EstimateFeedback {
    cap: usize,
    entries: Mutex<BTreeMap<u64, FingerprintStats>>,
    records: Option<Arc<Counter>>,
    misestimates: Option<Arc<Counter>>,
    qerror_hist: Option<Arc<Histogram>>,
}

impl Default for EstimateFeedback {
    fn default() -> Self {
        EstimateFeedback::new()
    }
}

impl EstimateFeedback {
    /// A standalone aggregator (no metrics export), tracking 512
    /// fingerprints.
    pub fn new() -> EstimateFeedback {
        EstimateFeedback {
            cap: 512,
            entries: Mutex::new(BTreeMap::new()),
            records: None,
            misestimates: None,
            qerror_hist: None,
        }
    }

    /// An aggregator that also exports into `metrics`:
    /// `nepal_qlog_records_total`, `nepal_planner_misestimates_total`
    /// (q-error > 2), and the `nepal_planner_qerror_x1000` histogram.
    pub fn with_metrics(metrics: &MetricsRegistry) -> EstimateFeedback {
        EstimateFeedback {
            cap: 512,
            entries: Mutex::new(BTreeMap::new()),
            records: Some(metrics.counter("nepal_qlog_records_total", "Query-log records observed")),
            misestimates: Some(
                metrics.counter("nepal_planner_misestimates_total", "Anchor estimates with q-error > 2"),
            ),
            qerror_hist: Some(metrics.histogram(
                "nepal_planner_qerror_x1000",
                "Anchor cardinality q-error (max(est/actual, actual/est)) x1000",
            )),
        }
    }

    /// Fold one executed query into the aggregate. Errored records count
    /// toward the record counter but carry no estimates.
    pub fn observe(&self, rec: &QlogRecord) {
        if let Some(c) = &self.records {
            c.inc();
        }
        if rec.error.is_some() {
            return;
        }
        for v in rec.feedback.vars.iter().filter(|v| !v.candidates.is_empty()) {
            let q = v.qerror();
            if let Some(h) = &self.qerror_hist {
                h.observe((q * 1000.0) as u64);
            }
            if q > 2.0 {
                if let Some(c) = &self.misestimates {
                    c.inc();
                }
            }
        }
        let Some(worst) = rec.feedback.worst_var() else { return };
        let q = worst.qerror();
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if !entries.contains_key(&rec.fingerprint) && entries.len() >= self.cap {
            // Evict the least-interesting fingerprint, or drop the new one.
            let min = entries
                .iter()
                .min_by(|a, b| a.1.max_qerror.total_cmp(&b.1.max_qerror))
                .map(|(k, v)| (*k, v.max_qerror));
            match min {
                Some((k, mq)) if mq < q => {
                    entries.remove(&k);
                }
                _ => return,
            }
        }
        let e = entries.entry(rec.fingerprint).or_insert_with(|| FingerprintStats {
            fingerprint: rec.fingerprint,
            example: rec.query.clone(),
            count: 0,
            max_qerror: 0.0,
            sum_qerror: 0.0,
            last_est: 0.0,
            last_actual: 0,
            anchor: String::new(),
            hindsight_anchor: String::new(),
        });
        e.count += 1;
        e.sum_qerror += q;
        e.max_qerror = e.max_qerror.max(q);
        e.last_est = worst.est_rows;
        e.last_actual = worst.actual_rows;
        e.anchor = worst.anchor.clone();
        e.hindsight_anchor = worst.hindsight_anchor();
    }

    /// Number of tracked fingerprints.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `n` worst fingerprints by max q-error, worst first.
    pub fn top(&self, n: usize) -> Vec<FingerprintStats> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let mut all: Vec<FingerprintStats> = entries.values().cloned().collect();
        all.sort_by(|a, b| b.max_qerror.total_cmp(&a.max_qerror));
        all.truncate(n);
        all
    }

    /// Human-readable ranking (the `/qlog` body and `:qlog top`).
    pub fn render_text(&self, n: usize) -> String {
        let top = self.top(n);
        if top.is_empty() {
            return "no plan feedback recorded yet\n".to_string();
        }
        let mut s = String::new();
        s.push_str(&format!(
            "{:<18} {:>5} {:>9} {:>9} {:>10} {:>10}  {}\n",
            "fingerprint", "seen", "max qerr", "mean", "est", "actual", "anchor (chosen -> hindsight)"
        ));
        for f in &top {
            let anchors = if f.mischosen() {
                format!("{} -> {}", f.anchor, f.hindsight_anchor)
            } else {
                format!("{} (robust)", f.anchor)
            };
            s.push_str(&format!(
                "{:016x}  {:>5} {:>9.2} {:>9.2} {:>10.1} {:>10}  {}\n",
                f.fingerprint,
                f.count,
                f.max_qerror,
                f.mean_qerror(),
                f.last_est,
                f.last_actual,
                anchors
            ));
            s.push_str(&format!("    {}\n", f.example));
        }
        s
    }

    /// The `fingerprints` array of `/qlog.json`, worst first.
    pub fn render_json(&self) -> String {
        let items: Vec<String> = self
            .top(usize::MAX)
            .iter()
            .map(|f| {
                format!(
                    "{{\"fp\":\"{:016x}\",\"example\":\"{}\",\"count\":{},\"max_qerror\":{},\"mean_qerror\":{},\
                     \"last_est\":{},\"last_actual\":{},\"anchor\":\"{}\",\"hindsight_anchor\":\"{}\",\"mischosen\":{}}}",
                    f.fingerprint,
                    esc(&f.example),
                    f.count,
                    jnum(f.max_qerror),
                    jnum(f.mean_qerror()),
                    jnum(f.last_est),
                    f.last_actual,
                    esc(&f.anchor),
                    esc(&f.hindsight_anchor),
                    f.mischosen()
                )
            })
            .collect();
        format!("[{}]", items.join(","))
    }
}

// ---------------------------------------------------------------------
// Minimal JSON parsing (for reading qlog lines back)
// ---------------------------------------------------------------------

/// A parsed JSON value (internal to qlog record parsing; just enough JSON
/// for the records this module writes).
#[derive(Debug, Clone, PartialEq)]
pub enum JVal {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JVal>),
    Obj(Vec<(String, JVal)>),
}

impl JVal {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JVal::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JVal::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JVal::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[JVal]> {
        match self {
            JVal::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, JVal)]> {
        match self {
            JVal::Obj(o) => Some(o),
            _ => None,
        }
    }
}

fn obj_get<'a>(obj: &'a [(String, JVal)], key: &str) -> Option<&'a JVal> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Parse a JSON document (object/array/scalar). Returns `None` on any
/// syntax error — qlog readers skip unparseable lines.
pub fn json_parse(text: &str) -> Option<JVal> {
    let mut p = JParser { b: text.as_bytes(), i: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i == p.b.len() {
        Some(v)
    } else {
        None
    }
}

struct JParser<'a> {
    b: &'a [u8],
    i: usize,
}

impl JParser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Option<()> {
        if self.i < self.b.len() && self.b[self.i] == c {
            self.i += 1;
            Some(())
        } else {
            None
        }
    }

    fn lit(&mut self, s: &str, v: JVal) -> Option<JVal> {
        if self.b[self.i..].starts_with(s.as_bytes()) {
            self.i += s.len();
            Some(v)
        } else {
            None
        }
    }

    fn value(&mut self) -> Option<JVal> {
        self.ws();
        match *self.b.get(self.i)? {
            b'{' => self.obj(),
            b'[' => self.arr(),
            b'"' => self.string().map(JVal::Str),
            b't' => self.lit("true", JVal::Bool(true)),
            b'f' => self.lit("false", JVal::Bool(false)),
            b'n' => self.lit("null", JVal::Null),
            _ => self.num(),
        }
    }

    fn obj(&mut self) -> Option<JVal> {
        self.eat(b'{')?;
        let mut out = Vec::new();
        self.ws();
        if self.eat(b'}').is_some() {
            return Some(JVal::Obj(out));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.eat(b':')?;
            let v = self.value()?;
            out.push((k, v));
            self.ws();
            if self.eat(b',').is_some() {
                continue;
            }
            self.eat(b'}')?;
            return Some(JVal::Obj(out));
        }
    }

    fn arr(&mut self) -> Option<JVal> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        self.ws();
        if self.eat(b']').is_some() {
            return Some(JVal::Arr(out));
        }
        loop {
            out.push(self.value()?);
            self.ws();
            if self.eat(b',').is_some() {
                continue;
            }
            self.eat(b']')?;
            return Some(JVal::Arr(out));
        }
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let c = *self.b.get(self.i)?;
            self.i += 1;
            match c {
                b'"' => return Some(out),
                b'\\' => {
                    let e = *self.b.get(self.i)?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self.b.get(self.i..self.i + 4)?;
                            self.i += 4;
                            let code = u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                        }
                        _ => return None,
                    }
                }
                _ => {
                    // Re-sync to char boundaries for multi-byte UTF-8.
                    let start = self.i - 1;
                    let len = utf8_len(c);
                    let bytes = self.b.get(start..start + len)?;
                    self.i = start + len;
                    out.push_str(std::str::from_utf8(bytes).ok()?);
                }
            }
        }
    }

    fn num(&mut self) -> Option<JVal> {
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while self.i < self.b.len() && matches!(self.b[self.i], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i]).ok()?.parse::<f64>().ok().map(JVal::Num)
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_ignores_literals_and_whitespace() {
        let a = "Retrieve P From PATHS P Where P MATCHES VNF(vnf_id=17)->[Vertical()]{1,6}->Host()";
        let b = "Retrieve  P   From PATHS P Where P MATCHES VNF( vnf_id = 99 ) -> [Vertical()]{1,6} -> Host()";
        assert_eq!(normalize(a), normalize(b));
        assert_eq!(fingerprint(a), fingerprint(b));
        // String literals normalize too.
        assert_eq!(
            fingerprint("Select x From PATHS P Where source(P).name = 'a'"),
            fingerprint("Select x From PATHS P Where source(P).name = 'zz'")
        );
    }

    #[test]
    fn normalization_keeps_structure() {
        // Repetition bounds are structural, not literals.
        assert_ne!(
            fingerprint("VNF()->[V()]{1,6}->Host(host_id=1)"),
            fingerprint("VNF()->[V()]{1,4}->Host(host_id=1)")
        );
        // Different classes differ.
        assert_ne!(fingerprint("VNF(vnf_id=1)"), fingerprint("Host(host_id=1)"));
        // Identifier-embedded digits survive.
        assert_eq!(normalize("T3()->T1()"), "T3()->T1()");
    }

    #[test]
    fn qerror_is_symmetric_and_clamped() {
        assert_eq!(qerror(10.0, 10), 1.0);
        assert_eq!(qerror(100.0, 10), 10.0);
        assert_eq!(qerror(10.0, 100), 10.0);
        assert_eq!(qerror(0.0, 0), 1.0, "both sides clamp to 1");
        assert_eq!(qerror(f64::NAN, 5), 5.0);
    }

    fn sample_record() -> QlogRecord {
        QlogRecord {
            ts_ms: 1700000000123,
            query: "Retrieve P From PATHS P Where P MATCHES VNF()->Host(host_id=3)".into(),
            fingerprint: fingerprint("Retrieve P From PATHS P Where P MATCHES VNF()->Host(host_id=3)"),
            trace_id: Some(42),
            threads: 4,
            parse_ns: 10,
            plan_ns: 20,
            exec_ns: 30,
            total_ns: 70,
            rows: 5,
            digest: 0xdead_beef_0123_4567,
            error: None,
            feedback: PlanFeedback {
                vars: vec![VarFeedback {
                    var: "P".into(),
                    backend: "native".into(),
                    anchor: "VNF()".into(),
                    est_rows: 33.0,
                    actual_rows: 66,
                    pathways: 5,
                    eval_ns: 25,
                    candidates: vec![("VNF()".into(), 33.0), ("Host(host_id=3)".into(), 1.0)],
                }],
                joins: vec![JoinFeedback { var: "P".into(), probe: 1, build: 5, emitted: 5 }],
            },
        }
    }

    #[test]
    fn read_records_skips_torn_trailing_line() {
        let dir = std::env::temp_dir().join(format!("nepal-qlog-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("qlog.jsonl");
        let rec = sample_record();
        let full = format!("{}\n{}\n", rec.to_json_line(), rec.to_json_line());
        // Chop into the middle of the second record, no trailing newline —
        // exactly what a crash mid-append leaves behind.
        let torn = &full[..full.len() - 25];
        std::fs::write(&path, torn).unwrap();
        let recs = QueryLog::read_records(&path).unwrap();
        assert_eq!(recs.len(), 1, "the intact record before the tear survives");
        assert_eq!(recs[0], rec);
        // A fully terminated log still reads both.
        std::fs::write(&path, &full).unwrap();
        assert_eq!(QueryLog::read_records(&path).unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn record_round_trips_through_json() {
        let rec = sample_record();
        let line = rec.to_json_line();
        assert!(!line.contains('\n'));
        let back = QlogRecord::parse(&line).expect("parses");
        assert_eq!(back, rec);
        // Error records round-trip too.
        let err = QlogRecord::for_error("Retrieve P From", 99, "syntax error: \"oops\"", None, 1);
        let back = QlogRecord::parse(&err.to_json_line()).unwrap();
        assert_eq!(back, err);
        assert_eq!(back.error.as_deref(), Some("syntax error: \"oops\""));
    }

    #[test]
    fn hindsight_anchor_reranks_with_the_observed_cardinality() {
        let rec = sample_record();
        let v = &rec.feedback.vars[0];
        // Chosen VNF() estimated 33 but produced 66; Host(host_id=3) was
        // estimated at 1 — in hindsight the unique host wins.
        assert_eq!(v.qerror(), 2.0);
        assert_eq!(v.hindsight_anchor(), "Host(host_id=3)");
        // A robust choice keeps its anchor.
        let mut v2 = v.clone();
        v2.actual_rows = 33;
        v2.candidates = vec![("VNF()".into(), 33.0), ("Host()".into(), 200.0)];
        assert_eq!(v2.hindsight_anchor(), "VNF()");
    }

    #[test]
    fn query_log_rotates_at_the_size_bound() {
        let dir = std::env::temp_dir().join(format!("nepal-qlog-rot-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("q.jsonl");
        let _ = std::fs::remove_file(&path);
        let log = QueryLog::open(&path, 512, 2).unwrap();
        let rec = sample_record();
        let line_len = rec.to_json_line().len() as u64 + 1;
        let writes = (512 / line_len + 2) * 3;
        for _ in 0..writes {
            log.append(&rec);
        }
        assert_eq!(log.records(), writes);
        assert!(log.rotations() >= 2, "rotated at least twice: {}", log.rotations());
        assert!(log.bytes() <= 512 + line_len, "live file stays bounded");
        // Generations exist and stay within the retention bound.
        assert!(path.exists());
        assert!(dir.join("q.jsonl.1").exists());
        assert!(!dir.join("q.jsonl.3").exists(), "generation 3 never created (max_files = 2)");
        // Every retained line still parses.
        let records = QueryLog::read_records(&path).unwrap();
        assert!(records.iter().all(|r| r.fingerprint == rec.fingerprint));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn feedback_ranks_worst_fingerprints_first() {
        let fb = EstimateFeedback::new();
        let mut good = sample_record();
        good.query = "Retrieve P From PATHS P Where P MATCHES VM()".into();
        good.fingerprint = 1;
        good.feedback.vars[0].est_rows = 66.0; // perfect
        let mut bad = sample_record();
        bad.fingerprint = 2;
        bad.feedback.vars[0].est_rows = 2.0; // 33x off
        fb.observe(&good);
        fb.observe(&bad);
        fb.observe(&bad);
        assert_eq!(fb.len(), 2);
        let top = fb.top(10);
        assert_eq!(top[0].fingerprint, 2);
        assert_eq!(top[0].count, 2);
        assert!(top[0].max_qerror > 30.0);
        assert_eq!(top[1].fingerprint, 1);
        assert_eq!(top[1].max_qerror, 1.0);
        assert!(top[0].mischosen(), "hindsight prefers the unique anchor");
        let text = fb.render_text(1);
        assert!(text.contains("->"), "{text}");
        let json = fb.render_json();
        assert!(json_parse(&json).is_some(), "{json}");
        assert!(json.contains("\"mischosen\":true"), "{json}");
    }

    #[test]
    fn errored_records_count_but_carry_no_estimates() {
        let fb = EstimateFeedback::new();
        fb.observe(&QlogRecord::for_error("Retrieve P From", 9, "parse error", None, 1));
        assert!(fb.is_empty());
    }

    #[test]
    fn json_parser_handles_escapes_and_nesting() {
        let v = json_parse(r#"{"a":[1,2.5,-3],"b":"x\"yA","c":{"d":null,"e":true}}"#).unwrap();
        let obj = v.as_obj().unwrap();
        let a = obj_get(obj, "a").unwrap().as_arr().unwrap();
        assert_eq!(a[1].as_f64(), Some(2.5));
        assert_eq!(a[2].as_f64(), Some(-3.0));
        assert_eq!(obj_get(obj, "b").unwrap().as_str(), Some("x\"yA"));
        assert!(json_parse("{broken").is_none());
        assert!(json_parse("[1,2] trailing").is_none());
    }
}
