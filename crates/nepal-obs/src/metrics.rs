//! Atomic metric primitives and the process-wide registry.
//!
//! All primitives are lock-free on the hot path (a single
//! `fetch_add(Relaxed)`); the registry itself takes a mutex only on
//! registration, lookup and rendering.
//!
//! A metric *family* is one name plus a set of label combinations
//! (`nepal_store_bytes{class="VM"}`, …). The unlabeled family is the
//! common case and keeps the original `counter`/`gauge`/`histogram`
//! entry points; `*_labeled` variants add one handle per label set.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets. Bucket `i` counts observations `v` with
/// `2^(i-1) < v ≤ 2^i` (bucket 0 counts `v ≤ 1`), so 64 buckets cover the
/// full `u64` range — nanosecond latencies up to ~584 years.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Log₂-bucketed histogram for latency-style observations.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// Estimated `q`-quantile over raw per-bucket counts (see
/// [`Histogram::quantile`] for the interpolation and its error bound).
/// Exposed so callers holding a *delta* between two bucket snapshots (a
/// windowed view) can reuse the estimator.
pub fn quantile_from_counts(counts: &[u64; HISTOGRAM_BUCKETS], q: f64) -> u64 {
    let count: u64 = counts.iter().sum();
    if count == 0 {
        return 0;
    }
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut cum = 0u64;
    for (i, &n) in counts.iter().enumerate() {
        if n == 0 {
            continue;
        }
        let bound = if i >= 63 { u64::MAX } else { 1u64 << i };
        if cum + n >= rank {
            let hi = bound as f64;
            let lo = if bound <= 1 { 0.0 } else { (bound / 2) as f64 };
            let frac = (rank - cum) as f64 / n as f64;
            let v = if lo == 0.0 { hi * frac } else { lo * (hi / lo).powf(frac) };
            return v.round() as u64;
        }
        cum += n;
    }
    0
}

impl Histogram {
    fn bucket_index(v: u64) -> usize {
        // Smallest i with v <= 2^i.
        (64 - v.saturating_sub(1).leading_zeros()) as usize
    }

    pub fn observe(&self, v: u64) {
        let idx = Self::bucket_index(v).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Raw per-bucket counts — the cumulative snapshot a windowed consumer
    /// (e.g. the SLO burn-rate engine) diffs between evaluations.
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Estimated `q`-quantile (0 < q ≤ 1) with log-linear interpolation
    /// inside the log₂ bucket holding the rank: the rank's fractional
    /// position `f` in the bucket `(lo, hi]` maps to `lo · (hi/lo)^f`
    /// (plain linear `hi · f` for the first bucket, whose lower bound is
    /// 0).
    ///
    /// Error bound: the estimate is exact at bucket boundaries; inside a
    /// bucket the true value and the estimate both lie in `(lo, 2·lo]`, so
    /// the worst-case *relative* error is the bucket width ratio — the
    /// estimate is within a factor of 2 of the true quantile (at most
    /// +100% / −50%), hit only when all of a bucket's mass sits at the
    /// opposite end from where the interpolation places the rank. For
    /// smooth distributions the log-linear assumption lands within a few
    /// percent (see the pinning test below).
    pub fn quantile(&self, q: f64) -> u64 {
        quantile_from_counts(&self.bucket_counts(), q)
    }

    /// Per-bucket counts with their inclusive upper bounds, up to and
    /// including the last non-empty bucket.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                let bound = if i >= 63 { u64::MAX } else { 1u64 << i };
                out.push((bound, n));
            }
        }
        out
    }
}

/// One family: all label sets of one name, keyed by the rendered label
/// pairs (`class="VM"`; the empty string is the unlabeled sample).
enum Metric {
    Counter(BTreeMap<String, Arc<Counter>>),
    Gauge(BTreeMap<String, Arc<Gauge>>),
    Histogram(BTreeMap<String, Arc<Histogram>>),
}

struct Entry {
    help: String,
    metric: Metric,
}

/// Named metric families, rendered in Prometheus text exposition format
/// or JSON.
///
/// Cheap to share: handles returned by `counter`/`gauge`/`histogram` are
/// `Arc`s that bypass the registry lock entirely on update.
#[derive(Default)]
pub struct MetricsRegistry {
    entries: Mutex<BTreeMap<String, Entry>>,
}

fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' }).collect()
}

/// Escape a label value per the exposition format: backslash, quote, LF.
fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Render `[("class", "VM")]` as `class="VM"` (empty for no labels).
fn label_key(labels: &[(&str, &str)]) -> String {
    labels.iter().map(|(k, v)| format!("{}=\"{}\"", sanitize(k), escape_label_value(v))).collect::<Vec<_>>().join(",")
}

/// `name` or `name{labels}` for a sample line.
fn series(name: &str, labels: &str) -> String {
    if labels.is_empty() {
        name.to_string()
    } else {
        format!("{name}{{{labels}}}")
    }
}

/// `{le="…"}` merged with any family labels.
fn series_le(name: &str, labels: &str, le: &str) -> String {
    if labels.is_empty() {
        format!("{name}_bucket{{le=\"{le}\"}}")
    } else {
        format!("{name}_bucket{{{labels},le=\"{le}\"}}")
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the unlabeled counter of a family. The help text of
    /// the first registration wins; registering an existing name with a
    /// different metric type panics (a programming error, not runtime
    /// input).
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_labeled(name, &[], help)
    }

    /// Get or create the counter for one label set of a family.
    pub fn counter_labeled(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Counter> {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let entry = entries
            .entry(sanitize(name))
            .or_insert_with(|| Entry { help: help.to_string(), metric: Metric::Counter(BTreeMap::new()) });
        match &mut entry.metric {
            Metric::Counter(m) => m.entry(label_key(labels)).or_default().clone(),
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_labeled(name, &[], help)
    }

    pub fn gauge_labeled(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Gauge> {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let entry = entries
            .entry(sanitize(name))
            .or_insert_with(|| Entry { help: help.to_string(), metric: Metric::Gauge(BTreeMap::new()) });
        match &mut entry.metric {
            Metric::Gauge(m) => m.entry(label_key(labels)).or_default().clone(),
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_labeled(name, &[], help)
    }

    pub fn histogram_labeled(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Histogram> {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let entry = entries
            .entry(sanitize(name))
            .or_insert_with(|| Entry { help: help.to_string(), metric: Metric::Histogram(BTreeMap::new()) });
        match &mut entry.metric {
            Metric::Histogram(m) => m.entry(label_key(labels)).or_default().clone(),
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    /// Sum of a counter family across all its label sets, if registered.
    /// The read-by-name hook for pull-time consumers (the SLO engine).
    pub fn counter_total(&self, name: &str) -> Option<u64> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        match &entries.get(&sanitize(name))?.metric {
            Metric::Counter(m) => Some(m.values().map(|c| c.get()).sum()),
            _ => None,
        }
    }

    /// Sum of a gauge family across all its label sets, if registered.
    pub fn gauge_total(&self, name: &str) -> Option<i64> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        match &entries.get(&sanitize(name))?.metric {
            Metric::Gauge(m) => Some(m.values().map(|g| g.get()).sum()),
            _ => None,
        }
    }

    /// A handle on a histogram family: the unlabeled member when present,
    /// otherwise the family's sole member.
    pub fn histogram_handle(&self, name: &str) -> Option<Arc<Histogram>> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        match &entries.get(&sanitize(name))?.metric {
            Metric::Histogram(m) => {
                m.get("").cloned().or_else(|| (m.len() == 1).then(|| m.values().next().unwrap().clone()))
            }
            _ => None,
        }
    }

    /// Prometheus text exposition format: every family gets `# HELP` /
    /// `# TYPE` headers followed by its samples, histograms as cumulative
    /// `_bucket{le="…"}` series plus `_sum` and `_count`. The estimated
    /// p50/p95/p99 of each histogram are exported as three derived gauge
    /// families (`<name>_p50`, …) with their own headers.
    pub fn render_prometheus(&self) -> String {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        for (name, entry) in entries.iter() {
            let help = entry.help.replace('\n', " ");
            match &entry.metric {
                Metric::Counter(m) => {
                    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
                    for (labels, c) in m {
                        out.push_str(&format!("{} {}\n", series(name, labels), c.get()));
                    }
                }
                Metric::Gauge(m) => {
                    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n"));
                    for (labels, g) in m {
                        out.push_str(&format!("{} {}\n", series(name, labels), g.get()));
                    }
                }
                Metric::Histogram(m) => {
                    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
                    for (labels, h) in m {
                        let mut cumulative = 0u64;
                        for (bound, n) in h.buckets() {
                            cumulative += n;
                            out.push_str(&format!("{} {cumulative}\n", series_le(name, labels, &bound.to_string())));
                        }
                        out.push_str(&format!("{} {}\n", series_le(name, labels, "+Inf"), h.count()));
                        out.push_str(&format!("{} {}\n", series(&format!("{name}_sum"), labels), h.sum()));
                        out.push_str(&format!("{} {}\n", series(&format!("{name}_count"), labels), h.count()));
                    }
                    for (suffix, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
                        let qname = format!("{name}_{suffix}");
                        out.push_str(&format!(
                            "# HELP {qname} Estimated {q} quantile of {name}\n# TYPE {qname} gauge\n"
                        ));
                        for (labels, h) in m {
                            out.push_str(&format!("{} {}\n", series(&qname, labels), h.quantile(q)));
                        }
                    }
                }
            }
        }
        out
    }

    /// Numeric snapshot of every series, for the metrics history ring:
    /// counters and gauges yield one `(series, value)` pair each;
    /// histograms yield `_count`, `_sum` and estimated `_p50`/`_p95`/`_p99`
    /// per label set. Series names match the Prometheus rendering.
    pub fn scrape(&self) -> Vec<(String, f64)> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = Vec::new();
        for (name, entry) in entries.iter() {
            match &entry.metric {
                Metric::Counter(m) => {
                    for (labels, c) in m {
                        out.push((series(name, labels), c.get() as f64));
                    }
                }
                Metric::Gauge(m) => {
                    for (labels, g) in m {
                        out.push((series(name, labels), g.get() as f64));
                    }
                }
                Metric::Histogram(m) => {
                    for (labels, h) in m {
                        out.push((series(&format!("{name}_count"), labels), h.count() as f64));
                        out.push((series(&format!("{name}_sum"), labels), h.sum() as f64));
                        out.push((series(&format!("{name}_p50"), labels), h.quantile(0.50) as f64));
                        out.push((series(&format!("{name}_p95"), labels), h.quantile(0.95) as f64));
                        out.push((series(&format!("{name}_p99"), labels), h.quantile(0.99) as f64));
                    }
                }
            }
        }
        out
    }

    /// Every registered family as `(name, type, help)`, in name order —
    /// the enumeration the metrics-reference docs test renders.
    pub fn families(&self) -> Vec<(String, &'static str, String)> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries
            .iter()
            .map(|(name, entry)| {
                let kind = match &entry.metric {
                    Metric::Counter(_) => "counter",
                    Metric::Gauge(_) => "gauge",
                    Metric::Histogram(_) => "histogram",
                };
                (name.clone(), kind, entry.help.clone())
            })
            .collect()
    }

    /// JSON object keyed by series (`name` or `name{labels}`). Histograms
    /// carry `{"count", "sum", "buckets": [[le, n], …]}`.
    pub fn render_json(&self) -> String {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::from("{");
        let mut first = true;
        let mut emit = |s: String, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str(&s);
        };
        for (name, entry) in entries.iter() {
            match &entry.metric {
                Metric::Counter(m) => {
                    for (labels, c) in m {
                        emit(format!("\"{}\":{}", json_escape(&series(name, labels)), c.get()), &mut first);
                    }
                }
                Metric::Gauge(m) => {
                    for (labels, g) in m {
                        emit(format!("\"{}\":{}", json_escape(&series(name, labels)), g.get()), &mut first);
                    }
                }
                Metric::Histogram(m) => {
                    for (labels, h) in m {
                        let mut s = format!(
                            "\"{}\":{{\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[",
                            json_escape(&series(name, labels)),
                            h.count(),
                            h.sum(),
                            h.quantile(0.50),
                            h.quantile(0.95),
                            h.quantile(0.99)
                        );
                        let mut bfirst = true;
                        for (bound, n) in h.buckets() {
                            if !bfirst {
                                s.push(',');
                            }
                            bfirst = false;
                            s.push_str(&format!("[{bound},{n}]"));
                        }
                        s.push_str("]}");
                        emit(s, &mut first);
                    }
                }
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("nepal_queries_total", "Total queries executed");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name returns the same underlying counter.
        assert_eq!(reg.counter("nepal_queries_total", "ignored").get(), 5);
        let g = reg.gauge("nepal_backends", "Registered backends");
        g.set(3);
        g.add(-1);
        assert_eq!(g.get(), 2);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let h = Histogram::default();
        h.observe(0);
        h.observe(1); // ≤ 2^0
        h.observe(2); // ≤ 2^1
        h.observe(3); // ≤ 2^2
        h.observe(1024); // ≤ 2^10
        h.observe(1025); // ≤ 2^11
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 2055);
        let buckets = h.buckets();
        assert_eq!(buckets, vec![(1, 2), (2, 1), (4, 1), (1024, 1), (2048, 1)]);
    }

    #[test]
    fn prometheus_rendering_is_valid_exposition_format() {
        let reg = MetricsRegistry::new();
        reg.counter("nepal_queries_total", "Total queries executed").add(7);
        reg.gauge("nepal_slow_log_len", "Entries in the slow-query log").set(2);
        let h = reg.histogram("nepal_query_ns", "Query latency in ns");
        h.observe(100);
        h.observe(5000);
        let text = reg.render_prometheus();

        // Line-oriented: every line is a comment or `name{labels} value`,
        // and every family (incl. the derived quantile gauges) carries
        // both headers.
        let mut help_seen = 0;
        let mut type_seen = 0;
        for line in text.lines() {
            assert!(!line.trim().is_empty());
            if let Some(rest) = line.strip_prefix("# HELP ") {
                assert!(rest.contains(' '));
                help_seen += 1;
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split_whitespace();
                let _name = parts.next().unwrap();
                let kind = parts.next().unwrap();
                assert!(["counter", "gauge", "histogram"].contains(&kind), "{kind}");
                type_seen += 1;
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("sample line");
            assert!(value.parse::<f64>().is_ok(), "unparseable value in {line:?}");
            let name_part = series.split('{').next().unwrap();
            assert!(
                name_part.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name {name_part:?}"
            );
        }
        // counter + gauge + histogram + three derived quantile families.
        assert_eq!(help_seen, 6);
        assert_eq!(type_seen, 6);

        // Histogram series are cumulative and end with +Inf == count.
        assert!(text.contains("nepal_query_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("nepal_query_ns_sum 5100"));
        assert!(text.contains("nepal_query_ns_count 2"));
        // Specific samples.
        assert!(text.contains("nepal_queries_total 7"));
        assert!(text.contains("nepal_slow_log_len 2"));
    }

    #[test]
    fn labeled_families_share_headers_and_sum_in_totals() {
        let reg = MetricsRegistry::new();
        let a = reg.gauge_labeled("nepal_store_bytes", &[("class", "VM")], "Estimated heap bytes");
        let b = reg.gauge_labeled("nepal_store_bytes", &[("class", "Host")], "ignored");
        a.set(100);
        b.set(40);
        // Same (name, labels) returns the same handle.
        reg.gauge_labeled("nepal_store_bytes", &[("class", "VM")], "x").add(1);
        assert_eq!(a.get(), 101);
        assert_eq!(reg.gauge_total("nepal_store_bytes"), Some(141));
        assert_eq!(reg.gauge_total("nope"), None);

        let text = reg.render_prometheus();
        assert_eq!(text.matches("# HELP nepal_store_bytes ").count(), 1, "one header per family:\n{text}");
        assert_eq!(text.matches("# TYPE nepal_store_bytes ").count(), 1);
        assert!(text.contains("nepal_store_bytes{class=\"Host\"} 40"), "{text}");
        assert!(text.contains("nepal_store_bytes{class=\"VM\"} 101"), "{text}");

        let json = reg.render_json();
        assert!(json.contains("\"nepal_store_bytes{class=\\\"VM\\\"}\":101"), "{json}");

        // Label values are escaped, label names sanitized.
        reg.counter_labeled("hits_total", &[("pa th", "a\"b\\c")], "h").inc();
        let text = reg.render_prometheus();
        assert!(text.contains("hits_total{pa_th=\"a\\\"b\\\\c\"} 1"), "{text}");
    }

    #[test]
    fn counter_total_and_histogram_handle_lookups() {
        let reg = MetricsRegistry::new();
        reg.counter("errs_total", "e").add(3);
        assert_eq!(reg.counter_total("errs_total"), Some(3));
        assert_eq!(reg.counter_total("missing"), None);
        let h = reg.histogram("lat_ns", "l");
        h.observe(7);
        let again = reg.histogram_handle("lat_ns").expect("registered");
        assert_eq!(again.count(), 1);
        assert!(reg.histogram_handle("errs_total").is_none(), "type mismatch yields None");
    }

    #[test]
    fn json_rendering_includes_all_metrics() {
        let reg = MetricsRegistry::new();
        reg.counter("a_total", "a").add(3);
        reg.histogram("b_ns", "b").observe(9);
        let json = reg.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"a_total\":3"));
        // 9 lands in the (8, 16] bucket; rank 1 of 1 interpolates to the
        // bucket's upper bound for every quantile.
        assert!(json.contains("\"b_ns\":{\"count\":1,\"sum\":9,\"p50\":16,\"p95\":16,\"p99\":16,\"buckets\":[[16,1]]}"));
    }

    #[test]
    fn quantiles_interpolate_log_linearly() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        for _ in 0..100 {
            h.observe(1000); // (512, 1024] bucket
        }
        // Every observation in one bucket: p50 interpolates halfway up in
        // log space (512·2^0.5 ≈ 724), p99/p100 approach the upper bound.
        let p50 = h.quantile(0.5);
        assert!((700..=750).contains(&p50), "{p50}");
        assert_eq!(h.quantile(1.0), 1024);
        // Exact at boundaries for a uniform two-bucket split.
        let h2 = Histogram::default();
        h2.observe(2);
        h2.observe(4);
        assert_eq!(h2.quantile(0.5), 2);
        assert_eq!(h2.quantile(1.0), 4);
    }

    /// Pin p50/p95/p99 on a known distribution (uniform 1..=1000) and
    /// check the documented worst-case factor-2 bound on an adversarial
    /// single-point distribution.
    #[test]
    fn quantile_estimates_pinned_on_known_distribution() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        // True quantiles: 500 / 950 / 990. Log-linear interpolation on the
        // uniform distribution lands within a few percent.
        let (p50, p95, p99) = (h.quantile(0.50), h.quantile(0.95), h.quantile(0.99));
        assert!((480..=520).contains(&p50), "p50 {p50}");
        assert!((920..=990).contains(&p95), "p95 {p95}");
        assert!((960..=1030).contains(&p99), "p99 {p99}");
        // Never the plain bucket upper bound (the pre-interpolation bug
        // reported 512 / 1024 / 1024 here).
        assert_ne!(p50, 512);

        // Worst case: all mass at one end of the (512, 1024] bucket. Any
        // quantile estimate must stay within a factor 2 of the true 1000.
        let w = Histogram::default();
        for _ in 0..1000 {
            w.observe(1000);
        }
        for q in [0.01, 0.5, 0.99] {
            let est = w.quantile(q);
            assert!((512..=1024).contains(&est), "q={q} est={est} outside factor-2 band");
        }
    }

    #[test]
    fn prometheus_includes_quantile_samples() {
        let reg = MetricsRegistry::new();
        reg.histogram("q_ns", "q").observe(9);
        let text = reg.render_prometheus();
        assert!(text.contains("q_ns_p50 16"));
        assert!(text.contains("q_ns_p95 16"));
        assert!(text.contains("q_ns_p99 16"));
        // Derived quantile families are proper gauge families.
        assert!(text.contains("# TYPE q_ns_p50 gauge"), "{text}");
    }

    #[test]
    fn scrape_and_families_enumerate_every_series() {
        let reg = MetricsRegistry::new();
        reg.counter("s_total", "scraped counter").add(3);
        reg.gauge_labeled("s_gauge", &[("class", "VM")], "scraped gauge").set(7);
        reg.histogram("s_ns", "scraped histogram").observe(9);
        let snap = reg.scrape();
        let get = |n: &str| snap.iter().find(|(k, _)| k == n).map(|(_, v)| *v);
        assert_eq!(get("s_total"), Some(3.0));
        assert_eq!(get("s_gauge{class=\"VM\"}"), Some(7.0));
        assert_eq!(get("s_ns_count"), Some(1.0));
        assert_eq!(get("s_ns_sum"), Some(9.0));
        assert_eq!(get("s_ns_p99"), Some(16.0));
        let fams = reg.families();
        assert_eq!(
            fams,
            vec![
                ("s_gauge".to_string(), "gauge", "scraped gauge".to_string()),
                ("s_ns".to_string(), "histogram", "scraped histogram".to_string()),
                ("s_total".to_string(), "counter", "scraped counter".to_string()),
            ]
        );
    }

    #[test]
    fn metric_names_are_sanitized() {
        let reg = MetricsRegistry::new();
        reg.counter("weird name-with.chars", "x").inc();
        assert!(reg.render_prometheus().contains("weird_name_with_chars 1"));
    }
}
