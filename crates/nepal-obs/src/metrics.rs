//! Atomic metric primitives and the process-wide registry.
//!
//! All primitives are lock-free on the hot path (a single
//! `fetch_add(Relaxed)`); the registry itself takes a mutex only on
//! registration and rendering.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets. Bucket `i` counts observations `v` with
/// `2^(i-1) < v ≤ 2^i` (bucket 0 counts `v ≤ 1`), so 64 buckets cover the
/// full `u64` range — nanosecond latencies up to ~584 years.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Log₂-bucketed histogram for latency-style observations.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    fn bucket_index(v: u64) -> usize {
        // Smallest i with v <= 2^i.
        (64 - v.saturating_sub(1).leading_zeros()) as usize
    }

    pub fn observe(&self, v: u64) {
        let idx = Self::bucket_index(v).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Estimated `q`-quantile (0 < q ≤ 1) with log-linear interpolation
    /// inside the log₂ bucket holding the rank: the rank's fractional
    /// position `f` in the bucket `(lo, hi]` maps to `lo · (hi/lo)^f`
    /// (plain linear `hi · f` for the first bucket, whose lower bound is
    /// 0). Exact at bucket boundaries, within a factor ~2 inside.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cum = 0u64;
        for (bound, n) in self.buckets() {
            if cum + n >= rank {
                let hi = bound as f64;
                let lo = if bound <= 1 { 0.0 } else { (bound / 2) as f64 };
                let frac = (rank - cum) as f64 / n as f64;
                let v = if lo == 0.0 { hi * frac } else { lo * (hi / lo).powf(frac) };
                return v.round() as u64;
            }
            cum += n;
        }
        self.buckets().last().map(|(b, _)| *b).unwrap_or(0)
    }

    /// Per-bucket counts with their inclusive upper bounds, up to and
    /// including the last non-empty bucket.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                let bound = if i >= 63 { u64::MAX } else { 1u64 << i };
                out.push((bound, n));
            }
        }
        out
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Entry {
    help: String,
    metric: Metric,
}

/// Named metrics, rendered in Prometheus text exposition format or JSON.
///
/// Cheap to share: handles returned by `counter`/`gauge`/`histogram` are
/// `Arc`s that bypass the registry lock entirely on update.
#[derive(Default)]
pub struct MetricsRegistry {
    entries: Mutex<BTreeMap<String, Entry>>,
}

fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' }).collect()
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create a counter. The help text of the first registration
    /// wins; registering an existing name with a different metric type
    /// panics (a programming error, not runtime input).
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let entry = entries
            .entry(sanitize(name))
            .or_insert_with(|| Entry { help: help.to_string(), metric: Metric::Counter(Arc::new(Counter::default())) });
        match &entry.metric {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let entry = entries
            .entry(sanitize(name))
            .or_insert_with(|| Entry { help: help.to_string(), metric: Metric::Gauge(Arc::new(Gauge::default())) });
        match &entry.metric {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let entry = entries.entry(sanitize(name)).or_insert_with(|| Entry {
            help: help.to_string(),
            metric: Metric::Histogram(Arc::new(Histogram::default())),
        });
        match &entry.metric {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    /// Prometheus text exposition format: `# HELP` / `# TYPE` headers
    /// followed by samples, histograms as cumulative `_bucket{le="…"}`
    /// series plus `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        for (name, entry) in entries.iter() {
            out.push_str(&format!("# HELP {name} {}\n", entry.help.replace('\n', " ")));
            match &entry.metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.get()));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", g.get()));
                }
                Metric::Histogram(h) => {
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    let mut cumulative = 0u64;
                    for (bound, n) in h.buckets() {
                        cumulative += n;
                        out.push_str(&format!("{name}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
                    }
                    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
                    out.push_str(&format!("{name}_sum {}\n", h.sum()));
                    out.push_str(&format!("{name}_count {}\n", h.count()));
                    out.push_str(&format!("{name}_p50 {}\n", h.quantile(0.50)));
                    out.push_str(&format!("{name}_p95 {}\n", h.quantile(0.95)));
                    out.push_str(&format!("{name}_p99 {}\n", h.quantile(0.99)));
                }
            }
        }
        out
    }

    /// JSON object keyed by metric name. Histograms carry
    /// `{"count", "sum", "buckets": [[le, n], …]}`.
    pub fn render_json(&self) -> String {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::from("{");
        let mut first = true;
        for (name, entry) in entries.iter() {
            if !first {
                out.push(',');
            }
            first = false;
            match &entry.metric {
                Metric::Counter(c) => out.push_str(&format!("\"{name}\":{}", c.get())),
                Metric::Gauge(g) => out.push_str(&format!("\"{name}\":{}", g.get())),
                Metric::Histogram(h) => {
                    out.push_str(&format!(
                        "\"{name}\":{{\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[",
                        h.count(),
                        h.sum(),
                        h.quantile(0.50),
                        h.quantile(0.95),
                        h.quantile(0.99)
                    ));
                    let mut bfirst = true;
                    for (bound, n) in h.buckets() {
                        if !bfirst {
                            out.push(',');
                        }
                        bfirst = false;
                        out.push_str(&format!("[{bound},{n}]"));
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("nepal_queries_total", "Total queries executed");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name returns the same underlying counter.
        assert_eq!(reg.counter("nepal_queries_total", "ignored").get(), 5);
        let g = reg.gauge("nepal_backends", "Registered backends");
        g.set(3);
        g.add(-1);
        assert_eq!(g.get(), 2);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let h = Histogram::default();
        h.observe(0);
        h.observe(1); // ≤ 2^0
        h.observe(2); // ≤ 2^1
        h.observe(3); // ≤ 2^2
        h.observe(1024); // ≤ 2^10
        h.observe(1025); // ≤ 2^11
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 2055);
        let buckets = h.buckets();
        assert_eq!(buckets, vec![(1, 2), (2, 1), (4, 1), (1024, 1), (2048, 1)]);
    }

    #[test]
    fn prometheus_rendering_is_valid_exposition_format() {
        let reg = MetricsRegistry::new();
        reg.counter("nepal_queries_total", "Total queries executed").add(7);
        reg.gauge("nepal_slow_log_len", "Entries in the slow-query log").set(2);
        let h = reg.histogram("nepal_query_ns", "Query latency in ns");
        h.observe(100);
        h.observe(5000);
        let text = reg.render_prometheus();

        // Line-oriented: every line is a comment or `name{labels} value`.
        let mut help_seen = 0;
        let mut type_seen = 0;
        for line in text.lines() {
            assert!(!line.trim().is_empty());
            if let Some(rest) = line.strip_prefix("# HELP ") {
                assert!(rest.contains(' '));
                help_seen += 1;
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split_whitespace();
                let _name = parts.next().unwrap();
                let kind = parts.next().unwrap();
                assert!(["counter", "gauge", "histogram"].contains(&kind), "{kind}");
                type_seen += 1;
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("sample line");
            assert!(value.parse::<f64>().is_ok(), "unparseable value in {line:?}");
            let name_part = series.split('{').next().unwrap();
            assert!(
                name_part.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name {name_part:?}"
            );
        }
        assert_eq!(help_seen, 3);
        assert_eq!(type_seen, 3);

        // Histogram series are cumulative and end with +Inf == count.
        assert!(text.contains("nepal_query_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("nepal_query_ns_sum 5100"));
        assert!(text.contains("nepal_query_ns_count 2"));
        // Specific samples.
        assert!(text.contains("nepal_queries_total 7"));
        assert!(text.contains("nepal_slow_log_len 2"));
    }

    #[test]
    fn json_rendering_includes_all_metrics() {
        let reg = MetricsRegistry::new();
        reg.counter("a_total", "a").add(3);
        reg.histogram("b_ns", "b").observe(9);
        let json = reg.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"a_total\":3"));
        // 9 lands in the (8, 16] bucket; rank 1 of 1 interpolates to the
        // bucket's upper bound for every quantile.
        assert!(json.contains("\"b_ns\":{\"count\":1,\"sum\":9,\"p50\":16,\"p95\":16,\"p99\":16,\"buckets\":[[16,1]]}"));
    }

    #[test]
    fn quantiles_interpolate_log_linearly() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        for _ in 0..100 {
            h.observe(1000); // (512, 1024] bucket
        }
        // Every observation in one bucket: p50 interpolates halfway up in
        // log space (512·2^0.5 ≈ 724), p99/p100 approach the upper bound.
        let p50 = h.quantile(0.5);
        assert!((700..=750).contains(&p50), "{p50}");
        assert_eq!(h.quantile(1.0), 1024);
        // Exact at boundaries for a uniform two-bucket split.
        let h2 = Histogram::default();
        h2.observe(2);
        h2.observe(4);
        assert_eq!(h2.quantile(0.5), 2);
        assert_eq!(h2.quantile(1.0), 4);
    }

    #[test]
    fn prometheus_includes_quantile_samples() {
        let reg = MetricsRegistry::new();
        reg.histogram("q_ns", "q").observe(9);
        let text = reg.render_prometheus();
        assert!(text.contains("q_ns_p50 16"));
        assert!(text.contains("q_ns_p95 16"));
        assert!(text.contains("q_ns_p99 16"));
    }

    #[test]
    fn metric_names_are_sanitized() {
        let reg = MetricsRegistry::new();
        reg.counter("weird name-with.chars", "x").inc();
        assert!(reg.render_prometheus().contains("weird_name_with_chars 1"));
    }
}
