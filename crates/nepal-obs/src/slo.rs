//! Declarative SLO rules evaluated by a pull-time burn-rate engine.
//!
//! No background thread: every evaluation happens when a consumer asks
//! (`/alerts`, `/healthz`, the REPL's `:health`, a bench harness). Each
//! rule measures one *signal* against a ceiling:
//!
//! - [`SloSignal::LatencyQuantile`] — a quantile of a registered log₂
//!   histogram, computed over the **window** of observations since the
//!   previous evaluation (the delta of the cumulative bucket counts), so
//!   an overload that ends actually resolves instead of being frozen into
//!   the cumulative distribution.
//! - [`SloSignal::ErrorRate`] — the ratio of two counter families over
//!   the same inter-evaluation window.
//! - [`SloSignal::GaugeMax`] — an instantaneous watermark on a gauge
//!   family sum (e.g. `nepal_store_total_bytes`).
//! - [`SloSignal::Probe`] — an arbitrary measured value (e.g. the worst
//!   planner q-error from [`crate::EstimateFeedback`]).
//!
//! Burn rate is `measured / threshold`: 1.0 means the error budget is
//! being consumed exactly at the sustainable rate, >1 means the SLO is
//! being violated. Rules move through a four-state machine:
//!
//! ```text
//! Ok ──breach──▶ Pending ──breach ≥ for_ms──▶ Firing
//!                  │ clean                       │ clean
//!                  ▼                             ▼
//!                 Ok ◀──clean ≥ clear_ms── Resolved ──breach──▶ Firing
//! ```
//!
//! A window with no observations is treated as healthy (nothing burned).

use std::sync::{Arc, Mutex};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::metrics::{quantile_from_counts, Counter, Gauge, MetricsRegistry, HISTOGRAM_BUCKETS};
use crate::trace::esc;

/// What a rule measures. Metric names refer to families in the
/// [`MetricsRegistry`] the engine was built over.
pub enum SloSignal {
    /// `quantile(q)` of `histogram` over the inter-evaluation window must
    /// stay ≤ `max`.
    LatencyQuantile { histogram: String, q: f64, max: u64 },
    /// `Δerrors / Δtotal` over the window must stay ≤ `max_ratio`.
    ErrorRate { errors: String, total: String, max_ratio: f64 },
    /// The gauge family sum must stay ≤ `max`.
    GaugeMax { gauge: String, max: i64 },
    /// `probe()` must stay ≤ `max`.
    Probe { probe: Box<dyn Fn() -> f64 + Send>, max: f64 },
}

/// One declarative SLO rule.
pub struct SloRule {
    pub name: String,
    pub signal: SloSignal,
    /// Sustained-breach duration before Pending escalates to Firing.
    pub for_ms: u64,
    /// How long Resolved lingers before decaying back to Ok.
    pub clear_ms: u64,
}

impl SloRule {
    pub fn new(name: &str, signal: SloSignal) -> SloRule {
        SloRule { name: name.to_string(), signal, for_ms: 0, clear_ms: 0 }
    }

    /// Latency target: `q`-quantile of `histogram` ≤ `max_ns`.
    pub fn latency(name: &str, histogram: &str, q: f64, max_ns: u64) -> SloRule {
        SloRule::new(name, SloSignal::LatencyQuantile { histogram: histogram.to_string(), q, max: max_ns })
    }

    /// Error-rate target: `errors / total` ≤ `max_ratio` per window.
    pub fn error_rate(name: &str, errors: &str, total: &str, max_ratio: f64) -> SloRule {
        SloRule::new(name, SloSignal::ErrorRate { errors: errors.to_string(), total: total.to_string(), max_ratio })
    }

    /// Memory watermark: gauge family sum ≤ `max`.
    pub fn gauge_max(name: &str, gauge: &str, max: i64) -> SloRule {
        SloRule::new(name, SloSignal::GaugeMax { gauge: gauge.to_string(), max })
    }

    /// Arbitrary measured ceiling.
    pub fn probe(name: &str, max: f64, probe: impl Fn() -> f64 + Send + 'static) -> SloRule {
        SloRule::new(name, SloSignal::Probe { probe: Box::new(probe), max })
    }

    /// Require the breach to persist `ms` before firing.
    pub fn pending_for(mut self, ms: u64) -> SloRule {
        self.for_ms = ms;
        self
    }

    /// Keep the Resolved state visible for `ms` after recovery.
    pub fn clear_after(mut self, ms: u64) -> SloRule {
        self.clear_ms = ms;
        self
    }
}

/// Alert lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    Ok,
    Pending { since_ms: u64 },
    Firing { since_ms: u64 },
    Resolved { since_ms: u64 },
}

impl AlertState {
    pub fn name(&self) -> &'static str {
        match self {
            AlertState::Ok => "ok",
            AlertState::Pending { .. } => "pending",
            AlertState::Firing { .. } => "firing",
            AlertState::Resolved { .. } => "resolved",
        }
    }

    pub fn is_firing(&self) -> bool {
        matches!(self, AlertState::Firing { .. })
    }

    /// Compact numeric code used in flight-recorder event payloads.
    pub fn code(&self) -> u64 {
        match self {
            AlertState::Ok => 0,
            AlertState::Pending { .. } => 1,
            AlertState::Firing { .. } => 2,
            AlertState::Resolved { .. } => 3,
        }
    }
}

/// One rule's outcome at an evaluation.
#[derive(Debug, Clone)]
pub struct AlertStatus {
    pub name: String,
    pub state: AlertState,
    /// The measured signal value (ns, ratio, bytes, …).
    pub measured: f64,
    /// The rule's ceiling in the same unit.
    pub threshold: f64,
    /// `measured / threshold`; > 1 burns the budget faster than allowed.
    pub burn: f64,
    pub detail: String,
}

struct RuleState {
    rule: SloRule,
    state: AlertState,
    prev_buckets: Option<[u64; HISTOGRAM_BUCKETS]>,
    prev_counts: Option<(u64, u64)>,
}

/// The pull-time alert engine. Thread-safe; cheap enough to evaluate on
/// every scrape or even per query.
pub struct SloEngine {
    metrics: Arc<MetricsRegistry>,
    rules: Mutex<Vec<RuleState>>,
    firing: Arc<Gauge>,
    transitions: Arc<Counter>,
}

pub(crate) fn now_ms() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0)
}

impl SloEngine {
    pub fn new(metrics: Arc<MetricsRegistry>) -> SloEngine {
        let firing = metrics.gauge("nepal_alerts_firing", "SLO alert rules currently firing");
        let transitions = metrics.counter("nepal_alert_transitions_total", "Alert state-machine transitions observed");
        SloEngine { metrics, rules: Mutex::new(Vec::new()), firing, transitions }
    }

    pub fn add(&self, rule: SloRule) {
        self.rules.lock().unwrap_or_else(|e| e.into_inner()).push(RuleState {
            rule,
            state: AlertState::Ok,
            prev_buckets: None,
            prev_counts: None,
        });
    }

    pub fn rule_count(&self) -> usize {
        self.rules.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Evaluate all rules against wall-clock time.
    pub fn evaluate(&self) -> Vec<AlertStatus> {
        self.evaluate_at(now_ms())
    }

    /// Evaluate all rules at an explicit timestamp (deterministic tests,
    /// replayed benches).
    pub fn evaluate_at(&self, now_ms: u64) -> Vec<AlertStatus> {
        let mut rules = self.rules.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = Vec::with_capacity(rules.len());
        let mut firing = 0i64;
        for rs in rules.iter_mut() {
            let (measured, threshold, breach, detail) = measure(&self.metrics, rs);
            let before = rs.state;
            rs.state = step(rs.state, breach, now_ms, rs.rule.for_ms, rs.rule.clear_ms);
            if rs.state != before {
                self.transitions.inc();
                crate::flight::emit(
                    crate::flight::FlightKind::AlertTransition,
                    before.code(),
                    rs.state.code(),
                    0,
                    &rs.rule.name,
                );
            }
            if rs.state.is_firing() {
                firing += 1;
            }
            let burn = if threshold > 0.0 { measured / threshold } else { 0.0 };
            out.push(AlertStatus { name: rs.rule.name.clone(), state: rs.state, measured, threshold, burn, detail });
        }
        self.firing.set(firing);
        out
    }

    /// Number of rules firing as of the last evaluation.
    pub fn firing_count(&self) -> i64 {
        self.firing.get()
    }
}

/// One state-machine step given whether the signal breaches its ceiling.
fn step(state: AlertState, breach: bool, now_ms: u64, for_ms: u64, clear_ms: u64) -> AlertState {
    match (state, breach) {
        (AlertState::Ok, true) => {
            if for_ms == 0 {
                AlertState::Firing { since_ms: now_ms }
            } else {
                AlertState::Pending { since_ms: now_ms }
            }
        }
        (AlertState::Ok, false) => AlertState::Ok,
        (AlertState::Pending { since_ms }, true) => {
            if now_ms.saturating_sub(since_ms) >= for_ms {
                AlertState::Firing { since_ms: now_ms }
            } else {
                AlertState::Pending { since_ms }
            }
        }
        (AlertState::Pending { .. }, false) => AlertState::Ok,
        (AlertState::Firing { since_ms }, true) => AlertState::Firing { since_ms },
        (AlertState::Firing { .. }, false) => AlertState::Resolved { since_ms: now_ms },
        (AlertState::Resolved { .. }, true) => AlertState::Firing { since_ms: now_ms },
        (AlertState::Resolved { since_ms }, false) => {
            if now_ms.saturating_sub(since_ms) >= clear_ms {
                AlertState::Ok
            } else {
                AlertState::Resolved { since_ms }
            }
        }
    }
}

/// Measure one rule's signal: `(measured, threshold, breach, detail)`.
/// Unregistered metrics and empty windows read as healthy.
fn measure(metrics: &MetricsRegistry, rs: &mut RuleState) -> (f64, f64, bool, String) {
    match &rs.rule.signal {
        SloSignal::LatencyQuantile { histogram, q, max } => {
            let Some(h) = metrics.histogram_handle(histogram) else {
                return (0.0, *max as f64, false, format!("histogram {histogram} not registered"));
            };
            let cur = h.bucket_counts();
            let prev = rs.prev_buckets.unwrap_or([0; HISTOGRAM_BUCKETS]);
            rs.prev_buckets = Some(cur);
            let delta: [u64; HISTOGRAM_BUCKETS] = std::array::from_fn(|i| cur[i].saturating_sub(prev[i]));
            let window: u64 = delta.iter().sum();
            if window == 0 {
                return (0.0, *max as f64, false, "no observations in window".to_string());
            }
            let measured = quantile_from_counts(&delta, *q);
            (
                measured as f64,
                *max as f64,
                measured > *max,
                format!("p{:.0} {}ns over {} obs (target {}ns)", q * 100.0, measured, window, max),
            )
        }
        SloSignal::ErrorRate { errors, total, max_ratio } => {
            let err = metrics.counter_total(errors).unwrap_or(0);
            let tot = metrics.counter_total(total).unwrap_or(0);
            let (perr, ptot) = rs.prev_counts.unwrap_or((0, 0));
            rs.prev_counts = Some((err, tot));
            let (de, dt) = (err.saturating_sub(perr), tot.saturating_sub(ptot));
            if dt == 0 {
                return (0.0, *max_ratio, false, "no requests in window".to_string());
            }
            let ratio = de as f64 / dt as f64;
            (ratio, *max_ratio, ratio > *max_ratio, format!("{de}/{dt} errors in window (max ratio {max_ratio})"))
        }
        SloSignal::GaugeMax { gauge, max } => {
            let v = metrics.gauge_total(gauge).unwrap_or(0);
            (v as f64, *max as f64, v > *max, format!("{gauge} = {v} (max {max})"))
        }
        SloSignal::Probe { probe, max } => {
            let v = probe();
            (v, *max, v > *max, format!("probe = {v:.3} (max {max})"))
        }
    }
}

/// Human-readable `/alerts` body.
pub fn alerts_text(statuses: &[AlertStatus]) -> String {
    if statuses.is_empty() {
        return "no slo rules configured\n".to_string();
    }
    let mut s = format!("{:<28} {:>9} {:>10} {:>8}  detail\n", "rule", "state", "measured", "burn");
    for a in statuses {
        s.push_str(&format!(
            "{:<28} {:>9} {:>10.1} {:>8.2}  {}\n",
            a.name,
            a.state.name(),
            a.measured,
            a.burn,
            a.detail
        ));
    }
    s
}

/// `/alerts.json` body: `{"firing": n, "rules": [...]}`.
pub fn alerts_json(statuses: &[AlertStatus]) -> String {
    let firing = statuses.iter().filter(|a| a.state.is_firing()).count();
    let mut s = format!("{{\"firing\":{firing},\"rules\":[");
    for (i, a) in statuses.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"name\":\"{}\",\"state\":\"{}\",\"measured\":{:.3},\"threshold\":{:.3},\"burn\":{:.3},\"detail\":\"{}\"}}",
            esc(&a.name),
            a.state.name(),
            a.measured,
            a.threshold,
            a.burn,
            esc(&a.detail)
        ));
    }
    s.push_str("]}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn state_machine_walks_ok_pending_firing_resolved() {
        let metrics = Arc::new(MetricsRegistry::new());
        let level = Arc::new(AtomicU64::new(0));
        let probe_level = level.clone();
        let engine = SloEngine::new(metrics);
        engine.add(
            SloRule::probe("probe-ceiling", 10.0, move || probe_level.load(Ordering::Relaxed) as f64)
                .pending_for(100)
                .clear_after(50),
        );

        // Healthy.
        let s = engine.evaluate_at(1_000);
        assert_eq!(s[0].state, AlertState::Ok);
        assert_eq!(engine.firing_count(), 0);

        // Breach begins: pending, not yet firing.
        level.store(40, Ordering::Relaxed);
        let s = engine.evaluate_at(1_010);
        assert_eq!(s[0].state, AlertState::Pending { since_ms: 1_010 });
        assert!((s[0].burn - 4.0).abs() < 1e-9, "burn {}", s[0].burn);

        // Still breaching after for_ms: firing.
        let s = engine.evaluate_at(1_200);
        assert!(s[0].state.is_firing(), "{:?}", s[0].state);
        assert_eq!(engine.firing_count(), 1);

        // Recovery: resolved, then decays to ok after clear_ms.
        level.store(0, Ordering::Relaxed);
        let s = engine.evaluate_at(1_300);
        assert_eq!(s[0].state, AlertState::Resolved { since_ms: 1_300 });
        assert_eq!(engine.firing_count(), 0);
        let s = engine.evaluate_at(1_320);
        assert_eq!(s[0].state, AlertState::Resolved { since_ms: 1_300 }, "lingers inside clear window");
        let s = engine.evaluate_at(1_400);
        assert_eq!(s[0].state, AlertState::Ok);
    }

    #[test]
    fn pending_breach_that_recovers_never_fires() {
        let metrics = Arc::new(MetricsRegistry::new());
        let level = Arc::new(AtomicU64::new(99));
        let probe_level = level.clone();
        let engine = SloEngine::new(metrics);
        engine
            .add(SloRule::probe("spike", 10.0, move || probe_level.load(Ordering::Relaxed) as f64).pending_for(1_000));
        assert_eq!(engine.evaluate_at(0)[0].state, AlertState::Pending { since_ms: 0 });
        level.store(0, Ordering::Relaxed);
        assert_eq!(engine.evaluate_at(500)[0].state, AlertState::Ok);
    }

    #[test]
    fn latency_rule_windows_between_evaluations() {
        let metrics = Arc::new(MetricsRegistry::new());
        let h = metrics.histogram("lat_ns", "latency");
        let engine = SloEngine::new(metrics);
        engine.add(SloRule::latency("p99-latency", "lat_ns", 0.99, 1_000));

        // Slow observations: firing.
        for _ in 0..50 {
            h.observe(1_000_000);
        }
        assert!(engine.evaluate_at(10)[0].state.is_firing());

        // The next window holds only fast observations: the cumulative
        // histogram still remembers the slow ones, the window does not.
        for _ in 0..50 {
            h.observe(10);
        }
        let s = engine.evaluate_at(20);
        assert_eq!(s[0].state, AlertState::Resolved { since_ms: 20 }, "windowed quantile resolves: {}", s[0].detail);
        assert!(s[0].measured <= 16.0, "window p99 {}", s[0].measured);

        // An empty window is healthy.
        let s = engine.evaluate_at(30);
        assert_eq!(s[0].state, AlertState::Ok);
        assert_eq!(s[0].measured, 0.0);
    }

    #[test]
    fn error_rate_burns_on_window_deltas() {
        let metrics = Arc::new(MetricsRegistry::new());
        let errs = metrics.counter("errs_total", "e");
        let tot = metrics.counter("reqs_total", "t");
        let engine = SloEngine::new(metrics);
        engine.add(SloRule::error_rate("error-rate", "errs_total", "reqs_total", 0.01));

        tot.add(100);
        assert_eq!(engine.evaluate_at(0)[0].state, AlertState::Ok);

        // 10% errors in the next window.
        tot.add(100);
        errs.add(10);
        let s = engine.evaluate_at(10);
        assert!(s[0].state.is_firing(), "{}", s[0].detail);
        assert!((s[0].burn - 10.0).abs() < 1e-9);

        // Clean window resolves.
        tot.add(100);
        assert_eq!(engine.evaluate_at(20)[0].state, AlertState::Resolved { since_ms: 20 });
    }

    #[test]
    fn gauge_watermark_sums_label_sets() {
        let metrics = Arc::new(MetricsRegistry::new());
        metrics.gauge_labeled("store_bytes", &[("class", "VM")], "b").set(600);
        metrics.gauge_labeled("store_bytes", &[("class", "Host")], "b").set(500);
        let engine = SloEngine::new(metrics.clone());
        engine.add(SloRule::gauge_max("memory-watermark", "store_bytes", 1_000));
        let s = engine.evaluate_at(0);
        assert!(s[0].state.is_firing(), "{}", s[0].detail);
        assert_eq!(s[0].measured, 1_100.0);
        // nepal_alerts_firing is exported through the registry.
        assert_eq!(metrics.gauge_total("nepal_alerts_firing"), Some(1));
    }

    #[test]
    fn renderings_cover_firing_and_ok() {
        let metrics = Arc::new(MetricsRegistry::new());
        metrics.gauge("g", "g").set(5);
        let engine = SloEngine::new(metrics);
        engine.add(SloRule::gauge_max("over", "g", 1));
        engine.add(SloRule::gauge_max("under", "g", 10));
        let s = engine.evaluate_at(0);
        let text = alerts_text(&s);
        assert!(text.contains("over") && text.contains("firing"), "{text}");
        let json = alerts_json(&s);
        assert!(json.contains("\"firing\":1"), "{json}");
        assert!(json.contains("\"name\":\"under\",\"state\":\"ok\""), "{json}");
    }
}
