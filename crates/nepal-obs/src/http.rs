//! Std-only HTTP/1.1 telemetry endpoint.
//!
//! [`Telemetry`] bundles the observable state of a running engine — the
//! [`MetricsRegistry`], the [`SlowQueryLog`] ring, the [`Tracer`] store,
//! plus pluggable per-backend health checks, the [`SloEngine`] and a
//! store resource provider — and maps `GET` paths onto it:
//!
//! | path             | body                                            |
//! |------------------|-------------------------------------------------|
//! | `/metrics`       | Prometheus text exposition format               |
//! | `/metrics.json`  | the registry as JSON                            |
//! | `/healthz`       | deep readiness: checks + firing alerts + store  |
//! | `/alerts`        | SLO rule states, human-readable                 |
//! | `/alerts.json`   | the same as JSON                                |
//! | `/dashboard`     | self-contained HTML overview                    |
//! | `/slow`          | slow-query ring as JSON                         |
//! | `/qlog`          | worst-estimated fingerprints, human-readable    |
//! | `/qlog.json`     | qlog status + per-fingerprint q-error as JSON   |
//! | `/traces`        | stored trace summaries                          |
//! | `/traces/latest` | newest trace as Chrome trace-event JSON         |
//! | `/traces/<id>`   | one trace as Chrome trace-event JSON            |
//!
//! `/healthz` is a *deep* readiness check: it runs every registered
//! health check, refreshes pull-gauges, evaluates the attached SLO rules,
//! and answers 503 when a check fails **or** any alert is firing — so a
//! load balancer sheds traffic on the same signal an operator would page
//! on.
//!
//! [`TelemetryServer`] is the listener: a nonblocking accept loop on a
//! background thread that hands each connection to its own short-lived
//! thread (`Connection: close`), so a stalled or slow client cannot block
//! concurrent scrapes. Request handling is pure (`Telemetry::handle`) so
//! the routing is testable without a socket.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::metrics::MetricsRegistry;
use crate::profile::{fmt_ns, SlowQueryLog};
use crate::qlog::{EstimateFeedback, QueryLog};
use crate::slo::{alerts_json, alerts_text, AlertStatus, SloEngine};
use crate::trace::{esc, summaries_json, Tracer};

type HealthCheck = Box<dyn Fn() -> Result<String, String> + Send>;
type Refresher = Box<dyn Fn() + Send>;
type ResourceProvider = Box<dyn Fn() -> ResourceSummary + Send>;

/// Per-class store footprint as served on `/dashboard` and `/healthz`.
/// Deliberately store-agnostic: nepal-graph converts its `MemoryReport`
/// into this shape (the dependency points graph → obs).
#[derive(Debug, Clone)]
pub struct ResourceClass {
    pub name: String,
    /// `"node"` or `"edge"`.
    pub kind: &'static str,
    pub entities: u64,
    pub alive: u64,
    pub versions: u64,
    pub bytes: u64,
}

/// A point-in-time store resource summary.
#[derive(Debug, Clone, Default)]
pub struct ResourceSummary {
    pub classes: Vec<ResourceClass>,
    /// Σ class bytes (version chains + property payloads + entry slots).
    pub entity_bytes: u64,
    pub adjacency_bytes: u64,
    pub unique_index_bytes: u64,
    /// Size of a full journal save (durability estimate, not heap).
    pub journal_bytes: u64,
    /// entity + adjacency + unique-index bytes.
    pub total_bytes: u64,
    /// Version-chain length distribution: (≤ length bound, entities).
    pub chain_histogram: Vec<(u64, u64)>,
}

/// The query-log state the endpoint serves: the estimate-vs-actual
/// aggregator plus, when durable logging is on, the log file handle.
struct QlogState {
    feedback: Arc<EstimateFeedback>,
    log: Option<Arc<QueryLog>>,
}

/// Everything the telemetry endpoint can serve.
pub struct Telemetry {
    pub metrics: Arc<MetricsRegistry>,
    pub slow: Arc<SlowQueryLog>,
    pub tracer: Tracer,
    health: Mutex<Vec<(String, HealthCheck)>>,
    refreshers: Mutex<Vec<Refresher>>,
    qlog: Mutex<Option<QlogState>>,
    slo: Mutex<Option<Arc<SloEngine>>>,
    resources: Mutex<Option<ResourceProvider>>,
}

const CT_TEXT: &str = "text/plain; version=0.0.4; charset=utf-8";
const CT_JSON: &str = "application/json";
const CT_HTML: &str = "text/html; charset=utf-8";

impl Telemetry {
    pub fn new(metrics: Arc<MetricsRegistry>, slow: Arc<SlowQueryLog>, tracer: Tracer) -> Telemetry {
        Telemetry {
            metrics,
            slow,
            tracer,
            health: Mutex::new(Vec::new()),
            refreshers: Mutex::new(Vec::new()),
            qlog: Mutex::new(None),
            slo: Mutex::new(None),
            resources: Mutex::new(None),
        }
    }

    /// Attach the engine's plan-feedback aggregator (and the durable log
    /// handle when one is open) so `/qlog` and `/qlog.json` can serve them.
    pub fn set_qlog(&self, feedback: Arc<EstimateFeedback>, log: Option<Arc<QueryLog>>) {
        *self.qlog.lock().unwrap_or_else(|e| e.into_inner()) = Some(QlogState { feedback, log });
    }

    /// Attach the SLO engine: `/alerts` serves its rule states and
    /// `/healthz` turns 503 while any rule fires.
    pub fn set_slo(&self, slo: Arc<SloEngine>) {
        *self.slo.lock().unwrap_or_else(|e| e.into_inner()) = Some(slo);
    }

    /// Attach a store resource provider feeding `/dashboard` and the
    /// store section of `/healthz`.
    pub fn set_resources(&self, provider: impl Fn() -> ResourceSummary + Send + 'static) {
        *self.resources.lock().unwrap_or_else(|e| e.into_inner()) = Some(Box::new(provider));
    }

    /// Register a named health check. `Ok(detail)` is healthy, `Err(why)`
    /// is not; `/healthz` runs all of them on every request.
    pub fn add_health(&self, name: &str, check: impl Fn() -> Result<String, String> + Send + 'static) {
        self.health.lock().unwrap_or_else(|e| e.into_inner()).push((name.to_string(), Box::new(check)));
    }

    /// Register a callback run before each `/metrics` render — the hook
    /// point for pull-style gauges (store sizes, ring lengths, …).
    pub fn add_refresher(&self, refresh: impl Fn() + Send + 'static) {
        self.refreshers.lock().unwrap_or_else(|e| e.into_inner()).push(Box::new(refresh));
    }

    fn refresh(&self) {
        for r in self.refreshers.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            r();
        }
    }

    fn evaluate_slo(&self) -> Option<Vec<AlertStatus>> {
        let slo = self.slo.lock().unwrap_or_else(|e| e.into_inner()).clone();
        slo.map(|s| s.evaluate())
    }

    fn resource_summary(&self) -> Option<ResourceSummary> {
        let resources = self.resources.lock().unwrap_or_else(|e| e.into_inner());
        resources.as_ref().map(|p| p())
    }

    /// Deep readiness: health checks + pull-gauge refresh + SLO
    /// evaluation + store totals. 503 when a check fails or an alert
    /// fires.
    fn healthz(&self) -> (u16, String) {
        // Refresh pull gauges first so watermark rules see current values.
        self.refresh();
        let checks = self.health.lock().unwrap_or_else(|e| e.into_inner());
        let mut all_ok = true;
        let mut items = Vec::new();
        for (name, check) in checks.iter() {
            match check() {
                Ok(detail) => items.push(format!("\"{}\":{{\"ok\":true,\"detail\":\"{}\"}}", esc(name), esc(&detail))),
                Err(why) => {
                    all_ok = false;
                    items.push(format!("\"{}\":{{\"ok\":false,\"error\":\"{}\"}}", esc(name), esc(&why)));
                }
            }
        }
        drop(checks);
        let mut extra = String::new();
        if let Some(statuses) = self.evaluate_slo() {
            let firing = statuses.iter().filter(|a| a.state.is_firing()).count();
            if firing > 0 {
                all_ok = false;
            }
            extra.push_str(&format!(",\"alerts\":{}", alerts_json(&statuses).trim_end()));
        }
        if let Some(r) = self.resource_summary() {
            extra.push_str(&format!(
                ",\"store\":{{\"total_bytes\":{},\"entity_bytes\":{},\"adjacency_bytes\":{},\"unique_index_bytes\":{},\"journal_bytes\":{},\"classes\":{}}}",
                r.total_bytes,
                r.entity_bytes,
                r.adjacency_bytes,
                r.unique_index_bytes,
                r.journal_bytes,
                r.classes.len()
            ));
        }
        let status = if all_ok { 200 } else { 503 };
        let body = format!(
            "{{\"status\":\"{}\",\"checks\":{{{}}}{}}}\n",
            if all_ok { "ok" } else { "unhealthy" },
            items.join(","),
            extra
        );
        (status, body)
    }

    fn dashboard(&self) -> String {
        let mut b = String::from(
            "<!doctype html><html><head><meta charset=\"utf-8\"><title>nepal dashboard</title><style>\
             body{font-family:system-ui,sans-serif;margin:2em;max-width:70em}\
             table{border-collapse:collapse;margin:0.5em 0}\
             td,th{border:1px solid #ccc;padding:0.25em 0.6em;text-align:right}\
             th{background:#f4f4f4}td.l,th.l{text-align:left}\
             .firing{color:#b00020;font-weight:bold}.pending{color:#b07000}\
             .resolved{color:#3a7}.ok{color:#373}\
             h2{margin-top:1.2em;border-bottom:1px solid #ddd}\
             </style></head><body><h1>nepal dashboard</h1>",
        );
        // Alerts.
        b.push_str("<h2>alerts</h2>");
        match self.evaluate_slo() {
            Some(statuses) => {
                let firing = statuses.iter().filter(|a| a.state.is_firing()).count();
                b.push_str(&format!(
                    "<p>{} rule(s), <span class=\"{}\">{} firing</span></p>",
                    statuses.len(),
                    if firing > 0 { "firing" } else { "ok" },
                    firing
                ));
                b.push_str("<table><tr><th class=l>rule</th><th>state</th><th>measured</th><th>burn</th><th class=l>detail</th></tr>");
                for a in &statuses {
                    b.push_str(&format!(
                        "<tr><td class=l>{}</td><td class=\"{}\">{}</td><td>{:.1}</td><td>{:.2}</td><td class=l>{}</td></tr>",
                        html_esc(&a.name),
                        a.state.name(),
                        a.state.name(),
                        a.measured,
                        a.burn,
                        html_esc(&a.detail)
                    ));
                }
                b.push_str("</table>");
            }
            None => b.push_str("<p>no SLO engine attached</p>"),
        }
        // Store footprint.
        b.push_str("<h2>store footprint</h2>");
        match self.resource_summary() {
            Some(r) => {
                b.push_str(&format!(
                    "<p>total <b>{}</b> — entities {}, adjacency {}, unique index {}; journal save ≈ {}</p>",
                    fmt_bytes(r.total_bytes),
                    fmt_bytes(r.entity_bytes),
                    fmt_bytes(r.adjacency_bytes),
                    fmt_bytes(r.unique_index_bytes),
                    fmt_bytes(r.journal_bytes)
                ));
                b.push_str("<table><tr><th class=l>class</th><th class=l>kind</th><th>entities</th><th>alive</th><th>versions</th><th>bytes</th></tr>");
                let mut classes = r.classes.clone();
                classes.sort_by_key(|c| std::cmp::Reverse(c.bytes));
                for c in classes.iter().take(20) {
                    b.push_str(&format!(
                        "<tr><td class=l>{}</td><td class=l>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
                        html_esc(&c.name),
                        c.kind,
                        c.entities,
                        c.alive,
                        c.versions,
                        fmt_bytes(c.bytes)
                    ));
                }
                b.push_str("</table>");
                if !r.chain_histogram.is_empty() {
                    b.push_str("<p>version-chain length: ");
                    for (bound, n) in &r.chain_histogram {
                        b.push_str(&format!("≤{bound}: {n} &nbsp; "));
                    }
                    b.push_str("</p>");
                }
            }
            None => b.push_str("<p>no resource provider attached</p>"),
        }
        // Query latency quantiles.
        b.push_str("<h2>query latency</h2>");
        match self.metrics.histogram_handle("nepal_query_duration_ns") {
            Some(h) if h.count() > 0 => b.push_str(&format!(
                "<p>{} queries — p50 {} · p95 {} · p99 {}</p>",
                h.count(),
                fmt_ns(h.quantile(0.50)),
                fmt_ns(h.quantile(0.95)),
                fmt_ns(h.quantile(0.99))
            )),
            _ => b.push_str("<p>no queries recorded</p>"),
        }
        // Slow queries with trace links.
        b.push_str("<h2>top slow queries</h2>");
        let mut slow = self.slow.entries();
        if slow.is_empty() {
            b.push_str("<p>slow-query ring is empty</p>");
        } else {
            slow.sort_by_key(|q| std::cmp::Reverse(q.total_ns));
            b.push_str("<table><tr><th class=l>query</th><th>duration</th><th>rows</th><th class=l>trace</th></tr>");
            for q in slow.iter().take(10) {
                let trace = match q.trace_id {
                    Some(id) => format!("<a href=\"/traces/{id}\">{id}</a>"),
                    None => "—".to_string(),
                };
                b.push_str(&format!(
                    "<tr><td class=l><code>{}</code></td><td>{}</td><td>{}</td><td class=l>{}</td></tr>",
                    html_esc(&truncate(&q.query, 100)),
                    fmt_ns(q.total_ns),
                    q.result_rows,
                    trace
                ));
            }
            b.push_str("</table>");
        }
        // Recent traces.
        b.push_str("<h2>recent traces</h2>");
        let summaries = self.tracer.summaries();
        if summaries.is_empty() {
            b.push_str("<p>trace ring is empty</p>");
        } else {
            b.push_str("<ul>");
            for s in summaries.iter().rev().take(10) {
                b.push_str(&format!(
                    "<li><a href=\"/traces/{}\">#{}</a> {} — {} ({} spans)</li>",
                    s.id,
                    s.id,
                    html_esc(&truncate(&s.name, 90)),
                    fmt_ns(s.dur_ns),
                    s.spans
                ));
            }
            b.push_str("</ul>");
        }
        b.push_str(
            "<p><a href=\"/metrics\">/metrics</a> · <a href=\"/alerts\">/alerts</a> · \
             <a href=\"/healthz\">/healthz</a> · <a href=\"/slow\">/slow</a> · \
             <a href=\"/qlog\">/qlog</a> · <a href=\"/traces\">/traces</a></p></body></html>",
        );
        b
    }

    /// Route a request path to `(status, content-type, body)`.
    pub fn handle(&self, path: &str) -> (u16, &'static str, String) {
        let path = path.split('?').next().unwrap_or(path);
        match path {
            "/metrics" => {
                self.refresh();
                (200, CT_TEXT, self.metrics.render_prometheus())
            }
            "/metrics.json" => {
                self.refresh();
                let mut body = self.metrics.render_json();
                body.push('\n');
                (200, CT_JSON, body)
            }
            "/healthz" => {
                let (status, body) = self.healthz();
                (status, CT_JSON, body)
            }
            "/alerts" => match self.evaluate_slo() {
                Some(statuses) => (200, CT_TEXT, alerts_text(&statuses)),
                None => (404, CT_TEXT, "no slo engine attached\n".to_string()),
            },
            "/alerts.json" => match self.evaluate_slo() {
                Some(statuses) => (200, CT_JSON, alerts_json(&statuses)),
                None => (404, CT_JSON, "{\"error\":\"no slo engine attached\"}\n".to_string()),
            },
            "/dashboard" => {
                self.refresh();
                (200, CT_HTML, self.dashboard())
            }
            "/slow" => (200, CT_JSON, self.slow.render_json()),
            "/qlog" => match &*self.qlog.lock().unwrap_or_else(|e| e.into_inner()) {
                Some(q) => (200, CT_TEXT, q.feedback.render_text(20)),
                None => (404, CT_TEXT, "query log not attached\n".to_string()),
            },
            "/qlog.json" => match &*self.qlog.lock().unwrap_or_else(|e| e.into_inner()) {
                Some(q) => {
                    let status = match &q.log {
                        Some(log) => format!("\"enabled\":true,{}", log.status_json()),
                        None => "\"enabled\":false".to_string(),
                    };
                    let body = format!("{{{},\"fingerprints\":{}}}\n", status, q.feedback.render_json());
                    (200, CT_JSON, body)
                }
                None => (404, CT_JSON, "{\"error\":\"query log not attached\"}\n".to_string()),
            },
            "/traces" => (200, CT_JSON, summaries_json(&self.tracer.summaries())),
            "/traces/latest" => match self.tracer.export_latest_chrome() {
                Some(json) => (200, CT_JSON, json),
                None => (404, CT_JSON, "{\"error\":\"no traces stored\"}\n".to_string()),
            },
            _ => {
                if let Some(id) = path.strip_prefix("/traces/").and_then(|s| s.parse::<u64>().ok()) {
                    return match self.tracer.export_chrome(id) {
                        Some(json) => (200, CT_JSON, json),
                        None => (404, CT_JSON, format!("{{\"error\":\"no trace with id {id}\"}}\n")),
                    };
                }
                (404, CT_TEXT, "not found\n".to_string())
            }
        }
    }
}

fn html_esc(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_string()
    } else {
        let cut: String = s.chars().take(max).collect();
        format!("{cut}…")
    }
}

/// `1536` → `"1.5 KiB"`.
pub fn fmt_bytes(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b as f64;
    let mut i = 0;
    while v >= 1024.0 && i < UNITS.len() - 1 {
        v /= 1024.0;
        i += 1;
    }
    if i == 0 {
        format!("{b} B")
    } else {
        format!("{v:.1} {}", UNITS[i])
    }
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

fn respond(stream: &mut TcpStream, code: u16, content_type: &str, body: &str) {
    respond_with(stream, code, content_type, body, &[]);
}

fn respond_with(stream: &mut TcpStream, code: u16, content_type: &str, body: &str, extra_headers: &[(&str, &str)]) {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        code,
        status_text(code),
        content_type,
        body.len()
    );
    for (k, v) in extra_headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str("\r\n");
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Read a request head (through the blank line), bounded at 8 KiB.
fn read_head(stream: &mut TcpStream) -> std::io::Result<String> {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    while buf.len() < 8192 {
        let n = stream.read(&mut byte)?;
        if n == 0 {
            break;
        }
        buf.push(byte[0]);
        if buf.ends_with(b"\r\n\r\n") {
            break;
        }
    }
    Ok(String::from_utf8_lossy(&buf).into_owned())
}

fn serve_connection(telemetry: &Telemetry, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let head = match read_head(&mut stream) {
        Ok(h) => h,
        Err(_) => return,
    };
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method != "GET" {
        respond(&mut stream, 405, CT_TEXT, "only GET is supported\n");
        return;
    }
    if path.is_empty() {
        respond(&mut stream, 400, CT_TEXT, "malformed request line\n");
        return;
    }
    let (code, content_type, body) = telemetry.handle(path);
    if code == 503 {
        // Not-ready/firing responses carry a retry hint like shed ones.
        respond_with(&mut stream, code, content_type, &body, &[("Retry-After", "1")]);
    } else {
        respond(&mut stream, code, content_type, &body);
    }
}

/// Per-listener cap on concurrently served connections; excess clients
/// get an immediate 503 instead of queueing behind a stalled reader.
const MAX_CONNECTIONS: usize = 64;

/// The background HTTP listener.
pub struct TelemetryServer {
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TelemetryServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and serve
    /// `telemetry` until the returned handle is dropped. Each accepted
    /// connection runs on its own thread so one slow client never blocks
    /// a concurrent scrape.
    pub fn start(telemetry: Arc<Telemetry>, addr: &str) -> std::io::Result<TelemetryServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stop = shutdown.clone();
        let accept_thread = std::thread::spawn(move || {
            let active = Arc::new(AtomicUsize::new(0));
            while !stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((mut stream, _)) => {
                        let _ = stream.set_nonblocking(false);
                        if active.load(Ordering::Relaxed) >= MAX_CONNECTIONS {
                            // Overload shed: tell scrapers when to come back
                            // instead of letting them hammer the listener.
                            respond_with(
                                &mut stream,
                                503,
                                CT_TEXT,
                                "connection limit reached\n",
                                &[("Retry-After", "1")],
                            );
                            continue;
                        }
                        active.fetch_add(1, Ordering::Relaxed);
                        let telemetry = telemetry.clone();
                        let active = active.clone();
                        std::thread::spawn(move || {
                            serve_connection(&telemetry, stream);
                            active.fetch_sub(1, Ordering::Relaxed);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(TelemetryServer { addr: local, shutdown, accept_thread: Some(accept_thread) })
    }

    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slo::SloRule;

    fn telemetry() -> Arc<Telemetry> {
        let metrics = Arc::new(MetricsRegistry::new());
        metrics.counter("nepal_queries_total", "Total queries").add(5);
        let slow = Arc::new(SlowQueryLog::new(0, 8));
        slow.record("Retrieve P …", 1234, 1);
        let tracer = Tracer::new();
        tracer.set_enabled(true);
        tracer.set_slow_threshold_ns(u64::MAX);
        drop(tracer.start_trace("q"));
        Arc::new(Telemetry::new(metrics, slow, tracer))
    }

    fn get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap_or((response.as_str(), ""));
        (head.to_string(), body.to_string())
    }

    #[test]
    fn routing_covers_all_endpoints() {
        let t = telemetry();
        t.add_health("native", || Ok("2194 entities".to_string()));
        let (code, ct, body) = t.handle("/metrics");
        assert_eq!(code, 200);
        assert!(ct.starts_with("text/plain; version=0.0.4"));
        assert!(body.contains("nepal_queries_total 5"));
        let (code, _, body) = t.handle("/metrics.json");
        assert_eq!(code, 200);
        assert!(body.contains("\"nepal_queries_total\":5"));
        let (code, _, body) = t.handle("/healthz");
        assert_eq!(code, 200);
        assert!(body.contains("\"native\":{\"ok\":true"));
        let (code, _, body) = t.handle("/slow");
        assert_eq!(code, 200);
        assert!(body.contains("Retrieve P"));
        let (code, ct, body) = t.handle("/dashboard");
        assert_eq!(code, 200);
        assert!(ct.starts_with("text/html"));
        assert!(body.contains("nepal dashboard"));
        let (code, _, body) = t.handle("/traces");
        assert_eq!(code, 200);
        assert!(body.contains("\"name\":\"q\""));
        let id = t.tracer.latest_id().unwrap();
        let (code, _, body) = t.handle(&format!("/traces/{id}"));
        assert_eq!(code, 200);
        assert!(body.contains("traceEvents"));
        let (code, _, _) = t.handle("/traces/latest");
        assert_eq!(code, 200);
        assert_eq!(t.handle("/traces/999999").0, 404);
        assert_eq!(t.handle("/nope").0, 404);
    }

    #[test]
    fn alerts_routes_require_engine_then_serve_states() {
        let t = telemetry();
        assert_eq!(t.handle("/alerts").0, 404);
        assert_eq!(t.handle("/alerts.json").0, 404);
        let slo = Arc::new(SloEngine::new(t.metrics.clone()));
        slo.add(SloRule::gauge_max("noop", "missing_gauge", 1));
        t.set_slo(slo);
        let (code, _, body) = t.handle("/alerts");
        assert_eq!(code, 200);
        assert!(body.contains("noop"), "{body}");
        let (code, _, body) = t.handle("/alerts.json");
        assert_eq!(code, 200);
        assert!(body.contains("\"firing\":0"), "{body}");
    }

    #[test]
    fn healthz_deepens_with_alerts_and_resources() {
        let t = telemetry();
        t.add_health("store", || Ok("fine".to_string()));
        let g = t.metrics.gauge("pressure", "p");
        let slo = Arc::new(SloEngine::new(t.metrics.clone()));
        slo.add(SloRule::gauge_max("pressure-watermark", "pressure", 100));
        t.set_slo(slo);
        t.set_resources(|| ResourceSummary {
            classes: vec![ResourceClass {
                name: "VM".into(),
                kind: "node",
                entities: 2,
                alive: 2,
                versions: 3,
                bytes: 640,
            }],
            entity_bytes: 640,
            adjacency_bytes: 64,
            unique_index_bytes: 32,
            journal_bytes: 128,
            total_bytes: 736,
            chain_histogram: vec![(1, 1), (2, 1)],
        });

        let (code, _, body) = t.handle("/healthz");
        assert_eq!(code, 200, "{body}");
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        assert!(body.contains("\"alerts\":{\"firing\":0"), "{body}");
        assert!(body.contains("\"total_bytes\":736"), "{body}");

        // A firing alert flips readiness to 503.
        g.set(500);
        let (code, _, body) = t.handle("/healthz");
        assert_eq!(code, 503, "{body}");
        assert!(body.contains("\"status\":\"unhealthy\""), "{body}");
        assert!(body.contains("\"alerts\":{\"firing\":1"), "{body}");

        // Recovery resolves and readiness returns.
        g.set(0);
        let (code, _, body) = t.handle("/healthz");
        assert_eq!(code, 200, "{body}");
        assert!(body.contains("\"state\":\"resolved\"") || body.contains("\"state\":\"ok\""), "{body}");

        // Dashboard renders the store table and alert states.
        let (code, _, body) = t.handle("/dashboard");
        assert_eq!(code, 200);
        assert!(body.contains("VM"), "{body}");
        assert!(body.contains("pressure-watermark"), "{body}");
    }

    #[test]
    fn healthz_reports_503_when_a_check_fails() {
        let t = telemetry();
        t.add_health("native", || Ok("fine".to_string()));
        t.add_health("gremlin", || Err("connection refused".to_string()));
        let (code, _, body) = t.handle("/healthz");
        assert_eq!(code, 503);
        assert!(body.contains("\"status\":\"unhealthy\""));
        assert!(body.contains("\"gremlin\":{\"ok\":false"));
    }

    #[test]
    fn qlog_routes_require_attachment_then_serve_feedback() {
        let t = telemetry();
        assert_eq!(t.handle("/qlog").0, 404);
        assert_eq!(t.handle("/qlog.json").0, 404);
        let feedback = Arc::new(EstimateFeedback::new());
        t.set_qlog(feedback.clone(), None);
        let (code, _, body) = t.handle("/qlog");
        assert_eq!(code, 200);
        assert!(body.contains("no plan feedback"), "{body}");
        let (code, _, body) = t.handle("/qlog.json");
        assert_eq!(code, 200);
        assert!(body.contains("\"enabled\":false"), "{body}");
        assert!(body.contains("\"fingerprints\":[]"), "{body}");
    }

    #[test]
    fn refreshers_run_before_metrics_render() {
        let t = telemetry();
        let g = t.metrics.gauge("nepal_store_entities", "entities");
        t.add_refresher(move || g.set(42));
        let (_, _, body) = t.handle("/metrics");
        assert!(body.contains("nepal_store_entities 42"));
    }

    #[test]
    fn metrics_and_healthz_round_trip_over_a_real_socket() {
        let t = telemetry();
        t.add_health("native", || Ok("ok".to_string()));
        let server = TelemetryServer::start(t, "127.0.0.1:0").unwrap();
        let addr = server.local_addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("Content-Type: text/plain; version=0.0.4"));
        assert!(!body.is_empty());
        assert!(body.contains("nepal_queries_total 5"));

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(body.contains("\"status\":\"ok\""));

        let (head, _) = get(addr, "/unknown");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        drop(server); // joins the accept thread
    }

    #[test]
    fn non_get_methods_are_rejected() {
        let t = telemetry();
        let server = TelemetryServer::start(t, "127.0.0.1:0").unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");
    }

    /// A client that connects and stalls mid-request must not block a
    /// concurrent scrape (connections are served on their own threads).
    #[test]
    fn stalled_connection_does_not_block_scrapes() {
        let t = telemetry();
        let server = TelemetryServer::start(t, "127.0.0.1:0").unwrap();
        let addr = server.local_addr();

        // Send half a request line and hold the socket open.
        let mut stalled = TcpStream::connect(addr).unwrap();
        stalled.write_all(b"GET /met").unwrap();
        stalled.flush().unwrap();

        let start = std::time::Instant::now();
        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(body.contains("nepal_queries_total"));
        assert!(
            start.elapsed() < Duration::from_millis(1500),
            "scrape blocked behind stalled client: {:?}",
            start.elapsed()
        );
        drop(stalled);
    }
}
