//! Std-only HTTP/1.1 telemetry endpoint.
//!
//! [`Telemetry`] bundles the observable state of a running engine — the
//! [`MetricsRegistry`], the [`SlowQueryLog`] ring, the [`Tracer`] store,
//! plus pluggable per-backend health checks, the [`SloEngine`] and a
//! store resource provider — and maps `GET` paths onto it:
//!
//! | path             | body                                            |
//! |------------------|-------------------------------------------------|
//! | `/metrics`       | Prometheus text exposition format               |
//! | `/metrics.json`  | the registry as JSON                            |
//! | `/healthz`       | deep readiness: checks + firing alerts + store  |
//! | `/alerts`        | SLO rule states, human-readable                 |
//! | `/alerts.json`   | the same as JSON                                |
//! | `/dashboard`     | self-contained HTML overview                    |
//! | `/slow`          | slow-query ring as JSON                         |
//! | `/qlog`          | worst-estimated fingerprints, human-readable    |
//! | `/qlog.json`     | qlog status + per-fingerprint q-error as JSON   |
//! | `/traces`        | stored trace summaries                          |
//! | `/traces/latest` | newest trace as Chrome trace-event JSON         |
//! | `/traces/<id>`   | one trace as Chrome trace-event JSON            |
//! | `/flight`        | flight-recorder wide events (`?secs=`, `?limit=`) |
//! | `/top`           | per-fingerprint cost table (`?n=`, `?sort=`)    |
//! | `/top.json`      | the same as JSON                                |
//! | `/history.json`  | metrics history ring snapshots (`?tail=`)       |
//! | `/snapshot`      | GET lists bundles; POST writes one on demand    |
//! | `/drain`         | the final drain report, once recorded           |
//!
//! `/metrics` runs only the *cheap* refreshers (O(classes) gauge
//! updates); `?deep=1` additionally runs the registered deep refreshers
//! (exact store walks) — never pay the full walk on a default scrape.
//!
//! `/healthz` is a *deep* readiness check: it runs every registered
//! health check, refreshes pull-gauges, evaluates the attached SLO rules,
//! and answers 503 when a check fails **or** any alert is firing — so a
//! load balancer sheds traffic on the same signal an operator would page
//! on.
//!
//! [`TelemetryServer`] is the listener: a nonblocking accept loop on a
//! background thread that hands each connection to its own short-lived
//! thread (`Connection: close`), so a stalled or slow client cannot block
//! concurrent scrapes. Request handling is pure (`Telemetry::handle`) so
//! the routing is testable without a socket.

use std::collections::HashSet;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, SystemTime};

use crate::flight::{self, FlightKind, FlightRecorder};
use crate::history::{sparkline, HistoryRing};
use crate::metrics::MetricsRegistry;
use crate::profile::{fmt_ns, SlowQueryLog};
use crate::qlog::{EstimateFeedback, QueryLog};
use crate::slo::{alerts_json, alerts_text, AlertStatus, SloEngine};
use crate::stmt::{StmtSort, StmtStats};
use crate::trace::{esc, summaries_json, Tracer};

type HealthCheck = Box<dyn Fn() -> Result<String, String> + Send>;
type Refresher = Box<dyn Fn() + Send>;
type ResourceProvider = Box<dyn Fn() -> ResourceSummary + Send>;

/// Per-class store footprint as served on `/dashboard` and `/healthz`.
/// Deliberately store-agnostic: nepal-graph converts its `MemoryReport`
/// into this shape (the dependency points graph → obs).
#[derive(Debug, Clone)]
pub struct ResourceClass {
    pub name: String,
    /// `"node"` or `"edge"`.
    pub kind: &'static str,
    pub entities: u64,
    pub alive: u64,
    pub versions: u64,
    pub bytes: u64,
}

/// A point-in-time store resource summary.
#[derive(Debug, Clone, Default)]
pub struct ResourceSummary {
    pub classes: Vec<ResourceClass>,
    /// Σ class bytes (version chains + property payloads + entry slots).
    pub entity_bytes: u64,
    pub adjacency_bytes: u64,
    pub unique_index_bytes: u64,
    /// Size of a full journal save (durability estimate, not heap).
    pub journal_bytes: u64,
    /// entity + adjacency + unique-index bytes.
    pub total_bytes: u64,
    /// Version-chain length distribution: (≤ length bound, entities).
    pub chain_histogram: Vec<(u64, u64)>,
}

/// The query-log state the endpoint serves: the estimate-vs-actual
/// aggregator plus, when durable logging is on, the log file handle.
struct QlogState {
    feedback: Arc<EstimateFeedback>,
    log: Option<Arc<QueryLog>>,
}

/// Where anomaly-triggered diagnostics bundles land, and how much flight
/// history each carries.
#[derive(Debug, Clone)]
pub struct SnapshotConfig {
    /// Directory for `snapshot-*.json` bundles (created on first write).
    pub dir: PathBuf,
    /// Bundles retained; the oldest are deleted past this (0 = unbounded).
    pub keep: usize,
    /// Trailing window of wide events included in each bundle.
    pub window: Duration,
}

impl Default for SnapshotConfig {
    fn default() -> Self {
        SnapshotConfig { dir: PathBuf::from("nepal-snapshots"), keep: 8, window: Duration::from_secs(30) }
    }
}

/// Everything the telemetry endpoint can serve.
pub struct Telemetry {
    pub metrics: Arc<MetricsRegistry>,
    pub slow: Arc<SlowQueryLog>,
    pub tracer: Tracer,
    health: Mutex<Vec<(String, HealthCheck)>>,
    refreshers: Mutex<Vec<Refresher>>,
    /// Expensive pull-gauge walks (exact store footprint): run only on
    /// `/metrics?deep=1`, never on a default scrape.
    deep_refreshers: Mutex<Vec<Refresher>>,
    qlog: Mutex<Option<QlogState>>,
    /// Per-fingerprint statement cost table, served on `/top[.json]`.
    stmt: Mutex<Option<Arc<StmtStats>>>,
    /// Metrics history ring, served on `/history.json`.
    history: Mutex<Option<Arc<HistoryRing>>>,
    slo: Mutex<Option<Arc<SloEngine>>>,
    resources: Mutex<Option<ResourceProvider>>,
    flight: Mutex<Option<FlightRecorder>>,
    snapshots: Mutex<Option<SnapshotConfig>>,
    /// Static config/build facts embedded in every bundle.
    build_info: Mutex<Vec<(String, String)>>,
    /// Final drain report (JSON object), set at shutdown; served on `/drain`.
    drain: Mutex<Option<String>>,
    /// Alert names currently firing — tracks *entry* into firing so the
    /// alert trigger snapshots once per episode, not per scrape.
    firing_seen: Mutex<HashSet<String>>,
    /// Epoch ms of the last alert-triggered snapshot (debounce).
    alert_snap_ms: AtomicU64,
    /// Monotonic suffix keeping bundle filenames unique within one ms.
    snap_counter: AtomicU64,
}

const CT_TEXT: &str = "text/plain; version=0.0.4; charset=utf-8";
const CT_JSON: &str = "application/json";
const CT_HTML: &str = "text/html; charset=utf-8";

impl Telemetry {
    pub fn new(metrics: Arc<MetricsRegistry>, slow: Arc<SlowQueryLog>, tracer: Tracer) -> Telemetry {
        let t = Telemetry {
            metrics,
            slow,
            tracer,
            health: Mutex::new(Vec::new()),
            refreshers: Mutex::new(Vec::new()),
            deep_refreshers: Mutex::new(Vec::new()),
            qlog: Mutex::new(None),
            stmt: Mutex::new(None),
            history: Mutex::new(None),
            slo: Mutex::new(None),
            resources: Mutex::new(None),
            flight: Mutex::new(None),
            snapshots: Mutex::new(None),
            build_info: Mutex::new(Vec::new()),
            drain: Mutex::new(None),
            firing_seen: Mutex::new(HashSet::new()),
            alert_snap_ms: AtomicU64::new(0),
            snap_counter: AtomicU64::new(0),
        };
        // Torn-tail recoveries happen at load time, before any registry
        // exists, so they live in process-global counters; export them as
        // real metrics via a delta refresher.
        let journal =
            t.metrics.counter("nepal_journal_torn_tail_total", "Journal loads that dropped a torn trailing record");
        let qlog =
            t.metrics.counter("nepal_qlog_torn_tail_total", "Query-log reads that dropped a torn trailing record");
        let (prev_j, prev_q) = (AtomicU64::new(0), AtomicU64::new(0));
        t.add_refresher(move || {
            let cur = flight::JOURNAL_TORN_TAIL.load(Ordering::Relaxed);
            journal.add(cur.saturating_sub(prev_j.swap(cur, Ordering::Relaxed)));
            let cur = flight::QLOG_TORN_TAIL.load(Ordering::Relaxed);
            qlog.add(cur.saturating_sub(prev_q.swap(cur, Ordering::Relaxed)));
        });
        t
    }

    /// Attach the flight recorder: `/flight` serves its stitched stream
    /// and every snapshot bundle embeds the trailing event window.
    pub fn set_flight(&self, recorder: FlightRecorder) {
        *self.flight.lock().unwrap_or_else(|e| e.into_inner()) = Some(recorder);
    }

    /// Enable anomaly-triggered snapshot bundles (see [`SnapshotConfig`]).
    /// Once set, `POST /snapshot`, a firing alert, the panic hook, and
    /// SIGQUIT all dump bundles into `cfg.dir`.
    pub fn set_snapshots(&self, cfg: SnapshotConfig) {
        *self.snapshots.lock().unwrap_or_else(|e| e.into_inner()) = Some(cfg);
    }

    /// Static config/build facts (`version`, flags, …) embedded in every
    /// snapshot bundle under `"build"`.
    pub fn set_build_info(&self, info: Vec<(String, String)>) {
        *self.build_info.lock().unwrap_or_else(|e| e.into_inner()) = info;
    }

    /// Record the final drain report (a JSON object string) so `/drain`
    /// and the shutdown snapshot can serve it.
    pub fn set_drain_json(&self, json: String) {
        *self.drain.lock().unwrap_or_else(|e| e.into_inner()) = Some(json);
    }

    /// Attach the engine's plan-feedback aggregator (and the durable log
    /// handle when one is open) so `/qlog` and `/qlog.json` can serve them.
    pub fn set_qlog(&self, feedback: Arc<EstimateFeedback>, log: Option<Arc<QueryLog>>) {
        *self.qlog.lock().unwrap_or_else(|e| e.into_inner()) = Some(QlogState { feedback, log });
    }

    /// Attach the SLO engine: `/alerts` serves its rule states and
    /// `/healthz` turns 503 while any rule fires.
    pub fn set_slo(&self, slo: Arc<SloEngine>) {
        *self.slo.lock().unwrap_or_else(|e| e.into_inner()) = Some(slo);
    }

    /// Attach a store resource provider feeding `/dashboard` and the
    /// store section of `/healthz`.
    pub fn set_resources(&self, provider: impl Fn() -> ResourceSummary + Send + 'static) {
        *self.resources.lock().unwrap_or_else(|e| e.into_inner()) = Some(Box::new(provider));
    }

    /// Register a named health check. `Ok(detail)` is healthy, `Err(why)`
    /// is not; `/healthz` runs all of them on every request.
    pub fn add_health(&self, name: &str, check: impl Fn() -> Result<String, String> + Send + 'static) {
        self.health.lock().unwrap_or_else(|e| e.into_inner()).push((name.to_string(), Box::new(check)));
    }

    /// Register a callback run before each `/metrics` render — the hook
    /// point for pull-style gauges (store sizes, ring lengths, …). Keep
    /// these cheap; anything that walks the whole store belongs in
    /// [`Telemetry::add_deep_refresher`].
    pub fn add_refresher(&self, refresh: impl Fn() + Send + 'static) {
        self.refreshers.lock().unwrap_or_else(|e| e.into_inner()).push(Box::new(refresh));
    }

    /// Register an *expensive* pull-gauge walk (exact store footprint,
    /// chain histograms). Runs only on `/metrics?deep=1`, so a default
    /// scrape never pays for a full store walk.
    pub fn add_deep_refresher(&self, refresh: impl Fn() + Send + 'static) {
        self.deep_refreshers.lock().unwrap_or_else(|e| e.into_inner()).push(Box::new(refresh));
    }

    /// Attach the per-fingerprint statement cost table: `/top` and
    /// `/top.json` serve it and `nepal_stmt_*` gauges export on every
    /// scrape.
    pub fn set_stmt(&self, stmt: Arc<StmtStats>) {
        *self.stmt.lock().unwrap_or_else(|e| e.into_inner()) = Some(stmt);
    }

    /// Attach the metrics history ring served on `/history.json` and
    /// rendered as dashboard sparklines. The owner drives `tick()`.
    pub fn set_history(&self, history: Arc<HistoryRing>) {
        *self.history.lock().unwrap_or_else(|e| e.into_inner()) = Some(history);
    }

    fn stmt_handle(&self) -> Option<Arc<StmtStats>> {
        self.stmt.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    fn history_handle(&self) -> Option<Arc<HistoryRing>> {
        self.history.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    fn refresh(&self) {
        for r in self.refreshers.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            r();
        }
        if let Some(stmt) = self.stmt_handle() {
            stmt.export(&self.metrics);
        }
    }

    fn refresh_deep(&self) {
        self.refresh();
        for r in self.deep_refreshers.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            r();
        }
    }

    /// Drive the attached history ring from a poll loop. When a snapshot
    /// is due, cheap pull gauges refresh first so the snapshot captures
    /// current values; off-interval polls cost one lock + compare.
    pub fn tick_history(&self) -> bool {
        let Some(h) = self.history_handle() else {
            return false;
        };
        if !h.due() {
            return false;
        }
        self.refresh();
        h.tick(&self.metrics)
    }

    /// Evaluate the attached SLO engine without triggering the snapshot
    /// hook — used from inside `snapshot()` to avoid recursion.
    fn evaluate_slo_raw(&self) -> Option<Vec<AlertStatus>> {
        let slo = self.slo.lock().unwrap_or_else(|e| e.into_inner()).clone();
        slo.map(|s| s.evaluate())
    }

    fn evaluate_slo(&self) -> Option<Vec<AlertStatus>> {
        let statuses = self.evaluate_slo_raw();
        if let Some(sts) = &statuses {
            self.maybe_snapshot_on_firing(sts);
        }
        statuses
    }

    /// An alert *entering* firing dumps one diagnostics bundle, debounced
    /// to at most one alert-triggered snapshot per 30 s.
    fn maybe_snapshot_on_firing(&self, statuses: &[AlertStatus]) {
        let firing: HashSet<String> = statuses.iter().filter(|a| a.state.is_firing()).map(|a| a.name.clone()).collect();
        let newly: Vec<String> = {
            let mut seen = self.firing_seen.lock().unwrap_or_else(|e| e.into_inner());
            let newly = firing.difference(&seen).cloned().collect();
            *seen = firing;
            newly
        };
        if newly.is_empty() || self.snapshots.lock().unwrap_or_else(|e| e.into_inner()).is_none() {
            return;
        }
        let now = unix_ms();
        let last = self.alert_snap_ms.load(Ordering::Relaxed);
        if now.saturating_sub(last) < 30_000 {
            return;
        }
        if self.alert_snap_ms.compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed).is_ok() {
            let _ = self.snapshot(&format!("alert-{}", newly[0]));
        }
    }

    /// List snapshot bundles on disk, oldest first: `(file name, bytes,
    /// modified unix ms)`.
    pub fn list_snapshots(&self) -> Vec<(String, u64, u64)> {
        let dir = match &*self.snapshots.lock().unwrap_or_else(|e| e.into_inner()) {
            Some(cfg) => cfg.dir.clone(),
            None => return Vec::new(),
        };
        let mut out = Vec::new();
        if let Ok(entries) = std::fs::read_dir(&dir) {
            for entry in entries.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if !name.starts_with("snapshot-") || !name.ends_with(".json") {
                    continue;
                }
                let (bytes, modified) = entry
                    .metadata()
                    .map(|m| {
                        let ms = m
                            .modified()
                            .ok()
                            .and_then(|t| t.duration_since(SystemTime::UNIX_EPOCH).ok())
                            .map(|d| d.as_millis() as u64)
                            .unwrap_or(0);
                        (m.len(), ms)
                    })
                    .unwrap_or((0, 0));
                out.push((name, bytes, modified));
            }
        }
        out.sort();
        out
    }

    /// Write one diagnostics bundle and rotate the directory. Returns the
    /// bundle path, or an error when snapshots are not configured.
    pub fn snapshot(&self, trigger: &str) -> std::io::Result<PathBuf> {
        let cfg = match &*self.snapshots.lock().unwrap_or_else(|e| e.into_inner()) {
            Some(cfg) => cfg.clone(),
            None => {
                return Err(std::io::Error::new(std::io::ErrorKind::NotFound, "snapshots not configured"));
            }
        };
        self.refresh();
        let body = self.render_bundle(trigger, &cfg);
        std::fs::create_dir_all(&cfg.dir)?;
        let safe: String =
            trigger.chars().map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '-' }).collect();
        let n = self.snap_counter.fetch_add(1, Ordering::Relaxed);
        let path = cfg.dir.join(format!("snapshot-{:013}-{n:04}-{safe}.json", unix_ms()));
        std::fs::write(&path, body)?;
        if cfg.keep > 0 {
            let bundles = self.list_snapshots();
            for (name, _, _) in bundles.iter().take(bundles.len().saturating_sub(cfg.keep)) {
                let _ = std::fs::remove_file(cfg.dir.join(name));
            }
        }
        flight::emit(FlightKind::Snapshot, 0, 0, 0, trigger);
        Ok(path)
    }

    /// Compose the bundle document: everything an on-call engineer needs
    /// to reconstruct the seconds before an anomaly, in one JSON file.
    fn render_bundle(&self, trigger: &str, cfg: &SnapshotConfig) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("\"trigger\":\"{}\",\n\"written_unix_ms\":{},\n", esc(trigger), unix_ms()));
        let build = self.build_info.lock().unwrap_or_else(|e| e.into_inner());
        s.push_str("\"build\":{");
        for (i, (k, v)) in build.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":\"{}\"", esc(k), esc(v)));
        }
        drop(build);
        s.push_str("},\n");
        let flight = self.flight.lock().unwrap_or_else(|e| e.into_inner()).clone();
        match flight {
            Some(rec) => {
                s.push_str("\"flight\":");
                s.push_str(rec.render_json(cfg.window, 5000).trim_end());
                s.push_str(",\n");
            }
            None => s.push_str("\"flight\":null,\n"),
        }
        s.push_str("\"metrics\":");
        s.push_str(self.metrics.render_json().trim_end());
        s.push_str(",\n\"alerts\":");
        match self.evaluate_slo_raw() {
            Some(statuses) => s.push_str(alerts_json(&statuses).trim_end()),
            None => s.push_str("null"),
        }
        s.push_str(",\n\"slow\":");
        s.push_str(self.slow.render_json().trim_end());
        s.push_str(",\n\"traces\":");
        s.push_str(summaries_json(&self.tracer.summaries()).trim_end());
        s.push_str(",\n\"resources\":");
        match self.resource_summary() {
            Some(r) => s.push_str(&resources_json(&r)),
            None => s.push_str("null"),
        }
        s.push_str(",\n\"stmt\":");
        match self.stmt_handle() {
            Some(stmt) => s.push_str(stmt.render_json(10, StmtSort::default()).trim_end()),
            None => s.push_str("null"),
        }
        s.push_str(",\n\"history\":");
        match self.history_handle() {
            Some(h) => s.push_str(h.render_json(Some(120)).trim_end()),
            None => s.push_str("null"),
        }
        s.push_str(",\n\"drain\":");
        match &*self.drain.lock().unwrap_or_else(|e| e.into_inner()) {
            Some(d) => s.push_str(d.trim_end()),
            None => s.push_str("null"),
        }
        s.push_str("\n}\n");
        s
    }

    fn resource_summary(&self) -> Option<ResourceSummary> {
        let resources = self.resources.lock().unwrap_or_else(|e| e.into_inner());
        resources.as_ref().map(|p| p())
    }

    /// Deep readiness: health checks + pull-gauge refresh + SLO
    /// evaluation + store totals. 503 when a check fails or an alert
    /// fires.
    fn healthz(&self) -> (u16, String) {
        // Refresh pull gauges first so watermark rules see current values.
        self.refresh();
        let checks = self.health.lock().unwrap_or_else(|e| e.into_inner());
        let mut all_ok = true;
        let mut items = Vec::new();
        for (name, check) in checks.iter() {
            match check() {
                Ok(detail) => items.push(format!("\"{}\":{{\"ok\":true,\"detail\":\"{}\"}}", esc(name), esc(&detail))),
                Err(why) => {
                    all_ok = false;
                    items.push(format!("\"{}\":{{\"ok\":false,\"error\":\"{}\"}}", esc(name), esc(&why)));
                }
            }
        }
        drop(checks);
        let mut extra = String::new();
        if let Some(statuses) = self.evaluate_slo() {
            let firing = statuses.iter().filter(|a| a.state.is_firing()).count();
            if firing > 0 {
                all_ok = false;
            }
            extra.push_str(&format!(",\"alerts\":{}", alerts_json(&statuses).trim_end()));
        }
        if let Some(r) = self.resource_summary() {
            extra.push_str(&format!(
                ",\"store\":{{\"total_bytes\":{},\"entity_bytes\":{},\"adjacency_bytes\":{},\"unique_index_bytes\":{},\"journal_bytes\":{},\"classes\":{}}}",
                r.total_bytes,
                r.entity_bytes,
                r.adjacency_bytes,
                r.unique_index_bytes,
                r.journal_bytes,
                r.classes.len()
            ));
        }
        let status = if all_ok { 200 } else { 503 };
        let body = format!(
            "{{\"status\":\"{}\",\"checks\":{{{}}}{}}}\n",
            if all_ok { "ok" } else { "unhealthy" },
            items.join(","),
            extra
        );
        (status, body)
    }

    fn dashboard(&self) -> String {
        let mut b = String::from(
            "<!doctype html><html><head><meta charset=\"utf-8\"><title>nepal dashboard</title><style>\
             body{font-family:system-ui,sans-serif;margin:2em;max-width:70em}\
             table{border-collapse:collapse;margin:0.5em 0}\
             td,th{border:1px solid #ccc;padding:0.25em 0.6em;text-align:right}\
             th{background:#f4f4f4}td.l,th.l{text-align:left}\
             .firing{color:#b00020;font-weight:bold}.pending{color:#b07000}\
             .resolved{color:#3a7}.ok{color:#373}\
             h2{margin-top:1.2em;border-bottom:1px solid #ddd}\
             </style></head><body><h1>nepal dashboard</h1>",
        );
        // Alerts.
        b.push_str("<h2>alerts</h2>");
        match self.evaluate_slo() {
            Some(statuses) => {
                let firing = statuses.iter().filter(|a| a.state.is_firing()).count();
                b.push_str(&format!(
                    "<p>{} rule(s), <span class=\"{}\">{} firing</span></p>",
                    statuses.len(),
                    if firing > 0 { "firing" } else { "ok" },
                    firing
                ));
                b.push_str("<table><tr><th class=l>rule</th><th>state</th><th>measured</th><th>burn</th><th class=l>detail</th></tr>");
                for a in &statuses {
                    b.push_str(&format!(
                        "<tr><td class=l>{}</td><td class=\"{}\">{}</td><td>{:.1}</td><td>{:.2}</td><td class=l>{}</td></tr>",
                        html_esc(&a.name),
                        a.state.name(),
                        a.state.name(),
                        a.measured,
                        a.burn,
                        html_esc(&a.detail)
                    ));
                }
                b.push_str("</table>");
            }
            None => b.push_str("<p>no SLO engine attached</p>"),
        }
        // Store footprint.
        b.push_str("<h2>store footprint</h2>");
        match self.resource_summary() {
            Some(r) => {
                b.push_str(&format!(
                    "<p>total <b>{}</b> — entities {}, adjacency {}, unique index {}; journal save ≈ {}</p>",
                    fmt_bytes(r.total_bytes),
                    fmt_bytes(r.entity_bytes),
                    fmt_bytes(r.adjacency_bytes),
                    fmt_bytes(r.unique_index_bytes),
                    fmt_bytes(r.journal_bytes)
                ));
                b.push_str("<table><tr><th class=l>class</th><th class=l>kind</th><th>entities</th><th>alive</th><th>versions</th><th>bytes</th></tr>");
                let mut classes = r.classes.clone();
                classes.sort_by_key(|c| std::cmp::Reverse(c.bytes));
                for c in classes.iter().take(20) {
                    b.push_str(&format!(
                        "<tr><td class=l>{}</td><td class=l>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
                        html_esc(&c.name),
                        c.kind,
                        c.entities,
                        c.alive,
                        c.versions,
                        fmt_bytes(c.bytes)
                    ));
                }
                b.push_str("</table>");
                if !r.chain_histogram.is_empty() {
                    b.push_str("<p>version-chain length: ");
                    for (bound, n) in &r.chain_histogram {
                        b.push_str(&format!("≤{bound}: {n} &nbsp; "));
                    }
                    b.push_str("</p>");
                }
            }
            None => b.push_str("<p>no resource provider attached</p>"),
        }
        // Query latency quantiles.
        b.push_str("<h2>query latency</h2>");
        match self.metrics.histogram_handle("nepal_query_duration_ns") {
            Some(h) if h.count() > 0 => b.push_str(&format!(
                "<p>{} queries — p50 {} · p95 {} · p99 {}</p>",
                h.count(),
                fmt_ns(h.quantile(0.50)),
                fmt_ns(h.quantile(0.95)),
                fmt_ns(h.quantile(0.99))
            )),
            _ => b.push_str("<p>no queries recorded</p>"),
        }
        // Slow queries with trace links.
        b.push_str("<h2>top slow queries</h2>");
        let mut slow = self.slow.entries();
        if slow.is_empty() {
            b.push_str("<p>slow-query ring is empty</p>");
        } else {
            slow.sort_by_key(|q| std::cmp::Reverse(q.total_ns));
            b.push_str("<table><tr><th class=l>query</th><th>duration</th><th>rows</th><th class=l>trace</th></tr>");
            for q in slow.iter().take(10) {
                let trace = match q.trace_id {
                    Some(id) => format!("<a href=\"/traces/{id}\">{id}</a>"),
                    None => "—".to_string(),
                };
                b.push_str(&format!(
                    "<tr><td class=l><code>{}</code></td><td>{}</td><td>{}</td><td class=l>{}</td></tr>",
                    html_esc(&truncate(&q.query, 100)),
                    fmt_ns(q.total_ns),
                    q.result_rows,
                    trace
                ));
            }
            b.push_str("</table>");
        }
        // Per-fingerprint cost attribution.
        b.push_str("<h2>top queries by cost</h2>");
        match self.stmt_handle() {
            Some(stmt) => {
                let rows = stmt.top(10, StmtSort::default());
                if rows.is_empty() {
                    b.push_str("<p>no statements recorded</p>");
                } else {
                    b.push_str(&format!(
                        "<p>{} fingerprint(s) tracked, {} evicted — sorted by cpu</p>",
                        stmt.tracked(),
                        stmt.evicted()
                    ));
                    b.push_str(
                        "<table><tr><th class=l>fingerprint</th><th class=l>statement</th><th>calls</th>\
                         <th>cpu</th><th>wall</th><th>rows</th><th>bytes</th><th>mat</th><th>err</th></tr>",
                    );
                    for r in &rows {
                        b.push_str(&format!(
                            "<tr><td class=l><code>{:016x}</code></td><td class=l><code>{}</code></td>\
                             <td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
                            r.fingerprint,
                            html_esc(&truncate(&r.text, 80)),
                            r.calls,
                            fmt_ns(r.cpu_ns_total),
                            fmt_ns(r.wall_ns_total),
                            r.rows,
                            fmt_bytes(r.bytes_scanned),
                            r.materializations,
                            r.errors + r.deadline_exceeded + r.cancelled,
                        ));
                    }
                    b.push_str("</table>");
                }
                b.push_str("<p><a href=\"/top\">/top</a> · <a href=\"/top.json\">/top.json</a></p>");
            }
            None => b.push_str("<p>statement stats not attached</p>"),
        }
        // Metrics history sparklines.
        b.push_str("<h2>metrics history</h2>");
        match self.history_handle() {
            Some(h) if !h.is_empty() => {
                b.push_str(&format!(
                    "<p>{} snapshot(s) at {} ms resolution ({} downsampled away)</p>",
                    h.len(),
                    h.resolution_ms(),
                    h.downsampled()
                ));
                b.push_str("<table><tr><th class=l>metric</th><th class=l>trend</th><th>last</th></tr>");
                const SPARKS: [&str; 5] = [
                    "nepal_queries_total",
                    "nepal_store_total_bytes",
                    "nepal_stmt_cpu_ns",
                    "nepal_stmt_rows",
                    "nepal_requests_total",
                ];
                for name in SPARKS {
                    let series: Vec<f64> = h.series(name).into_iter().map(|(_, v)| v).collect();
                    if series.is_empty() {
                        continue;
                    }
                    b.push_str(&format!(
                        "<tr><td class=l><code>{}</code></td><td class=l>{}</td><td>{}</td></tr>",
                        name,
                        sparkline(&series),
                        series.last().copied().unwrap_or(0.0),
                    ));
                }
                b.push_str("</table>");
                b.push_str("<p><a href=\"/history.json\">/history.json</a></p>");
            }
            Some(_) => b.push_str("<p>history ring attached, no snapshots yet</p>"),
            None => b.push_str("<p>metrics history not attached</p>"),
        }
        // Recent traces.
        b.push_str("<h2>recent traces</h2>");
        let summaries = self.tracer.summaries();
        if summaries.is_empty() {
            b.push_str("<p>trace ring is empty</p>");
        } else {
            b.push_str("<ul>");
            for s in summaries.iter().rev().take(10) {
                b.push_str(&format!(
                    "<li><a href=\"/traces/{}\">#{}</a> {} — {} ({} spans)</li>",
                    s.id,
                    s.id,
                    html_esc(&truncate(&s.name, 90)),
                    fmt_ns(s.dur_ns),
                    s.spans
                ));
            }
            b.push_str("</ul>");
        }
        // Flight recorder: the newest wide events, stitched across threads.
        b.push_str("<h2>flight recorder</h2>");
        match self.flight.lock().unwrap_or_else(|e| e.into_inner()).clone() {
            Some(rec) => {
                let stats = rec.stats();
                b.push_str(&format!(
                    "<p>{} thread ring(s), {} event(s) recorded ({} dropped by wrap-around)</p>",
                    stats.rings.len(),
                    stats.total_written,
                    stats.total_dropped
                ));
                let events = rec.events_since(Duration::from_secs(60));
                if events.is_empty() {
                    b.push_str("<p>no wide events in the last 60s</p>");
                } else {
                    b.push_str("<table><tr><th>seq</th><th>age</th><th>thread</th><th class=l>kind</th><th class=l>detail</th></tr>");
                    let now = rec.now_us();
                    for e in events.iter().rev().take(15) {
                        b.push_str(&format!(
                            "<tr><td>{}</td><td>{:.1}s</td><td>{}</td><td class=l>{}</td><td class=l><code>{}</code></td></tr>",
                            e.seq,
                            now.saturating_sub(e.ts_us) as f64 / 1e6,
                            e.thread,
                            e.kind.name(),
                            html_esc(&e.describe())
                        ));
                    }
                    b.push_str("</table>");
                }
            }
            None => b.push_str("<p>no flight recorder attached</p>"),
        }
        // Snapshot bundles on disk.
        b.push_str("<h2>diagnostics snapshots</h2>");
        if self.snapshots.lock().unwrap_or_else(|e| e.into_inner()).is_some() {
            let bundles = self.list_snapshots();
            if bundles.is_empty() {
                b.push_str("<p>no bundles written (POST /snapshot to force one)</p>");
            } else {
                b.push_str("<table><tr><th class=l>bundle</th><th>size</th></tr>");
                for (name, bytes, _) in bundles.iter().rev().take(10) {
                    b.push_str(&format!(
                        "<tr><td class=l><code>{}</code></td><td>{}</td></tr>",
                        html_esc(name),
                        fmt_bytes(*bytes)
                    ));
                }
                b.push_str("</table>");
            }
        } else {
            b.push_str("<p>snapshots not configured</p>");
        }
        if let Some(d) = &*self.drain.lock().unwrap_or_else(|e| e.into_inner()) {
            b.push_str("<h2>drain report</h2>");
            b.push_str(&format!("<p><code>{}</code></p>", html_esc(d.trim_end())));
        }
        b.push_str(
            "<p><a href=\"/metrics\">/metrics</a> · <a href=\"/alerts\">/alerts</a> · \
             <a href=\"/healthz\">/healthz</a> · <a href=\"/slow\">/slow</a> · \
             <a href=\"/top\">/top</a> · <a href=\"/history.json\">/history.json</a> · \
             <a href=\"/qlog\">/qlog</a> · <a href=\"/traces\">/traces</a> · \
             <a href=\"/flight\">/flight</a> · <a href=\"/snapshot\">/snapshot</a></p></body></html>",
        );
        b
    }

    /// Route a `POST` request path to `(status, content-type, body)`.
    /// Only `/snapshot` accepts POST: it writes a bundle on demand.
    pub fn handle_post(&self, path: &str) -> (u16, &'static str, String) {
        let path = path.split('?').next().unwrap_or(path);
        match path {
            "/snapshot" => match self.snapshot("http") {
                Ok(p) => (200, CT_JSON, format!("{{\"written\":\"{}\"}}\n", esc(&p.display().to_string()))),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    (404, CT_JSON, "{\"error\":\"snapshots not configured\"}\n".to_string())
                }
                Err(e) => (500, CT_JSON, format!("{{\"error\":\"{}\"}}\n", esc(&e.to_string()))),
            },
            _ => (405, CT_TEXT, "POST is supported only on /snapshot\n".to_string()),
        }
    }

    /// Route a request path to `(status, content-type, body)`.
    pub fn handle(&self, path: &str) -> (u16, &'static str, String) {
        let query = path.split_once('?').map(|(_, q)| q).unwrap_or("");
        let path = path.split('?').next().unwrap_or(path);
        match path {
            "/flight" => match self.flight.lock().unwrap_or_else(|e| e.into_inner()).clone() {
                Some(rec) => {
                    let secs = query_param(query, "secs").and_then(|v| v.parse().ok()).unwrap_or(60);
                    let limit = query_param(query, "limit").and_then(|v| v.parse().ok()).unwrap_or(500);
                    (200, CT_JSON, rec.render_json(Duration::from_secs(secs), limit))
                }
                None => (404, CT_JSON, "{\"error\":\"no flight recorder attached\"}\n".to_string()),
            },
            "/snapshot" => {
                if self.snapshots.lock().unwrap_or_else(|e| e.into_inner()).is_none() {
                    return (404, CT_JSON, "{\"error\":\"snapshots not configured\"}\n".to_string());
                }
                let dir = self
                    .snapshots
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .as_ref()
                    .map(|c| c.dir.display().to_string())
                    .unwrap_or_default();
                let mut s = format!("{{\"dir\":\"{}\",\"bundles\":[", esc(&dir));
                for (i, (name, bytes, modified)) in self.list_snapshots().iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(&format!(
                        "{{\"file\":\"{}\",\"bytes\":{bytes},\"modified_unix_ms\":{modified}}}",
                        esc(name)
                    ));
                }
                s.push_str("]}\n");
                (200, CT_JSON, s)
            }
            "/drain" => match &*self.drain.lock().unwrap_or_else(|e| e.into_inner()) {
                Some(d) => (200, CT_JSON, format!("{}\n", d.trim_end())),
                None => (404, CT_JSON, "{\"error\":\"no drain recorded\"}\n".to_string()),
            },
            "/metrics" => {
                if query_param(query, "deep").is_some() {
                    self.refresh_deep();
                } else {
                    self.refresh();
                }
                (200, CT_TEXT, self.metrics.render_prometheus())
            }
            "/metrics.json" => {
                if query_param(query, "deep").is_some() {
                    self.refresh_deep();
                } else {
                    self.refresh();
                }
                let mut body = self.metrics.render_json();
                body.push('\n');
                (200, CT_JSON, body)
            }
            "/top" => match self.stmt_handle() {
                Some(stmt) => {
                    let n = query_param(query, "n").and_then(|v| v.parse().ok()).unwrap_or(20);
                    let sort = query_param(query, "sort").and_then(StmtSort::parse).unwrap_or_default();
                    (200, CT_TEXT, stmt.render_text(n, sort))
                }
                None => (404, CT_TEXT, "statement stats not attached\n".to_string()),
            },
            "/top.json" => match self.stmt_handle() {
                Some(stmt) => {
                    let n = query_param(query, "n").and_then(|v| v.parse().ok()).unwrap_or(20);
                    let sort = query_param(query, "sort").and_then(StmtSort::parse).unwrap_or_default();
                    (200, CT_JSON, stmt.render_json(n, sort))
                }
                None => (404, CT_JSON, "{\"error\":\"statement stats not attached\"}\n".to_string()),
            },
            "/history.json" => match self.history_handle() {
                Some(h) => {
                    let tail = query_param(query, "tail").and_then(|v| v.parse().ok());
                    (200, CT_JSON, h.render_json(tail))
                }
                None => (404, CT_JSON, "{\"error\":\"metrics history not attached\"}\n".to_string()),
            },
            "/healthz" => {
                let (status, body) = self.healthz();
                (status, CT_JSON, body)
            }
            "/alerts" => match self.evaluate_slo() {
                Some(statuses) => (200, CT_TEXT, alerts_text(&statuses)),
                None => (404, CT_TEXT, "no slo engine attached\n".to_string()),
            },
            "/alerts.json" => match self.evaluate_slo() {
                Some(statuses) => (200, CT_JSON, alerts_json(&statuses)),
                None => (404, CT_JSON, "{\"error\":\"no slo engine attached\"}\n".to_string()),
            },
            "/dashboard" => {
                self.refresh();
                (200, CT_HTML, self.dashboard())
            }
            "/slow" => (200, CT_JSON, self.slow.render_json()),
            "/qlog" => match &*self.qlog.lock().unwrap_or_else(|e| e.into_inner()) {
                Some(q) => (200, CT_TEXT, q.feedback.render_text(20)),
                None => (404, CT_TEXT, "query log not attached\n".to_string()),
            },
            "/qlog.json" => match &*self.qlog.lock().unwrap_or_else(|e| e.into_inner()) {
                Some(q) => {
                    let status = match &q.log {
                        Some(log) => format!("\"enabled\":true,{}", log.status_json()),
                        None => "\"enabled\":false".to_string(),
                    };
                    let body = format!("{{{},\"fingerprints\":{}}}\n", status, q.feedback.render_json());
                    (200, CT_JSON, body)
                }
                None => (404, CT_JSON, "{\"error\":\"query log not attached\"}\n".to_string()),
            },
            "/traces" => (200, CT_JSON, summaries_json(&self.tracer.summaries())),
            "/traces/latest" => match self.tracer.export_latest_chrome() {
                Some(json) => (200, CT_JSON, json),
                None => (404, CT_JSON, "{\"error\":\"no traces stored\"}\n".to_string()),
            },
            _ => {
                if let Some(id) = path.strip_prefix("/traces/").and_then(|s| s.parse::<u64>().ok()) {
                    return match self.tracer.export_chrome(id) {
                        Some(json) => (200, CT_JSON, json),
                        None => (404, CT_JSON, format!("{{\"error\":\"no trace with id {id}\"}}\n")),
                    };
                }
                (404, CT_TEXT, "not found\n".to_string())
            }
        }
    }
}

fn html_esc(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

fn unix_ms() -> u64 {
    SystemTime::now().duration_since(SystemTime::UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0)
}

/// `query_param("secs=5&limit=9", "secs")` → `Some("5")`.
fn query_param<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query.split('&').find_map(|kv| kv.split_once('=').filter(|(k, _)| *k == key).map(|(_, v)| v))
}

fn resources_json(r: &ResourceSummary) -> String {
    format!(
        "{{\"total_bytes\":{},\"entity_bytes\":{},\"adjacency_bytes\":{},\"unique_index_bytes\":{},\
         \"journal_bytes\":{},\"classes\":{}}}",
        r.total_bytes,
        r.entity_bytes,
        r.adjacency_bytes,
        r.unique_index_bytes,
        r.journal_bytes,
        r.classes.len()
    )
}

static PANIC_HOOK_INSTALLED: AtomicBool = AtomicBool::new(false);

/// Install a chaining panic hook that emits a `panic` wide event and
/// dumps a diagnostics bundle before the previous hook (backtrace print)
/// runs. Panics *caught* downstream (e.g. the serving panic barrier)
/// still pass through here, so an evaluation panic under load leaves a
/// bundle behind. Installs at most once per process; later calls are
/// no-ops.
pub fn install_panic_hook(telemetry: Arc<Telemetry>) {
    if PANIC_HOOK_INSTALLED.swap(true, Ordering::SeqCst) {
        return;
    }
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let current = std::thread::current();
        flight::emit(FlightKind::Panic, 0, 0, 0, current.name().unwrap_or("anon"));
        // Re-entrancy guard: a panic inside the snapshot writer must not
        // recurse into another snapshot.
        static IN_HOOK: AtomicBool = AtomicBool::new(false);
        if !IN_HOOK.swap(true, Ordering::SeqCst) {
            let _ = telemetry.snapshot("panic");
            IN_HOOK.store(false, Ordering::SeqCst);
        }
        prev(info);
    }));
}

fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_string()
    } else {
        let cut: String = s.chars().take(max).collect();
        format!("{cut}…")
    }
}

/// `1536` → `"1.5 KiB"`.
pub fn fmt_bytes(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b as f64;
    let mut i = 0;
    while v >= 1024.0 && i < UNITS.len() - 1 {
        v /= 1024.0;
        i += 1;
    }
    if i == 0 {
        format!("{b} B")
    } else {
        format!("{v:.1} {}", UNITS[i])
    }
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

fn respond(stream: &mut TcpStream, code: u16, content_type: &str, body: &str) {
    respond_with(stream, code, content_type, body, &[]);
}

fn respond_with(stream: &mut TcpStream, code: u16, content_type: &str, body: &str, extra_headers: &[(&str, &str)]) {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        code,
        status_text(code),
        content_type,
        body.len()
    );
    for (k, v) in extra_headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str("\r\n");
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Read a request head (through the blank line), bounded at 8 KiB.
fn read_head(stream: &mut TcpStream) -> std::io::Result<String> {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    while buf.len() < 8192 {
        let n = stream.read(&mut byte)?;
        if n == 0 {
            break;
        }
        buf.push(byte[0]);
        if buf.ends_with(b"\r\n\r\n") {
            break;
        }
    }
    Ok(String::from_utf8_lossy(&buf).into_owned())
}

fn serve_connection(telemetry: &Telemetry, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let head = match read_head(&mut stream) {
        Ok(h) => h,
        Err(_) => return,
    };
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method != "GET" && method != "POST" {
        respond(&mut stream, 405, CT_TEXT, "only GET and POST are supported\n");
        return;
    }
    if path.is_empty() {
        respond(&mut stream, 400, CT_TEXT, "malformed request line\n");
        return;
    }
    let (code, content_type, body) =
        if method == "POST" { telemetry.handle_post(path) } else { telemetry.handle(path) };
    if code == 503 {
        // Not-ready/firing responses carry a retry hint like shed ones.
        respond_with(&mut stream, code, content_type, &body, &[("Retry-After", "1")]);
    } else {
        respond(&mut stream, code, content_type, &body);
    }
}

/// Per-listener cap on concurrently served connections; excess clients
/// get an immediate 503 instead of queueing behind a stalled reader.
const MAX_CONNECTIONS: usize = 64;

/// The background HTTP listener.
pub struct TelemetryServer {
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TelemetryServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and serve
    /// `telemetry` until the returned handle is dropped. Each accepted
    /// connection runs on its own thread so one slow client never blocks
    /// a concurrent scrape.
    pub fn start(telemetry: Arc<Telemetry>, addr: &str) -> std::io::Result<TelemetryServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stop = shutdown.clone();
        let accept_thread = std::thread::spawn(move || {
            let active = Arc::new(AtomicUsize::new(0));
            while !stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((mut stream, _)) => {
                        let _ = stream.set_nonblocking(false);
                        if active.load(Ordering::Relaxed) >= MAX_CONNECTIONS {
                            // Overload shed: tell scrapers when to come back
                            // instead of letting them hammer the listener.
                            respond_with(
                                &mut stream,
                                503,
                                CT_TEXT,
                                "connection limit reached\n",
                                &[("Retry-After", "1")],
                            );
                            continue;
                        }
                        active.fetch_add(1, Ordering::Relaxed);
                        let telemetry = telemetry.clone();
                        let active = active.clone();
                        std::thread::spawn(move || {
                            serve_connection(&telemetry, stream);
                            active.fetch_sub(1, Ordering::Relaxed);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(TelemetryServer { addr: local, shutdown, accept_thread: Some(accept_thread) })
    }

    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slo::SloRule;

    fn telemetry() -> Arc<Telemetry> {
        let metrics = Arc::new(MetricsRegistry::new());
        metrics.counter("nepal_queries_total", "Total queries").add(5);
        let slow = Arc::new(SlowQueryLog::new(0, 8));
        slow.record("Retrieve P …", 1234, 1);
        let tracer = Tracer::new();
        tracer.set_enabled(true);
        tracer.set_slow_threshold_ns(u64::MAX);
        drop(tracer.start_trace("q"));
        Arc::new(Telemetry::new(metrics, slow, tracer))
    }

    fn get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap_or((response.as_str(), ""));
        (head.to_string(), body.to_string())
    }

    #[test]
    fn routing_covers_all_endpoints() {
        let t = telemetry();
        t.add_health("native", || Ok("2194 entities".to_string()));
        let (code, ct, body) = t.handle("/metrics");
        assert_eq!(code, 200);
        assert!(ct.starts_with("text/plain; version=0.0.4"));
        assert!(body.contains("nepal_queries_total 5"));
        let (code, _, body) = t.handle("/metrics.json");
        assert_eq!(code, 200);
        assert!(body.contains("\"nepal_queries_total\":5"));
        let (code, _, body) = t.handle("/healthz");
        assert_eq!(code, 200);
        assert!(body.contains("\"native\":{\"ok\":true"));
        let (code, _, body) = t.handle("/slow");
        assert_eq!(code, 200);
        assert!(body.contains("Retrieve P"));
        let (code, ct, body) = t.handle("/dashboard");
        assert_eq!(code, 200);
        assert!(ct.starts_with("text/html"));
        assert!(body.contains("nepal dashboard"));
        let (code, _, body) = t.handle("/traces");
        assert_eq!(code, 200);
        assert!(body.contains("\"name\":\"q\""));
        let id = t.tracer.latest_id().unwrap();
        let (code, _, body) = t.handle(&format!("/traces/{id}"));
        assert_eq!(code, 200);
        assert!(body.contains("traceEvents"));
        let (code, _, _) = t.handle("/traces/latest");
        assert_eq!(code, 200);
        assert_eq!(t.handle("/traces/999999").0, 404);
        assert_eq!(t.handle("/nope").0, 404);
    }

    #[test]
    fn alerts_routes_require_engine_then_serve_states() {
        let t = telemetry();
        assert_eq!(t.handle("/alerts").0, 404);
        assert_eq!(t.handle("/alerts.json").0, 404);
        let slo = Arc::new(SloEngine::new(t.metrics.clone()));
        slo.add(SloRule::gauge_max("noop", "missing_gauge", 1));
        t.set_slo(slo);
        let (code, _, body) = t.handle("/alerts");
        assert_eq!(code, 200);
        assert!(body.contains("noop"), "{body}");
        let (code, _, body) = t.handle("/alerts.json");
        assert_eq!(code, 200);
        assert!(body.contains("\"firing\":0"), "{body}");
    }

    #[test]
    fn healthz_deepens_with_alerts_and_resources() {
        let t = telemetry();
        t.add_health("store", || Ok("fine".to_string()));
        let g = t.metrics.gauge("pressure", "p");
        let slo = Arc::new(SloEngine::new(t.metrics.clone()));
        slo.add(SloRule::gauge_max("pressure-watermark", "pressure", 100));
        t.set_slo(slo);
        t.set_resources(|| ResourceSummary {
            classes: vec![ResourceClass {
                name: "VM".into(),
                kind: "node",
                entities: 2,
                alive: 2,
                versions: 3,
                bytes: 640,
            }],
            entity_bytes: 640,
            adjacency_bytes: 64,
            unique_index_bytes: 32,
            journal_bytes: 128,
            total_bytes: 736,
            chain_histogram: vec![(1, 1), (2, 1)],
        });

        let (code, _, body) = t.handle("/healthz");
        assert_eq!(code, 200, "{body}");
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        assert!(body.contains("\"alerts\":{\"firing\":0"), "{body}");
        assert!(body.contains("\"total_bytes\":736"), "{body}");

        // A firing alert flips readiness to 503.
        g.set(500);
        let (code, _, body) = t.handle("/healthz");
        assert_eq!(code, 503, "{body}");
        assert!(body.contains("\"status\":\"unhealthy\""), "{body}");
        assert!(body.contains("\"alerts\":{\"firing\":1"), "{body}");

        // Recovery resolves and readiness returns.
        g.set(0);
        let (code, _, body) = t.handle("/healthz");
        assert_eq!(code, 200, "{body}");
        assert!(body.contains("\"state\":\"resolved\"") || body.contains("\"state\":\"ok\""), "{body}");

        // Dashboard renders the store table and alert states.
        let (code, _, body) = t.handle("/dashboard");
        assert_eq!(code, 200);
        assert!(body.contains("VM"), "{body}");
        assert!(body.contains("pressure-watermark"), "{body}");
    }

    #[test]
    fn healthz_reports_503_when_a_check_fails() {
        let t = telemetry();
        t.add_health("native", || Ok("fine".to_string()));
        t.add_health("gremlin", || Err("connection refused".to_string()));
        let (code, _, body) = t.handle("/healthz");
        assert_eq!(code, 503);
        assert!(body.contains("\"status\":\"unhealthy\""));
        assert!(body.contains("\"gremlin\":{\"ok\":false"));
    }

    #[test]
    fn qlog_routes_require_attachment_then_serve_feedback() {
        let t = telemetry();
        assert_eq!(t.handle("/qlog").0, 404);
        assert_eq!(t.handle("/qlog.json").0, 404);
        let feedback = Arc::new(EstimateFeedback::new());
        t.set_qlog(feedback.clone(), None);
        let (code, _, body) = t.handle("/qlog");
        assert_eq!(code, 200);
        assert!(body.contains("no plan feedback"), "{body}");
        let (code, _, body) = t.handle("/qlog.json");
        assert_eq!(code, 200);
        assert!(body.contains("\"enabled\":false"), "{body}");
        assert!(body.contains("\"fingerprints\":[]"), "{body}");
    }

    #[test]
    fn top_routes_require_attachment_then_serve_stats() {
        let t = telemetry();
        assert_eq!(t.handle("/top").0, 404);
        assert_eq!(t.handle("/top.json").0, 404);
        let stmt = Arc::new(StmtStats::new(16));
        let meter = crate::meter::ResourceMeter::new();
        meter.add_rows(7);
        meter.add_bytes(640);
        stmt.record(0xabcd, "Retrieve VM", crate::stmt::StmtOutcome::Ok, 1_000, 7, Some(&meter.snapshot()));
        t.set_stmt(stmt);
        let (code, ct, body) = t.handle("/top?n=5&sort=rows");
        assert_eq!(code, 200);
        assert!(ct.starts_with("text/plain"));
        assert!(body.contains("Retrieve VM"), "{body}");
        assert!(body.contains("rows"), "{body}");
        let (code, _, body) = t.handle("/top.json");
        assert_eq!(code, 200);
        assert!(body.contains("\"fingerprint\":\"000000000000abcd\""), "{body}");
        assert!(body.contains("\"rows\":7"), "{body}");
        // The dashboard grows a top-queries panel and /metrics exports
        // nepal_stmt_* families once the table is attached.
        let (_, _, body) = t.handle("/dashboard");
        assert!(body.contains("top queries by cost"), "missing panel");
        assert!(body.contains("000000000000abcd"), "{body}");
        let (_, _, body) = t.handle("/metrics");
        assert!(body.contains("nepal_stmt_calls 1"), "{body}");
        assert!(body.contains("nepal_stmt_rows 7"), "{body}");
    }

    #[test]
    fn history_route_serves_ring_snapshots_and_sparklines() {
        let t = telemetry();
        assert_eq!(t.handle("/history.json").0, 404);
        let ring = Arc::new(HistoryRing::new(Duration::from_millis(10), 8));
        assert!(ring.tick_at(10, &t.metrics));
        assert!(ring.tick_at(20, &t.metrics));
        assert!(ring.tick_at(30, &t.metrics));
        t.set_history(ring);
        let (code, _, body) = t.handle("/history.json");
        assert_eq!(code, 200);
        assert!(body.contains("\"len\":3"), "{body}");
        assert!(body.contains("nepal_queries_total"), "{body}");
        let (code, _, body) = t.handle("/history.json?tail=1");
        assert_eq!(code, 200);
        assert!(body.contains("\"unix_ms\":30"), "{body}");
        assert!(!body.contains("\"unix_ms\":10"), "{body}");
        let (_, _, body) = t.handle("/dashboard");
        assert!(body.contains("metrics history"), "missing panel");
        assert!(body.contains("nepal_queries_total"), "{body}");
    }

    #[test]
    fn deep_refreshers_run_only_on_demand() {
        let t = telemetry();
        let cheap = t.metrics.gauge("cheap_runs", "cheap refresher runs");
        let deep = t.metrics.gauge("deep_runs", "deep refresher runs");
        {
            let cheap = cheap.clone();
            t.add_refresher(move || cheap.set(cheap.get() + 1));
        }
        {
            let deep = deep.clone();
            t.add_deep_refresher(move || deep.set(deep.get() + 1));
        }
        let (_, _, body) = t.handle("/metrics");
        assert!(body.contains("deep_runs 0"), "{body}");
        let (_, _, body) = t.handle("/metrics?deep=1");
        assert!(body.contains("deep_runs 1"), "{body}");
        assert!(cheap.get() >= 2, "cheap refresher must run on every scrape");
        let (_, _, body) = t.handle("/metrics.json?deep=1");
        assert!(body.contains("\"deep_runs\":2"), "{body}");
    }

    #[test]
    fn top_and_history_survive_concurrent_scrapes() {
        let t = telemetry();
        let stmt = Arc::new(StmtStats::new(32));
        t.set_stmt(stmt.clone());
        let ring = Arc::new(HistoryRing::new(Duration::from_millis(1), 64));
        for i in 0..8 {
            ring.tick_at(i * 10, &t.metrics);
        }
        t.set_history(ring.clone());
        let server = TelemetryServer::start(t, "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        std::thread::scope(|s| {
            for w in 0..4 {
                let stmt = stmt.clone();
                s.spawn(move || {
                    for i in 0..10 {
                        stmt.record(w * 100 + i, "Retrieve VM", crate::stmt::StmtOutcome::Ok, 500, 1, None);
                        let (head, body) = get(addr, "/top.json");
                        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
                        assert!(body.contains("\"statements\""), "{body}");
                        let (head, body) = get(addr, "/history.json");
                        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
                        assert!(body.contains("\"snapshots\""), "{body}");
                    }
                });
            }
        });
        drop(server);
    }

    #[test]
    fn refreshers_run_before_metrics_render() {
        let t = telemetry();
        let g = t.metrics.gauge("nepal_store_entities", "entities");
        t.add_refresher(move || g.set(42));
        let (_, _, body) = t.handle("/metrics");
        assert!(body.contains("nepal_store_entities 42"));
    }

    #[test]
    fn metrics_and_healthz_round_trip_over_a_real_socket() {
        let t = telemetry();
        t.add_health("native", || Ok("ok".to_string()));
        let server = TelemetryServer::start(t, "127.0.0.1:0").unwrap();
        let addr = server.local_addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("Content-Type: text/plain; version=0.0.4"));
        assert!(!body.is_empty());
        assert!(body.contains("nepal_queries_total 5"));

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(body.contains("\"status\":\"ok\""));

        let (head, _) = get(addr, "/unknown");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        drop(server); // joins the accept thread
    }

    #[test]
    fn non_get_methods_are_rejected() {
        let t = telemetry();
        let server = TelemetryServer::start(t, "127.0.0.1:0").unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");
    }

    /// A client that connects and stalls mid-request must not block a
    /// concurrent scrape (connections are served on their own threads).
    #[test]
    fn stalled_connection_does_not_block_scrapes() {
        let t = telemetry();
        let server = TelemetryServer::start(t, "127.0.0.1:0").unwrap();
        let addr = server.local_addr();

        // Send half a request line and hold the socket open.
        let mut stalled = TcpStream::connect(addr).unwrap();
        stalled.write_all(b"GET /met").unwrap();
        stalled.flush().unwrap();

        let start = std::time::Instant::now();
        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(body.contains("nepal_queries_total"));
        assert!(
            start.elapsed() < Duration::from_millis(1500),
            "scrape blocked behind stalled client: {:?}",
            start.elapsed()
        );
        drop(stalled);
    }
}
