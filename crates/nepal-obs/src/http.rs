//! Std-only HTTP/1.1 telemetry endpoint.
//!
//! [`Telemetry`] bundles the observable state of a running engine — the
//! [`MetricsRegistry`], the [`SlowQueryLog`] ring, the [`Tracer`] store,
//! plus pluggable per-backend health checks — and maps `GET` paths onto
//! it:
//!
//! | path             | body                                            |
//! |------------------|-------------------------------------------------|
//! | `/metrics`       | Prometheus text exposition format               |
//! | `/metrics.json`  | the registry as JSON                            |
//! | `/healthz`       | per-backend health, 200 all-ok / 503 otherwise  |
//! | `/slow`          | slow-query ring as JSON                         |
//! | `/qlog`          | worst-estimated fingerprints, human-readable    |
//! | `/qlog.json`     | qlog status + per-fingerprint q-error as JSON   |
//! | `/traces`        | stored trace summaries                          |
//! | `/traces/latest` | newest trace as Chrome trace-event JSON         |
//! | `/traces/<id>`   | one trace as Chrome trace-event JSON            |
//!
//! [`TelemetryServer`] is the listener: a nonblocking accept loop on a
//! background thread, one short-lived request per connection
//! (`Connection: close`), mirroring the Gremlin server's shutdown
//! protocol. Request handling is pure (`Telemetry::handle`) so the routing
//! is testable without a socket.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::metrics::MetricsRegistry;
use crate::profile::SlowQueryLog;
use crate::qlog::{EstimateFeedback, QueryLog};
use crate::trace::{esc, summaries_json, Tracer};

type HealthCheck = Box<dyn Fn() -> Result<String, String> + Send>;
type Refresher = Box<dyn Fn() + Send>;

/// The query-log state the endpoint serves: the estimate-vs-actual
/// aggregator plus, when durable logging is on, the log file handle.
struct QlogState {
    feedback: Arc<EstimateFeedback>,
    log: Option<Arc<QueryLog>>,
}

/// Everything the telemetry endpoint can serve.
pub struct Telemetry {
    pub metrics: Arc<MetricsRegistry>,
    pub slow: Arc<SlowQueryLog>,
    pub tracer: Tracer,
    health: Mutex<Vec<(String, HealthCheck)>>,
    refreshers: Mutex<Vec<Refresher>>,
    qlog: Mutex<Option<QlogState>>,
}

const CT_TEXT: &str = "text/plain; version=0.0.4; charset=utf-8";
const CT_JSON: &str = "application/json";

impl Telemetry {
    pub fn new(metrics: Arc<MetricsRegistry>, slow: Arc<SlowQueryLog>, tracer: Tracer) -> Telemetry {
        Telemetry {
            metrics,
            slow,
            tracer,
            health: Mutex::new(Vec::new()),
            refreshers: Mutex::new(Vec::new()),
            qlog: Mutex::new(None),
        }
    }

    /// Attach the engine's plan-feedback aggregator (and the durable log
    /// handle when one is open) so `/qlog` and `/qlog.json` can serve them.
    pub fn set_qlog(&self, feedback: Arc<EstimateFeedback>, log: Option<Arc<QueryLog>>) {
        *self.qlog.lock().unwrap_or_else(|e| e.into_inner()) = Some(QlogState { feedback, log });
    }

    /// Register a named health check. `Ok(detail)` is healthy, `Err(why)`
    /// is not; `/healthz` runs all of them on every request.
    pub fn add_health(&self, name: &str, check: impl Fn() -> Result<String, String> + Send + 'static) {
        self.health.lock().unwrap_or_else(|e| e.into_inner()).push((name.to_string(), Box::new(check)));
    }

    /// Register a callback run before each `/metrics` render — the hook
    /// point for pull-style gauges (store sizes, ring lengths, …).
    pub fn add_refresher(&self, refresh: impl Fn() + Send + 'static) {
        self.refreshers.lock().unwrap_or_else(|e| e.into_inner()).push(Box::new(refresh));
    }

    fn refresh(&self) {
        for r in self.refreshers.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            r();
        }
    }

    fn healthz(&self) -> (u16, String) {
        let checks = self.health.lock().unwrap_or_else(|e| e.into_inner());
        let mut all_ok = true;
        let mut items = Vec::new();
        for (name, check) in checks.iter() {
            match check() {
                Ok(detail) => items.push(format!("\"{}\":{{\"ok\":true,\"detail\":\"{}\"}}", esc(name), esc(&detail))),
                Err(why) => {
                    all_ok = false;
                    items.push(format!("\"{}\":{{\"ok\":false,\"error\":\"{}\"}}", esc(name), esc(&why)));
                }
            }
        }
        let status = if all_ok { 200 } else { 503 };
        let body = format!(
            "{{\"status\":\"{}\",\"checks\":{{{}}}}}\n",
            if all_ok { "ok" } else { "unhealthy" },
            items.join(",")
        );
        (status, body)
    }

    /// Route a request path to `(status, content-type, body)`.
    pub fn handle(&self, path: &str) -> (u16, &'static str, String) {
        let path = path.split('?').next().unwrap_or(path);
        match path {
            "/metrics" => {
                self.refresh();
                (200, CT_TEXT, self.metrics.render_prometheus())
            }
            "/metrics.json" => {
                self.refresh();
                let mut body = self.metrics.render_json();
                body.push('\n');
                (200, CT_JSON, body)
            }
            "/healthz" => {
                let (status, body) = self.healthz();
                (status, CT_JSON, body)
            }
            "/slow" => (200, CT_JSON, self.slow.render_json()),
            "/qlog" => match &*self.qlog.lock().unwrap_or_else(|e| e.into_inner()) {
                Some(q) => (200, CT_TEXT, q.feedback.render_text(20)),
                None => (404, CT_TEXT, "query log not attached\n".to_string()),
            },
            "/qlog.json" => match &*self.qlog.lock().unwrap_or_else(|e| e.into_inner()) {
                Some(q) => {
                    let status = match &q.log {
                        Some(log) => format!("\"enabled\":true,{}", log.status_json()),
                        None => "\"enabled\":false".to_string(),
                    };
                    let body = format!("{{{},\"fingerprints\":{}}}\n", status, q.feedback.render_json());
                    (200, CT_JSON, body)
                }
                None => (404, CT_JSON, "{\"error\":\"query log not attached\"}\n".to_string()),
            },
            "/traces" => (200, CT_JSON, summaries_json(&self.tracer.summaries())),
            "/traces/latest" => match self.tracer.export_latest_chrome() {
                Some(json) => (200, CT_JSON, json),
                None => (404, CT_JSON, "{\"error\":\"no traces stored\"}\n".to_string()),
            },
            _ => {
                if let Some(id) = path.strip_prefix("/traces/").and_then(|s| s.parse::<u64>().ok()) {
                    return match self.tracer.export_chrome(id) {
                        Some(json) => (200, CT_JSON, json),
                        None => (404, CT_JSON, format!("{{\"error\":\"no trace with id {id}\"}}\n")),
                    };
                }
                (404, CT_TEXT, "not found\n".to_string())
            }
        }
    }
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

fn respond(stream: &mut TcpStream, code: u16, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        code,
        status_text(code),
        content_type,
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Read a request head (through the blank line), bounded at 8 KiB.
fn read_head(stream: &mut TcpStream) -> std::io::Result<String> {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    while buf.len() < 8192 {
        let n = stream.read(&mut byte)?;
        if n == 0 {
            break;
        }
        buf.push(byte[0]);
        if buf.ends_with(b"\r\n\r\n") {
            break;
        }
    }
    Ok(String::from_utf8_lossy(&buf).into_owned())
}

fn serve_connection(telemetry: &Telemetry, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let head = match read_head(&mut stream) {
        Ok(h) => h,
        Err(_) => return,
    };
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method != "GET" {
        respond(&mut stream, 405, CT_TEXT, "only GET is supported\n");
        return;
    }
    if path.is_empty() {
        respond(&mut stream, 400, CT_TEXT, "malformed request line\n");
        return;
    }
    let (code, content_type, body) = telemetry.handle(path);
    respond(&mut stream, code, content_type, &body);
}

/// The background HTTP listener.
pub struct TelemetryServer {
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TelemetryServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and serve
    /// `telemetry` until the returned handle is dropped.
    pub fn start(telemetry: Arc<Telemetry>, addr: &str) -> std::io::Result<TelemetryServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stop = shutdown.clone();
        let accept_thread = std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nonblocking(false);
                        serve_connection(&telemetry, stream);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(TelemetryServer { addr: local, shutdown, accept_thread: Some(accept_thread) })
    }

    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn telemetry() -> Arc<Telemetry> {
        let metrics = Arc::new(MetricsRegistry::new());
        metrics.counter("nepal_queries_total", "Total queries").add(5);
        let slow = Arc::new(SlowQueryLog::new(0, 8));
        slow.record("Retrieve P …", 1234, 1);
        let tracer = Tracer::new();
        tracer.set_enabled(true);
        tracer.set_slow_threshold_ns(u64::MAX);
        drop(tracer.start_trace("q"));
        Arc::new(Telemetry::new(metrics, slow, tracer))
    }

    fn get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap_or((response.as_str(), ""));
        (head.to_string(), body.to_string())
    }

    #[test]
    fn routing_covers_all_endpoints() {
        let t = telemetry();
        t.add_health("native", || Ok("2194 entities".to_string()));
        let (code, ct, body) = t.handle("/metrics");
        assert_eq!(code, 200);
        assert!(ct.starts_with("text/plain"));
        assert!(body.contains("nepal_queries_total 5"));
        let (code, _, body) = t.handle("/metrics.json");
        assert_eq!(code, 200);
        assert!(body.contains("\"nepal_queries_total\":5"));
        let (code, _, body) = t.handle("/healthz");
        assert_eq!(code, 200);
        assert!(body.contains("\"native\":{\"ok\":true"));
        let (code, _, body) = t.handle("/slow");
        assert_eq!(code, 200);
        assert!(body.contains("Retrieve P"));
        let (code, _, body) = t.handle("/traces");
        assert_eq!(code, 200);
        assert!(body.contains("\"name\":\"q\""));
        let id = t.tracer.latest_id().unwrap();
        let (code, _, body) = t.handle(&format!("/traces/{id}"));
        assert_eq!(code, 200);
        assert!(body.contains("traceEvents"));
        let (code, _, _) = t.handle("/traces/latest");
        assert_eq!(code, 200);
        assert_eq!(t.handle("/traces/999999").0, 404);
        assert_eq!(t.handle("/nope").0, 404);
    }

    #[test]
    fn qlog_routes_require_attachment_then_serve_feedback() {
        let t = telemetry();
        assert_eq!(t.handle("/qlog").0, 404);
        assert_eq!(t.handle("/qlog.json").0, 404);
        let feedback = Arc::new(EstimateFeedback::new());
        t.set_qlog(feedback.clone(), None);
        let (code, _, body) = t.handle("/qlog");
        assert_eq!(code, 200);
        assert!(body.contains("no plan feedback"), "{body}");
        let (code, _, body) = t.handle("/qlog.json");
        assert_eq!(code, 200);
        assert!(body.contains("\"enabled\":false"), "{body}");
        assert!(body.contains("\"fingerprints\":[]"), "{body}");
    }

    #[test]
    fn healthz_reports_503_when_a_check_fails() {
        let t = telemetry();
        t.add_health("native", || Ok("fine".to_string()));
        t.add_health("gremlin", || Err("connection refused".to_string()));
        let (code, _, body) = t.handle("/healthz");
        assert_eq!(code, 503);
        assert!(body.contains("\"status\":\"unhealthy\""));
        assert!(body.contains("\"gremlin\":{\"ok\":false"));
    }

    #[test]
    fn refreshers_run_before_metrics_render() {
        let t = telemetry();
        let g = t.metrics.gauge("nepal_store_entities", "entities");
        t.add_refresher(move || g.set(42));
        let (_, _, body) = t.handle("/metrics");
        assert!(body.contains("nepal_store_entities 42"));
    }

    #[test]
    fn metrics_and_healthz_round_trip_over_a_real_socket() {
        let t = telemetry();
        t.add_health("native", || Ok("ok".to_string()));
        let server = TelemetryServer::start(t, "127.0.0.1:0").unwrap();
        let addr = server.local_addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("Content-Type: text/plain"));
        assert!(!body.is_empty());
        assert!(body.contains("nepal_queries_total 5"));

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(body.contains("\"status\":\"ok\""));

        let (head, _) = get(addr, "/unknown");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        drop(server); // joins the accept thread
    }

    #[test]
    fn non_get_methods_are_rejected() {
        let t = telemetry();
        let server = TelemetryServer::start(t, "127.0.0.1:0").unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");
    }
}
