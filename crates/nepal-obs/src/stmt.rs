//! Per-fingerprint statement statistics — the `pg_stat_statements` of the
//! engine. A bounded table keyed by the query-log fingerprint (normalized
//! query shape), aggregating calls, cpu/wall time, rows, bytes,
//! materializations and failure counts, with LRU eviction at a fixed
//! capacity so a workload of unbounded distinct shapes cannot grow memory.
//!
//! The table is fed from the engine's profiled path (one `record` per
//! finished query, one `record_failure` per error) and read by `/top`,
//! `/top.json`, the REPL `:top` command, the dashboard panel and the
//! `nepal_stmt_*` metric families.

use std::collections::HashMap;
use std::sync::Mutex;

use crate::meter::MeterSnapshot;
use crate::metrics::MetricsRegistry;

/// How a failed statement ended, for per-fingerprint failure attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StmtOutcome {
    /// Evaluation completed with a result.
    Ok,
    /// Abandoned at a cancellation checkpoint because the deadline passed.
    Deadline,
    /// Abandoned because the caller cancelled explicitly.
    Cancelled,
    /// Any other error (parse, plan, validation, ...).
    Error,
}

/// Sort key for top-N listings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StmtSort {
    #[default]
    Cpu,
    Rows,
    Bytes,
    Calls,
    Wall,
}

impl StmtSort {
    /// Parse a user-facing sort name (`cpu|rows|bytes|calls|wall`).
    pub fn parse(s: &str) -> Option<StmtSort> {
        match s {
            "cpu" => Some(StmtSort::Cpu),
            "rows" => Some(StmtSort::Rows),
            "bytes" => Some(StmtSort::Bytes),
            "calls" => Some(StmtSort::Calls),
            "wall" => Some(StmtSort::Wall),
            _ => None,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            StmtSort::Cpu => "cpu",
            StmtSort::Rows => "rows",
            StmtSort::Bytes => "bytes",
            StmtSort::Calls => "calls",
            StmtSort::Wall => "wall",
        }
    }
}

/// Aggregated statistics for one statement fingerprint.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StmtEntry {
    pub fingerprint: u64,
    /// Sample text (normalized shape) of the statement.
    pub text: String,
    pub calls: u64,
    pub errors: u64,
    pub deadline_exceeded: u64,
    pub cancelled: u64,
    pub wall_ns_total: u64,
    pub wall_ns_max: u64,
    pub cpu_ns_total: u64,
    pub cpu_ns_max: u64,
    pub rows: u64,
    pub bytes_scanned: u64,
    pub materializations: u64,
    pub keyframe_hits: u64,
    pub join_build_rows: u64,
}

impl StmtEntry {
    fn sort_key(&self, sort: StmtSort) -> u64 {
        match sort {
            StmtSort::Cpu => self.cpu_ns_total,
            StmtSort::Rows => self.rows,
            StmtSort::Bytes => self.bytes_scanned,
            StmtSort::Calls => self.calls,
            StmtSort::Wall => self.wall_ns_total,
        }
    }
}

struct Slot {
    entry: StmtEntry,
    /// Monotone touch tick for LRU eviction.
    touched: u64,
}

struct Inner {
    map: HashMap<u64, Slot>,
    tick: u64,
    evicted: u64,
}

/// Bounded per-fingerprint statement-stats table. Thread-safe; every
/// operation takes one short mutex section.
pub struct StmtStats {
    capacity: usize,
    /// Runtime kill switch: a disabled table drops records at the door, so
    /// overhead drills can toggle metering without rebuilding the server.
    enabled: std::sync::atomic::AtomicBool,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for StmtStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StmtStats").field("capacity", &self.capacity).finish()
    }
}

impl StmtStats {
    pub fn new(capacity: usize) -> StmtStats {
        StmtStats {
            capacity: capacity.max(1),
            enabled: std::sync::atomic::AtomicBool::new(true),
            inner: Mutex::new(Inner { map: HashMap::new(), tick: 0, evicted: 0 }),
        }
    }

    /// Toggle recording at runtime; existing entries are kept.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, std::sync::atomic::Ordering::Relaxed);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Record one finished statement. `meter` carries the deterministic
    /// resource counters when metering was on for this query.
    pub fn record(
        &self,
        fingerprint: u64,
        text: &str,
        outcome: StmtOutcome,
        wall_ns: u64,
        rows: u64,
        meter: Option<&MeterSnapshot>,
    ) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        // Evict the least-recently-touched entry before inserting a new
        // fingerprint at capacity.
        if !inner.map.contains_key(&fingerprint) && inner.map.len() >= self.capacity {
            if let Some(&victim) = inner.map.iter().min_by_key(|(_, s)| s.touched).map(|(fp, _)| fp) {
                inner.map.remove(&victim);
                inner.evicted += 1;
            }
        }
        let slot = inner.map.entry(fingerprint).or_insert_with(|| Slot {
            entry: StmtEntry { fingerprint, text: text.to_string(), ..StmtEntry::default() },
            touched: tick,
        });
        slot.touched = tick;
        let e = &mut slot.entry;
        if e.text.is_empty() && !text.is_empty() {
            e.text = text.to_string();
        }
        e.calls += 1;
        match outcome {
            StmtOutcome::Ok => {}
            StmtOutcome::Deadline => {
                e.errors += 1;
                e.deadline_exceeded += 1;
            }
            StmtOutcome::Cancelled => {
                e.errors += 1;
                e.cancelled += 1;
            }
            StmtOutcome::Error => e.errors += 1,
        }
        e.wall_ns_total += wall_ns;
        e.wall_ns_max = e.wall_ns_max.max(wall_ns);
        e.rows += rows;
        if let Some(m) = meter {
            e.cpu_ns_total += m.cpu_ns;
            e.cpu_ns_max = e.cpu_ns_max.max(m.cpu_ns);
            e.bytes_scanned += m.bytes_scanned;
            e.materializations += m.materializations;
            e.keyframe_hits += m.keyframe_hits;
            e.join_build_rows += m.join_build_rows;
        }
    }

    /// Number of fingerprints currently tracked.
    pub fn tracked(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// Fingerprints evicted by the LRU bound since creation.
    pub fn evicted(&self) -> u64 {
        self.inner.lock().unwrap().evicted
    }

    /// Top `n` entries by `sort`, descending (ties broken by fingerprint
    /// for deterministic output).
    pub fn top(&self, n: usize, sort: StmtSort) -> Vec<StmtEntry> {
        let inner = self.inner.lock().unwrap();
        let mut rows: Vec<StmtEntry> = inner.map.values().map(|s| s.entry.clone()).collect();
        drop(inner);
        rows.sort_by(|a, b| b.sort_key(sort).cmp(&a.sort_key(sort)).then_with(|| a.fingerprint.cmp(&b.fingerprint)));
        rows.truncate(n);
        rows
    }

    /// Workload-wide aggregate, used by the `nepal_stmt_*` gauge export.
    pub fn totals(&self) -> StmtEntry {
        let inner = self.inner.lock().unwrap();
        let mut t = StmtEntry::default();
        for s in inner.map.values() {
            let e = &s.entry;
            t.calls += e.calls;
            t.errors += e.errors;
            t.deadline_exceeded += e.deadline_exceeded;
            t.cancelled += e.cancelled;
            t.wall_ns_total += e.wall_ns_total;
            t.wall_ns_max = t.wall_ns_max.max(e.wall_ns_max);
            t.cpu_ns_total += e.cpu_ns_total;
            t.cpu_ns_max = t.cpu_ns_max.max(e.cpu_ns_max);
            t.rows += e.rows;
            t.bytes_scanned += e.bytes_scanned;
            t.materializations += e.materializations;
            t.keyframe_hits += e.keyframe_hits;
            t.join_build_rows += e.join_build_rows;
        }
        t
    }

    /// Refresh the `nepal_stmt_*` gauge families from the current table.
    /// Gauges (not counters) because LRU eviction makes per-fingerprint
    /// sums non-monotone; the evicted count preserves the signal.
    pub fn export(&self, reg: &MetricsRegistry) {
        let t = self.totals();
        let tracked = self.tracked();
        let evicted = self.evicted();
        reg.gauge("nepal_stmt_tracked", "Statement fingerprints currently tracked").set(tracked as i64);
        reg.gauge("nepal_stmt_evicted", "Statement fingerprints evicted by the LRU bound").set(evicted as i64);
        reg.gauge("nepal_stmt_calls", "Calls aggregated across tracked statements").set(t.calls as i64);
        reg.gauge("nepal_stmt_errors", "Errors aggregated across tracked statements").set(t.errors as i64);
        reg.gauge("nepal_stmt_deadline_exceeded", "Deadline-exceeded calls across tracked statements")
            .set(t.deadline_exceeded as i64);
        reg.gauge("nepal_stmt_cancelled", "Cancelled calls across tracked statements").set(t.cancelled as i64);
        reg.gauge("nepal_stmt_cpu_ns", "Thread-CPU nanoseconds across tracked statements").set(t.cpu_ns_total as i64);
        reg.gauge("nepal_stmt_wall_ns", "Wall nanoseconds across tracked statements").set(t.wall_ns_total as i64);
        reg.gauge("nepal_stmt_rows", "Result rows across tracked statements").set(t.rows as i64);
        reg.gauge("nepal_stmt_bytes_scanned", "Bytes scanned across tracked statements").set(t.bytes_scanned as i64);
        reg.gauge("nepal_stmt_materializations", "Delta-chain materializations across tracked statements")
            .set(t.materializations as i64);
    }

    /// Plain-text top-N table for `/top` and the REPL.
    pub fn render_text(&self, n: usize, sort: StmtSort) -> String {
        let rows = self.top(n, sort);
        let mut out = String::new();
        out.push_str(&format!(
            "# top {} statements by {} ({} tracked, {} evicted)\n",
            rows.len(),
            sort.name(),
            self.tracked(),
            self.evicted()
        ));
        out.push_str("calls      cpu_ms     wall_ms    rows       bytes      mat        err  query\n");
        for e in &rows {
            out.push_str(&format!(
                "{:<10} {:<10.3} {:<10.3} {:<10} {:<10} {:<10} {:<4} {}\n",
                e.calls,
                e.cpu_ns_total as f64 / 1e6,
                e.wall_ns_total as f64 / 1e6,
                e.rows,
                e.bytes_scanned,
                e.materializations,
                e.errors,
                truncate_text(&e.text, 120),
            ));
        }
        out
    }

    /// JSON top-N for `/top.json` and bundle inclusion.
    pub fn render_json(&self, n: usize, sort: StmtSort) -> String {
        let rows = self.top(n, sort);
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"sort\":\"{}\",\"tracked\":{},\"evicted\":{},\"statements\":[",
            sort.name(),
            self.tracked(),
            self.evicted()
        ));
        for (i, e) in rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"fingerprint\":\"{:016x}\",\"query\":\"{}\",\"calls\":{},\"errors\":{},\
                 \"deadline_exceeded\":{},\"cancelled\":{},\"wall_ns_total\":{},\"wall_ns_max\":{},\
                 \"cpu_ns_total\":{},\"cpu_ns_max\":{},\"rows\":{},\"bytes_scanned\":{},\
                 \"materializations\":{},\"keyframe_hits\":{},\"join_build_rows\":{}}}",
                e.fingerprint,
                jesc(&e.text),
                e.calls,
                e.errors,
                e.deadline_exceeded,
                e.cancelled,
                e.wall_ns_total,
                e.wall_ns_max,
                e.cpu_ns_total,
                e.cpu_ns_max,
                e.rows,
                e.bytes_scanned,
                e.materializations,
                e.keyframe_hits,
                e.join_build_rows,
            ));
        }
        out.push_str("]}");
        out
    }
}

fn truncate_text(s: &str, max: usize) -> &str {
    match s.char_indices().nth(max) {
        Some((i, _)) => &s[..i],
        None => s,
    }
}

fn jesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meter(cpu: u64, bytes: u64, mat: u64) -> MeterSnapshot {
        MeterSnapshot { cpu_ns: cpu, bytes_scanned: bytes, materializations: mat, ..MeterSnapshot::default() }
    }

    #[test]
    fn aggregates_per_fingerprint() {
        let s = StmtStats::new(8);
        s.record(1, "VM()", StmtOutcome::Ok, 100, 3, Some(&meter(50, 1024, 2)));
        s.record(1, "VM()", StmtOutcome::Ok, 300, 5, Some(&meter(70, 512, 1)));
        s.record(2, "Host()", StmtOutcome::Deadline, 900, 0, None);
        let top = s.top(10, StmtSort::Cpu);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].fingerprint, 1);
        assert_eq!(top[0].calls, 2);
        assert_eq!(top[0].cpu_ns_total, 120);
        assert_eq!(top[0].cpu_ns_max, 70);
        assert_eq!(top[0].wall_ns_max, 300);
        assert_eq!(top[0].rows, 8);
        assert_eq!(top[0].bytes_scanned, 1536);
        assert_eq!(top[0].materializations, 3);
        let host = &top[1];
        assert_eq!(host.deadline_exceeded, 1);
        assert_eq!(host.errors, 1);
        // Wall sort puts the slow failing statement first.
        assert_eq!(s.top(1, StmtSort::Wall)[0].fingerprint, 2);
    }

    #[test]
    fn lru_evicts_coldest_fingerprint() {
        let s = StmtStats::new(2);
        s.record(1, "a", StmtOutcome::Ok, 1, 0, None);
        s.record(2, "b", StmtOutcome::Ok, 1, 0, None);
        s.record(1, "a", StmtOutcome::Ok, 1, 0, None); // touch 1 -> 2 is coldest
        s.record(3, "c", StmtOutcome::Ok, 1, 0, None); // evicts 2
        assert_eq!(s.tracked(), 2);
        assert_eq!(s.evicted(), 1);
        let fps: Vec<u64> = s.top(10, StmtSort::Calls).iter().map(|e| e.fingerprint).collect();
        assert!(fps.contains(&1) && fps.contains(&3) && !fps.contains(&2), "{fps:?}");
    }

    #[test]
    fn renders_text_and_json() {
        let s = StmtStats::new(4);
        s.record(7, "VM(name=\"a\")", StmtOutcome::Ok, 1000, 2, Some(&meter(10, 64, 1)));
        let text = s.render_text(5, StmtSort::Calls);
        assert!(text.contains("top 1 statements by calls"), "{text}");
        let json = s.render_json(5, StmtSort::Cpu);
        assert!(json.contains("\"fingerprint\":\"0000000000000007\""), "{json}");
        assert!(json.contains("\\\"a\\\""), "escaped quote missing: {json}");
        assert!(json.contains("\"cpu_ns_total\":10"), "{json}");
    }

    #[test]
    fn sort_parse_round_trips() {
        for s in ["cpu", "rows", "bytes", "calls", "wall"] {
            assert_eq!(StmtSort::parse(s).unwrap().name(), s);
        }
        assert!(StmtSort::parse("nope").is_none());
    }
}
