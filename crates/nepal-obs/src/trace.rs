//! Hierarchical span tracing with Chrome trace-event export.
//!
//! A [`Tracer`] hands out [`SpanHandle`]s forming a tree per trace: every
//! span records its id, parent id, start offset and duration (nanoseconds
//! since the tracer's epoch), free-form key-value attributes, and point
//! events. Finished traces land in a bounded ring buffer and can be
//! rendered as Chrome trace-event JSON (loadable in Perfetto or
//! `chrome://tracing`) by [`chrome_trace_json`].
//!
//! Sampling is head-based: request `k` is recorded when `k ≡ 0 (mod N)`
//! (`N` = `sample_every`). Unsampled traces are still *measured* so that a
//! slow one — root duration ≥ `slow_threshold_ns` — is kept anyway
//! (tail-keep for outliers, mirroring the slow-query log).
//!
//! The overhead contract matches the profiling layer: with the tracer
//! disabled, [`Tracer::start_trace`] is a single relaxed atomic load and
//! every [`SpanHandle`] operation is a no-op on a `None` — **no clock reads
//! on the hot path**.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One finished span within a trace.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span id, unique within the tracer's lifetime. The root's parent is 0.
    pub id: u64,
    pub parent: u64,
    pub name: String,
    /// Logical track ("client", "server", …) — rendered as separate Chrome
    /// trace threads so both sides of a wire round-trip stay visually apart.
    pub track: &'static str,
    /// Nanoseconds since the tracer epoch.
    pub start_ns: u64,
    pub dur_ns: u64,
    pub attrs: Vec<(String, String)>,
    /// Point events: (offset since epoch, name).
    pub events: Vec<(u64, String)>,
}

/// One finished trace: a root span plus all of its descendants.
#[derive(Debug, Clone)]
pub struct Trace {
    pub id: u64,
    pub name: String,
    /// Whether head-based sampling picked this trace (a kept-because-slow
    /// trace has `sampled == false`).
    pub sampled: bool,
    pub start_ns: u64,
    pub dur_ns: u64,
    pub spans: Vec<SpanRecord>,
}

/// Listing row for a stored trace (`/traces`, `:trace`).
#[derive(Debug, Clone)]
pub struct TraceSummary {
    pub id: u64,
    pub name: String,
    pub sampled: bool,
    pub dur_ns: u64,
    pub spans: usize,
}

/// In-flight trace buffer shared by all live spans of one trace.
struct TraceBuf {
    tracer: Arc<TracerInner>,
    id: u64,
    name: String,
    sampled: bool,
    start_ns: u64,
    spans: Mutex<Vec<SpanRecord>>,
}

struct TracerInner {
    enabled: AtomicBool,
    sample_every: AtomicU64,
    slow_ns: AtomicU64,
    /// Trace sequence number, drives 1-in-N sampling.
    seq: AtomicU64,
    /// Id allocator shared by traces and spans.
    next_id: AtomicU64,
    epoch: Instant,
    store: Mutex<TraceRing>,
}

struct TraceRing {
    cap: usize,
    traces: VecDeque<Trace>,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The tracing subsystem: cheap to clone, safe to share across threads.
#[derive(Clone)]
pub struct Tracer(Arc<TracerInner>);

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// A disabled tracer keeping the last 64 traces, sampling 1-in-1, with
    /// a 10ms always-keep-slow threshold.
    pub fn new() -> Tracer {
        Tracer::with_capacity(64)
    }

    pub fn with_capacity(cap: usize) -> Tracer {
        Tracer(Arc::new(TracerInner {
            enabled: AtomicBool::new(false),
            sample_every: AtomicU64::new(1),
            slow_ns: AtomicU64::new(10_000_000),
            seq: AtomicU64::new(0),
            next_id: AtomicU64::new(1),
            epoch: Instant::now(),
            store: Mutex::new(TraceRing { cap: cap.max(1), traces: VecDeque::new() }),
        }))
    }

    pub fn enabled(&self) -> bool {
        self.0.enabled.load(Ordering::Relaxed)
    }

    pub fn set_enabled(&self, on: bool) {
        self.0.enabled.store(on, Ordering::Relaxed);
    }

    pub fn sample_every(&self) -> u64 {
        self.0.sample_every.load(Ordering::Relaxed)
    }

    /// Head-based sampling rate: keep 1 trace in every `n` (0 is treated
    /// as 1, i.e. keep everything).
    pub fn set_sample_every(&self, n: u64) {
        self.0.sample_every.store(n.max(1), Ordering::Relaxed);
    }

    pub fn slow_threshold_ns(&self) -> u64 {
        self.0.slow_ns.load(Ordering::Relaxed)
    }

    /// A trace whose root lasts at least this long is kept even when the
    /// head-based sampler skipped it.
    pub fn set_slow_threshold_ns(&self, ns: u64) {
        self.0.slow_ns.store(ns, Ordering::Relaxed);
    }

    /// Start a new trace. When the tracer is disabled this is one atomic
    /// load and the returned handle is inert — no allocation, no clock.
    pub fn start_trace(&self, name: &str) -> SpanHandle {
        self.start_trace_on(name, TRACK_CLIENT)
    }

    /// [`Tracer::start_trace`] with an explicit root track (a server uses
    /// [`TRACK_SERVER`] so its request traces render on the server thread).
    pub fn start_trace_on(&self, name: &str, track: &'static str) -> SpanHandle {
        if !self.0.enabled.load(Ordering::Relaxed) {
            return SpanHandle(None);
        }
        let n = self.0.sample_every.load(Ordering::Relaxed).max(1);
        let seq = self.0.seq.fetch_add(1, Ordering::Relaxed);
        let sampled = seq.is_multiple_of(n);
        let trace_id = self.0.next_id.fetch_add(1, Ordering::Relaxed);
        let span_id = self.0.next_id.fetch_add(1, Ordering::Relaxed);
        let start_ns = self.0.epoch.elapsed().as_nanos() as u64;
        let buf = Arc::new(TraceBuf {
            tracer: self.0.clone(),
            id: trace_id,
            name: name.to_string(),
            sampled,
            start_ns,
            spans: Mutex::new(Vec::new()),
        });
        SpanHandle(Some(Box::new(ActiveSpan {
            buf,
            id: span_id,
            parent: 0,
            name: name.to_string(),
            track,
            start_ns,
            root: true,
            state: Mutex::new(SpanState::default()),
        })))
    }

    /// Number of traces currently stored.
    pub fn len(&self) -> usize {
        lock(&self.0.store).traces.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn clear(&self) {
        lock(&self.0.store).traces.clear();
    }

    /// Stored traces, oldest first.
    pub fn summaries(&self) -> Vec<TraceSummary> {
        lock(&self.0.store)
            .traces
            .iter()
            .map(|t| TraceSummary {
                id: t.id,
                name: t.name.clone(),
                sampled: t.sampled,
                dur_ns: t.dur_ns,
                spans: t.spans.len(),
            })
            .collect()
    }

    /// Id of the most recently finished stored trace.
    pub fn latest_id(&self) -> Option<u64> {
        lock(&self.0.store).traces.back().map(|t| t.id)
    }

    pub fn get(&self, id: u64) -> Option<Trace> {
        lock(&self.0.store).traces.iter().find(|t| t.id == id).cloned()
    }

    /// Chrome trace-event JSON for a stored trace.
    pub fn export_chrome(&self, id: u64) -> Option<String> {
        self.get(id).map(|t| chrome_trace_json(&t))
    }

    /// Chrome trace-event JSON for the most recent stored trace.
    pub fn export_latest_chrome(&self) -> Option<String> {
        let id = self.latest_id()?;
        self.export_chrome(id)
    }

    fn finish_trace(inner: &TracerInner, buf: &TraceBuf, end_ns: u64, spans: Vec<SpanRecord>) {
        let dur_ns = end_ns.saturating_sub(buf.start_ns);
        let keep = buf.sampled || dur_ns >= inner.slow_ns.load(Ordering::Relaxed);
        if !keep {
            return;
        }
        let mut ring = lock(&inner.store);
        let trace =
            Trace { id: buf.id, name: buf.name.clone(), sampled: buf.sampled, start_ns: buf.start_ns, dur_ns, spans };
        // The ring is keyed by trace id: if this id is already stored
        // (a trace reported through more than one keep path, e.g. both
        // sampled and slow), replace it in place instead of duplicating.
        if let Some(existing) = ring.traces.iter_mut().find(|t| t.id == buf.id) {
            *existing = trace;
            return;
        }
        if ring.traces.len() == ring.cap {
            ring.traces.pop_front();
        }
        ring.traces.push_back(trace);
    }
}

/// Track names used by the pipeline.
pub const TRACK_CLIENT: &str = "client";
pub const TRACK_SERVER: &str = "server";

#[derive(Debug, Default)]
struct SpanState {
    attrs: Vec<(String, String)>,
    events: Vec<(u64, String)>,
}

struct ActiveSpan {
    buf: Arc<TraceBuf>,
    id: u64,
    parent: u64,
    name: String,
    track: &'static str,
    start_ns: u64,
    root: bool,
    state: Mutex<SpanState>,
}

impl Drop for ActiveSpan {
    fn drop(&mut self) {
        let end_ns = self.buf.tracer.epoch.elapsed().as_nanos() as u64;
        let state = std::mem::take(&mut *lock(&self.state));
        let rec = SpanRecord {
            id: self.id,
            parent: self.parent,
            name: std::mem::take(&mut self.name),
            track: self.track,
            start_ns: self.start_ns,
            dur_ns: end_ns.saturating_sub(self.start_ns),
            attrs: state.attrs,
            events: state.events,
        };
        {
            lock(&self.buf.spans).push(rec);
        }
        if self.root {
            let spans = std::mem::take(&mut *lock(&self.buf.spans));
            Tracer::finish_trace(&self.buf.tracer, &self.buf, end_ns, spans);
        }
    }
}

/// A handle on a live span. Dropping it finishes the span; an inactive
/// handle (disabled tracing, unsampled path) makes every method a no-op.
pub struct SpanHandle(Option<Box<ActiveSpan>>);

impl SpanHandle {
    /// The inert handle: every operation on it is free.
    pub fn none() -> SpanHandle {
        SpanHandle(None)
    }

    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// Trace id this span belongs to, when active.
    pub fn trace_id(&self) -> Option<u64> {
        self.0.as_ref().map(|s| s.buf.id)
    }

    /// Start a child span on the same track.
    pub fn child(&self, name: &str) -> SpanHandle {
        self.child_on(name, None)
    }

    fn child_on(&self, name: &str, track: Option<&'static str>) -> SpanHandle {
        match &self.0 {
            None => SpanHandle(None),
            Some(s) => {
                let id = s.buf.tracer.next_id.fetch_add(1, Ordering::Relaxed);
                let start_ns = s.buf.tracer.epoch.elapsed().as_nanos() as u64;
                SpanHandle(Some(Box::new(ActiveSpan {
                    buf: s.buf.clone(),
                    id,
                    parent: s.id,
                    name: name.to_string(),
                    track: track.unwrap_or(s.track),
                    start_ns,
                    root: false,
                    state: Mutex::new(SpanState::default()),
                })))
            }
        }
    }

    /// Attach a key-value attribute. The value is only formatted when the
    /// span is active.
    pub fn attr(&self, key: &str, value: impl std::fmt::Display) {
        if let Some(s) = &self.0 {
            lock(&s.state).attrs.push((key.to_string(), value.to_string()));
        }
    }

    /// Record a point event at the current time.
    pub fn event(&self, name: &str) {
        if let Some(s) = &self.0 {
            let ts = s.buf.tracer.epoch.elapsed().as_nanos() as u64;
            lock(&s.state).events.push((ts, name.to_string()));
        }
    }

    /// Record a completed child span that *ends now* and lasted `dur_ns`.
    ///
    /// Used for operators whose work is interleaved across a loop (e.g. the
    /// accumulated forward-extend time of an anchored evaluation): the
    /// duration is exact, the placement approximate.
    pub fn span_dur(&self, name: &str, dur_ns: u64, attrs: &[(&str, String)]) {
        if let Some(s) = &self.0 {
            let end_ns = s.buf.tracer.epoch.elapsed().as_nanos() as u64;
            let id = s.buf.tracer.next_id.fetch_add(1, Ordering::Relaxed);
            lock(&s.buf.spans).push(SpanRecord {
                id,
                parent: s.id,
                name: name.to_string(),
                track: s.track,
                start_ns: end_ns.saturating_sub(dur_ns),
                dur_ns,
                attrs: attrs.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
                events: Vec::new(),
            });
        }
    }

    /// Record a finished child span reported by a remote peer, placed
    /// `offset_ns` after this span's start on the given track. This is how
    /// a Gremlin client materializes the server's per-request timings into
    /// its own trace (correlated by request id in `attrs`).
    pub fn remote_span(
        &self,
        name: &str,
        offset_ns: u64,
        dur_ns: u64,
        track: &'static str,
        attrs: Vec<(String, String)>,
    ) {
        if let Some(s) = &self.0 {
            let id = s.buf.tracer.next_id.fetch_add(1, Ordering::Relaxed);
            lock(&s.buf.spans).push(SpanRecord {
                id,
                parent: s.id,
                name: name.to_string(),
                track,
                start_ns: s.start_ns.saturating_add(offset_ns),
                dur_ns,
                attrs,
                events: Vec::new(),
            });
        }
    }

    /// Finish the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

/// JSON string escaping (shared by the exporters in this crate).
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn tid_of(track: &str) -> u32 {
    match track {
        TRACK_CLIENT => 1,
        TRACK_SERVER => 2,
        _ => 3,
    }
}

/// Render a trace as Chrome trace-event JSON (the `{"traceEvents": […]}`
/// object format). Spans become `"ph": "X"` complete events with
/// microsecond timestamps relative to the trace start; events become
/// thread-scoped `"ph": "i"` instants; tracks become named threads.
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"nepal\"}}");
    let mut tracks: Vec<&str> = trace.spans.iter().map(|s| s.track).collect();
    tracks.sort_unstable();
    tracks.dedup();
    for t in &tracks {
        out.push_str(&format!(
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            tid_of(t),
            esc(t)
        ));
    }
    let us = |ns: u64| (ns.saturating_sub(trace.start_ns)) as f64 / 1000.0;
    let mut spans: Vec<&SpanRecord> = trace.spans.iter().collect();
    spans.sort_by_key(|s| (s.start_ns, s.id));
    for s in &spans {
        out.push_str(&format!(
            ",\n{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{},\"args\":{{\"span_id\":{},\"parent_id\":{}",
            esc(&s.name),
            us(s.start_ns),
            s.dur_ns as f64 / 1000.0,
            tid_of(s.track),
            s.id,
            s.parent
        ));
        for (k, v) in &s.attrs {
            out.push_str(&format!(",\"{}\":\"{}\"", esc(k), esc(v)));
        }
        out.push_str("}}");
        for (ts, name) in &s.events {
            out.push_str(&format!(
                ",\n{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{:.3},\"pid\":1,\"tid\":{},\"args\":{{\"span_id\":{}}}}}",
                esc(name),
                us(*ts),
                tid_of(s.track),
                s.id
            ));
        }
    }
    out.push_str(&format!(
        "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"trace_id\":{},\"trace_name\":\"{}\",\"dur_ns\":{}}}}}\n",
        trace.id,
        esc(&trace.name),
        trace.dur_ns
    ));
    out
}

/// JSON listing of stored traces (the `/traces` endpoint body).
pub fn summaries_json(summaries: &[TraceSummary]) -> String {
    let items: Vec<String> = summaries
        .iter()
        .map(|s| {
            format!(
                "{{\"id\":{},\"name\":\"{}\",\"sampled\":{},\"dur_ns\":{},\"spans\":{}}}",
                s.id,
                esc(&s.name),
                s.sampled,
                s.dur_ns,
                s.spans
            )
        })
        .collect();
    format!("[{}]\n", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled_tracer() -> Tracer {
        let t = Tracer::new();
        t.set_enabled(true);
        t.set_slow_threshold_ns(u64::MAX);
        t
    }

    #[test]
    fn disabled_tracer_hands_out_inert_spans() {
        let t = Tracer::new();
        let span = t.start_trace("query");
        assert!(!span.is_active());
        let child = span.child("plan");
        assert!(!child.is_active());
        child.attr("k", "v");
        child.event("e");
        drop(child);
        drop(span);
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn spans_nest_and_record_parent_ids() {
        let t = enabled_tracer();
        let root = t.start_trace("query");
        root.attr("text", "Retrieve P …");
        {
            let plan = root.child("plan");
            plan.event("anchor-chosen");
            let inner = plan.child("anchor-select");
            inner.attr("candidates", 3);
            drop(inner);
            drop(plan);
        }
        drop(root);
        assert_eq!(t.len(), 1);
        let tr = t.get(t.latest_id().unwrap()).unwrap();
        assert_eq!(tr.name, "query");
        assert_eq!(tr.spans.len(), 3);
        let root_rec = tr.spans.iter().find(|s| s.name == "query").unwrap();
        let plan_rec = tr.spans.iter().find(|s| s.name == "plan").unwrap();
        let inner_rec = tr.spans.iter().find(|s| s.name == "anchor-select").unwrap();
        assert_eq!(root_rec.parent, 0);
        assert_eq!(plan_rec.parent, root_rec.id);
        assert_eq!(inner_rec.parent, plan_rec.id);
        assert_eq!(plan_rec.events.len(), 1);
        assert_eq!(inner_rec.attrs, vec![("candidates".to_string(), "3".to_string())]);
        // Children start no earlier than parents and are contained in the root.
        assert!(plan_rec.start_ns >= root_rec.start_ns);
        assert!(plan_rec.start_ns + plan_rec.dur_ns <= root_rec.start_ns + root_rec.dur_ns);
    }

    #[test]
    fn sampling_one_in_n_keeps_exactly_the_expected_requests() {
        let t = enabled_tracer();
        t.set_sample_every(3);
        for i in 0..9 {
            let span = t.start_trace(&format!("q{i}"));
            drop(span);
        }
        // Requests 0, 3, 6 are sampled: exactly 3 kept, deterministically.
        assert_eq!(t.len(), 3);
        let names: Vec<String> = t.summaries().iter().map(|s| s.name.clone()).collect();
        assert_eq!(names, vec!["q0", "q3", "q6"]);
        assert!(t.summaries().iter().all(|s| s.sampled));
    }

    #[test]
    fn slow_traces_are_kept_despite_sampling() {
        let t = Tracer::new();
        t.set_enabled(true);
        t.set_sample_every(1_000_000);
        t.set_slow_threshold_ns(0); // everything counts as slow
        drop(t.start_trace("q0")); // sampled (seq 0)
        drop(t.start_trace("q1")); // unsampled but slow
        assert_eq!(t.len(), 2);
        assert!(!t.get(t.latest_id().unwrap()).unwrap().sampled);
    }

    #[test]
    fn trace_ring_is_bounded() {
        let t = Tracer::with_capacity(4);
        t.set_enabled(true);
        t.set_slow_threshold_ns(u64::MAX);
        for i in 0..10 {
            drop(t.start_trace(&format!("q{i}")));
        }
        assert_eq!(t.len(), 4);
        let names: Vec<String> = t.summaries().iter().map(|s| s.name.clone()).collect();
        assert_eq!(names, vec!["q6", "q7", "q8", "q9"]);
    }

    #[test]
    fn trace_ring_keeps_one_entry_per_trace_id() {
        let t = enabled_tracer();
        let root = t.start_trace("q");
        let id = root.trace_id().unwrap();
        drop(root);
        assert_eq!(t.len(), 1);
        // A second report of the same trace id (e.g. the sampled and the
        // slow keep-paths both firing) replaces the stored entry in place.
        let stored = t.get(id).unwrap();
        let buf = TraceBuf {
            tracer: t.0.clone(),
            id,
            name: "q".into(),
            sampled: false,
            start_ns: stored.start_ns,
            spans: Mutex::new(Vec::new()),
        };
        t.set_slow_threshold_ns(0); // second report arrives via the slow keep-path
        Tracer::finish_trace(&t.0, &buf, stored.start_ns + 999, Vec::new());
        assert_eq!(t.len(), 1, "no duplicate entry for the same trace id");
        assert_eq!(t.get(id).unwrap().dur_ns, 999, "replaced in place");
    }

    #[test]
    fn remote_and_duration_spans_attach_to_the_trace() {
        let t = enabled_tracer();
        let root = t.start_trace("round-trip");
        root.remote_span("evaluate", 10, 500, TRACK_SERVER, vec![("requestId".into(), "req-1".into())]);
        root.span_dur("Extend(fwd)", 250, &[("rows", "7".to_string())]);
        drop(root);
        let tr = t.get(t.latest_id().unwrap()).unwrap();
        assert_eq!(tr.spans.len(), 3);
        let remote = tr.spans.iter().find(|s| s.name == "evaluate").unwrap();
        assert_eq!(remote.track, TRACK_SERVER);
        assert_eq!(remote.dur_ns, 500);
        assert_eq!(remote.attrs[0].1, "req-1");
        let op = tr.spans.iter().find(|s| s.name == "Extend(fwd)").unwrap();
        assert_eq!(op.dur_ns, 250);
    }

    #[test]
    fn chrome_export_has_complete_events_and_tracks() {
        let t = enabled_tracer();
        let root = t.start_trace("query");
        root.remote_span("decode", 5, 100, TRACK_SERVER, vec![]);
        let child = root.child("plan");
        child.event("bound");
        drop(child);
        drop(root);
        let json = t.export_latest_chrome().unwrap();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"name\":\"server\""));
        assert!(json.contains("\"name\":\"client\""));
        assert!(json.contains("\"displayTimeUnit\":\"ms\""));
        // Balanced braces/brackets as a cheap well-formedness check; the
        // real JSON validity test lives in the workspace integration tests.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_escaping_handles_quotes_and_control_chars() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }
}
