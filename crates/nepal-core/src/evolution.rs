//! Path evolution queries (§4).
//!
//! "Another targeted query is the path evolution query, which tracks the
//! changes of the field values in a specific pathway (i.e. with specific
//! node and edge ids). Path evolution queries find use in visualization
//! applications, in which a specific path returned by a query can be
//! chosen and explored further."

use nepal_graph::{Interval, TemporalGraph, Uid};
use nepal_rpe::Pathway;
use nepal_schema::{ClassId, Ts, Value};

/// The field-value timeline of one pathway element.
#[derive(Debug, Clone)]
pub struct ElementEvolution {
    pub uid: Uid,
    pub class: ClassId,
    pub class_name: String,
    /// Versions (assertion interval, field values) ordered by time.
    pub versions: Vec<(Interval, Vec<Value>)>,
}

/// A change event: which element changed, when, and which fields.
#[derive(Debug, Clone)]
pub struct ChangeEvent {
    pub at: Ts,
    pub uid: Uid,
    pub class_name: String,
    /// (field name, old value, new value); empty for insert/delete events.
    pub changed: Vec<(String, Value, Value)>,
    pub kind: ChangeKind,
}

/// What happened at a change event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChangeKind {
    Inserted,
    Updated,
    Deleted,
}

/// The full evolution of a specific pathway, optionally restricted to a
/// time window.
pub fn path_evolution(graph: &TemporalGraph, pathway: &Pathway, window: Option<(Ts, Ts)>) -> Vec<ElementEvolution> {
    let schema = graph.schema();
    let mut out = Vec::new();
    for &uid in &pathway.elems {
        let Some(class) = graph.class_of(uid) else { continue };
        let range = match window {
            None => 0..graph.versions(uid).len(),
            Some((a, b)) => graph.overlap_range(uid, &Interval::new(a, b.saturating_add(1))),
        };
        let vs = graph.versions(uid);
        let versions: Vec<(Interval, Vec<Value>)> =
            range.map(|i| (vs[i].span, graph.fields_of(uid, i).into_owned())).collect();
        out.push(ElementEvolution { uid, class, class_name: schema.class(class).name.clone(), versions });
    }
    out
}

/// Flatten an evolution into a chronological change log — the view a
/// troubleshooting UI renders next to a selected path.
pub fn change_log(graph: &TemporalGraph, pathway: &Pathway) -> Vec<ChangeEvent> {
    let schema = graph.schema();
    let mut events = Vec::new();
    for &uid in &pathway.elems {
        let Some(class) = graph.class_of(uid) else { continue };
        let class_name = schema.class(class).name.clone();
        let fields = schema.all_fields(class);
        let versions = graph.versions(uid);
        for (i, v) in versions.iter().enumerate() {
            if i == 0 {
                events.push(ChangeEvent {
                    at: v.span.from,
                    uid,
                    class_name: class_name.clone(),
                    changed: Vec::new(),
                    kind: ChangeKind::Inserted,
                });
            } else {
                let prev_fields = graph.fields_of(uid, i - 1);
                let cur_fields = graph.fields_of(uid, i);
                let changed: Vec<(String, Value, Value)> = prev_fields
                    .iter()
                    .zip(cur_fields.iter())
                    .enumerate()
                    .filter(|(_, (a, b))| a != b)
                    .map(|(idx, (a, b))| (fields[idx].name.clone(), a.clone(), b.clone()))
                    .collect();
                events.push(ChangeEvent {
                    at: v.span.from,
                    uid,
                    class_name: class_name.clone(),
                    changed,
                    kind: ChangeKind::Updated,
                });
            }
        }
        if let Some(last) = versions.last() {
            if !last.span.is_current() {
                events.push(ChangeEvent {
                    at: last.span.to,
                    uid,
                    class_name: class_name.clone(),
                    changed: Vec::new(),
                    kind: ChangeKind::Deleted,
                });
            }
        }
    }
    events.sort_by_key(|e| e.at);
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use nepal_schema::dsl::parse_schema;
    use std::sync::Arc;

    #[test]
    fn evolution_and_change_log() {
        let s = Arc::new(parse_schema("node VM { vm_id: int unique, status: str }").unwrap());
        let mut g = TemporalGraph::new(s.clone());
        let c = s.class_by_name("VM").unwrap();
        let u = g.insert_node(c, vec![Value::Int(1), Value::Str("Green".into())], 100).unwrap();
        g.update(u, &[(1, Value::Str("Red".into()))], 200).unwrap();
        g.delete(u, 300).unwrap();

        let p = Pathway::node(u);
        let evo = path_evolution(&g, &p, None);
        assert_eq!(evo.len(), 1);
        assert_eq!(evo[0].versions.len(), 2);
        assert_eq!(evo[0].class_name, "VM");

        // Window restriction.
        let evo_w = path_evolution(&g, &p, Some((210, 400)));
        assert_eq!(evo_w[0].versions.len(), 1);

        let log = change_log(&g, &p);
        assert_eq!(log.len(), 3);
        assert_eq!(log[0].kind, ChangeKind::Inserted);
        assert_eq!(log[1].kind, ChangeKind::Updated);
        assert_eq!(log[1].changed.len(), 1);
        assert_eq!(log[1].changed[0].0, "status");
        assert_eq!(log[2].kind, ChangeKind::Deleted);
        assert_eq!(log[2].at, 300);
    }
}
