//! Abstract syntax of the Nepal query language (§3.4/§4).
//!
//! ```text
//! [AT 'ts' [: 'ts']]
//! Retrieve P, Q | Select <exprs> | First Time When Exists |
//!     Last Time When Exists | When Exists
//! From PATHS P [USING backend] [(@'ts' [: 'ts'])], …
//! Where P MATCHES <rpe>
//!   And source(P) = target(Q)
//!   And [Not] Exists ( <query> )
//! ```

use nepal_rpe::Rpe;
use nepal_schema::{Ts, Value};

/// A temporal scope: a time point or a closed time range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeSpec {
    At(Ts),
    Range(Ts, Ts),
}

/// One range variable declaration.
///
/// §3.4: "The source is an unmaterialized view of pathways … the view
/// PATHS is the set of all pathways. Additional views can be defined."
/// `view = None` is the built-in PATHS view; `Some(name)` ranges over a
/// view registered with [`crate::engine::Engine::define_view`].
#[derive(Debug, Clone, PartialEq)]
pub struct SourceDecl {
    pub var: String,
    /// Named view, or `None` for the built-in `PATHS`.
    pub view: Option<String>,
    /// Per-variable temporal scope (`PATHS P(@'2017-02-15 10:00')`).
    pub time: Option<TimeSpec>,
    /// Backend routing for data integration (`PATHS P USING legacy`).
    pub backend: Option<String>,
}

/// `source(P)` / `target(P)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathFn {
    Source,
    Target,
}

/// An expression usable in Select heads and Where comparisons.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `source(P)` or `target(P)` — a node.
    PathEnd(PathFn, String),
    /// `source(P).name` — a field of an end node.
    PathEndField(PathFn, String, String),
    /// `length(P)` — number of edges.
    Length(String),
    /// A bare pathway variable — only valid inside `count(…)`.
    PathVar(String),
    /// A literal value.
    Literal(Value),
}

impl Expr {
    /// Pathway variables referenced by the expression.
    pub fn vars(&self) -> Vec<&str> {
        match self {
            Expr::PathEnd(_, v) | Expr::PathEndField(_, v, _) | Expr::Length(v) | Expr::PathVar(v) => vec![v],
            Expr::Literal(_) => vec![],
        }
    }
}

/// Aggregate functions over pathway sets — the "aggregation … queries on
/// pathway sets" the paper lists as future work (§8), implemented here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFn {
    Count,
    Min,
    Max,
    Sum,
    Avg,
}

/// One Select output: an optional aggregate over an expression.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    pub agg: Option<AggFn>,
    /// `count(DISTINCT source(P))`.
    pub distinct: bool,
    pub expr: Expr,
}

impl SelectItem {
    /// A plain (non-aggregated) expression item.
    pub fn plain(expr: Expr) -> SelectItem {
        SelectItem { agg: None, distinct: false, expr }
    }
}

/// The query head.
#[derive(Debug, Clone, PartialEq)]
pub enum Head {
    /// `Retrieve P, Q` — raw pathways.
    Retrieve(Vec<String>),
    /// `Select expr, …` — post-processed values (§3.4: "by changing the
    /// keyword Retrieve with the keyword Select, we indicate that post
    /// processing is to be performed on the returned pathways"), possibly
    /// aggregated (`Select count(P), avg(length(P))`).
    Select(Vec<SelectItem>),
    /// `First Time When Exists` (§4 temporal aggregates).
    FirstTimeWhenExists,
    /// `Last Time When Exists`.
    LastTimeWhenExists,
    /// `When Exists` — the intervals during which a satisfying pathway
    /// exists.
    WhenExists,
}

/// A comparison operator in the Where clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QCmp {
    Eq,
    Ne,
}

/// One Where-clause condition.
#[derive(Debug, Clone, PartialEq)]
pub enum Cond {
    /// `P MATCHES <rpe>`.
    Matches(String, Rpe),
    /// `expr = expr` / `expr != expr`.
    Cmp(Expr, QCmp, Expr),
    /// `[Not] Exists (subquery)`; correlated via conditions inside the
    /// subquery that reference outer variables.
    Exists { negated: bool, query: Box<Query> },
}

/// A parsed Nepal query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Query-level temporal scope (`AT …` prefix).
    pub time: Option<TimeSpec>,
    pub head: Head,
    pub sources: Vec<SourceDecl>,
    pub conds: Vec<Cond>,
}

impl Query {
    /// The MATCHES expression of a variable, if any.
    pub fn matches_of(&self, var: &str) -> Option<&Rpe> {
        self.conds.iter().find_map(|c| match c {
            Cond::Matches(v, rpe) if v == var => Some(rpe),
            _ => None,
        })
    }

    /// Declared variable names.
    pub fn var_names(&self) -> Vec<&str> {
        self.sources.iter().map(|s| s.var.as_str()).collect()
    }
}
