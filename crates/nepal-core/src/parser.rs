//! Parser for the Nepal query language.
//!
//! Keywords are case-insensitive (the paper mixes `Retrieve`, `WHERE`,
//! `And`, …). The RPE after `MATCHES` is delimited by bracket-depth
//! scanning up to the next top-level `And` (or the end of the enclosing
//! subquery), then handed to [`nepal_rpe::parse_rpe`].

use nepal_rpe::parse_rpe;
use nepal_schema::{parse_ts, Value};

use crate::ast::{AggFn, Cond, Expr, Head, PathFn, QCmp, Query, SelectItem, SourceDecl, TimeSpec};
use crate::error::{NepalError, Result};

struct P<'a> {
    s: &'a str,
    pos: usize,
}

impl<'a> P<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        Err(NepalError::Parse { pos: self.pos, msg: msg.into() })
    }

    fn ws(&mut self) {
        let b = self.s.as_bytes();
        while self.pos < b.len() && (b[self.pos] as char).is_whitespace() {
            self.pos += 1;
        }
    }

    fn rest(&self) -> &'a str {
        &self.s[self.pos..]
    }

    fn peek_char(&mut self) -> Option<char> {
        self.ws();
        self.rest().chars().next()
    }

    /// Case-insensitive keyword with word boundary.
    fn try_kw(&mut self, kw: &str) -> bool {
        self.ws();
        let rest = self.rest();
        if rest.len() < kw.len() {
            return false;
        }
        if !rest[..kw.len()].eq_ignore_ascii_case(kw) {
            return false;
        }
        // Word boundary: next char must not be identifier-ish.
        if let Some(c) = rest[kw.len()..].chars().next() {
            if c.is_alphanumeric() || c == '_' {
                return false;
            }
        }
        self.pos += kw.len();
        true
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.try_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected keyword `{kw}`"))
        }
    }

    fn try_sym(&mut self, sym: &str) -> bool {
        self.ws();
        if self.rest().starts_with(sym) {
            self.pos += sym.len();
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, sym: &str) -> Result<()> {
        if self.try_sym(sym) {
            Ok(())
        } else {
            self.err(format!("expected `{sym}`"))
        }
    }

    fn ident(&mut self) -> Result<String> {
        self.ws();
        let rest = self.rest();
        let mut end = 0;
        for (i, c) in rest.char_indices() {
            if c.is_alphanumeric() || c == '_' {
                end = i + c.len_utf8();
            } else {
                break;
            }
        }
        if end == 0 {
            return self.err("expected identifier");
        }
        let id = &rest[..end];
        if id.chars().next().unwrap().is_ascii_digit() {
            return self.err("identifier cannot start with a digit");
        }
        self.pos += end;
        Ok(id.to_string())
    }

    fn quoted(&mut self) -> Result<String> {
        self.ws();
        if !self.rest().starts_with('\'') {
            return self.err("expected quoted string");
        }
        let rest = &self.rest()[1..];
        match rest.find('\'') {
            Some(end) => {
                let s = rest[..end].to_string();
                self.pos += end + 2;
                Ok(s)
            }
            None => self.err("unterminated string"),
        }
    }

    fn timestamp(&mut self) -> Result<i64> {
        let start = self.pos;
        let text = self.quoted()?;
        parse_ts(&text).ok_or(NepalError::Parse { pos: start, msg: format!("bad timestamp `{text}`") })
    }

    /// `'ts'` or `'ts' : 'ts'`.
    fn time_spec(&mut self) -> Result<TimeSpec> {
        let a = self.timestamp()?;
        if self.try_sym(":") {
            let b = self.timestamp()?;
            Ok(TimeSpec::Range(a.min(b), a.max(b)))
        } else {
            Ok(TimeSpec::At(a))
        }
    }

    fn head(&mut self) -> Result<Head> {
        if self.try_kw("retrieve") {
            let mut vars = vec![self.ident()?];
            while self.try_sym(",") {
                vars.push(self.ident()?);
            }
            return Ok(Head::Retrieve(vars));
        }
        if self.try_kw("select") {
            let mut items = vec![self.select_item()?];
            while self.try_sym(",") {
                items.push(self.select_item()?);
            }
            return Ok(Head::Select(items));
        }
        if self.try_kw("first") {
            self.expect_kw("time")?;
            self.expect_kw("when")?;
            self.expect_kw("exists")?;
            return Ok(Head::FirstTimeWhenExists);
        }
        if self.try_kw("last") {
            self.expect_kw("time")?;
            self.expect_kw("when")?;
            self.expect_kw("exists")?;
            return Ok(Head::LastTimeWhenExists);
        }
        if self.try_kw("when") {
            self.expect_kw("exists")?;
            return Ok(Head::WhenExists);
        }
        self.err("expected Retrieve, Select, or a temporal aggregate head")
    }

    /// One Select output: `count(P)`, `count(distinct expr)`,
    /// `min/max/sum/avg(expr)`, or a plain expression.
    fn select_item(&mut self) -> Result<SelectItem> {
        let save = self.pos;
        if let Ok(id) = self.ident() {
            let agg = match id.to_ascii_lowercase().as_str() {
                "count" => Some(AggFn::Count),
                "min" => Some(AggFn::Min),
                "max" => Some(AggFn::Max),
                "sum" => Some(AggFn::Sum),
                "avg" => Some(AggFn::Avg),
                _ => None,
            };
            // `length(...)`/`source(...)` are plain expressions, not
            // aggregates — fall through for those.
            if let Some(agg) = agg {
                self.expect_sym("(")?;
                let distinct = self.try_kw("distinct");
                // The argument is either a full expression or a bare
                // pathway variable (only meaningful under count).
                let inner_save = self.pos;
                let expr = match self.expr() {
                    Ok(e) => e,
                    Err(_) => {
                        self.pos = inner_save;
                        Expr::PathVar(self.ident()?)
                    }
                };
                self.expect_sym(")")?;
                if matches!(expr, Expr::PathVar(_)) && agg != AggFn::Count {
                    return self.err("only count(…) accepts a bare pathway variable");
                }
                return Ok(SelectItem { agg: Some(agg), distinct, expr });
            }
            self.pos = save;
        } else {
            self.pos = save;
        }
        Ok(SelectItem::plain(self.expr()?))
    }

    fn expr(&mut self) -> Result<Expr> {
        self.ws();
        if self.rest().starts_with('\'') {
            return Ok(Expr::Literal(Value::Str(self.quoted()?)));
        }
        if self.peek_char().is_some_and(|c| c.is_ascii_digit() || c == '-') {
            return self.number();
        }
        let save = self.pos;
        let id = self.ident()?;
        let lower = id.to_ascii_lowercase();
        match lower.as_str() {
            "source" | "target" => {
                let f = if lower == "source" { PathFn::Source } else { PathFn::Target };
                self.expect_sym("(")?;
                let var = self.ident()?;
                self.expect_sym(")")?;
                if self.try_sym(".") {
                    let field = self.ident()?;
                    Ok(Expr::PathEndField(f, var, field))
                } else {
                    Ok(Expr::PathEnd(f, var))
                }
            }
            "length" => {
                self.expect_sym("(")?;
                let var = self.ident()?;
                self.expect_sym(")")?;
                Ok(Expr::Length(var))
            }
            "true" => Ok(Expr::Literal(Value::Bool(true))),
            "false" => Ok(Expr::Literal(Value::Bool(false))),
            _ => {
                self.pos = save;
                self.err(format!("unknown expression starting with `{id}`"))
            }
        }
    }

    fn number(&mut self) -> Result<Expr> {
        self.ws();
        let rest = self.rest();
        let mut end = 0;
        let mut is_float = false;
        for (i, c) in rest.char_indices() {
            if c.is_ascii_digit() || (i == 0 && c == '-') {
                end = i + 1;
            } else if c == '.' && !is_float {
                is_float = true;
                end = i + 1;
            } else {
                break;
            }
        }
        let txt = &rest[..end];
        self.pos += end;
        if is_float {
            txt.parse::<f64>()
                .map(|f| Expr::Literal(Value::Float(f)))
                .map_err(|_| NepalError::Parse { pos: self.pos, msg: "bad float".into() })
        } else {
            txt.parse::<i64>()
                .map(|i| Expr::Literal(Value::Int(i)))
                .map_err(|_| NepalError::Parse { pos: self.pos, msg: "bad integer".into() })
        }
    }

    fn sources(&mut self) -> Result<Vec<SourceDecl>> {
        let mut out = Vec::new();
        loop {
            // `PATHS` is the built-in view; any other identifier names a
            // user-defined view (§3.4).
            let view_name = self.ident()?;
            let view = if view_name.eq_ignore_ascii_case("paths") { None } else { Some(view_name) };
            let var = self.ident()?;
            let mut backend = None;
            if self.try_kw("using") {
                backend = Some(self.ident()?);
            }
            let mut time = None;
            if self.try_sym("(") {
                self.expect_sym("@")?;
                time = Some(self.time_spec()?);
                self.expect_sym(")")?;
            }
            out.push(SourceDecl { var, view, time, backend });
            if !self.try_sym(",") {
                break;
            }
        }
        Ok(out)
    }

    /// Extract the raw RPE text after MATCHES: scan to the next top-level
    /// `And` keyword or the end of the enclosing scope.
    fn rpe_text(&mut self) -> Result<&'a str> {
        self.ws();
        let start = self.pos;
        let bytes = self.s.as_bytes();
        let mut depth: i32 = 0;
        let mut i = self.pos;
        let mut in_str = false;
        while i < bytes.len() {
            let c = bytes[i] as char;
            if in_str {
                if c == '\'' {
                    in_str = false;
                }
                i += 1;
                continue;
            }
            match c {
                '\'' => in_str = true,
                '(' | '[' | '{' => depth += 1,
                ')' | ']' | '}' => {
                    if depth == 0 {
                        break; // end of enclosing subquery
                    }
                    depth -= 1;
                }
                'a' | 'A' if depth == 0 => {
                    let rest = &self.s[i..];
                    if rest.len() >= 3
                        && rest[..3].eq_ignore_ascii_case("and")
                        && rest[3..].chars().next().is_none_or(|c| !(c.is_alphanumeric() || c == '_'))
                        && i > start
                        && !(bytes[i - 1] as char).is_alphanumeric()
                        && bytes[i - 1] != b'_'
                    {
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        let text = self.s[start..i].trim_end();
        if text.is_empty() {
            return self.err("empty RPE after MATCHES");
        }
        self.pos = start + text.len();
        Ok(text)
    }

    fn cond(&mut self) -> Result<Cond> {
        // [Not] Exists (query)
        if self.try_kw("not") {
            self.expect_kw("exists")?;
            self.expect_sym("(")?;
            let q = self.query()?;
            self.expect_sym(")")?;
            return Ok(Cond::Exists { negated: true, query: Box::new(q) });
        }
        if self.try_kw("exists") {
            self.expect_sym("(")?;
            let q = self.query()?;
            self.expect_sym(")")?;
            return Ok(Cond::Exists { negated: false, query: Box::new(q) });
        }
        // `P MATCHES <rpe>` — variable name followed by the keyword.
        let save = self.pos;
        if let Ok(var) = self.ident() {
            if self.try_kw("matches") {
                let text = self.rpe_text()?;
                let rpe = parse_rpe(text)?;
                return Ok(Cond::Matches(var, rpe));
            }
            self.pos = save;
        }
        // Comparison.
        let lhs = self.expr()?;
        let op = if self.try_sym("!=") {
            QCmp::Ne
        } else if self.try_sym("=") {
            QCmp::Eq
        } else {
            return self.err("expected `=` or `!=`");
        };
        let rhs = self.expr()?;
        Ok(Cond::Cmp(lhs, op, rhs))
    }

    fn query(&mut self) -> Result<Query> {
        let time = if self.try_kw("at") { Some(self.time_spec()?) } else { None };
        let head = self.head()?;
        self.expect_kw("from")?;
        let sources = self.sources()?;
        let mut conds = Vec::new();
        if self.try_kw("where") {
            conds.push(self.cond()?);
            while self.try_kw("and") {
                conds.push(self.cond()?);
            }
        }
        Ok(Query { time, head, sources, conds })
    }
}

/// Validate variable references and MATCHES coverage.
fn validate(q: &Query) -> Result<()> {
    let vars = q.var_names();
    let known = |v: &str| vars.contains(&v);
    for s in &q.sources {
        // A variable over a named view takes its pathways from the view;
        // only PATHS variables require a MATCHES predicate (§3.4).
        if s.view.is_none() && q.matches_of(&s.var).is_none() {
            return Err(NepalError::NoMatches(s.var.clone()));
        }
    }
    let check_expr = |e: &Expr| -> Result<()> {
        for v in e.vars() {
            if !known(v) {
                return Err(NepalError::UnknownVariable(v.to_string()));
            }
        }
        Ok(())
    };
    if let Head::Retrieve(vs) = &q.head {
        for v in vs {
            if !known(v) {
                return Err(NepalError::UnknownVariable(v.clone()));
            }
        }
    }
    if let Head::Select(items) = &q.head {
        for item in items {
            check_expr(&item.expr)?;
            if matches!(item.expr, Expr::PathVar(_)) && item.agg.is_none() {
                return Err(NepalError::Parse {
                    pos: 0,
                    msg: "bare pathway variable in Select requires count(…)".into(),
                });
            }
        }
    }
    for c in &q.conds {
        match c {
            Cond::Matches(v, _) => {
                if !known(v) {
                    return Err(NepalError::UnknownVariable(v.clone()));
                }
            }
            Cond::Cmp(a, _, b) => {
                check_expr(a)?;
                check_expr(b)?;
            }
            Cond::Exists { query, .. } => {
                // Inner queries may reference outer variables (correlation);
                // validate inner-declared vars recursively, outer refs are
                // resolved at execution time.
                for s in &query.sources {
                    if s.view.is_none() && query.matches_of(&s.var).is_none() {
                        return Err(NepalError::NoMatches(s.var.clone()));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Parse a Nepal query.
pub fn parse_query(text: &str) -> Result<Query> {
    let mut p = P { s: text, pos: 0 };
    let q = p.query()?;
    p.ws();
    if p.pos != p.s.len() {
        return p.err("trailing input after query");
    }
    validate(&q)?;
    Ok(q)
}

/// A top-level statement: a query, optionally wrapped in `EXPLAIN ANALYZE`.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Query(Query),
    /// `EXPLAIN ANALYZE <query>`: execute the query and report its profile.
    ExplainAnalyze(Query),
}

/// Parse a statement: `[EXPLAIN ANALYZE] <query>`.
pub fn parse_statement(text: &str) -> Result<Statement> {
    let mut p = P { s: text, pos: 0 };
    let explain = p.try_kw("EXPLAIN");
    if explain && !p.try_kw("ANALYZE") {
        return p.err("expected ANALYZE after EXPLAIN");
    }
    let q = p.query()?;
    p.ws();
    if p.pos != p.s.len() {
        return p.err("trailing input after query");
    }
    validate(&q)?;
    Ok(if explain { Statement::ExplainAnalyze(q) } else { Statement::Query(q) })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_example_1() {
        let q = parse_query("Retrieve P From PATHS P WHERE P MATCHES VNF()->VFC()->VM()->Host(id=23245)").unwrap();
        assert_eq!(q.head, Head::Retrieve(vec!["P".into()]));
        assert_eq!(q.sources.len(), 1);
        assert!(q.matches_of("P").is_some());
    }

    #[test]
    fn parses_join_query() {
        let q = parse_query(
            "Retrieve Phys \
             From PATHS D1, PATHS D2, PATHS Phys \
             Where D1 MATCHES VNF(id=123)->Vertical(){1,6}->Host() \
             And D2 MATCHES VNF(id=234)->Vertical(){1,6}->Host() \
             And Phys MATCHES ConnectsTo(){1,8} \
             And source(Phys)=target(D1) And target(Phys)=target(D2)",
        )
        .unwrap();
        assert_eq!(q.sources.len(), 3);
        assert_eq!(q.conds.len(), 5);
        match &q.conds[3] {
            Cond::Cmp(Expr::PathEnd(PathFn::Source, p), QCmp::Eq, Expr::PathEnd(PathFn::Target, d)) => {
                assert_eq!(p, "Phys");
                assert_eq!(d, "D1");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_not_exists_subquery() {
        let q = parse_query(
            "Retrieve V From PATHS V Where V MATCHES VM() \
             And NOT EXISTS( \
               Retrieve P from PATHS P \
               Where P MATCHES (VNF()|VFC())->[HostedOn(){1,5}]->VM() \
               And target(V) = target(P) )",
        )
        .unwrap();
        match &q.conds[1] {
            Cond::Exists { negated: true, query } => {
                assert_eq!(query.sources.len(), 1);
                assert_eq!(query.conds.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_temporal_forms() {
        let q = parse_query(
            "AT '2017-02-15 10:00:00' Select source(P) From PATHS P \
             Where P MATCHES VNF()->[HostedOn()]{1,6}->Host(id=23245)",
        )
        .unwrap();
        assert!(matches!(q.time, Some(TimeSpec::At(_))));
        let q2 = parse_query(
            "AT '2017-02-15 9:00' : '2017-02-15 11:00' Select source(P) From PATHS P \
             Where P MATCHES VNF()->[HostedOn()]{1,6}->Host(id=23245)",
        )
        .unwrap();
        assert!(matches!(q2.time, Some(TimeSpec::Range(_, _))));
        // Per-variable time points (§4's two-snapshot join).
        let q3 = parse_query(
            "Select source(P) From PATHS P(@'2017-02-15 10:00'), Q(@'2017-02-15 11:00') \
             Where P MATCHES VNF()->[HostedOn()]{1,6}->Host(id=23245) \
             And Q MATCHES VNF()->[HostedOn()]{1,6}->Host(id=34356) \
             And source(P) = source(Q)",
        );
        // Note: the paper writes `PATHS P(@…), Q(@…)` — our grammar requires
        // the PATHS keyword per declaration.
        assert!(q3.is_err());
        let q3 = parse_query(
            "Select source(P) From PATHS P(@'2017-02-15 10:00'), PATHS Q(@'2017-02-15 11:00') \
             Where P MATCHES VNF()->[HostedOn()]{1,6}->Host(id=23245) \
             And Q MATCHES VNF()->[HostedOn()]{1,6}->Host(id=34356) \
             And source(P) = source(Q)",
        )
        .unwrap();
        assert_eq!(q3.sources[0].time, Some(TimeSpec::At(nepal_schema::parse_ts("2017-02-15 10:00").unwrap())));
    }

    #[test]
    fn parses_temporal_aggregates() {
        for (src, head) in [
            ("First Time When Exists", Head::FirstTimeWhenExists),
            ("Last Time When Exists", Head::LastTimeWhenExists),
            ("When Exists", Head::WhenExists),
        ] {
            let q = parse_query(&format!("{src} From PATHS P Where P MATCHES VM(vm_id=5)")).unwrap();
            assert_eq!(q.head, head);
        }
    }

    #[test]
    fn parses_select_field_access() {
        let q = parse_query("Select source(V).name, source(V).id From PATHS V Where V MATCHES VM()").unwrap();
        match &q.head {
            Head::Select(es) => {
                assert_eq!(es.len(), 2);
                assert_eq!(es[0], SelectItem::plain(Expr::PathEndField(PathFn::Source, "V".into(), "name".into())));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_backend_routing() {
        let q = parse_query("Retrieve P From PATHS P USING legacy Where P MATCHES VM()").unwrap();
        assert_eq!(q.sources[0].backend.as_deref(), Some("legacy"));
    }

    #[test]
    fn validation_errors() {
        assert!(matches!(
            parse_query("Retrieve Q From PATHS P Where P MATCHES VM()"),
            Err(NepalError::UnknownVariable(_))
        ));
        assert!(matches!(parse_query("Retrieve P From PATHS P"), Err(NepalError::NoMatches(_))));
        assert!(matches!(
            parse_query("Retrieve P From PATHS P Where P MATCHES VM() And source(Z) = target(P)"),
            Err(NepalError::UnknownVariable(_))
        ));
    }

    #[test]
    fn keywords_case_insensitive_and_rpe_keeps_case() {
        let q = parse_query("retrieve p FROM paths p WHERE p matches VM(status='AndMore')").unwrap();
        match &q.conds[0] {
            Cond::Matches(_, rpe) => {
                assert!(rpe.to_string().contains("AndMore"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
