//! Network-management analyses from §2.3.2, packaged as library calls:
//!
//! - **Calculating service dependencies on physical infrastructure** —
//!   [`footprint`]: all elements of a target concept reachable from an
//!   element by vertical edges.
//! - **Calculating shared fate** — [`shared_fate`]: everything of a given
//!   concept that (transitively) depends on an element, following vertical
//!   edges upward.
//! - **Calculating induced paths** — [`induced_paths`]: map a pathway at
//!   one layer to the corresponding paths at a lower layer, hop by hop.

use nepal_graph::{TimeFilter, Uid};
use nepal_rpe::{parse_rpe, plan_rpe, EvalOptions, Pathway, RpePlan, Seeds};

use crate::backend::Backend;
use crate::error::{NepalError, Result};

fn plan_for(backend: &dyn Backend, rpe: &str) -> Result<RpePlan> {
    struct Est<'a>(&'a dyn Backend);
    impl nepal_rpe::CardinalityEstimator for Est<'_> {
        fn estimate(&self, _s: &nepal_schema::Schema, a: &nepal_rpe::BoundAtom) -> f64 {
            self.0.estimate(a)
        }
    }
    let ast = parse_rpe(rpe)?;
    Ok(plan_rpe(backend.schema(), &ast, &Est(backend))?)
}

/// The downward footprint of `element`: all `target_concept` nodes
/// reachable via 1..=`max_hops` `vertical_concept` edges (e.g. "all VMs
/// implementing that VNF, and all physical servers on which those VMs
/// run").
pub fn footprint(
    backend: &mut dyn Backend,
    element: Uid,
    vertical_concept: &str,
    target_concept: &str,
    max_hops: u32,
    filter: TimeFilter,
) -> Result<Vec<Uid>> {
    let rpe = format!("[{vertical_concept}()]{{1,{max_hops}}}->{target_concept}()");
    let plan = plan_for(backend, &rpe)?;
    let seeds = [element];
    let paths = backend.eval(&plan, filter, Seeds::Sources(&seeds), &EvalOptions::default())?;
    let mut out: Vec<Uid> = paths.iter().map(|p| p.target()).collect();
    out.sort_unstable();
    out.dedup();
    Ok(out)
}

/// Shared fate of `element`: all `affected_concept` nodes whose vertical
/// dependency chains pass through it — "to determine all the VMs, and
/// VNFs affected by the failure of a physical server, one computes the
/// vertical paths from that server … along the upper layers".
pub fn shared_fate(
    backend: &mut dyn Backend,
    element: Uid,
    vertical_concept: &str,
    affected_concept: &str,
    max_hops: u32,
    filter: TimeFilter,
) -> Result<Vec<Uid>> {
    let rpe = format!("{affected_concept}()->[{vertical_concept}()]{{1,{max_hops}}}");
    let plan = plan_for(backend, &rpe)?;
    let seeds = [element];
    let paths = backend.eval(&plan, filter, Seeds::Targets(&seeds), &EvalOptions::default())?;
    let mut out: Vec<Uid> = paths.iter().map(|p| p.source()).collect();
    out.sort_unstable();
    out.dedup();
    Ok(out)
}

/// One hop of an induced path: the upper-layer endpoints and the
/// lower-layer paths realizing that hop.
#[derive(Debug, Clone)]
pub struct InducedSegment {
    /// Consecutive node pair of the upper-layer pathway.
    pub upper: (Uid, Uid),
    /// Lower-layer paths connecting the two footprints.
    pub lower_paths: Vec<Pathway>,
}

/// Induce a pathway onto a lower layer (§2.3.2): for each consecutive node
/// pair of `path`, drop both ends to the `target_concept` layer via
/// `vertical_concept` edges and connect the footprints with
/// 1..=`connect_hops` `connect_concept` edges.
///
/// "If a service path includes VNFs 1, 2, and 3, determining the
/// corresponding induced path at the physical layer will require to
/// calculate the physical servers over which the VNFs run, and the paths
/// between those physical servers."
#[allow(clippy::too_many_arguments)]
pub fn induced_paths(
    backend: &mut dyn Backend,
    path: &Pathway,
    vertical_concept: &str,
    target_concept: &str,
    vertical_hops: u32,
    connect_concept: &str,
    connect_hops: u32,
    filter: TimeFilter,
) -> Result<Vec<InducedSegment>> {
    let nodes: Vec<Uid> = path.nodes().collect();
    if nodes.len() < 2 {
        return Err(NepalError::Unsupported("induced_paths needs a pathway with at least two nodes".into()));
    }
    let connect_rpe = format!("{connect_concept}(){{1,{connect_hops}}}");
    let connect_plan = plan_for(backend, &connect_rpe)?;
    let mut out = Vec::new();
    for w in nodes.windows(2) {
        let (a, b) = (w[0], w[1]);
        let fa = footprint(backend, a, vertical_concept, target_concept, vertical_hops, filter)?;
        let fb = footprint(backend, b, vertical_concept, target_concept, vertical_hops, filter)?;
        let fb_set: std::collections::HashSet<Uid> = fb.iter().copied().collect();
        // Same-element footprints count as zero-hop connectivity.
        let mut lower_paths: Vec<Pathway> =
            fa.iter().filter(|u| fb_set.contains(u)).map(|&u| Pathway::node(u)).collect();
        let connected = backend.eval(&connect_plan, filter, Seeds::Sources(&fa), &EvalOptions::default())?;
        lower_paths.extend(connected.into_iter().filter(|p| fb_set.contains(&p.target())));
        out.push(InducedSegment { upper: (a, b), lower_paths });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::NativeBackend;
    use nepal_graph::TemporalGraph;
    use nepal_schema::dsl::parse_schema;
    use nepal_schema::Value;
    use std::sync::Arc;

    /// Service path VNF1 → VNF2; VNF1 on host A, VNF2 on host B;
    /// A ↔ switch ↔ B.
    fn fixture() -> (NativeBackend, Pathway, Uid, Uid, Uid) {
        let s = Arc::new(
            parse_schema(
                r#"
                node VNF { vnf_id: int unique }
                node VM { vm_id: int unique }
                node Host { host_id: int unique }
                node Switch { switch_id: int unique }
                edge Vertical { }
                edge HostedOn : Vertical { }
                edge Flow { }
                edge Connects { }
                "#,
            )
            .unwrap(),
        );
        let c = |n: &str| s.class_by_name(n).unwrap();
        let mut g = TemporalGraph::new(s.clone());
        let vnf1 = g.insert_node(c("VNF"), vec![Value::Int(1)], 0).unwrap();
        let vnf2 = g.insert_node(c("VNF"), vec![Value::Int(2)], 0).unwrap();
        let vm1 = g.insert_node(c("VM"), vec![Value::Int(1)], 0).unwrap();
        let vm2 = g.insert_node(c("VM"), vec![Value::Int(2)], 0).unwrap();
        let ha = g.insert_node(c("Host"), vec![Value::Int(10)], 0).unwrap();
        let hb = g.insert_node(c("Host"), vec![Value::Int(11)], 0).unwrap();
        let sw = g.insert_node(c("Switch"), vec![Value::Int(20)], 0).unwrap();
        g.insert_edge(c("HostedOn"), vnf1, vm1, vec![], 0).unwrap();
        g.insert_edge(c("HostedOn"), vnf2, vm2, vec![], 0).unwrap();
        g.insert_edge(c("HostedOn"), vm1, ha, vec![], 0).unwrap();
        g.insert_edge(c("HostedOn"), vm2, hb, vec![], 0).unwrap();
        let flow = g.insert_edge(c("Flow"), vnf1, vnf2, vec![], 0).unwrap();
        g.insert_edge(c("Connects"), ha, sw, vec![], 0).unwrap();
        g.insert_edge(c("Connects"), sw, hb, vec![], 0).unwrap();
        let service_path = Pathway { elems: vec![vnf1, flow, vnf2], times: None };
        (NativeBackend::new(Arc::new(g)), service_path, ha, hb, vnf1)
    }

    #[test]
    fn footprint_reaches_the_physical_layer() {
        let (mut b, path, ha, _hb, _) = fixture();
        let f = footprint(&mut b, path.source(), "Vertical", "Host", 6, TimeFilter::Current).unwrap();
        assert_eq!(f, vec![ha]);
    }

    #[test]
    fn shared_fate_walks_upward() {
        let (mut b, _path, ha, _hb, vnf1) = fixture();
        let affected = shared_fate(&mut b, ha, "Vertical", "VNF", 6, TimeFilter::Current).unwrap();
        assert_eq!(affected, vec![vnf1]);
    }

    #[test]
    fn induced_path_connects_the_footprints() {
        let (mut b, path, ha, hb, _) = fixture();
        let segments = induced_paths(&mut b, &path, "Vertical", "Host", 6, "Connects", 4, TimeFilter::Current).unwrap();
        assert_eq!(segments.len(), 1);
        let seg = &segments[0];
        assert_eq!(seg.lower_paths.len(), 1);
        assert_eq!(seg.lower_paths[0].source(), ha);
        assert_eq!(seg.lower_paths[0].target(), hb);
        assert_eq!(seg.lower_paths[0].len_edges(), 2); // via the switch
    }

    #[test]
    fn single_node_pathway_rejected() {
        let (mut b, _p, ha, _, _) = fixture();
        let p = Pathway::node(ha);
        assert!(induced_paths(&mut b, &p, "Vertical", "Host", 6, "Connects", 4, TimeFilter::Current).is_err());
    }
}
