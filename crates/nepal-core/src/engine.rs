//! The Nepal query engine.
//!
//! Executes parsed queries against the backend registry:
//!
//! 1. Plan each range variable's RPE (anchor selection uses the owning
//!    backend's statistics, §5.1).
//! 2. Order variables by anchor cost; a variable whose own anchor is
//!    expensive *imports* its anchor from a join — "while range variable
//!    Phys does not have explicit anchors, they are provided by the joins
//!    against the anchored range variables D1 and D2" (§3.4).
//! 3. Hash-join the per-variable pathway sets on the Where-clause equality
//!    conditions, possibly across different backends (data integration).
//! 4. Apply temporal semantics: query-level `AT a : b` requires all
//!    coexisting results and reports the maximal joint assertion range;
//!    per-variable `(@t)` scopes are independent (§4).
//! 5. Evaluate `[Not] Exists` subqueries by decorrelation (inner query runs
//!    once; correlated equalities become an anti-/semi-join).
//! 6. Post-process the head: `Retrieve` returns pathways, `Select` runs the
//!    result-processing layer, and the §4 temporal aggregates fold the
//!    joint interval sets.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

use nepal_graph::{FxHashMap, Interval, IntervalSet, TimeFilter, Uid};
use nepal_obs::qlog::Fnv64;
use nepal_obs::{
    fingerprint, AnchorCandidate, EstimateFeedback, JoinStep, MetricsRegistry, PlanFeedback, QlogRecord, QueryLog,
    QueryProfile, ResourceMeter, SloEngine, SloRule, SlowQueryLog, SpanHandle, StmtOutcome, StmtStats, Tracer,
    VarProfile,
};
use nepal_rpe::{
    plan_rpe_threads, resolved_threads, BoundAtom, CancelCause, CancelToken, CardinalityEstimator, EvalOptions,
    Pathway, RpePlan, Seeds,
};
use nepal_schema::{Schema, Ts, Value};

use crate::ast::{AggFn, Cond, Expr, Head, PathFn, QCmp, Query, SelectItem, TimeSpec};
use crate::backend::{Backend, BackendRegistry};
use crate::error::{NepalError, Result};
use crate::parser::parse_query;

/// Full-history probe range used by temporal aggregates when the query has
/// no explicit `AT` clause.
pub const FULL_RANGE: (Ts, Ts) = (i64::MIN / 4, i64::MAX / 4);

/// One result row.
#[derive(Debug, Clone)]
pub struct ResultRow {
    /// Pathway bindings in source-declaration order.
    pub pathways: Vec<(String, Pathway)>,
    /// `Select` output values (empty for `Retrieve`).
    pub values: Vec<Value>,
    /// Joint maximal assertion ranges (range queries and aggregates).
    pub times: Option<IntervalSet>,
}

/// A query result.
#[derive(Debug, Clone)]
pub struct QueryResult {
    pub columns: Vec<String>,
    pub rows: Vec<ResultRow>,
}

impl QueryResult {
    /// Pathways bound to a variable across all rows (deduplicated).
    pub fn pathways_of(&self, var: &str) -> Vec<&Pathway> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for row in &self.rows {
            for (v, p) in &row.pathways {
                if v == var && seen.insert(&p.elems) {
                    out.push(p);
                }
            }
        }
        out
    }
}

struct BackendEstimator<'a>(&'a dyn Backend);

impl CardinalityEstimator for BackendEstimator<'_> {
    fn estimate(&self, _schema: &Schema, atom: &BoundAtom) -> f64 {
        self.0.estimate(atom)
    }
}

/// Thresholds for [`Engine::install_standard_slos`]. The defaults suit an
/// interactive inventory store: 50ms p99, 1% errors, 1GiB store heap,
/// planner q-error within 64×.
#[derive(Debug, Clone)]
pub struct StandardSlos {
    pub max_p99_ns: u64,
    pub max_error_ratio: f64,
    pub max_store_bytes: i64,
    pub max_qerror: f64,
}

impl Default for StandardSlos {
    fn default() -> StandardSlos {
        StandardSlos { max_p99_ns: 50_000_000, max_error_ratio: 0.01, max_store_bytes: 1 << 30, max_qerror: 64.0 }
    }
}

/// The engine: a backend registry plus the query pipeline.
pub struct Engine {
    pub registry: BackendRegistry,
    /// Options applied to every RPE evaluation. When
    /// [`EvalOptions::cancel`] is set here it acts as a *session/server
    /// parent token*: each query gets a fresh child of it, so cancelling
    /// the parent (REPL `:cancel`, server drain) trips every in-flight and
    /// future query while [`Engine::default_deadline`] still applies
    /// per-query.
    pub eval_options: EvalOptions,
    /// Per-query deadline applied to every query as a fresh child token
    /// (`None` = unbounded). A tripped deadline surfaces as
    /// [`NepalError::DeadlineExceeded`].
    pub default_deadline: Option<std::time::Duration>,
    /// Engine-level metrics: query counts, latency histograms, slow-log
    /// depth. Render with [`MetricsRegistry::render_prometheus`]. Shared
    /// (`Arc`) so a telemetry endpoint can serve it concurrently.
    pub metrics: Arc<MetricsRegistry>,
    /// Ring buffer of recent queries slower than its threshold.
    pub slow_log: Arc<SlowQueryLog>,
    /// Span tracer: every `query` call becomes a hierarchical trace when
    /// enabled; when disabled the whole span machinery is a no-op.
    pub tracer: Tracer,
    /// Durable query log (JSONL, bounded rotation). `None` — the default —
    /// leaves the unprofiled hot path untouched: no clock reads beyond the
    /// existing latency pair, no hashing, no I/O.
    pub qlog: Option<Arc<QueryLog>>,
    /// Per-fingerprint planner estimate-vs-actual aggregate. Fed by every
    /// profiled execution (and by every query while the qlog is enabled);
    /// exports q-error metrics into [`Engine::metrics`].
    pub feedback: Arc<EstimateFeedback>,
    /// Per-fingerprint statement statistics (cost attribution). While
    /// enabled, every [`Engine::query`] runs through the profiled path
    /// with a [`ResourceMeter`] attached, and each query's wall / CPU /
    /// row / byte totals are folded into its fingerprint's entry. `None`
    /// — the default — adds one `Option` check to the hot path.
    pub stmt: Option<Arc<StmtStats>>,
    /// Meter of the query currently executing: created by the outermost
    /// profiled `execute_inner` and shared with nested sub-executions
    /// (views, decorrelated EXISTS), so their scans are charged to the
    /// outer query. Taken (and cleared) by the caller that created it.
    cur_meter: Option<Arc<ResourceMeter>>,
    /// Named pathway views (§3.4: "Additional views can be defined").
    views: HashMap<String, Query>,
    view_depth: u8,
    /// Chosen anchor of the most recently planned variable — carried into
    /// the flight recorder's `query_end` wide event.
    last_anchor: String,
}

struct VarEval {
    var: String,
    backend: Option<String>,
    filter: TimeFilter,
    /// Participates in the query-level joint coexistence requirement.
    joint: bool,
    /// `None` for view-sourced variables (pathways pre-materialized).
    plan: Option<RpePlan>,
    pathways: Vec<Pathway>,
    /// Pathways already filled in (view variables).
    prefilled: bool,
}

fn spec_to_filter(spec: &TimeSpec) -> TimeFilter {
    match spec {
        TimeSpec::At(t) => TimeFilter::AsOf(*t),
        TimeSpec::Range(a, b) => TimeFilter::Range(*a, *b),
    }
}

/// Rate-limited cancellation poll for the engine's own join/coexistence
/// loops: polls the token once per `mask`+1 calls.
#[inline]
fn poll_every(cancel: &Option<CancelToken>, ctr: &mut u64, mask: u64) -> Option<CancelCause> {
    let tok = cancel.as_ref()?;
    *ctr = ctr.wrapping_add(1);
    if *ctr & mask != 0 {
        return None;
    }
    tok.poll()
}

fn cancel_to_err(cause: CancelCause) -> NepalError {
    match cause {
        CancelCause::Deadline => NepalError::DeadlineExceeded,
        CancelCause::Explicit => NepalError::Cancelled,
    }
}

/// Poll frequency for the engine's row loops (joins, coexistence).
const ENGINE_CANCEL_MASK: u64 = 0x3FF; // every 1024 rows

impl Engine {
    pub fn new(mut registry: BackendRegistry) -> Engine {
        let metrics = Arc::new(MetricsRegistry::new());
        registry.attach_metrics(&metrics);
        let feedback = Arc::new(EstimateFeedback::with_metrics(&metrics));
        Engine {
            registry,
            eval_options: EvalOptions::default(),
            default_deadline: None,
            metrics,
            slow_log: Arc::new(SlowQueryLog::default()),
            tracer: Tracer::new(),
            qlog: None,
            feedback,
            stmt: None,
            cur_meter: None,
            views: HashMap::new(),
            view_depth: 0,
            last_anchor: String::new(),
        }
    }

    /// Open (or create, appending) a durable query log at `path`, rotating
    /// once the live file exceeds `max_bytes` and keeping `max_files`
    /// rotated generations. While enabled, every [`Engine::query`] runs
    /// through the profiled path so the log carries per-operator actuals.
    pub fn enable_qlog(
        &mut self,
        path: impl AsRef<std::path::Path>,
        max_bytes: u64,
        max_files: usize,
    ) -> std::io::Result<()> {
        self.qlog = Some(Arc::new(QueryLog::open(path, max_bytes, max_files)?));
        Ok(())
    }

    /// Close the durable query log, restoring the zero-overhead hot path.
    pub fn disable_qlog(&mut self) {
        self.qlog = None;
    }

    /// Enable per-fingerprint statement statistics, bounded at `capacity`
    /// tracked fingerprints (LRU eviction beyond that). Returns the shared
    /// table so a telemetry endpoint can serve `/top` from it.
    pub fn enable_stmt(&mut self, capacity: usize) -> Arc<StmtStats> {
        let stats = Arc::new(StmtStats::new(capacity));
        self.stmt = Some(stats.clone());
        stats
    }

    /// Disable statement statistics, restoring the unprofiled hot path.
    pub fn disable_stmt(&mut self) {
        self.stmt = None;
    }

    /// Build an [`SloEngine`] over this engine's metrics with the standard
    /// rule set:
    ///
    /// - `query-latency-p99` — windowed p99 of `nepal_query_duration_ns`
    ///   at most `slos.max_p99_ns`;
    /// - `query-error-rate` — `nepal_query_errors_total` over
    ///   `nepal_queries_total` at most `slos.max_error_ratio` per window;
    /// - `store-memory` — `nepal_store_total_bytes` watermark at most
    ///   `slos.max_store_bytes` (kept current by a `StoreGauges`
    ///   refresher);
    /// - `planner-qerror` — worst per-fingerprint q-error from
    ///   [`Engine::feedback`] at most `slos.max_qerror`.
    ///
    /// Pull-time evaluation only: hand the result to
    /// `Telemetry::set_slo` (and/or call `evaluate()` yourself); nothing
    /// here spawns a thread.
    pub fn install_standard_slos(&self, slos: &StandardSlos) -> Arc<SloEngine> {
        let engine = Arc::new(SloEngine::new(self.metrics.clone()));
        engine.add(SloRule::latency("query-latency-p99", "nepal_query_duration_ns", 0.99, slos.max_p99_ns));
        engine.add(SloRule::error_rate(
            "query-error-rate",
            "nepal_query_errors_total",
            "nepal_queries_total",
            slos.max_error_ratio,
        ));
        engine.add(SloRule::gauge_max("store-memory", "nepal_store_total_bytes", slos.max_store_bytes));
        let feedback = self.feedback.clone();
        engine.add(SloRule::probe("planner-qerror", slos.max_qerror, move || {
            feedback.top(1).first().map(|s| s.max_qerror).unwrap_or(0.0)
        }));
        engine
    }

    /// Register a named pathway view: a stored query whose first retrieved
    /// variable supplies the pathways when the view is ranged over
    /// (`Retrieve V From myview V Where …`).
    pub fn define_view(&mut self, name: impl Into<String>, query_text: &str) -> Result<()> {
        let q = parse_query(query_text)?;
        match &q.head {
            Head::Retrieve(vars) if !vars.is_empty() => {}
            _ => return Err(NepalError::Unsupported("a view must be a Retrieve query".into())),
        }
        self.views.insert(name.into(), q);
        Ok(())
    }

    /// Parse and execute a query, recording engine metrics. When the
    /// engine's tracer is enabled, the whole call becomes one hierarchical
    /// trace (parse → plan → execute, down to backend operator spans).
    pub fn query(&mut self, text: &str) -> Result<QueryResult> {
        // With the durable query log or statement statistics enabled,
        // every query takes the profiled path — the log needs
        // per-operator actuals and the stats table needs the resource
        // meter. When both are off (the default) this branch is two
        // `Option` checks and the hot path below is exactly the
        // pre-instrumentation code.
        if self.qlog.is_some() || self.stmt.is_some() {
            return self.query_profiled(text).map(|(r, _)| r);
        }
        if nepal_obs::flight::recorder().is_enabled() {
            nepal_obs::flight::emit(nepal_obs::FlightKind::QueryStart, fingerprint(text), 0, 0, "");
        }
        let root = self.tracer.start_trace(text);
        let trace_id = root.trace_id();
        let t0 = Instant::now();
        let parse_span = root.child("parse");
        let parsed = parse_query(text);
        drop(parse_span);
        let result = parsed.and_then(|q| self.execute_inner(&q, None, &root));
        let total_ns = t0.elapsed().as_nanos() as u64;
        if let Ok(r) = &result {
            root.attr("rows", r.rows.len());
        }
        self.record_query_metrics(text, total_ns, result.as_ref().ok().map(|r| r.rows.len() as u64), trace_id);
        if let Err(e) = &result {
            self.note_cancellation_metrics(e);
        }
        result
    }

    /// Parse and execute a query with full profiling (the `EXPLAIN ANALYZE`
    /// path): phase timings, anchor candidates, per-operator statistics.
    pub fn query_profiled(&mut self, text: &str) -> Result<(QueryResult, QueryProfile)> {
        if nepal_obs::flight::recorder().is_enabled() {
            nepal_obs::flight::emit(nepal_obs::FlightKind::QueryStart, fingerprint(text), 0, 0, "");
        }
        let root = self.tracer.start_trace(text);
        let trace_id = root.trace_id();
        let t0 = Instant::now();
        let parse_span = root.child("parse");
        let parsed = parse_query(text);
        drop(parse_span);
        let parse_ns = t0.elapsed().as_nanos() as u64;
        let outcome = parsed.and_then(|q| {
            let mut profile = QueryProfile::default();
            let te = Instant::now();
            let result = self.execute_inner(&q, Some(&mut profile), &root)?;
            profile.total_ns = te.elapsed().as_nanos() as u64;
            profile.result_rows = result.rows.len() as u64;
            Ok((result, profile))
        });
        let total_ns = t0.elapsed().as_nanos() as u64;
        if let Ok((r, _)) = &outcome {
            root.attr("rows", r.rows.len());
        }
        self.record_query_metrics(text, total_ns, outcome.as_ref().ok().map(|(r, _)| r.rows.len() as u64), trace_id);
        let threads = resolved_threads(self.eval_options.threads) as u64;
        let meter_snap = self.cur_meter.take().map(|m| m.snapshot());
        let (result, mut profile) = match outcome {
            Ok(v) => v,
            Err(e) => {
                self.note_cancellation_metrics(&e);
                if let Some(stmt) = &self.stmt {
                    let outcome = match &e {
                        NepalError::DeadlineExceeded => StmtOutcome::Deadline,
                        NepalError::Cancelled => StmtOutcome::Cancelled,
                        _ => StmtOutcome::Error,
                    };
                    stmt.record(fingerprint(text), text, outcome, total_ns, 0, meter_snap.as_ref());
                }
                if let Some(qlog) = &self.qlog {
                    let mut rec = QlogRecord::for_error(text, total_ns, &e.to_string(), trace_id, threads);
                    rec.ts_ms = unix_ms();
                    rec.parse_ns = parse_ns;
                    self.feedback.observe(&rec);
                    qlog.append(&rec);
                }
                return Err(e);
            }
        };
        profile.query = text.to_string();
        profile.parse_ns = parse_ns;
        profile.total_ns = total_ns;
        profile.meter = meter_snap;
        if let Some(stmt) = &self.stmt {
            stmt.record(
                fingerprint(text),
                text,
                StmtOutcome::Ok,
                total_ns,
                result.rows.len() as u64,
                meter_snap.as_ref(),
            );
        }
        let rec = QlogRecord {
            ts_ms: if self.qlog.is_some() { unix_ms() } else { 0 },
            query: text.to_string(),
            fingerprint: fingerprint(text),
            trace_id,
            threads,
            parse_ns,
            plan_ns: profile.plan_ns,
            exec_ns: profile.exec_ns,
            total_ns,
            rows: result.rows.len() as u64,
            digest: digest_result(&result),
            error: None,
            feedback: PlanFeedback::from_profile(&profile),
        };
        self.feedback.observe(&rec);
        if let Some(qlog) = &self.qlog {
            qlog.append(&rec);
        }
        Ok((result, profile))
    }

    /// Count cancellation outcomes so the serving layer's shed/cancel rates
    /// are observable (`nepal_query_deadline_total` /
    /// `nepal_query_cancelled_total`).
    fn note_cancellation_metrics(&self, e: &NepalError) {
        match e {
            NepalError::DeadlineExceeded => {
                self.metrics
                    .counter("nepal_query_deadline_total", "Queries abandoned because their deadline passed")
                    .inc();
                nepal_obs::flight::emit(nepal_obs::FlightKind::DeadlineTrip, 0, 0, 0, "engine");
            }
            NepalError::Cancelled => {
                self.metrics.counter("nepal_query_cancelled_total", "Queries abandoned by explicit cancellation").inc();
                nepal_obs::flight::emit(nepal_obs::FlightKind::CancelTrip, 0, 0, 0, "engine");
            }
            _ => {}
        }
    }

    fn record_query_metrics(&mut self, text: &str, total_ns: u64, rows: Option<u64>, trace_id: Option<u64>) {
        self.metrics.counter("nepal_queries_total", "Queries executed").inc();
        if nepal_obs::flight::recorder().is_enabled() {
            let fp = fingerprint(text);
            match rows {
                Some(n) => {
                    nepal_obs::flight::emit(nepal_obs::FlightKind::QueryEnd, fp, total_ns / 1_000, n, &self.last_anchor)
                }
                None => nepal_obs::flight::emit(nepal_obs::FlightKind::QueryError, fp, total_ns / 1_000, 0, ""),
            }
        }
        match rows {
            Some(n) => {
                self.metrics.histogram("nepal_query_duration_ns", "Query latency in nanoseconds").observe(total_ns);
                self.metrics.histogram("nepal_query_result_rows", "Result rows per query").observe(n);
                self.slow_log.record_traced(text, total_ns, n, trace_id);
                let len = self.slow_log.len() as i64;
                self.metrics.gauge("nepal_slow_log_len", "Entries in the slow-query log").set(len);
            }
            None => {
                self.metrics.counter("nepal_query_errors_total", "Queries that returned an error").inc();
            }
        }
    }

    /// Execute a parsed query.
    pub fn execute(&mut self, q: &Query) -> Result<QueryResult> {
        self.execute_inner(q, None, &SpanHandle::none())
    }

    /// Execute a parsed query, collecting a [`QueryProfile`].
    pub fn execute_profiled(&mut self, q: &Query) -> Result<(QueryResult, QueryProfile)> {
        let mut profile = QueryProfile::default();
        let t0 = Instant::now();
        let result = self.execute_inner(q, Some(&mut profile), &SpanHandle::none());
        let meter_snap = self.cur_meter.take().map(|m| m.snapshot());
        let result = result?;
        profile.total_ns = t0.elapsed().as_nanos() as u64;
        profile.result_rows = result.rows.len() as u64;
        profile.meter = meter_snap;
        Ok((result, profile))
    }

    fn execute_inner(
        &mut self,
        q: &Query,
        mut profile: Option<&mut QueryProfile>,
        span: &SpanHandle,
    ) -> Result<QueryResult> {
        // Per-query cancellation: a fresh child of the session/server
        // parent token (if any) carrying the engine's default deadline.
        // A child per query avoids the one-shot-expired-token bug — the
        // deadline clock starts at query start, not engine construction.
        let mut qopts = self.eval_options.clone();
        qopts.cancel = match (&self.eval_options.cancel, self.default_deadline) {
            (None, None) => None,
            (Some(parent), deadline) => Some(parent.child(deadline)),
            (None, Some(deadline)) => Some(CancelToken::with_deadline(deadline)),
        };
        // Resource metering: the outermost profiled call creates the
        // query's meter; nested sub-executions (views, EXISTS) find it
        // already present and share it, charging their work to the outer
        // query. The creator takes it back via `cur_meter.take()`.
        if self.cur_meter.is_none() && profile.is_some() {
            self.cur_meter = Some(ResourceMeter::new());
        }
        qopts.meter = self.cur_meter.clone();
        let qopts = qopts;
        let mut cancel_ctr = 0u64;

        let aggregate = matches!(q.head, Head::FirstTimeWhenExists | Head::LastTimeWhenExists | Head::WhenExists);
        // Temporal aggregates need interval sets: default to the full
        // history range when no AT clause is present.
        let query_time = match (&q.time, aggregate) {
            (Some(t), _) => Some(*t),
            (None, true) => Some(TimeSpec::Range(FULL_RANGE.0, FULL_RANGE.1)),
            (None, false) => None,
        };

        // --- per-variable planning ---
        let threads = resolved_threads(self.eval_options.threads);
        let profiled = profile.is_some();
        let tplan_phase = profiled.then(Instant::now);
        let plan_span = span.child("plan");
        let mut evals: Vec<VarEval> = Vec::new();
        for s in &q.sources {
            let (filter, joint) = match (&s.time, &query_time) {
                (Some(t), _) => (spec_to_filter(t), false),
                (None, Some(t)) => (spec_to_filter(t), matches!(t, TimeSpec::Range(_, _))),
                (None, None) => (TimeFilter::Current, false),
            };
            if let Some(view_name) = &s.view {
                // Materialize the view (recursively, with a depth guard).
                let vq = self
                    .views
                    .get(view_name)
                    .cloned()
                    .ok_or_else(|| NepalError::UnknownBackend(format!("view `{view_name}`")))?;
                if self.view_depth >= 8 {
                    return Err(NepalError::Unsupported("view recursion too deep".into()));
                }
                self.view_depth += 1;
                let result = self.execute(&vq);
                self.view_depth -= 1;
                let result = result?;
                let first_var = match &vq.head {
                    Head::Retrieve(vars) => vars[0].clone(),
                    _ => unreachable!("define_view enforces Retrieve"),
                };
                let pathways: Vec<Pathway> = result.pathways_of(&first_var).into_iter().cloned().collect();
                if let Some(p) = profile.as_deref_mut() {
                    p.vars.push(VarProfile {
                        var: s.var.clone(),
                        backend: format!("view `{view_name}`"),
                        pathways: pathways.len() as u64,
                        ..Default::default()
                    });
                }
                evals.push(VarEval {
                    var: s.var.clone(),
                    backend: s.backend.clone(),
                    filter,
                    joint,
                    plan: None,
                    pathways,
                    prefilled: true,
                });
                continue;
            }
            let rpe = q.matches_of(&s.var).ok_or_else(|| NepalError::NoMatches(s.var.clone()))?;
            let backend = self.registry.get(s.backend.as_deref())?;
            let tplan = profiled.then(Instant::now);
            let var_span = plan_span.child(&format!("plan:{}", s.var));
            let plan = plan_rpe_threads(backend.schema(), rpe, &BackendEstimator(backend), &var_span, threads)?;
            var_span.attr("anchor_cost", format!("{:.1}", plan.anchor.cost));
            if nepal_obs::flight::recorder().is_enabled() {
                self.last_anchor = plan.anchor_desc(&plan.anchor);
            }
            drop(var_span);
            if let Some(p) = profile.as_deref_mut() {
                let anchors = plan
                    .candidates
                    .iter()
                    .map(|set| AnchorCandidate {
                        desc: plan.anchor_desc(set),
                        cost: set.cost,
                        chosen: set.atoms == plan.anchor.atoms && set.cost == plan.anchor.cost,
                    })
                    .collect();
                p.vars.push(VarProfile {
                    var: s.var.clone(),
                    backend: s.backend.clone().unwrap_or_else(|| self.registry.default_name().to_string()),
                    plan_ns: tplan.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0),
                    anchors,
                    ..Default::default()
                });
            }
            evals.push(VarEval {
                var: s.var.clone(),
                backend: s.backend.clone(),
                filter,
                joint,
                plan: Some(plan),
                pathways: Vec::new(),
                prefilled: false,
            });
        }

        drop(plan_span);
        if let (Some(p), Some(t)) = (profile.as_deref_mut(), tplan_phase) {
            p.plan_ns = t.elapsed().as_nanos() as u64;
        }
        let texec_phase = profiled.then(Instant::now);
        let exec_span = span.child("execute");

        // --- evaluation order: cheapest anchor first (views are free) ---
        let cost_of = |e: &VarEval| e.plan.as_ref().map(|p| p.anchor.cost).unwrap_or(0.0);
        let mut order: Vec<usize> = (0..evals.len()).collect();
        order.sort_by(|&a, &b| cost_of(&evals[a]).total_cmp(&cost_of(&evals[b])));

        // Equality conditions between path ends, used for anchor import.
        let end_links: Vec<(PathFn, String, PathFn, String)> = q
            .conds
            .iter()
            .filter_map(|c| match c {
                Cond::Cmp(Expr::PathEnd(fa, va), QCmp::Eq, Expr::PathEnd(fb, vb)) => {
                    Some((*fa, va.clone(), *fb, vb.clone()))
                }
                _ => None,
            })
            .collect();

        let mut evaluated: HashSet<String> = HashSet::new();
        // When the query ranges over several independent variables (no
        // anchor-import links between path ends), there is no profiling
        // trace to thread through, and every involved backend can evaluate
        // through a shared reference, fan the per-variable evaluations out
        // over scoped threads. Results are identical to the sequential
        // path — each variable's evaluation is already deterministic — only
        // wall-clock time changes.
        let pending: Vec<usize> = order.iter().copied().filter(|&i| !evals[i].prefilled).collect();
        let fan_out = threads > 1
            && !profiled
            && end_links.is_empty()
            && pending.len() >= 2
            && pending
                .iter()
                .all(|&i| self.registry.get(evals[i].backend.as_deref()).is_ok_and(|b| b.supports_shared_eval()));
        if fan_out {
            exec_span.attr("parallel_vars", pending.len());
            let opts = &qopts;
            let mut outs: Vec<(usize, Result<Vec<Pathway>>)> = Vec::with_capacity(pending.len());
            std::thread::scope(|s| {
                let mut handles = Vec::with_capacity(pending.len());
                for &i in &pending {
                    let e = &evals[i];
                    let backend = self.registry.get(e.backend.as_deref()).expect("eligibility checked above");
                    let var_span = exec_span.child(&format!("eval:{}", e.var));
                    var_span.attr("backend", backend.kind());
                    let plan = e.plan.as_ref().expect("non-view variables have plans");
                    let filter = e.filter;
                    handles.push((
                        i,
                        s.spawn(move || {
                            let r = backend.eval_shared(plan, filter, Seeds::Anchor, opts, &var_span);
                            if let Ok(p) = &r {
                                var_span.attr("pathways", p.len());
                            }
                            r
                        }),
                    ));
                }
                for (i, h) in handles {
                    match h.join() {
                        Ok(r) => outs.push((i, r)),
                        Err(p) => std::panic::resume_unwind(p),
                    }
                }
            });
            for (i, r) in outs {
                evals[i].pathways = r?;
                evaluated.insert(evals[i].var.clone());
            }
        }
        for &i in &order {
            if evaluated.contains(&evals[i].var) {
                continue;
            }
            if evals[i].prefilled {
                evaluated.insert(evals[i].var.clone());
                continue;
            }
            let (var, filter, cost) = {
                let e = &evals[i];
                (e.var.clone(), e.filter, cost_of(e))
            };
            // Can we import an anchor from an already-evaluated variable?
            let mut seed_nodes: Option<(PathFn, Vec<Uid>)> = None;
            for (fa, va, fb, vb) in &end_links {
                let (my_end, other_end, other_var) = if *va == var && evaluated.contains(vb) {
                    (*fa, *fb, vb)
                } else if *vb == var && evaluated.contains(va) {
                    (*fb, *fa, va)
                } else {
                    continue;
                };
                let other = evals.iter().find(|e| &e.var == other_var).unwrap();
                let mut uids: Vec<Uid> = other
                    .pathways
                    .iter()
                    .map(|p| match other_end {
                        PathFn::Source => p.source(),
                        PathFn::Target => p.target(),
                    })
                    .collect();
                uids.sort_unstable();
                uids.dedup();
                match &seed_nodes {
                    Some((_, prev)) if prev.len() <= uids.len() => {}
                    _ => seed_nodes = Some((my_end, uids)),
                }
            }
            let use_seeds = match &seed_nodes {
                Some((_, uids)) => (uids.len() as f64) < cost,
                None => false,
            };
            let e = &evals[i];
            let plan = e.plan.as_ref().expect("non-view variables have plans");
            let backend = self.registry.get_mut(e.backend.as_deref())?;
            let seeds = if use_seeds {
                let (end, uids) = seed_nodes.as_ref().unwrap();
                match end {
                    PathFn::Source => Seeds::Sources(uids),
                    PathFn::Target => Seeds::Targets(uids),
                }
            } else {
                Seeds::Anchor
            };
            let teval = profiled.then(Instant::now);
            let var_span = exec_span.child(&format!("eval:{var}"));
            var_span.attr("backend", backend.kind());
            let pathways = match profile.as_deref_mut() {
                Some(p) => backend.eval_obs(plan, filter, seeds, &qopts, Some(&mut p.vars[i].trace), &var_span)?,
                None => backend.eval_obs(plan, filter, seeds, &qopts, None, &var_span)?,
            };
            var_span.attr("pathways", pathways.len());
            drop(var_span);
            if let Some(p) = profile.as_deref_mut() {
                let vp = &mut p.vars[i];
                vp.eval_ns = teval.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0);
                vp.imported_seeds = use_seeds.then(|| seed_nodes.as_ref().unwrap().1.len() as u64);
                vp.pathways = pathways.len() as u64;
                vp.generated = backend.last_generated();
            }
            let e = &mut evals[i];
            e.pathways = pathways;
            evaluated.insert(var);
        }
        drop(exec_span);

        // --- unary filters (conditions touching a single variable) ---
        let singles: Vec<&Cond> = q
            .conds
            .iter()
            .filter(|c| match c {
                Cond::Cmp(a, _, b) => {
                    let mut vars: Vec<&str> = a.vars();
                    vars.extend(b.vars());
                    vars.sort();
                    vars.dedup();
                    vars.len() == 1
                }
                _ => false,
            })
            .collect();
        for cond in &singles {
            if let Cond::Cmp(a, op, b) = cond {
                let var = a.vars().first().copied().unwrap_or_else(|| b.vars()[0]).to_string();
                let idx = evals.iter().position(|e| e.var == var).unwrap();
                let filter = evals[idx].filter;
                let backend_name = evals[idx].backend.clone();
                let pathways = std::mem::take(&mut evals[idx].pathways);
                let mut kept = Vec::new();
                for p in pathways {
                    if let Some(cause) = poll_every(&qopts.cancel, &mut cancel_ctr, ENGINE_CANCEL_MASK) {
                        return Err(cancel_to_err(cause));
                    }
                    let binding = vec![(var.clone(), &p)];
                    let lhs = self.eval_expr(a, &binding, filter, backend_name.as_deref())?;
                    let rhs = self.eval_expr(b, &binding, filter, backend_name.as_deref())?;
                    let eq = lhs == rhs;
                    if (*op == QCmp::Eq && eq) || (*op == QCmp::Ne && !eq) {
                        kept.push(p);
                    }
                }
                evals[idx].pathways = kept;
            }
        }

        // --- join across variables ---
        // Rows are index vectors aligned with `evals`.
        let mut rows: Vec<Vec<usize>> = vec![vec![usize::MAX; evals.len()]];
        let mut joined: HashSet<usize> = HashSet::new();
        let binary_conds: Vec<&Cond> = q
            .conds
            .iter()
            .filter(|c| match c {
                Cond::Cmp(a, _, b) => {
                    let mut vars: Vec<&str> = a.vars();
                    vars.extend(b.vars());
                    vars.sort();
                    vars.dedup();
                    vars.len() == 2
                }
                _ => false,
            })
            .collect();

        let join_phase_span = span.child("join");
        for &i in &order {
            let tjoin = profiled.then(Instant::now);
            let join_span = join_phase_span.child(&format!("join:{}", evals[i].var));
            let probe_rows = rows.len() as u64;
            let mut next_rows = Vec::new();
            // Conditions applicable once var i joins.
            let applicable: Vec<&&Cond> = binary_conds
                .iter()
                .filter(|c| {
                    if let Cond::Cmp(a, _, b) = c {
                        let mut vars: Vec<&str> = a.vars();
                        vars.extend(b.vars());
                        vars.iter().any(|v| *v == evals[i].var)
                            && vars.iter().all(|v| *v == evals[i].var || joined.iter().any(|&j| evals[j].var == **v))
                    } else {
                        false
                    }
                })
                .collect();
            // Hash-join fast path: when every applicable condition is a
            // `source/target(X) = source/target(Y)` equality, build a hash
            // table over the joining variable's pathway ends and probe it
            // per row instead of testing the cross product. Emission order
            // (rows outer, pathway index ascending inner) matches the
            // nested loop exactly.
            let mut key_specs: Vec<(PathFn, PathFn, usize)> = Vec::new(); // (my end, other end, other idx)
            let hashable = !applicable.is_empty()
                && applicable.iter().all(|c| {
                    if let Cond::Cmp(Expr::PathEnd(fa, va), QCmp::Eq, Expr::PathEnd(fb, vb)) = **c {
                        let spec = if *va == evals[i].var {
                            evals.iter().position(|e| e.var == *vb).map(|j| (*fa, *fb, j))
                        } else if *vb == evals[i].var {
                            evals.iter().position(|e| e.var == *va).map(|j| (*fb, *fa, j))
                        } else {
                            None
                        };
                        if let Some(s) = spec {
                            key_specs.push(s);
                            return true;
                        }
                    }
                    false
                });
            if hashable {
                join_span.attr("strategy", "hash");
                let end_of = |p: &Pathway, f: PathFn| match f {
                    PathFn::Source => p.source().0,
                    PathFn::Target => p.target().0,
                };
                // Build keys (in parallel for large pathway sets), then the
                // table: key → ascending pathway indices.
                let build = &evals[i].pathways;
                let extract = |p: &Pathway| -> Vec<u64> { key_specs.iter().map(|&(my, _, _)| end_of(p, my)).collect() };
                let keys: Vec<Vec<u64>> = if threads > 1 && build.len() >= 4096 {
                    let (keys, _, _) =
                        nepal_rpe::par::run_jobs(build.len(), threads, false, |_| (), |_, j| extract(&build[j]));
                    keys
                } else {
                    build.iter().map(extract).collect()
                };
                let mut table: FxHashMap<Vec<u64>, Vec<usize>> = FxHashMap::default();
                for (pi, k) in keys.into_iter().enumerate() {
                    table.entry(k).or_default().push(pi);
                }
                for row in &rows {
                    if let Some(cause) = poll_every(&qopts.cancel, &mut cancel_ctr, ENGINE_CANCEL_MASK) {
                        return Err(cancel_to_err(cause));
                    }
                    let probe: Vec<u64> =
                        key_specs.iter().map(|&(_, other, j)| end_of(&evals[j].pathways[row[j]], other)).collect();
                    if let Some(cands) = table.get(&probe) {
                        for &pi in cands {
                            let mut trial = row.clone();
                            trial[i] = pi;
                            next_rows.push(trial);
                        }
                    }
                }
            } else {
                join_span.attr("strategy", "nested");
                for row in &rows {
                    if let Some(cause) = poll_every(&qopts.cancel, &mut cancel_ctr, ENGINE_CANCEL_MASK) {
                        return Err(cancel_to_err(cause));
                    }
                    'cand: for (pi, _p) in evals[i].pathways.iter().enumerate() {
                        let mut trial = row.clone();
                        trial[i] = pi;
                        for cond in &applicable {
                            if let Cond::Cmp(a, op, b) = **cond {
                                let binding = self.binding_of(&evals, &trial);
                                let lhs = self.eval_expr_b(a, &binding, &evals, &trial)?;
                                let rhs = self.eval_expr_b(b, &binding, &evals, &trial)?;
                                let eq = lhs == rhs;
                                let ok = (*op == QCmp::Eq && eq) || (*op == QCmp::Ne && !eq);
                                if !ok {
                                    continue 'cand;
                                }
                            }
                        }
                        next_rows.push(trial);
                    }
                }
            }
            rows = next_rows;
            joined.insert(i);
            if let Some(mm) = &qopts.meter {
                mm.add_join_build_rows(evals[i].pathways.len() as u64);
            }
            join_span.attr("probe_rows", probe_rows);
            join_span.attr("build_rows", evals[i].pathways.len());
            join_span.attr("emitted", rows.len());
            drop(join_span);
            if let Some(p) = profile.as_deref_mut() {
                p.joins.push(JoinStep {
                    var: evals[i].var.clone(),
                    probe_rows,
                    build_rows: evals[i].pathways.len() as u64,
                    emitted: rows.len() as u64,
                    elapsed_ns: tjoin.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0),
                });
            }
        }
        drop(join_phase_span);

        // --- joint temporal coexistence (query-level AT range) ---
        let coex_span = span.child("coexistence");
        let probe = match query_time {
            Some(TimeSpec::Range(a, b)) => Some(Interval::new(a, b.saturating_add(1))),
            _ => None,
        };
        let mut out_rows: Vec<ResultRow> = Vec::new();
        let mut coexistence_pruned = 0u64;
        'row: for row in &rows {
            if let Some(cause) = poll_every(&qopts.cancel, &mut cancel_ctr, ENGINE_CANCEL_MASK) {
                return Err(cancel_to_err(cause));
            }
            let mut joint: Option<IntervalSet> = None;
            for (i, &pi) in row.iter().enumerate() {
                if pi == usize::MAX {
                    continue;
                }
                let e = &evals[i];
                if !e.joint {
                    continue;
                }
                if let Some(times) = &e.pathways[pi].times {
                    joint = Some(match joint {
                        None => times.clone(),
                        Some(j) => j.intersect(times),
                    });
                    if joint.as_ref().unwrap().is_empty() {
                        coexistence_pruned += 1;
                        continue 'row;
                    }
                }
            }
            let times = match (&joint, &probe) {
                (Some(j), Some(p)) => {
                    let comps = j.components_overlapping(p);
                    if comps.is_empty() {
                        coexistence_pruned += 1;
                        continue 'row;
                    }
                    Some(IntervalSet::from_intervals(comps))
                }
                _ => None,
            };
            let pathways: Vec<(String, Pathway)> = row
                .iter()
                .enumerate()
                .filter(|(_, &pi)| pi != usize::MAX)
                .map(|(i, &pi)| {
                    let mut p = evals[i].pathways[pi].clone();
                    // Per-variable range scopes keep their own times.
                    if evals[i].joint {
                        p.times = times.clone();
                    }
                    (evals[i].var.clone(), p)
                })
                .collect();
            out_rows.push(ResultRow { pathways, values: Vec::new(), times });
        }

        coex_span.attr("pruned", coexistence_pruned);
        drop(coex_span);

        // --- EXISTS subqueries (decorrelated) ---
        let exists_span = span.child("exists");
        let mut exists_pruned = 0u64;
        for cond in &q.conds {
            if let Cond::Exists { negated, query } = cond {
                let before = out_rows.len();
                out_rows = self.apply_exists(q, query, *negated, out_rows)?;
                exists_pruned += (before - out_rows.len()) as u64;
            }
        }
        exists_span.attr("pruned", exists_pruned);
        drop(exists_span);

        if let Some(p) = profile {
            p.coexistence_pruned = coexistence_pruned;
            p.exists_pruned = exists_pruned;
            if let Some(t) = texec_phase {
                p.exec_ns = t.elapsed().as_nanos() as u64;
            }
        }

        // --- head processing ---
        let head_span = span.child("head");
        let result = self.finish_head(q, evals, out_rows);
        drop(head_span);
        result
    }

    fn binding_of<'a>(&self, evals: &'a [VarEval], row: &[usize]) -> Vec<(String, &'a Pathway)> {
        row.iter()
            .enumerate()
            .filter(|(_, &pi)| pi != usize::MAX)
            .map(|(i, &pi)| (evals[i].var.clone(), &evals[i].pathways[pi]))
            .collect()
    }

    fn eval_expr_b(
        &mut self,
        expr: &Expr,
        binding: &[(String, &Pathway)],
        evals: &[VarEval],
        _row: &[usize],
    ) -> Result<Value> {
        // Find the variable's filter/backend for field lookups.
        let (filter, backend) = match expr.vars().first() {
            Some(v) => {
                let e = evals.iter().find(|e| e.var == *v);
                match e {
                    Some(e) => (e.filter, e.backend.clone()),
                    None => (TimeFilter::Current, None),
                }
            }
            None => (TimeFilter::Current, None),
        };
        self.eval_expr(expr, binding, filter, backend.as_deref())
    }

    fn eval_expr(
        &mut self,
        expr: &Expr,
        binding: &[(String, &Pathway)],
        filter: TimeFilter,
        backend: Option<&str>,
    ) -> Result<Value> {
        let lookup = |var: &str| -> Result<&Pathway> {
            binding
                .iter()
                .find(|(v, _)| v == var)
                .map(|(_, p)| *p)
                .ok_or_else(|| NepalError::UnknownVariable(var.to_string()))
        };
        match expr {
            Expr::Literal(v) => Ok(v.clone()),
            Expr::PathVar(v) => {
                Err(NepalError::Unsupported(format!("bare pathway variable `{v}` is only valid inside count(…)")))
            }
            Expr::Length(v) => Ok(Value::Int(lookup(v)?.len_edges() as i64)),
            Expr::PathEnd(f, v) => {
                let p = lookup(v)?;
                let uid = match f {
                    PathFn::Source => p.source(),
                    PathFn::Target => p.target(),
                };
                Ok(Value::Int(uid.0 as i64))
            }
            Expr::PathEndField(f, v, field) => {
                let p = lookup(v)?;
                let uid = match f {
                    PathFn::Source => p.source(),
                    PathFn::Target => p.target(),
                };
                let b = self.registry.get_mut(backend)?;
                let schema = b.schema().clone();
                match b.fields(uid, filter) {
                    None => Ok(Value::Null),
                    Some((class, fields)) => {
                        let (idx, _) = schema.resolve_field(class, field).ok_or_else(|| NepalError::UnknownField {
                            class: schema.class(class).name.clone(),
                            field: field.clone(),
                        })?;
                        Ok(fields.get(idx).cloned().unwrap_or(Value::Null))
                    }
                }
            }
        }
    }

    /// Decorrelated EXISTS: run the inner query without correlated
    /// conditions, collect the inner key tuples, and semi-/anti-join.
    fn apply_exists(
        &mut self,
        outer_q: &Query,
        inner_q: &Query,
        negated: bool,
        rows: Vec<ResultRow>,
    ) -> Result<Vec<ResultRow>> {
        let inner_vars: Vec<&str> = inner_q.var_names();
        let outer_vars: Vec<&str> = outer_q.var_names();
        let mut local_conds = Vec::new();
        let mut correlated: Vec<(Expr, Expr)> = Vec::new(); // (outer side, inner side)
        for c in &inner_q.conds {
            match c {
                Cond::Cmp(a, op, b) if *op == QCmp::Eq => {
                    let a_outer = a.vars().iter().any(|v| !inner_vars.contains(v) && outer_vars.contains(v));
                    let b_outer = b.vars().iter().any(|v| !inner_vars.contains(v) && outer_vars.contains(v));
                    match (a_outer, b_outer) {
                        (true, false) => correlated.push((a.clone(), b.clone())),
                        (false, true) => correlated.push((b.clone(), a.clone())),
                        (false, false) => local_conds.push(c.clone()),
                        (true, true) => {
                            return Err(NepalError::Unsupported(
                                "correlated condition referencing outer variables on both sides".into(),
                            ))
                        }
                    }
                }
                other => local_conds.push(other.clone()),
            }
        }
        let decorrelated = Query {
            time: inner_q.time,
            head: Head::Retrieve(inner_q.sources.iter().map(|s| s.var.clone()).collect()),
            sources: inner_q.sources.clone(),
            conds: local_conds,
        };
        let inner_result = self.execute(&decorrelated)?;
        // Key set from the inner side of each correlated equality.
        let mut keys: HashSet<Vec<Value>> = HashSet::new();
        for row in &inner_result.rows {
            let binding: Vec<(String, &Pathway)> = row.pathways.iter().map(|(v, p)| (v.clone(), p)).collect();
            let mut key = Vec::with_capacity(correlated.len());
            let mut ok = true;
            for (_, inner_expr) in &correlated {
                match self.eval_expr(inner_expr, &binding, TimeFilter::Current, None) {
                    Ok(v) => key.push(v),
                    Err(_) => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                keys.insert(key);
            }
        }
        let mut out = Vec::new();
        for row in rows {
            let binding: Vec<(String, &Pathway)> = row.pathways.iter().map(|(v, p)| (v.clone(), p)).collect();
            let mut key = Vec::with_capacity(correlated.len());
            for (outer_expr, _) in &correlated {
                key.push(self.eval_expr(outer_expr, &binding, TimeFilter::Current, None)?);
            }
            let exists = if correlated.is_empty() { !inner_result.rows.is_empty() } else { keys.contains(&key) };
            if exists != negated {
                out.push(row);
            }
        }
        Ok(out)
    }

    /// Fold every result row through the aggregate Select items.
    fn eval_aggregates(&mut self, items: &[SelectItem], evals: &[VarEval], rows: &[ResultRow]) -> Result<Vec<Value>> {
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            let Some(agg) = item.agg else {
                out.push(match &item.expr {
                    Expr::Literal(v) => v.clone(),
                    _ => unreachable!("checked by caller"),
                });
                continue;
            };
            // Gather the per-row values of the argument expression.
            let mut vals: Vec<Value> = Vec::with_capacity(rows.len());
            for row in rows {
                let binding: Vec<(String, &Pathway)> = row.pathways.iter().map(|(v, p)| (v.clone(), p)).collect();
                match &item.expr {
                    Expr::PathVar(v) => {
                        // count(P): one unit per row; distinct counts
                        // distinct pathways.
                        let p = binding
                            .iter()
                            .find(|(name, _)| name == v)
                            .map(|(_, p)| *p)
                            .ok_or_else(|| NepalError::UnknownVariable(v.clone()))?;
                        vals.push(Value::List(p.elems.iter().map(|u| Value::Int(u.0 as i64)).collect()));
                    }
                    e => {
                        let (filter, backend) = match e.vars().first() {
                            Some(v) => evals
                                .iter()
                                .find(|x| x.var == *v)
                                .map(|x| (x.filter, x.backend.clone()))
                                .unwrap_or((TimeFilter::Current, None)),
                            None => (TimeFilter::Current, None),
                        };
                        vals.push(self.eval_expr(e, &binding, filter, backend.as_deref())?);
                    }
                }
            }
            if item.distinct {
                let mut seen = HashSet::new();
                vals.retain(|v| seen.insert(v.clone()));
            }
            out.push(match agg {
                AggFn::Count => Value::Int(vals.len() as i64),
                AggFn::Min => vals.iter().min().cloned().unwrap_or(Value::Null),
                AggFn::Max => vals.iter().max().cloned().unwrap_or(Value::Null),
                AggFn::Sum | AggFn::Avg => {
                    let nums: Vec<f64> = vals
                        .iter()
                        .filter_map(|v| match v {
                            Value::Int(i) => Some(*i as f64),
                            Value::Float(f) => Some(*f),
                            _ => None,
                        })
                        .collect();
                    if nums.len() != vals.len() {
                        return Err(NepalError::Unsupported("sum/avg over non-numeric values".into()));
                    }
                    let total: f64 = nums.iter().sum();
                    match agg {
                        AggFn::Sum => {
                            if total.fract() == 0.0 {
                                Value::Int(total as i64)
                            } else {
                                Value::Float(total)
                            }
                        }
                        _ => {
                            if nums.is_empty() {
                                Value::Null
                            } else {
                                Value::Float(total / nums.len() as f64)
                            }
                        }
                    }
                }
            });
        }
        Ok(out)
    }

    fn finish_head(&mut self, q: &Query, evals: Vec<VarEval>, rows: Vec<ResultRow>) -> Result<QueryResult> {
        match &q.head {
            Head::Retrieve(vars) => Ok(QueryResult { columns: vars.clone(), rows }),
            Head::Select(items) => {
                let columns: Vec<String> = items.iter().map(item_name).collect();
                let aggregated = items.iter().any(|i| i.agg.is_some());
                if aggregated {
                    if let Some(bad) = items.iter().find(|i| i.agg.is_none() && !matches!(i.expr, Expr::Literal(_))) {
                        return Err(NepalError::Unsupported(format!(
                            "cannot mix `{}` with aggregates (no GROUP BY in Nepal)",
                            item_name(bad)
                        )));
                    }
                    let values = self.eval_aggregates(items, &evals, &rows)?;
                    return Ok(QueryResult {
                        columns,
                        rows: vec![ResultRow { pathways: Vec::new(), values, times: None }],
                    });
                }
                let mut out = Vec::new();
                for mut row in rows {
                    let binding: Vec<(String, &Pathway)> = row.pathways.iter().map(|(v, p)| (v.clone(), p)).collect();
                    let mut values = Vec::with_capacity(items.len());
                    for item in items {
                        let e = &item.expr;
                        let (filter, backend) = match e.vars().first() {
                            Some(v) => evals
                                .iter()
                                .find(|x| x.var == *v)
                                .map(|x| (x.filter, x.backend.clone()))
                                .unwrap_or((TimeFilter::Current, None)),
                            None => (TimeFilter::Current, None),
                        };
                        values.push(self.eval_expr(e, &binding, filter, backend.as_deref())?);
                    }
                    row.values = values;
                    out.push(row);
                }
                // Select deduplicates identical value rows (bag → set, as
                // the paper's examples imply for "the names and ids").
                let mut seen = HashSet::new();
                out.retain(|r| seen.insert((r.values.clone(), r.times.clone())));
                Ok(QueryResult { columns, rows: out })
            }
            Head::WhenExists | Head::FirstTimeWhenExists | Head::LastTimeWhenExists => {
                // Union the joint assertion ranges over all rows.
                let mut union = IntervalSet::empty();
                for row in &rows {
                    if let Some(t) = &row.times {
                        union = union.union(t);
                    }
                }
                let (columns, out_rows) = match q.head {
                    Head::WhenExists => (
                        vec!["when_exists".to_string()],
                        if union.is_empty() {
                            vec![]
                        } else {
                            vec![ResultRow { pathways: Vec::new(), values: Vec::new(), times: Some(union) }]
                        },
                    ),
                    Head::FirstTimeWhenExists => {
                        let rows = match union.first() {
                            Some(t) => {
                                vec![ResultRow { pathways: Vec::new(), values: vec![Value::Ts(t)], times: Some(union) }]
                            }
                            None => vec![],
                        };
                        (vec!["first_time".to_string()], rows)
                    }
                    Head::LastTimeWhenExists => {
                        let rows = match union.last() {
                            Some(iv) => {
                                let v = if iv.is_current() {
                                    Value::Null // still exists now
                                } else {
                                    Value::Ts(iv.to)
                                };
                                vec![ResultRow { pathways: Vec::new(), values: vec![v], times: Some(union) }]
                            }
                            None => vec![],
                        };
                        (vec!["last_time".to_string()], rows)
                    }
                    _ => unreachable!(),
                };
                Ok(QueryResult { columns, rows: out_rows })
            }
        }
    }
}

fn unix_ms() -> u64 {
    std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0)
}

/// Deterministic FNV-1a digest of a full query result: columns, then every
/// row's select values (via `Display`), pathway bindings (variable name +
/// element uids), and assertion intervals. Stable across builds — the
/// replay tool compares these digests between a captured qlog and a
/// re-execution.
pub fn digest_result(result: &QueryResult) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(result.columns.len() as u64);
    for c in &result.columns {
        h.write_str(c);
        h.write_u8(0);
    }
    h.write_u64(result.rows.len() as u64);
    for row in &result.rows {
        h.write_u8(b'r');
        for (var, p) in &row.pathways {
            h.write_u8(b'p');
            h.write_str(var);
            h.write_u8(0);
            h.write_u64(p.elems.len() as u64);
            for u in &p.elems {
                h.write_u64(u.0);
            }
            if let Some(times) = &p.times {
                for iv in times.intervals() {
                    h.write_u64(iv.from as u64);
                    h.write_u64(iv.to as u64);
                }
            }
        }
        for v in &row.values {
            h.write_u8(b'v');
            h.write_str(&v.to_string());
            h.write_u8(0);
        }
        if let Some(times) = &row.times {
            h.write_u8(b't');
            for iv in times.intervals() {
                h.write_u64(iv.from as u64);
                h.write_u64(iv.to as u64);
            }
        }
    }
    h.finish()
}

fn expr_name(e: &Expr) -> String {
    match e {
        Expr::PathEnd(PathFn::Source, v) => format!("source({v})"),
        Expr::PathEnd(PathFn::Target, v) => format!("target({v})"),
        Expr::PathEndField(PathFn::Source, v, f) => format!("source({v}).{f}"),
        Expr::PathEndField(PathFn::Target, v, f) => format!("target({v}).{f}"),
        Expr::Length(v) => format!("length({v})"),
        Expr::PathVar(v) => v.clone(),
        Expr::Literal(v) => v.to_string(),
    }
}

fn item_name(item: &SelectItem) -> String {
    let inner = expr_name(&item.expr);
    match item.agg {
        None => inner,
        Some(agg) => {
            let f = match agg {
                AggFn::Count => "count",
                AggFn::Min => "min",
                AggFn::Max => "max",
                AggFn::Sum => "sum",
                AggFn::Avg => "avg",
            };
            if item.distinct {
                format!("{f}(distinct {inner})")
            } else {
                format!("{f}({inner})")
            }
        }
    }
}
