//! # nepal-core — the Nepal query system
//!
//! The top of the stack: the SQL-like Nepal query language with pathways
//! as first-class citizens (§3.4), temporal queries (§4), and the
//! retargetable execution architecture (§3.1/§5):
//!
//! - [`parser::parse_query`] — `Retrieve`/`Select` heads, `PATHS` range
//!   variables (with per-variable `@` time scopes and `USING` backend
//!   routing), `MATCHES` predicates, joins on `source()`/`target()`,
//!   `[Not] Exists` subqueries, `AT` time points/ranges, and the §4
//!   temporal aggregates.
//! - [`backend::Backend`] — the retargetable evaluation interface with
//!   native, relational (SQL-emitting), and Gremlin (wire-protocol)
//!   implementations plus the [`backend::BackendRegistry`] for data
//!   integration.
//! - [`engine::Engine`] — planning, anchor import across joins, hash
//!   joins, temporal coexistence semantics, decorrelated EXISTS, and the
//!   result-processing layer.
//! - [`evolution`] — path evolution queries and change logs.

pub mod analysis;
pub mod ast;
pub mod backend;
pub mod engine;
pub mod error;
pub mod evolution;
pub mod parser;

pub use analysis::{footprint, induced_paths, shared_fate, InducedSegment};
pub use ast::{AggFn, Cond, Expr, Head, PathFn, QCmp, Query, SelectItem, SourceDecl, TimeSpec};
pub use backend::{Backend, BackendRegistry, GremlinBackend, NativeBackend, RelationalBackend};
pub use engine::{digest_result, Engine, QueryResult, ResultRow, StandardSlos, FULL_RANGE};
pub use error::{NepalError, Result};
pub use evolution::{change_log, path_evolution, ChangeEvent, ChangeKind, ElementEvolution};
pub use parser::{parse_query, parse_statement, Statement};

use std::sync::Arc;

use nepal_graph::TemporalGraph;

/// Convenience: an engine over a single native temporal graph.
pub fn engine_over(graph: Arc<TemporalGraph>) -> Engine {
    Engine::new(BackendRegistry::new("native", Box::new(NativeBackend::new(graph))))
}
