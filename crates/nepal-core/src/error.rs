//! Errors for the Nepal query system.

use std::fmt;

use nepal_rpe::RpeError;
use nepal_schema::SchemaError;

/// Errors raised while parsing, planning, or executing Nepal queries.
#[derive(Debug)]
pub enum NepalError {
    /// Syntax error in the query text.
    Parse { pos: usize, msg: String },
    /// A range variable is used but never declared in FROM.
    UnknownVariable(String),
    /// A range variable has no MATCHES predicate (§3.4: "each pathway
    /// variable must have a MATCHES predicate").
    NoMatches(String),
    /// RPE-level error.
    Rpe(RpeError),
    /// Schema-level error.
    Schema(SchemaError),
    /// Field reference could not be resolved.
    UnknownField { class: String, field: String },
    /// The requested backend is not registered.
    UnknownBackend(String),
    /// Backend-specific failure.
    Backend(String),
    /// The feature is not supported by the chosen backend.
    Unsupported(String),
    /// The query's deadline passed; evaluation was abandoned at a
    /// cancellation checkpoint and partial work discarded.
    DeadlineExceeded,
    /// The query was cancelled (REPL `:cancel`, server drain, client
    /// disconnect) at a cancellation checkpoint.
    Cancelled,
}

impl fmt::Display for NepalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NepalError::Parse { pos, msg } => write!(f, "query parse error at byte {pos}: {msg}"),
            NepalError::UnknownVariable(v) => write!(f, "unknown pathway variable `{v}`"),
            NepalError::NoMatches(v) => {
                write!(f, "pathway variable `{v}` has no MATCHES predicate")
            }
            NepalError::Rpe(e) => write!(f, "{e}"),
            NepalError::Schema(e) => write!(f, "{e}"),
            NepalError::UnknownField { class, field } => {
                write!(f, "class `{class}` has no field `{field}`")
            }
            NepalError::UnknownBackend(b) => write!(f, "unknown backend `{b}`"),
            NepalError::Backend(m) => write!(f, "backend error: {m}"),
            NepalError::Unsupported(m) => write!(f, "unsupported: {m}"),
            NepalError::DeadlineExceeded => write!(f, "query deadline exceeded"),
            NepalError::Cancelled => write!(f, "query cancelled"),
        }
    }
}

impl std::error::Error for NepalError {}

impl From<RpeError> for NepalError {
    fn from(e: RpeError) -> Self {
        // Cancellation is a serving condition, not an RPE defect: keep it
        // typed at the top level so servers can map it to overload/timeout
        // responses without string matching.
        match e {
            RpeError::DeadlineExceeded => NepalError::DeadlineExceeded,
            RpeError::Cancelled => NepalError::Cancelled,
            other => NepalError::Rpe(other),
        }
    }
}

impl NepalError {
    /// Is this a cooperative-cancellation outcome (deadline or explicit
    /// cancel) rather than a query/backend defect?
    pub fn is_cancellation(&self) -> bool {
        matches!(self, NepalError::DeadlineExceeded | NepalError::Cancelled)
    }
}

impl From<SchemaError> for NepalError {
    fn from(e: SchemaError) -> Self {
        NepalError::Schema(e)
    }
}

/// Result alias for the query system.
pub type Result<T> = std::result::Result<T, NepalError>;
