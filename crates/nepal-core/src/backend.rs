//! The retargetable backend interface (§3.1/§5).
//!
//! Nepal is "a shim layer between network applications and one or more
//! database systems": the engine plans queries once and evaluates each
//! range variable against whichever backend holds its data — the native
//! temporal store, the relational substrate (emitting SQL), or a Gremlin
//! server reached over the wire protocol.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use nepal_graph::{GraphView, TemporalGraph, TimeFilter, Uid};
use nepal_gremlin::{evaluate_gremlin_spanned, GremlinClient, GremlinTime};
use nepal_obs::{ExecTrace, MetricsRegistry, OpStats, SpanHandle};
use nepal_relational::{db_from_graph, evaluate_relational_spanned, RelDb};
use nepal_rpe::anchor::apply_selectivity;
use nepal_rpe::{BoundAtom, CardinalityEstimator, EvalOptions, Pathway, RpePlan, Seeds};
use nepal_schema::{ClassId, Schema, Value};

use crate::error::{NepalError, Result};

/// A query-evaluation target. `Send + Sync` so the engine can evaluate
/// independent range variables against the same backend from scoped
/// worker threads (see [`Backend::eval_shared`]).
pub trait Backend: Send + Sync {
    /// Human-readable backend kind.
    fn kind(&self) -> &'static str;

    /// The schema this backend serves.
    fn schema(&self) -> &Arc<Schema>;

    /// Evaluate a planned RPE under a time filter.
    fn eval(&mut self, plan: &RpePlan, filter: TimeFilter, seeds: Seeds, opts: &EvalOptions) -> Result<Vec<Pathway>>;

    /// Evaluate with a profiling trace attached. Backends that can report
    /// per-operator statistics override this; the default just delegates
    /// to [`Backend::eval`] and records nothing.
    fn eval_traced(
        &mut self,
        plan: &RpePlan,
        filter: TimeFilter,
        seeds: Seeds,
        opts: &EvalOptions,
        _trace: &mut ExecTrace,
    ) -> Result<Vec<Pathway>> {
        self.eval(plan, filter, seeds, opts)
    }

    /// Evaluate with full observability: an optional profiling trace plus a
    /// span to hang operator child spans off. The default routes to
    /// [`Backend::eval_traced`]/[`Backend::eval`] and ignores the span;
    /// backends with spanned evaluators override this.
    fn eval_obs(
        &mut self,
        plan: &RpePlan,
        filter: TimeFilter,
        seeds: Seeds,
        opts: &EvalOptions,
        trace: Option<&mut ExecTrace>,
        _span: &SpanHandle,
    ) -> Result<Vec<Pathway>> {
        match trace {
            Some(t) => self.eval_traced(plan, filter, seeds, opts, t),
            None => self.eval(plan, filter, seeds, opts),
        }
    }

    /// Whether this backend can evaluate through a shared reference
    /// ([`Backend::eval_shared`]), allowing the engine to run several
    /// range variables against it concurrently.
    fn supports_shared_eval(&self) -> bool {
        false
    }

    /// Evaluate through `&self` (no translator state to mutate). Backends
    /// that buffer generated code or wire statistics per call cannot offer
    /// this; the native store can.
    fn eval_shared(
        &self,
        _plan: &RpePlan,
        _filter: TimeFilter,
        _seeds: Seeds,
        _opts: &EvalOptions,
        _span: &SpanHandle,
    ) -> Result<Vec<Pathway>> {
        Err(NepalError::Unsupported("backend does not support shared-reference evaluation".into()))
    }

    /// Attach the engine's metrics registry so evaluation-level counters
    /// (parallel chunks, steals, worker busy time) land in engine metrics.
    /// Default: ignore.
    fn attach_metrics(&mut self, _metrics: &Arc<MetricsRegistry>) {}

    /// Field values (and runtime class) of an element, for Select
    /// post-processing.
    fn fields(&mut self, uid: Uid, filter: TimeFilter) -> Option<(ClassId, Vec<Value>)>;

    /// Cardinality estimate for anchor costing.
    fn estimate(&self, atom: &BoundAtom) -> f64;

    /// Translator output produced by the last `eval` call (SQL statements
    /// or Gremlin traversals), if this backend generates code.
    fn last_generated(&self) -> Vec<String> {
        Vec::new()
    }
}

// ---------------------------------------------------------------------
// Native backend
// ---------------------------------------------------------------------

/// Backend over the in-process temporal graph store.
pub struct NativeBackend {
    pub graph: Arc<TemporalGraph>,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl NativeBackend {
    pub fn new(graph: Arc<TemporalGraph>) -> Self {
        NativeBackend { graph, metrics: None }
    }
}

impl Backend for NativeBackend {
    fn kind(&self) -> &'static str {
        "native"
    }

    fn schema(&self) -> &Arc<Schema> {
        self.graph.schema()
    }

    fn eval(&mut self, plan: &RpePlan, filter: TimeFilter, seeds: Seeds, opts: &EvalOptions) -> Result<Vec<Pathway>> {
        let view = GraphView::new(&self.graph, filter);
        Ok(nepal_rpe::evaluate(&view, plan, seeds, opts))
    }

    fn eval_traced(
        &mut self,
        plan: &RpePlan,
        filter: TimeFilter,
        seeds: Seeds,
        opts: &EvalOptions,
        trace: &mut ExecTrace,
    ) -> Result<Vec<Pathway>> {
        let view = GraphView::new(&self.graph, filter);
        Ok(nepal_rpe::evaluate_traced(&view, plan, seeds, opts, Some(trace)))
    }

    fn eval_obs(
        &mut self,
        plan: &RpePlan,
        filter: TimeFilter,
        seeds: Seeds,
        opts: &EvalOptions,
        trace: Option<&mut ExecTrace>,
        span: &SpanHandle,
    ) -> Result<Vec<Pathway>> {
        let view = GraphView::new(&self.graph, filter);
        nepal_rpe::evaluate_metered(&view, plan, seeds, opts, trace, span, self.metrics.as_deref())
            .map_err(NepalError::from)
    }

    fn supports_shared_eval(&self) -> bool {
        true
    }

    fn eval_shared(
        &self,
        plan: &RpePlan,
        filter: TimeFilter,
        seeds: Seeds,
        opts: &EvalOptions,
        span: &SpanHandle,
    ) -> Result<Vec<Pathway>> {
        let view = GraphView::new(&self.graph, filter);
        nepal_rpe::evaluate_metered(&view, plan, seeds, opts, None, span, self.metrics.as_deref())
            .map_err(NepalError::from)
    }

    fn attach_metrics(&mut self, metrics: &Arc<MetricsRegistry>) {
        self.metrics = Some(metrics.clone());
    }

    fn fields(&mut self, uid: Uid, filter: TimeFilter) -> Option<(ClassId, Vec<Value>)> {
        let class = self.graph.class_of(uid)?;
        let view = GraphView::new(&self.graph, filter);
        let fields = view.fields(uid)?.to_vec();
        Some((class, fields))
    }

    fn estimate(&self, atom: &BoundAtom) -> f64 {
        nepal_rpe::GraphEstimator { graph: &self.graph }.estimate(self.graph.schema(), atom)
    }
}

// ---------------------------------------------------------------------
// Relational backend
// ---------------------------------------------------------------------

/// Backend over the relational substrate (the Postgres target of §5.2).
pub struct RelationalBackend {
    pub db: RelDb,
    schema: Arc<Schema>,
    last_sql: Vec<String>,
}

impl RelationalBackend {
    /// Load a temporal graph into a fresh relational database.
    pub fn from_graph(graph: &TemporalGraph) -> Result<Self> {
        let db = db_from_graph(graph).map_err(|e| NepalError::Backend(e.to_string()))?;
        Ok(RelationalBackend { db, schema: graph.schema().clone(), last_sql: Vec::new() })
    }
}

impl Backend for RelationalBackend {
    fn kind(&self) -> &'static str {
        "relational"
    }

    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn eval(&mut self, plan: &RpePlan, filter: TimeFilter, seeds: Seeds, opts: &EvalOptions) -> Result<Vec<Pathway>> {
        self.eval_obs(plan, filter, seeds, opts, None, &SpanHandle::none())
    }

    fn eval_traced(
        &mut self,
        plan: &RpePlan,
        filter: TimeFilter,
        seeds: Seeds,
        opts: &EvalOptions,
        trace: &mut ExecTrace,
    ) -> Result<Vec<Pathway>> {
        self.eval_obs(plan, filter, seeds, opts, Some(trace), &SpanHandle::none())
    }

    fn eval_obs(
        &mut self,
        plan: &RpePlan,
        filter: TimeFilter,
        seeds: Seeds,
        opts: &EvalOptions,
        trace: Option<&mut ExecTrace>,
        span: &SpanHandle,
    ) -> Result<Vec<Pathway>> {
        let t0 = trace.is_some().then(Instant::now);
        let res =
            evaluate_relational_spanned(&mut self.db, &self.schema, plan, filter, seeds, opts, span).map_err(|e| {
                match e {
                    nepal_relational::RelError::DeadlineExceeded => NepalError::DeadlineExceeded,
                    nepal_relational::RelError::Cancelled => NepalError::Cancelled,
                    other => NepalError::Backend(other.to_string()),
                }
            })?;
        if let Some(trace) = trace {
            trace.bump("rel_rows_scanned", res.rows_scanned);
            trace.bump("rel_rows_joined", res.rows_joined);
            let mut op = OpStats::new("Select+Extend", "SQL pipeline over class tables");
            op.rows_in = res.rows_scanned;
            op.rows_out = res.pathways.len() as u64;
            op.elapsed_ns = t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
            trace.ops.push(op);
        }
        span.attr("rows_scanned", res.rows_scanned);
        span.attr("rows_joined", res.rows_joined);
        self.last_sql = res.sql;
        Ok(res.pathways)
    }

    fn fields(&mut self, uid: Uid, filter: TimeFilter) -> Option<(ClassId, Vec<Value>)> {
        // Probe each class table's id_ index; class tables are named after
        // the class, so the hit identifies the runtime class.
        let schema = self.schema.clone();
        for kind_root in [nepal_schema::NODE, nepal_schema::EDGE] {
            let is_node = kind_root == nepal_schema::NODE;
            let offset = nepal_relational::field_offset(is_node);
            for class in schema.descendants(kind_root) {
                let name = nepal_relational::table_name(&schema, class);
                let tables = match filter {
                    TimeFilter::Current => vec![name.clone()],
                    _ => vec![name.clone(), nepal_relational::history_name(&name)],
                };
                for tname in tables {
                    let Ok(t) = self.db.table_mut(&tname) else { continue };
                    let ncols = t.cols.len();
                    for rid in t.probe(0, &Value::Int(uid.0 as i64)) {
                        let row = &t.rows[rid as usize];
                        let from = match &row[ncols - 2] {
                            Value::Ts(t) => *t,
                            _ => continue,
                        };
                        let to = match &row[ncols - 1] {
                            Value::Ts(t) => *t,
                            _ => continue,
                        };
                        let ok = match filter {
                            TimeFilter::Current => to == nepal_graph::FOREVER,
                            TimeFilter::AsOf(at) => from <= at && at < to,
                            TimeFilter::Range(_, b) => from <= b.saturating_add(1),
                        };
                        if ok {
                            return Some((class, row[offset..ncols - 2].to_vec()));
                        }
                    }
                }
            }
        }
        None
    }

    fn estimate(&self, atom: &BoundAtom) -> f64 {
        if atom.unique_eq_pred(&self.schema).is_some() {
            return 1.0;
        }
        let rows = self.db.subtree_rows(&nepal_relational::table_name(&self.schema, atom.class)).max(1) as f64;
        apply_selectivity(rows, atom)
    }

    fn last_generated(&self) -> Vec<String> {
        self.last_sql.clone()
    }
}

// ---------------------------------------------------------------------
// Gremlin backend
// ---------------------------------------------------------------------

/// Backend over a Gremlin server (in-process or TCP transport).
pub struct GremlinBackend<T: nepal_gremlin::server::Transport> {
    pub client: GremlinClient<T>,
    schema: Arc<Schema>,
    /// Apply the ExtendBlock loop-unrolling optimization (§5.2).
    pub use_extend_block: bool,
    last_trips: u64,
}

impl<T: nepal_gremlin::server::Transport> GremlinBackend<T> {
    pub fn new(client: GremlinClient<T>, schema: Arc<Schema>) -> Self {
        GremlinBackend { client, schema, use_extend_block: true, last_trips: 0 }
    }

    /// Round trips used by the last evaluation.
    pub fn last_round_trips(&self) -> u64 {
        self.last_trips
    }
}

impl<T: nepal_gremlin::server::Transport + Sync> Backend for GremlinBackend<T> {
    fn kind(&self) -> &'static str {
        "gremlin"
    }

    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn eval(&mut self, plan: &RpePlan, filter: TimeFilter, seeds: Seeds, opts: &EvalOptions) -> Result<Vec<Pathway>> {
        self.eval_obs(plan, filter, seeds, opts, None, &SpanHandle::none())
    }

    fn eval_traced(
        &mut self,
        plan: &RpePlan,
        filter: TimeFilter,
        seeds: Seeds,
        opts: &EvalOptions,
        trace: &mut ExecTrace,
    ) -> Result<Vec<Pathway>> {
        self.eval_obs(plan, filter, seeds, opts, Some(trace), &SpanHandle::none())
    }

    fn eval_obs(
        &mut self,
        plan: &RpePlan,
        filter: TimeFilter,
        seeds: Seeds,
        opts: &EvalOptions,
        trace: Option<&mut ExecTrace>,
        span: &SpanHandle,
    ) -> Result<Vec<Pathway>> {
        let time = match filter {
            TimeFilter::Current => GremlinTime::Current,
            TimeFilter::AsOf(t) => GremlinTime::AsOf(t),
            TimeFilter::Range(_, _) => {
                return Err(NepalError::Unsupported(
                    "time-range queries require the relational or native backend (§5.3)".into(),
                ))
            }
        };
        let before = trace.is_some().then(|| self.client.wire_stats());
        let t0 = trace.is_some().then(Instant::now);
        let res = evaluate_gremlin_spanned(
            &mut self.client,
            &self.schema,
            plan,
            time,
            seeds,
            opts,
            self.use_extend_block,
            span,
        )
        .map_err(|e| NepalError::Backend(e.to_string()))?;
        self.last_trips = res.round_trips;
        span.attr("round_trips", res.round_trips);
        if let (Some(trace), Some(before), Some(t0)) = (trace, before, t0) {
            let after = self.client.wire_stats();
            trace.bump("gremlin_requests", after.requests - before.requests);
            trace.bump("gremlin_frames_sent", after.frames_sent - before.frames_sent);
            trace.bump("gremlin_frames_received", after.frames_received - before.frames_received);
            trace.bump("gremlin_bytes_sent", after.bytes_sent - before.bytes_sent);
            trace.bump("gremlin_bytes_received", after.bytes_received - before.bytes_received);
            trace.bump("gremlin_partial_batches", after.partial_batches - before.partial_batches);
            trace.bump("gremlin_round_trips", self.last_trips);
            let mut op = OpStats::new("Select+Extend", "Gremlin traversals over the wire");
            op.rows_in = after.requests - before.requests;
            op.rows_out = res.pathways.len() as u64;
            op.elapsed_ns = t0.elapsed().as_nanos() as u64;
            trace.ops.push(op);
        }
        Ok(res.pathways)
    }

    fn fields(&mut self, uid: Uid, _filter: TimeFilter) -> Option<(ClassId, Vec<Value>)> {
        use nepal_gremlin::{GStep, Json};
        let results = self.client.submit(&[GStep::V(vec![uid.0])]).ok()?;
        let results = if results.is_empty() { self.client.submit(&[GStep::E(vec![uid.0])]).ok()? } else { results };
        let j = results.first()?;
        let label = j.get("label")?.as_str()?;
        let class = self.schema.class_by_name(label)?;
        let mut out = Vec::new();
        let props = match j.get("properties") {
            Some(Json::Obj(m)) => m.clone(),
            _ => Default::default(),
        };
        for fd in self.schema.all_fields(class) {
            out.push(props.get(&fd.name).map(nepal_gremlin::json::json_to_value).unwrap_or(Value::Null));
        }
        Some((class, out))
    }

    fn estimate(&self, atom: &BoundAtom) -> f64 {
        // No remote statistics API: fall back to schema hints.
        nepal_rpe::HintEstimator.estimate(&self.schema, atom)
    }
}

// ---------------------------------------------------------------------
// Registry for data integration
// ---------------------------------------------------------------------

/// A named collection of backends: the data-integration layer. Each PATHS
/// variable may route to a different backend (`PATHS P USING legacy`), and
/// the engine joins the resulting pathway sets in the shim (§3.1: "shipping
/// partial results from one target database component to another").
pub struct BackendRegistry {
    backends: HashMap<String, Box<dyn Backend>>,
    default: String,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl BackendRegistry {
    pub fn new(default_name: impl Into<String>, backend: Box<dyn Backend>) -> Self {
        let default = default_name.into();
        let mut backends = HashMap::new();
        backends.insert(default.clone(), backend);
        BackendRegistry { backends, default, metrics: None }
    }

    pub fn add(&mut self, name: impl Into<String>, backend: Box<dyn Backend>) {
        let mut backend = backend;
        if let Some(m) = &self.metrics {
            backend.attach_metrics(m);
        }
        self.backends.insert(name.into(), backend);
    }

    /// Attach a metrics registry to every current and future backend.
    pub fn attach_metrics(&mut self, metrics: &Arc<MetricsRegistry>) {
        for b in self.backends.values_mut() {
            b.attach_metrics(metrics);
        }
        self.metrics = Some(metrics.clone());
    }

    pub fn default_name(&self) -> &str {
        &self.default
    }

    pub fn get_mut(&mut self, name: Option<&str>) -> Result<&mut Box<dyn Backend>> {
        let key = name.unwrap_or(&self.default);
        self.backends.get_mut(key).ok_or_else(|| NepalError::UnknownBackend(key.to_string()))
    }

    pub fn get(&self, name: Option<&str>) -> Result<&dyn Backend> {
        let key = name.unwrap_or(&self.default);
        self.backends.get(key).map(|b| b.as_ref()).ok_or_else(|| NepalError::UnknownBackend(key.to_string()))
    }
}
