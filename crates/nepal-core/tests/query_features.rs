//! Engine feature coverage beyond the paper's worked examples: comparison
//! operators, per-variable range scopes, result-processing details, limits,
//! and error reporting.

use std::sync::Arc;

use nepal_core::{engine_over, Engine, NepalError};
use nepal_graph::TemporalGraph;
use nepal_rpe::EvalOptions;
use nepal_schema::dsl::parse_schema;
use nepal_schema::{parse_ts, Schema, Value};

fn fixture() -> (Engine, Arc<TemporalGraph>) {
    let s: Arc<Schema> = Arc::new(
        parse_schema(
            r#"
            node VNF { vnf_id: int unique, name: str }
            node VM { vm_id: int unique }
            node Host { host_id: int unique }
            edge HostedOn { }
            "#,
        )
        .unwrap(),
    );
    let c = |n: &str| s.class_by_name(n).unwrap();
    let mut g = TemporalGraph::new(s.clone());
    let t0 = parse_ts("2017-02-01 00:00").unwrap();
    let h0 = g.insert_node(c("Host"), vec![Value::Int(0)], t0).unwrap();
    let h1 = g.insert_node(c("Host"), vec![Value::Int(1)], t0).unwrap();
    for i in 0..3i64 {
        let vnf = g.insert_node(c("VNF"), vec![Value::Int(i), Value::Str(format!("vnf-{i}"))], t0).unwrap();
        let vm = g.insert_node(c("VM"), vec![Value::Int(i)], t0).unwrap();
        g.insert_edge(c("HostedOn"), vnf, vm, vec![], t0).unwrap();
        g.insert_edge(c("HostedOn"), vm, if i == 0 { h0 } else { h1 }, vec![], t0).unwrap();
    }
    // VNF 2's placement is torn down mid-February.
    let vm2 = g.find_unique(c("VM"), 0, &Value::Int(2)).unwrap();
    g.delete(vm2, parse_ts("2017-02-15 00:00").unwrap()).unwrap();
    let graph = Arc::new(g);
    (engine_over(graph.clone()), graph)
}

#[test]
fn not_equal_comparisons() {
    let (mut eng, _g) = fixture();
    let r = eng
        .query(
            "Retrieve P, Q From PATHS P, PATHS Q \
             Where P MATCHES VNF(vnf_id=0)->[HostedOn()]{1,4}->Host() \
             And Q MATCHES VNF()->[HostedOn()]{1,4}->Host() \
             And target(P) != target(Q)",
        )
        .unwrap();
    // Q must land on a different host than P (host 1): only VNF 1 (VNF 2
    // was deleted).
    assert_eq!(r.rows.len(), 1);
}

#[test]
fn per_variable_range_scope_keeps_own_times() {
    let (mut eng, _g) = fixture();
    // A range-scoped variable reports its own maximal assertion intervals
    // even without a query-level AT.
    let r = eng
        .query(
            "Retrieve P From PATHS P(@'2017-02-10 00:00' : '2017-02-20 00:00') \
             Where P MATCHES VNF(vnf_id=2)->[HostedOn()]{1,4}->Host()",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    let times = r.rows[0].pathways[0].1.times.as_ref().expect("range-scoped var carries times");
    assert_eq!(times.intervals().len(), 1);
    assert_eq!(times.intervals()[0].to, parse_ts("2017-02-15 00:00").unwrap());
}

#[test]
fn select_mixes_literals_and_functions() {
    let (mut eng, _g) = fixture();
    let r = eng
        .query(
            "Select source(P).name, length(P), 42, 'tag' From PATHS P \
             Where P MATCHES VNF(vnf_id=0)->[HostedOn()]{1,4}->Host()",
        )
        .unwrap();
    assert_eq!(r.columns, vec!["source(P).name", "length(P)", "42", "'tag'"]);
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0].values[1], Value::Int(2));
    assert_eq!(r.rows[0].values[2], Value::Int(42));
    assert_eq!(r.rows[0].values[3], Value::Str("tag".into()));
}

#[test]
fn select_deduplicates_value_rows() {
    let (mut eng, _g) = fixture();
    // Both remaining placements end at SOME host; selecting a constant
    // collapses to one row.
    let r = eng.query("Select 1 From PATHS P Where P MATCHES VNF()->[HostedOn()]{1,4}->Host()").unwrap();
    assert_eq!(r.rows.len(), 1);
}

#[test]
fn eval_limit_is_respected() {
    let (mut eng, _g) = fixture();
    eng.eval_options = EvalOptions { limit: Some(1), ..Default::default() };
    let r = eng.query("Retrieve P From PATHS P Where P MATCHES VNF()->[HostedOn()]{1,4}->Host()").unwrap();
    assert_eq!(r.rows.len(), 1);
}

#[test]
fn error_paths_are_descriptive() {
    let (mut eng, _g) = fixture();
    // Unknown backend.
    assert!(matches!(
        eng.query("Retrieve P From PATHS P USING nodb Where P MATCHES VM()"),
        Err(NepalError::UnknownBackend(_))
    ));
    // Unknown field in a Select expression.
    assert!(matches!(
        eng.query("Select source(P).bogus From PATHS P Where P MATCHES VM(vm_id=0)"),
        Err(NepalError::UnknownField { .. })
    ));
    // Unknown class inside MATCHES surfaces the RPE error.
    assert!(matches!(eng.query("Retrieve P From PATHS P Where P MATCHES Nope()"), Err(NepalError::Rpe(_))));
    // Nullable RPE rejected at plan time (§3.3).
    assert!(matches!(eng.query("Retrieve P From PATHS P Where P MATCHES [VM()]{0,3}"), Err(NepalError::Rpe(_))));
}

#[test]
fn pathways_of_helper_deduplicates() {
    let (mut eng, _g) = fixture();
    let r = eng
        .query(
            "Retrieve P, Q From PATHS P, PATHS Q \
             Where P MATCHES VNF(vnf_id=0)->[HostedOn()]{1,4}->Host() \
             And Q MATCHES Host() \
             And target(P) != source(Q)",
        )
        .unwrap();
    // P is repeated across join rows but reported once.
    assert_eq!(r.pathways_of("P").len(), 1);
}

#[test]
fn field_comparison_between_variables() {
    let (mut eng, _g) = fixture();
    // Join on a field value rather than node identity.
    let r = eng
        .query(
            "Retrieve P, Q From PATHS P, PATHS Q \
             Where P MATCHES VNF(vnf_id=1) And Q MATCHES VM() \
             And source(P).vnf_id = source(Q).vm_id",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1);
}

#[test]
fn query_level_range_requires_joint_coexistence() {
    // §4: "When using AT, all results must coexist during the associated
    // time range, which is the maximal time range when all of the pathways
    // coexisted."
    let s: Arc<Schema> = Arc::new(
        parse_schema(
            r#"
            node VNF { vnf_id: int unique }
            node Host { host_id: int unique }
            edge HostedOn { }
            "#,
        )
        .unwrap(),
    );
    let c = |n: &str| s.class_by_name(n).unwrap();
    let mut g = TemporalGraph::new(s.clone());
    let t = |d: &str| parse_ts(d).unwrap();
    let h = g.insert_node(c("Host"), vec![Value::Int(0)], t("2017-02-01 00:00")).unwrap();
    // VNF 1 placed Feb 1 – Feb 20.
    let v1 = g.insert_node(c("VNF"), vec![Value::Int(1)], t("2017-02-01 00:00")).unwrap();
    let e1 = g.insert_edge(c("HostedOn"), v1, h, vec![], t("2017-02-01 00:00")).unwrap();
    g.delete(e1, t("2017-02-20 00:00")).unwrap();
    // VNF 2 placed Feb 10 – onwards: overlaps VNF 1 during Feb 10–20.
    let v2 = g.insert_node(c("VNF"), vec![Value::Int(2)], t("2017-02-10 00:00")).unwrap();
    g.insert_edge(c("HostedOn"), v2, h, vec![], t("2017-02-10 00:00")).unwrap();
    // VNF 3 placed only Feb 25 – Feb 28: never coexists with VNF 1.
    let v3 = g.insert_node(c("VNF"), vec![Value::Int(3)], t("2017-02-25 00:00")).unwrap();
    let e3 = g.insert_edge(c("HostedOn"), v3, h, vec![], t("2017-02-25 00:00")).unwrap();
    g.delete(e3, t("2017-02-28 00:00")).unwrap();
    let mut eng = engine_over(Arc::new(g));

    let run = |eng: &mut Engine, a: i64, b: i64| {
        eng.query(&format!(
            "AT '2017-02-01 00:00' : '2017-03-31 00:00' Retrieve P, Q \
             From PATHS P, PATHS Q \
             Where P MATCHES VNF(vnf_id={a})->HostedOn()->Host() \
             And Q MATCHES VNF(vnf_id={b})->HostedOn()->Host() \
             And target(P) = target(Q)",
        ))
        .unwrap()
    };
    // VNF1 + VNF2 coexisted Feb 10–20: one row with that joint range.
    let r12 = run(&mut eng, 1, 2);
    assert_eq!(r12.rows.len(), 1);
    let times = r12.rows[0].times.as_ref().unwrap();
    assert_eq!(times.intervals().len(), 1);
    assert_eq!(times.intervals()[0].from, t("2017-02-10 00:00"));
    assert_eq!(times.intervals()[0].to, t("2017-02-20 00:00"));
    // VNF1 + VNF3 never coexisted: join row dropped entirely.
    let r13 = run(&mut eng, 1, 3);
    assert!(r13.rows.is_empty());
    // Per-variable scopes instead: "there is no implicit temporal
    // relationship between the range variables" — the pair survives, each
    // side keeping its own maximal range.
    let r_pervar = eng
        .query(
            "Retrieve P, Q \
             From PATHS P(@'2017-02-01 00:00' : '2017-03-31 00:00'), \
                  PATHS Q(@'2017-02-01 00:00' : '2017-03-31 00:00') \
             Where P MATCHES VNF(vnf_id=1)->HostedOn()->Host() \
             And Q MATCHES VNF(vnf_id=3)->HostedOn()->Host() \
             And target(P) = target(Q)",
        )
        .unwrap();
    assert_eq!(r_pervar.rows.len(), 1);
    let p_times = &r_pervar.rows[0].pathways[0].1.times;
    let q_times = &r_pervar.rows[0].pathways[1].1.times;
    assert_ne!(p_times, q_times);
}
