//! Aggregation over pathway sets — §8 future work ("aggregation and data
//! exploration queries on pathway sets"), implemented as Select-level
//! aggregate functions.

use std::sync::Arc;

use nepal_core::{engine_over, Engine, NepalError};
use nepal_graph::TemporalGraph;
use nepal_schema::dsl::parse_schema;
use nepal_schema::{Schema, Value};

fn engine() -> Engine {
    let s: Arc<Schema> = Arc::new(
        parse_schema(
            r#"
            node VNF { vnf_id: int unique }
            node VM { vm_id: int unique }
            node Host { host_id: int unique }
            edge HostedOn { }
            "#,
        )
        .unwrap(),
    );
    let c = |n: &str| s.class_by_name(n).unwrap();
    let mut g = TemporalGraph::new(s.clone());
    let hosts: Vec<_> = (0..2).map(|i| g.insert_node(c("Host"), vec![Value::Int(i)], 0).unwrap()).collect();
    for i in 0..5i64 {
        let vnf = g.insert_node(c("VNF"), vec![Value::Int(i)], 0).unwrap();
        let vm = g.insert_node(c("VM"), vec![Value::Int(i)], 0).unwrap();
        g.insert_edge(c("HostedOn"), vnf, vm, vec![], 0).unwrap();
        // VNFs 0–2 land on host 0; 3–4 on host 1.
        let h = hosts[if i < 3 { 0 } else { 1 }];
        g.insert_edge(c("HostedOn"), vm, h, vec![], 0).unwrap();
    }
    engine_over(Arc::new(g))
}

const PLACEMENTS: &str = "P MATCHES VNF()->[HostedOn()]{1,4}->Host()";

#[test]
fn count_pathways() {
    let mut eng = engine();
    let r = eng.query(&format!("Select count(P) From PATHS P Where {PLACEMENTS}")).unwrap();
    assert_eq!(r.columns, vec!["count(P)"]);
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0].values[0], Value::Int(5));
}

#[test]
fn count_distinct_targets() {
    let mut eng = engine();
    let r = eng
        .query(&format!("Select count(distinct target(P)), count(target(P)) From PATHS P Where {PLACEMENTS}"))
        .unwrap();
    assert_eq!(r.rows[0].values[0], Value::Int(2)); // 2 hosts
    assert_eq!(r.rows[0].values[1], Value::Int(5)); // 5 pathways
}

#[test]
fn min_max_sum_avg_over_lengths_and_fields() {
    let mut eng = engine();
    let r = eng
        .query(&format!(
            "Select min(length(P)), max(length(P)), avg(length(P)), \
                    sum(source(P).vnf_id), max(target(P).host_id) \
             From PATHS P Where {PLACEMENTS}"
        ))
        .unwrap();
    let v = &r.rows[0].values;
    assert_eq!(v[0], Value::Int(2));
    assert_eq!(v[1], Value::Int(2));
    assert_eq!(v[2], Value::Float(2.0));
    assert_eq!(v[3], Value::Int(10)); // 0+1+2+3+4
    assert_eq!(v[4], Value::Int(1));
}

#[test]
fn aggregates_respect_joins() {
    let mut eng = engine();
    // Count placements landing on host 0 only.
    let r = eng
        .query(
            "Select count(P) From PATHS P, PATHS H \
             Where P MATCHES VNF()->[HostedOn()]{1,4}->Host() \
             And H MATCHES Host(host_id=0) \
             And target(P) = source(H)",
        )
        .unwrap();
    assert_eq!(r.rows[0].values[0], Value::Int(3));
}

#[test]
fn empty_result_aggregates() {
    let mut eng = engine();
    let r = eng.query("Select count(P), min(length(P)) From PATHS P Where P MATCHES VNF(vnf_id=99)").unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0].values[0], Value::Int(0));
    assert_eq!(r.rows[0].values[1], Value::Null);
}

#[test]
fn mixing_plain_and_aggregate_is_rejected() {
    let mut eng = engine();
    let err = eng.query(&format!("Select source(P), count(P) From PATHS P Where {PLACEMENTS}")).unwrap_err();
    assert!(matches!(err, NepalError::Unsupported(_)), "{err}");
    // Literals are allowed alongside aggregates.
    let r = eng.query(&format!("Select 'total', count(P) From PATHS P Where {PLACEMENTS}")).unwrap();
    assert_eq!(r.rows[0].values[0], Value::Str("total".into()));
    // sum over non-numeric is rejected.
    assert!(eng.query(&format!("Select sum(source(P)) From PATHS P Where {PLACEMENTS}")).is_ok());
    // node uids are ints — fine
}

#[test]
fn bare_variable_outside_count_is_rejected() {
    let mut eng = engine();
    assert!(eng.query(&format!("Select min(P) From PATHS P Where {PLACEMENTS}")).is_err());
}
