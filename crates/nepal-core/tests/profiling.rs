//! The observability layer: EXPLAIN ANALYZE parsing, query profiles,
//! engine metrics, and the slow-query log.

use std::sync::Arc;

use nepal_core::{engine_over, parse_query, parse_statement, Engine, Statement};
use nepal_graph::TemporalGraph;
use nepal_schema::dsl::parse_schema;
use nepal_schema::{parse_ts, Schema, Value};

fn fixture() -> (Engine, Arc<TemporalGraph>) {
    let s: Arc<Schema> = Arc::new(
        parse_schema(
            r#"
            node VNF { vnf_id: int unique, name: str }
            node VM { vm_id: int unique }
            node Host { host_id: int unique }
            edge HostedOn { }
            "#,
        )
        .unwrap(),
    );
    let c = |n: &str| s.class_by_name(n).unwrap();
    let mut g = TemporalGraph::new(s.clone());
    let t0 = parse_ts("2017-02-01 00:00").unwrap();
    let h0 = g.insert_node(c("Host"), vec![Value::Int(0)], t0).unwrap();
    let h1 = g.insert_node(c("Host"), vec![Value::Int(1)], t0).unwrap();
    for i in 0..4i64 {
        let vnf = g.insert_node(c("VNF"), vec![Value::Int(i), Value::Str(format!("vnf-{i}"))], t0).unwrap();
        let vm = g.insert_node(c("VM"), vec![Value::Int(i)], t0).unwrap();
        g.insert_edge(c("HostedOn"), vnf, vm, vec![], t0).unwrap();
        g.insert_edge(c("HostedOn"), vm, if i == 0 { h0 } else { h1 }, vec![], t0).unwrap();
    }
    let graph = Arc::new(g);
    (engine_over(graph.clone()), graph)
}

const Q: &str = "Retrieve P From PATHS P Where P MATCHES VNF()->[HostedOn()]{1,4}->Host()";

#[test]
fn explain_analyze_parser_round_trip() {
    let plain = parse_statement(Q).unwrap();
    assert_eq!(plain, Statement::Query(parse_query(Q).unwrap()));

    let ea = parse_statement(&format!("EXPLAIN ANALYZE {Q}")).unwrap();
    assert_eq!(ea, Statement::ExplainAnalyze(parse_query(Q).unwrap()));

    // Keywords are case-insensitive like the rest of the language.
    assert_eq!(
        parse_statement(&format!("explain analyze {Q}")).unwrap(),
        Statement::ExplainAnalyze(parse_query(Q).unwrap())
    );

    // EXPLAIN without ANALYZE is rejected (we always execute).
    let err = parse_statement(&format!("EXPLAIN {Q}")).unwrap_err();
    assert!(err.to_string().contains("ANALYZE"), "{err}");
}

#[test]
fn extend_rows_out_matches_pathway_count() {
    let (mut eng, _g) = fixture();
    // vnf_id is unique, so the anchor is the single VNF at the pathway
    // source: the backward half is trivial and every accepted forward half
    // is one pathway — Extend(fwd) rows_out == pathway count.
    let q = "Retrieve P From PATHS P \
             Where P MATCHES VNF(vnf_id=1)->[HostedOn()]{1,4}->Host()";
    let (result, profile) = eng.query_profiled(q).unwrap();
    assert_eq!(result.rows.len(), 1);
    let vp = &profile.vars[0];
    assert_eq!(vp.pathways, 1);
    assert_eq!(vp.trace.rows_out_of("Extend(fwd)"), result.rows.len() as u64);
    // The Select probed the unique index: one candidate in, one out.
    let select = vp.trace.ops.iter().find(|o| o.op == "Select").expect("Select op recorded");
    assert_eq!(select.rows_in, 1);
    assert_eq!(select.rows_out, 1);
}

#[test]
fn profiled_and_plain_execution_agree() {
    let (mut eng, _g) = fixture();
    let plain = eng.query(Q).unwrap();
    let (profiled, profile) = eng.query_profiled(Q).unwrap();
    assert_eq!(plain.rows.len(), profiled.rows.len());
    assert_eq!(profile.result_rows, profiled.rows.len() as u64);
    assert!(profile.total_ns > 0);
    assert_eq!(profile.vars.len(), 1);
    assert_eq!(profile.vars[0].backend, "native");
}

#[test]
fn profile_reports_anchor_candidates_with_costs_and_winner() {
    let (mut eng, _g) = fixture();
    let (_, profile) = eng.query_profiled(Q).unwrap();
    let anchors = &profile.vars[0].anchors;
    assert!(anchors.len() >= 2, "both VNF() and Host() are candidate anchors");
    assert_eq!(anchors.iter().filter(|a| a.chosen).count(), 1);
    // Candidates come cheapest-first and the winner is the cheapest.
    let chosen = anchors.iter().find(|a| a.chosen).unwrap();
    assert!(anchors.iter().all(|a| chosen.cost <= a.cost));
    // The rendered profile names the winner and the alternatives.
    let text = profile.render();
    assert!(text.contains("<- chosen"), "{text}");
    assert!(text.contains("anchor candidates considered"), "{text}");
    assert!(text.contains("rows_out="), "{text}");
}

#[test]
fn join_steps_and_imported_seeds_are_recorded() {
    let (mut eng, _g) = fixture();
    let q = "Retrieve P, Q From PATHS P, PATHS Q \
             Where P MATCHES VNF(vnf_id=1)->HostedOn()->VM() \
             And Q MATCHES VM()->HostedOn()->Host() \
             And target(P) = source(Q)";
    let (result, profile) = eng.query_profiled(q).unwrap();
    assert_eq!(result.rows.len(), 1);
    assert_eq!(profile.joins.len(), 2, "one join step per variable");
    let last = profile.joins.last().unwrap();
    assert_eq!(last.emitted, 1);
    // Q's anchor (VM()) costs more than the single seed imported from P,
    // so Q is evaluated from imported seeds (§3.4 anchor import).
    let q_var = profile.vars.iter().find(|v| v.var == "Q").unwrap();
    assert_eq!(q_var.imported_seeds, Some(1));
}

#[test]
fn metrics_and_slow_log_record_queries() {
    let (mut eng, _g) = fixture();
    eng.slow_log.set_threshold_ns(0); // record everything
    eng.query(Q).unwrap();
    assert!(eng.query("Retrieve P From").is_err());
    let text = eng.metrics.render_prometheus();
    assert!(text.contains("nepal_queries_total 2"), "{text}");
    assert!(text.contains("nepal_query_errors_total 1"), "{text}");
    assert!(text.contains("nepal_query_duration_ns_count 1"), "{text}");
    assert_eq!(eng.slow_log.len(), 1);
    assert_eq!(eng.slow_log.entries()[0].query, Q);
}
