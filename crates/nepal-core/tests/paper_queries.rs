//! End-to-end execution of every query example in §3.4 and §4 of the
//! paper, against a layered topology shaped like Fig. 2.

use std::sync::Arc;

use nepal_core::{engine_over, Engine, NepalError};
use nepal_graph::{TemporalGraph, Uid};
use nepal_schema::dsl::parse_schema;
use nepal_schema::{Schema, Value};

const SCHEMA: &str = r#"
    node VNF { id: int unique, name: str optional }
    node DNS : VNF { }
    node Firewall : VNF { }
    node VFC { id2: int unique }
    node Container { status: str optional }
    node VM : Container { id3: int unique, name: str optional }
    node Docker : Container { id4: int unique }
    node Host { id5: int unique }
    node Switch { id6: int unique }
    edge Vertical { }
    edge ComposedOf : Vertical { }
    edge HostedOn : Vertical { }
    edge ConnectsTo { }
"#;

struct Fx {
    g: Arc<TemporalGraph>,
    vnf123: Uid,
    vnf234: Uid,
    host1: Uid,
    host2: Uid,
    vm_a: Uid,
    vm_free: Uid,
}

/// VNF(123) → VFC(11) → VM(21 "vm-a") → Host(23245)
/// VNF(234) → VFC(12) → Docker(22)    → Host(34356)
/// Host(23245) ↔ Switch(91) ↔ Host(34356)
/// Plus one free VM(23) hosting nothing.
fn fixture() -> Fx {
    let s: Arc<Schema> = Arc::new(parse_schema(SCHEMA).unwrap());
    let c = |n: &str| s.class_by_name(n).unwrap();
    let mut g = TemporalGraph::new(s.clone());
    let t = nepal_schema::parse_ts("2017-02-01 00:00").unwrap();
    let vnf123 = g.insert_node(c("DNS"), vec![Value::Int(123), Value::Str("dns-east".into())], t).unwrap();
    let vnf234 = g.insert_node(c("Firewall"), vec![Value::Int(234), Value::Str("fw-west".into())], t).unwrap();
    let vfc1 = g.insert_node(c("VFC"), vec![Value::Int(11)], t).unwrap();
    let vfc2 = g.insert_node(c("VFC"), vec![Value::Int(12)], t).unwrap();
    let vm_a =
        g.insert_node(c("VM"), vec![Value::Str("Green".into()), Value::Int(21), Value::Str("vm-a".into())], t).unwrap();
    let dk = g.insert_node(c("Docker"), vec![Value::Str("Green".into()), Value::Int(22)], t).unwrap();
    let vm_free = g
        .insert_node(c("VM"), vec![Value::Str("Green".into()), Value::Int(23), Value::Str("vm-free".into())], t)
        .unwrap();
    let host1 = g.insert_node(c("Host"), vec![Value::Int(23245)], t).unwrap();
    let host2 = g.insert_node(c("Host"), vec![Value::Int(34356)], t).unwrap();
    let sw = g.insert_node(c("Switch"), vec![Value::Int(91)], t).unwrap();
    let e = |g: &mut TemporalGraph, cls: &str, a: Uid, b: Uid| g.insert_edge(c(cls), a, b, vec![], t).unwrap();
    e(&mut g, "ComposedOf", vnf123, vfc1);
    e(&mut g, "ComposedOf", vnf234, vfc2);
    e(&mut g, "HostedOn", vfc1, vm_a);
    e(&mut g, "HostedOn", vfc2, dk);
    e(&mut g, "HostedOn", vm_a, host1);
    e(&mut g, "HostedOn", dk, host2);
    e(&mut g, "HostedOn", vm_free, host2);
    e(&mut g, "ConnectsTo", host1, sw);
    e(&mut g, "ConnectsTo", sw, host1);
    e(&mut g, "ConnectsTo", host2, sw);
    e(&mut g, "ConnectsTo", sw, host2);
    Fx { g: Arc::new(g), vnf123, vnf234, host1, host2, vm_a, vm_free }
}

fn engine(fx: &Fx) -> Engine {
    engine_over(fx.g.clone())
}

#[test]
fn example_1_explicit_layers() {
    let fx = fixture();
    let r = engine(&fx).query("Retrieve P From PATHS P WHERE P MATCHES VNF()->VFC()->VM()->Host(id5=23245)").unwrap();
    assert_eq!(r.rows.len(), 1);
    let (_, p) = &r.rows[0].pathways[0];
    assert_eq!(p.source(), fx.vnf123);
    assert_eq!(p.target(), fx.host1);
}

#[test]
fn example_2_generic_vertical() {
    let fx = fixture();
    let r =
        engine(&fx).query("Retrieve P From PATHS P WHERE P MATCHES VNF()->[Vertical()]{1,6}->Host(id5=23245)").unwrap();
    assert!(r.rows.iter().any(|row| row.pathways[0].1.source() == fx.vnf123));
    assert!(!r.rows.iter().any(|row| row.pathways[0].1.source() == fx.vnf234));
}

#[test]
fn example_3_join_finds_physical_path() {
    // "the following (simplified) query finds the physical communication
    // path between the host that implements the VNF with id 123 and the
    // VNF with id 234" — Phys imports its anchor from D1/D2.
    let fx = fixture();
    let r = engine(&fx)
        .query(
            "Retrieve Phys \
             From PATHS D1, PATHS D2, PATHS Phys \
             Where D1 MATCHES VNF(id=123)->Vertical(){1,6}->Host() \
             And D2 MATCHES VNF(id=234)->Vertical(){1,6}->Host() \
             And Phys MATCHES ConnectsTo(){1,8} \
             And source(Phys)=target(D1) \
             And target(Phys)=target(D2)",
        )
        .unwrap();
    assert!(!r.rows.is_empty());
    for row in &r.rows {
        let phys = &row.pathways.iter().find(|(v, _)| v == "Phys").unwrap().1;
        assert_eq!(phys.source(), fx.host1);
        assert_eq!(phys.target(), fx.host2);
    }
}

#[test]
fn example_4_not_exists_finds_free_vms() {
    // "the following query returns all VMs that do not host a VFC or VNF".
    let fx = fixture();
    let r = engine(&fx)
        .query(
            "Retrieve V From PATHS V Where V MATCHES VM() \
             And NOT EXISTS( \
               Retrieve P from PATHS P \
               Where P MATCHES (VNF()|VFC())->[HostedOn()]{1,5}->VM() \
               And target(V) = target(P) )",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0].pathways[0].1.source(), fx.vm_free);
    // Positive EXISTS returns the complement.
    let r2 = engine(&fx)
        .query(
            "Retrieve V From PATHS V Where V MATCHES VM() \
             And EXISTS( \
               Retrieve P from PATHS P \
               Where P MATCHES (VNF()|VFC())->[HostedOn()]{1,5}->VM() \
               And target(V) = target(P) )",
        )
        .unwrap();
    assert_eq!(r2.rows.len(), 1);
    assert_eq!(r2.rows[0].pathways[0].1.source(), fx.vm_a);
}

#[test]
fn example_5_select_post_processing() {
    // "Select source(V).name, source(V).id From PATHS V".
    let fx = fixture();
    let r = engine(&fx)
        .query(
            "Select source(V).name, source(V).id3 From PATHS V Where V MATCHES VM() \
             And NOT EXISTS( \
               Retrieve P from PATHS P \
               Where P MATCHES (VNF()|VFC())->[HostedOn()]{1,5}->VM() \
               And target(V) = target(P) )",
        )
        .unwrap();
    assert_eq!(r.columns, vec!["source(V).name", "source(V).id3"]);
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0].values[0], Value::Str("vm-free".into()));
    assert_eq!(r.rows[0].values[1], Value::Int(23));
    let _ = fx.vm_free;
}

// ---------------------------------------------------------------------
// §4 temporal examples
// ---------------------------------------------------------------------

fn churn_fixture() -> Fx {
    // vm_a (and with it VNF123's vertical path) is deleted at Feb 10.
    let fx = fixture();
    let mut g = Arc::try_unwrap(fx.g).ok().expect("sole owner");
    g.delete(fx.vm_a, nepal_schema::parse_ts("2017-02-10 00:00").unwrap()).unwrap();
    Fx { g: Arc::new(g), ..fx }
}

#[test]
fn at_time_point_query() {
    let fx = churn_fixture();
    // Current snapshot: no path.
    let r = engine(&fx)
        .query("Select source(P) From PATHS P Where P MATCHES VNF()->[Vertical()]{1,6}->Host(id5=23245)")
        .unwrap();
    assert!(r.rows.is_empty());
    // AT Feb 5: the path exists.
    let r = engine(&fx)
        .query(
            "AT '2017-02-05 10:00:00' Select source(P) From PATHS P \
             Where P MATCHES VNF()->[Vertical()]{1,6}->Host(id5=23245)",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0].values[0], Value::Int(fx.vnf123.0 as i64));
}

#[test]
fn per_variable_time_points() {
    // §4: VNFs hosted on host 23245 at t1 AND host 34356 at t2 — here we
    // check the join machinery with per-variable @ scopes.
    let fx = churn_fixture();
    let r = engine(&fx)
        .query(
            "Select source(P) From PATHS P(@'2017-02-05 10:00'), PATHS Q(@'2017-02-05 11:00') \
             Where P MATCHES VNF()->[Vertical()]{1,6}->Host(id5=23245) \
             And Q MATCHES VNF()->[Vertical()]{1,6}->Host(id5=34356) \
             And source(P) = source(Q)",
        )
        .unwrap();
    // VNF123 is on host1 only; VNF234 on host2 only → empty join.
    assert!(r.rows.is_empty());
    // Same VNF on the same host at two times → non-empty.
    let r2 = engine(&fx)
        .query(
            "Select source(P) From PATHS P(@'2017-02-05 10:00'), PATHS Q(@'2017-02-09 11:00') \
             Where P MATCHES VNF()->[Vertical()]{1,6}->Host(id5=23245) \
             And Q MATCHES VNF()->[Vertical()]{1,6}->Host(id5=23245) \
             And source(P) = source(Q)",
        )
        .unwrap();
    assert_eq!(r2.rows.len(), 1);
}

#[test]
fn time_range_query_reports_maximal_ranges() {
    let fx = churn_fixture();
    // Window Feb 9–11: the pathway is reported with its MAXIMAL range
    // (from Feb 1, before the window, until the Feb 10 delete).
    let r = engine(&fx)
        .query(
            "AT '2017-02-09 00:00' : '2017-02-11 00:00' Retrieve P From PATHS P \
             Where P MATCHES VNF()->[Vertical()]{1,6}->Host(id5=23245)",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    let times = r.rows[0].times.as_ref().unwrap();
    assert_eq!(times.intervals().len(), 1);
    assert_eq!(times.intervals()[0].from, nepal_schema::parse_ts("2017-02-01 00:00").unwrap());
    assert_eq!(times.intervals()[0].to, nepal_schema::parse_ts("2017-02-10 00:00").unwrap());
    // A window after the delete is empty.
    let r2 = engine(&fx)
        .query(
            "AT '2017-02-11 00:00' : '2017-02-12 00:00' Retrieve P From PATHS P \
             Where P MATCHES VNF()->[Vertical()]{1,6}->Host(id5=23245)",
        )
        .unwrap();
    assert!(r2.rows.is_empty());
}

#[test]
fn temporal_aggregates() {
    let fx = churn_fixture();
    let feb1 = nepal_schema::parse_ts("2017-02-01 00:00").unwrap();
    let feb10 = nepal_schema::parse_ts("2017-02-10 00:00").unwrap();
    let r = engine(&fx)
        .query(
            "First Time When Exists From PATHS P \
             Where P MATCHES VNF()->[Vertical()]{1,6}->Host(id5=23245)",
        )
        .unwrap();
    assert_eq!(r.rows[0].values[0], Value::Ts(feb1));
    let r = engine(&fx)
        .query(
            "Last Time When Exists From PATHS P \
             Where P MATCHES VNF()->[Vertical()]{1,6}->Host(id5=23245)",
        )
        .unwrap();
    assert_eq!(r.rows[0].values[0], Value::Ts(feb10));
    let r = engine(&fx)
        .query(
            "When Exists From PATHS P \
             Where P MATCHES VNF()->[Vertical()]{1,6}->Host(id5=23245)",
        )
        .unwrap();
    let times = r.rows[0].times.as_ref().unwrap();
    assert_eq!(times.intervals(), &[nepal_graph::Interval::new(feb1, feb10)]);
    // Still-existing pathway: Last Time returns Null ("still exists").
    let r = engine(&fx)
        .query(
            "Last Time When Exists From PATHS P \
             Where P MATCHES VNF()->[Vertical()]{1,6}->Host(id5=34356)",
        )
        .unwrap();
    assert_eq!(r.rows[0].values[0], Value::Null);
    // Never-existing pathway: no rows.
    let r = engine(&fx).query("First Time When Exists From PATHS P Where P MATCHES VNF(id=999)").unwrap();
    assert!(r.rows.is_empty());
}

#[test]
fn shared_fate_query() {
    // §2.3.2 "Calculating shared fate": everything affected if host1 fails.
    let fx = fixture();
    let r = engine(&fx)
        .query(
            "Select source(P) From PATHS P \
             Where P MATCHES VNF()->[Vertical()]{1,6}->Host(id5=23245)",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0].values[0], Value::Int(fx.vnf123.0 as i64));
}

#[test]
fn length_function_and_literals() {
    let fx = fixture();
    let r = engine(&fx)
        .query(
            "Select length(P) From PATHS P \
             Where P MATCHES Host(id5=23245)->[ConnectsTo()]{1,4}->Host(id5=34356) \
             And length(P) = 2",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0].values[0], Value::Int(2));
}

#[test]
fn unsupported_range_on_gremlin_backend_is_clear_error() {
    use nepal_core::{BackendRegistry, GremlinBackend};
    use nepal_gremlin::{property_graph_from, serve_in_process, GremlinClient};
    use parking_lot::RwLock;

    let fx = fixture();
    let pg = Arc::new(RwLock::new(property_graph_from(&fx.g)));
    let client = GremlinClient::new(serve_in_process(pg));
    let backend = GremlinBackend::new(client, fx.g.schema().clone());
    let mut eng = Engine::new(BackendRegistry::new("gremlin", Box::new(backend)));
    let err = eng
        .query(
            "AT '2017-02-01 00:00' : '2017-02-02 00:00' Retrieve P From PATHS P \
             Where P MATCHES VM()",
        )
        .unwrap_err();
    assert!(matches!(err, NepalError::Unsupported(_)));
}

#[test]
fn cross_backend_federation_join() {
    // Data integration: D1 from the native store, Phys from a Gremlin
    // server — joined in the shim layer.
    use nepal_core::{BackendRegistry, GremlinBackend, NativeBackend};
    use nepal_gremlin::{property_graph_from, serve_in_process, GremlinClient};
    use parking_lot::RwLock;

    let fx = fixture();
    let pg = Arc::new(RwLock::new(property_graph_from(&fx.g)));
    let client = GremlinClient::new(serve_in_process(pg));
    let gremlin = GremlinBackend::new(client, fx.g.schema().clone());
    let mut registry = BackendRegistry::new("native", Box::new(NativeBackend::new(fx.g.clone())));
    registry.add("inventory2", Box::new(gremlin));
    let mut eng = Engine::new(registry);
    let r = eng
        .query(
            "Retrieve Phys \
             From PATHS D1, PATHS Phys USING inventory2 \
             Where D1 MATCHES VNF(id=123)->Vertical(){1,6}->Host() \
             And Phys MATCHES ConnectsTo(){1,4} \
             And source(Phys)=target(D1)",
        )
        .unwrap();
    assert!(!r.rows.is_empty());
    for row in &r.rows {
        let phys = &row.pathways.iter().find(|(v, _)| v == "Phys").unwrap().1;
        assert_eq!(phys.source(), fx.host1);
    }
}

#[test]
fn relational_backend_runs_full_queries_and_logs_sql() {
    use nepal_core::{BackendRegistry, RelationalBackend};
    let fx = churn_fixture();
    let backend = RelationalBackend::from_graph(&fx.g).unwrap();
    let mut eng = Engine::new(BackendRegistry::new("pg", Box::new(backend)));
    let r = eng
        .query(
            "AT '2017-02-09 00:00' : '2017-02-11 00:00' Retrieve P From PATHS P \
             Where P MATCHES VNF()->[Vertical()]{1,6}->Host(id5=23245)",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    let times = r.rows[0].times.as_ref().unwrap();
    assert_eq!(times.intervals().len(), 1);
    let sql = eng.registry.get(Some("pg")).unwrap().last_generated();
    assert!(sql.iter().any(|s| s.contains("create TEMP table")));
}
