//! Named pathway views (§3.4): "The source is an unmaterialized view of
//! pathways … the view PATHS is the set of all pathways. Additional views
//! can be defined."

use std::sync::Arc;

use nepal_core::{engine_over, NepalError};
use nepal_graph::TemporalGraph;
use nepal_schema::dsl::parse_schema;
use nepal_schema::{Schema, Value};

fn engine() -> (nepal_core::Engine, Arc<TemporalGraph>) {
    let s: Arc<Schema> = Arc::new(
        parse_schema(
            r#"
            node VNF { vnf_id: int unique, status: str }
            node VM { vm_id: int unique }
            node Host { host_id: int unique }
            edge HostedOn { }
            "#,
        )
        .unwrap(),
    );
    let c = |n: &str| s.class_by_name(n).unwrap();
    let mut g = TemporalGraph::new(s.clone());
    let hosts: Vec<_> = (0..2).map(|i| g.insert_node(c("Host"), vec![Value::Int(i)], 0).unwrap()).collect();
    for i in 0..4 {
        let status = if i % 2 == 0 { "Active" } else { "Down" };
        let vnf = g.insert_node(c("VNF"), vec![Value::Int(i), Value::Str(status.into())], 0).unwrap();
        let vm = g.insert_node(c("VM"), vec![Value::Int(i)], 0).unwrap();
        g.insert_edge(c("HostedOn"), vnf, vm, vec![], 0).unwrap();
        g.insert_edge(c("HostedOn"), vm, hosts[(i % 2) as usize], vec![], 0).unwrap();
    }
    let graph = Arc::new(g);
    (engine_over(graph.clone()), graph)
}

#[test]
fn view_supplies_pathways_without_matches() {
    let (mut eng, _g) = engine();
    eng.define_view(
        "active_placements",
        "Retrieve P From PATHS P Where P MATCHES VNF(status='Active')->[HostedOn()]{1,4}->Host()",
    )
    .unwrap();
    // Range over the view — no MATCHES needed on V.
    let r = eng.query("Retrieve V From active_placements V").unwrap();
    assert_eq!(r.rows.len(), 2); // VNFs 0 and 2 are Active
                                 // Views compose with joins and post-processing.
    let r2 = eng
        .query(
            "Select source(V).vnf_id From active_placements V, PATHS H \
             Where H MATCHES Host(host_id=0) And target(V) = source(H)",
        )
        .unwrap();
    // Active VNFs 0 and 2 both land on host 0 (i % 2).
    let mut got: Vec<Value> = r2.rows.iter().map(|r| r.values[0].clone()).collect();
    got.sort();
    assert_eq!(got, vec![Value::Int(0), Value::Int(2)]);
}

#[test]
fn views_can_stack() {
    let (mut eng, _g) = engine();
    eng.define_view("placements", "Retrieve P From PATHS P Where P MATCHES VNF()->[HostedOn()]{1,4}->Host()").unwrap();
    eng.define_view("all_placements", "Retrieve V From placements V").unwrap();
    let r = eng.query("Retrieve X From all_placements X").unwrap();
    assert_eq!(r.rows.len(), 4);
}

#[test]
fn view_errors() {
    let (mut eng, _g) = engine();
    // Unknown view.
    assert!(eng.query("Retrieve V From nope V").is_err());
    // A view must be a Retrieve query.
    assert!(matches!(
        eng.define_view("bad", "Select source(P) From PATHS P Where P MATCHES VM()"),
        Err(NepalError::Unsupported(_))
    ));
    // PATHS variables still require MATCHES.
    assert!(matches!(eng.query("Retrieve V From PATHS V"), Err(NepalError::NoMatches(_))));
    // Recursive views terminate with an error rather than hanging.
    eng.define_view("a", "Retrieve V From b V").unwrap();
    eng.define_view("b", "Retrieve V From a V").unwrap();
    assert!(matches!(eng.query("Retrieve V From a V"), Err(NepalError::Unsupported(_))));
}
