//! Gremlin backend equivalence: evaluating an RPE plan through the wire
//! protocol against the mock Gremlin server must return the same pathway
//! sets as the native evaluator (current snapshot, and as-of for liveness
//! churn), and the ExtendBlock fast path must match the generic path while
//! using fewer round trips.

use std::sync::Arc;

use nepal_graph::{GraphView, TemporalGraph, TimeFilter, Uid};
use nepal_gremlin::{
    evaluate_gremlin, property_graph_from, serve_in_process, GremlinClient, GremlinServer, GremlinTime,
};
use nepal_rpe::{evaluate, parse_rpe, plan_rpe, EvalOptions, GraphEstimator, Pathway, Seeds};
use nepal_schema::dsl::parse_schema;
use nepal_schema::{Schema, Value};
use parking_lot::RwLock;

const SCHEMA: &str = r#"
    node VNF { vnf_id: int unique }
    node VFC { vfc_id: int unique }
    node VM { vm_id: int unique, status: str }
    node Host { host_id: int unique }
    edge Vertical { }
    edge ComposedOf : Vertical { }
    edge HostedOn : Vertical { }
    edge Connects { }
"#;

fn random_graph(seed: u64, n: usize) -> TemporalGraph {
    let s: Arc<Schema> = Arc::new(parse_schema(SCHEMA).unwrap());
    let mut g = TemporalGraph::new(s.clone());
    let c = |x: &str| s.class_by_name(x).unwrap();
    let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(99);
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut vnfs = vec![];
    let mut vfcs = vec![];
    let mut vms = vec![];
    let mut hosts = vec![];
    for i in 0..n {
        vnfs.push(g.insert_node(c("VNF"), vec![Value::Int(i as i64)], 0).unwrap());
        vfcs.push(g.insert_node(c("VFC"), vec![Value::Int(i as i64)], 0).unwrap());
        let st = if rng() % 2 == 0 { "Green" } else { "Red" };
        vms.push(g.insert_node(c("VM"), vec![Value::Int(i as i64), Value::Str(st.into())], 0).unwrap());
        hosts.push(g.insert_node(c("Host"), vec![Value::Int(i as i64)], 0).unwrap());
    }
    let mut edges = vec![];
    let pick = |v: &Vec<Uid>, r: u64| v[(r as usize) % v.len()];
    for i in 0..n {
        edges.push(g.insert_edge(c("ComposedOf"), vnfs[i], pick(&vfcs, rng()), vec![], 1).unwrap());
        edges.push(g.insert_edge(c("HostedOn"), vfcs[i], pick(&vms, rng()), vec![], 1).unwrap());
        edges.push(g.insert_edge(c("HostedOn"), vms[i], pick(&hosts, rng()), vec![], 1).unwrap());
        let (a, b) = (pick(&hosts, rng()), pick(&hosts, rng()));
        if a != b {
            edges.push(g.insert_edge(c("Connects"), a, b, vec![], 1).unwrap());
        }
    }
    // Liveness churn only (the Gremlin backend stores latest field values).
    for (k, e) in edges.iter().enumerate() {
        if k % 4 == 0 {
            let _ = g.delete(*e, 100 + (rng() % 50) as i64);
        }
    }
    g
}

fn key(paths: &[Pathway]) -> Vec<Vec<u64>> {
    let mut v: Vec<Vec<u64>> = paths.iter().map(|p| p.elems.iter().map(|u| u.0).collect()).collect();
    v.sort();
    v
}

const QUERIES: &[&str] = &[
    "VNF(vnf_id=2)->[Vertical()]{1,6}->Host()",
    "VNF()->VFC()->VM()->Host(host_id=3)",
    "VM(status='Green')->HostedOn()->Host()",
    "Host(host_id=0)->[Connects()]{1,3}->Host()",
    "ComposedOf()->HostedOn()",
    "(VNF(vnf_id=1)|VFC(vfc_id=1))",
];

fn check(g: &TemporalGraph, q: &str, native_filter: TimeFilter, gtime: GremlinTime, block: bool) {
    let plan = plan_rpe(g.schema(), &parse_rpe(q).unwrap(), &GraphEstimator { graph: g }).unwrap();
    let view = GraphView::new(g, native_filter);
    let native = evaluate(&view, &plan, Seeds::Anchor, &EvalOptions::default());
    let pg = Arc::new(RwLock::new(property_graph_from(g)));
    let mut client = GremlinClient::new(serve_in_process(pg));
    let res =
        evaluate_gremlin(&mut client, g.schema(), &plan, gtime, Seeds::Anchor, &EvalOptions::default(), block).unwrap();
    assert_eq!(
        key(&native),
        key(&res.pathways),
        "gremlin mismatch for `{q}` (block={block}): native {} vs gremlin {}",
        native.len(),
        res.pathways.len()
    );
}

#[test]
fn current_snapshot_equivalence() {
    for seed in 0..3u64 {
        let g = random_graph(seed, 8);
        for q in QUERIES {
            check(&g, q, TimeFilter::Current, GremlinTime::Current, false);
        }
    }
}

#[test]
fn as_of_liveness_equivalence() {
    for seed in 0..3u64 {
        let g = random_graph(seed, 8);
        for q in QUERIES {
            for t in [50, 120, 200] {
                check(&g, q, TimeFilter::AsOf(t), GremlinTime::AsOf(t), false);
            }
        }
    }
}

#[test]
fn extend_block_matches_generic_path() {
    for seed in 0..3u64 {
        let g = random_graph(seed, 10);
        for q in [
            "VNF(vnf_id=2)->[Vertical()]{1,6}->Host()",
            "VNF()->[Vertical()]{1,6}->Host(host_id=3)",
            "Host(host_id=0)->[Connects()]{1,3}->Host()",
        ] {
            check(&g, q, TimeFilter::Current, GremlinTime::Current, true);
        }
    }
}

#[test]
fn extend_block_reduces_round_trips() {
    let g = random_graph(5, 12);
    let q = "VNF(vnf_id=2)->[Vertical()]{1,6}->Host()";
    let plan = plan_rpe(g.schema(), &parse_rpe(q).unwrap(), &GraphEstimator { graph: &g }).unwrap();
    let pg = Arc::new(RwLock::new(property_graph_from(&g)));
    let mut c1 = GremlinClient::new(serve_in_process(pg.clone()));
    let with_block = evaluate_gremlin(
        &mut c1,
        g.schema(),
        &plan,
        GremlinTime::Current,
        Seeds::Anchor,
        &EvalOptions::default(),
        true,
    )
    .unwrap();
    let mut c2 = GremlinClient::new(serve_in_process(pg));
    let without = evaluate_gremlin(
        &mut c2,
        g.schema(),
        &plan,
        GremlinTime::Current,
        Seeds::Anchor,
        &EvalOptions::default(),
        false,
    )
    .unwrap();
    assert_eq!(key(&with_block.pathways), key(&without.pathways));
    assert_eq!(with_block.round_trips, 2, "ExtendBlock = select + one repeat traversal");
    assert!(
        without.round_trips > with_block.round_trips,
        "generic path should need more round trips ({} vs {})",
        without.round_trips,
        with_block.round_trips
    );
}

#[test]
fn seeded_evaluation_over_tcp() {
    let g = random_graph(3, 8);
    let plan = plan_rpe(g.schema(), &parse_rpe("Connects(){1,3}").unwrap(), &GraphEstimator { graph: &g }).unwrap();
    let hosts: Vec<Uid> = GraphView::new(&g, TimeFilter::Current).scan_class(g.schema().class_by_name("Host").unwrap());
    let seeds = [hosts[0]];
    let view = GraphView::new(&g, TimeFilter::Current);
    let native = evaluate(&view, &plan, Seeds::Sources(&seeds), &EvalOptions::default());

    let pg = Arc::new(RwLock::new(property_graph_from(&g)));
    let server = GremlinServer::start(pg).unwrap();
    let mut client = GremlinClient::new(server.connect().unwrap());
    let res = evaluate_gremlin(
        &mut client,
        g.schema(),
        &plan,
        GremlinTime::Current,
        Seeds::Sources(&seeds),
        &EvalOptions::default(),
        false,
    )
    .unwrap();
    assert_eq!(key(&native), key(&res.pathways));

    let native_t = evaluate(&view, &plan, Seeds::Targets(&seeds), &EvalOptions::default());
    let res_t = evaluate_gremlin(
        &mut client,
        g.schema(),
        &plan,
        GremlinTime::Current,
        Seeds::Targets(&seeds),
        &EvalOptions::default(),
        false,
    )
    .unwrap();
    assert_eq!(key(&native_t), key(&res_t.pathways));
}

#[test]
fn textual_eval_op_over_the_wire() {
    // The server accepts the console-style `eval` op with a textual
    // traversal and returns the same answer as the bytecode path.
    let g = random_graph(1, 6);
    let pg = Arc::new(RwLock::new(property_graph_from(&g)));
    let server = GremlinServer::start(pg).unwrap();
    let mut client = GremlinClient::new(server.connect().unwrap());
    let via_text = client.submit_text("g.V().hasLabel('Node:VM').id()").unwrap();
    let via_bytecode = client
        .submit(&[
            nepal_gremlin::GStep::V(vec![]),
            nepal_gremlin::GStep::HasLabelPrefix("Node:VM".into()),
            nepal_gremlin::GStep::Id,
        ])
        .unwrap();
    assert_eq!(via_text, via_bytecode);
    assert!(!via_text.is_empty());
    // Parse errors come back as server errors without killing the session.
    assert!(client.submit_text("g.V().nope()").is_err());
    assert!(!client.submit_text("g.V().count()").unwrap().is_empty());
}
