//! Failure injection for the wire protocol and parsers: malformed frames,
//! garbage bytes, truncated payloads, and adversarial JSON must produce
//! errors (or clean connection closes), never panics or hangs.

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::Arc;

use nepal_gremlin::{parse_json, parse_traversal, GStep, GremlinClient, GremlinServer, PropertyGraph};
use parking_lot::RwLock;

fn server() -> GremlinServer {
    let mut g = PropertyGraph::new();
    g.add_vertex(1, "Node:VM", BTreeMap::new());
    GremlinServer::start(Arc::new(RwLock::new(g))).unwrap()
}

#[test]
fn garbage_bytes_close_the_connection_without_killing_the_server() {
    let server = server();
    // Deterministic pseudo-random garbage.
    let mut state = 0x12345678u64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state as u8
    };
    for _ in 0..5 {
        let mut conn = server.connect().unwrap();
        let junk: Vec<u8> = (0..512).map(|_| rng()).collect();
        let _ = conn.write_all(&junk);
        // Server drops this connection; a fresh client still works.
        let mut client = GremlinClient::new(server.connect().unwrap());
        let r = client.submit(&[GStep::V(vec![]), GStep::Count]).unwrap();
        assert_eq!(r.len(), 1);
    }
}

#[test]
fn truncated_frame_is_detected_by_the_reader() {
    use nepal_gremlin::Json;
    let msg = nepal_gremlin::protocol::request("r", Json::Arr(vec![]));
    let bytes = nepal_gremlin::protocol::encode_frame(&msg);
    for cut in [0, 1, 5, bytes.len() / 2, bytes.len() - 1] {
        let mut cursor = std::io::Cursor::new(bytes[..cut].to_vec());
        assert!(nepal_gremlin::protocol::read_frame(&mut cursor).is_err(), "cut at {cut} should fail");
    }
}

#[test]
fn oversized_frame_length_rejected() {
    // A frame claiming a multi-GB payload must be rejected before any
    // allocation attempt.
    let mut bytes = Vec::new();
    let mime = nepal_gremlin::MIME.as_bytes();
    bytes.push(mime.len() as u8);
    bytes.extend_from_slice(mime);
    bytes.extend_from_slice(&u32::MAX.to_be_bytes());
    bytes.extend_from_slice(b"xxxx");
    let mut cursor = std::io::Cursor::new(bytes);
    let err = nepal_gremlin::protocol::read_frame(&mut cursor).unwrap_err();
    assert!(err.to_string().contains("oversized"), "{err}");
}

#[test]
fn json_parser_never_panics_on_mutated_documents() {
    let base = r#"{"requestId":"r-1","status":{"code":206},"result":{"data":[1,2.5,"x",null,true,{"k":[]}]}}"#;
    let mut state = 0xDEADBEEFu64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..2000 {
        let mut bytes = base.as_bytes().to_vec();
        let n_mutations = (rng() % 4 + 1) as usize;
        for _ in 0..n_mutations {
            let pos = (rng() as usize) % bytes.len();
            match rng() % 3 {
                0 => bytes[pos] = (rng() % 128) as u8,
                1 => {
                    bytes.remove(pos);
                }
                _ => bytes.insert(pos, (rng() % 128) as u8),
            }
            if bytes.is_empty() {
                break;
            }
        }
        if let Ok(text) = String::from_utf8(bytes) {
            let _ = parse_json(&text); // must not panic
        }
    }
}

#[test]
fn traversal_parser_never_panics_on_mutations() {
    let base = "g.V(1,2).hasLabel('Node:VM').has('k', gte(5)).repeat(__.outE('x').inV().simplePath()).times(3).path()";
    let mut state = 0xC0FFEEu64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..2000 {
        let mut bytes = base.as_bytes().to_vec();
        for _ in 0..(rng() % 3 + 1) {
            let pos = (rng() as usize) % bytes.len();
            bytes[pos] = (32 + rng() % 95) as u8; // printable ascii
        }
        if let Ok(text) = String::from_utf8(bytes) {
            let _ = parse_traversal(&text); // must not panic
        }
    }
}

#[test]
fn malformed_json_payload_gets_a_597_error_frame_not_a_panic() {
    let server = server();
    let mut conn = server.connect().unwrap();
    // Valid framing (correct mime, correct length prefix), invalid JSON body.
    let mime = nepal_gremlin::MIME.as_bytes();
    let body = b"{this is not json";
    let mut bytes = Vec::new();
    bytes.push(mime.len() as u8);
    bytes.extend_from_slice(mime);
    bytes.extend_from_slice(&(body.len() as u32).to_be_bytes());
    bytes.extend_from_slice(body);
    conn.write_all(&bytes).unwrap();

    let frame = nepal_gremlin::protocol::read_frame(&mut conn).unwrap();
    let status = frame.get("status").unwrap();
    assert_eq!(status.get("code").unwrap().as_u64(), Some(597));
    let msg = status.get("message").unwrap().as_str().unwrap();
    assert!(msg.contains("malformed frame"), "{msg}");
    assert_eq!(server.stats.malformed_frames.load(std::sync::atomic::Ordering::Relaxed), 1);

    // The listener is still alive for new connections.
    let mut client = GremlinClient::new(server.connect().unwrap());
    assert_eq!(client.submit(&[GStep::V(vec![1]), GStep::Id]).unwrap().len(), 1);
}

#[test]
fn unsupported_op_gets_a_500_error_frame_not_a_panic() {
    use nepal_gremlin::Json;
    let server = server();
    let mut conn = server.connect().unwrap();
    let req = Json::obj(vec![
        ("requestId", Json::Str("r-bad".into())),
        ("op", Json::Str("definitely-not-an-op".into())),
        ("args", Json::obj(vec![("gremlin", Json::Arr(vec![]))])),
    ]);
    nepal_gremlin::protocol::write_frame(&mut conn, &req).unwrap();
    let frame = nepal_gremlin::protocol::read_frame(&mut conn).unwrap();
    assert_eq!(frame.get("status").unwrap().get("code").unwrap().as_u64(), Some(500));
    assert_eq!(frame.get("requestId").unwrap().as_str(), Some("r-bad"));
}

#[test]
fn server_survives_mid_request_disconnects() {
    let server = server();
    for _ in 0..3 {
        let mut conn = server.connect().unwrap();
        // Write only the first half of a valid frame, then hang up.
        use nepal_gremlin::Json;
        let msg = nepal_gremlin::protocol::request("r", Json::Arr(vec![]));
        let bytes = nepal_gremlin::protocol::encode_frame(&msg);
        conn.write_all(&bytes[..bytes.len() / 2]).unwrap();
        drop(conn);
    }
    let mut client = GremlinClient::new(server.connect().unwrap());
    assert_eq!(client.submit(&[GStep::V(vec![1]), GStep::Id]).unwrap().len(), 1);
}
