//! Overload and fault-injection tests: the server must shed excess load
//! with explicit frames, enforce deadlines via cooperative cancellation,
//! tolerate stalled and vanishing clients, and drain gracefully — never
//! panicking, hanging, or leaking a worker.

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

use nepal_gremlin::protocol::encode_frame;
use nepal_gremlin::{
    bytecode_to_json, GStep, GremlinClient, GremlinServer, PropertyGraph, ProtoError, RetryPolicy, RetryingClient,
    ServeConfig,
};
use parking_lot::RwLock;

fn shared(n: u64) -> nepal_gremlin::SharedGraph {
    let mut g = PropertyGraph::new();
    for i in 0..n {
        g.add_vertex(i, "Node:VM", BTreeMap::new());
    }
    for i in 1..n {
        g.add_edge(n + i, "Edge:HostedOn", i, i - 1, BTreeMap::new());
    }
    Arc::new(RwLock::new(g))
}

fn count_req() -> Vec<GStep> {
    vec![GStep::V(vec![]), GStep::Count]
}

#[test]
fn admission_sheds_with_explicit_overload_frame() {
    let cfg = ServeConfig { workers: 1, queue_depth: 1, retry_after_ms: 123, ..ServeConfig::default() };
    let server = GremlinServer::start_cfg(shared(8), "127.0.0.1:0", None, cfg).unwrap();

    // Occupy the single worker with a held-open connection, and fill the
    // one queue slot with a second. Connections hold a worker until EOF,
    // so these pin the pool deterministically once admitted.
    let mut held = GremlinClient::new(server.connect().unwrap());
    held.submit(&count_req()).unwrap(); // proves the worker picked it up
    let _queued = server.connect().unwrap();
    std::thread::sleep(Duration::from_millis(100)); // let the acceptor queue it

    // The next arrival must be shed with a typed 503 + retry hint.
    let mut shed = GremlinClient::new(server.connect().unwrap());
    match shed.submit(&count_req()) {
        Err(ProtoError::Overloaded { retry_after_ms, .. }) => assert_eq!(retry_after_ms, 123),
        // The shed frame races our request write; a broken pipe is also a
        // valid shed observation, but the counter must confirm it below.
        Err(ProtoError::Io(_)) => {}
        other => panic!("expected overload shed, got {other:?}"),
    }
    assert!(server.stats.shed.load(std::sync::atomic::Ordering::Relaxed) >= 1);
    // The held connection still works: shedding is per-arrival, not global.
    held.submit(&count_req()).unwrap();
}

#[test]
fn deadline_storm_times_out_cleanly() {
    // A zero deadline trips the very first cancellation checkpoint: every
    // request must come back as a typed 598, never a panic or a hang.
    let cfg = ServeConfig { workers: 2, queue_depth: 8, deadline: Some(Duration::ZERO), ..ServeConfig::default() };
    let server = GremlinServer::start_cfg(shared(64), "127.0.0.1:0", None, cfg).unwrap();
    let mut clients: Vec<GremlinClient<_>> = (0..2).map(|_| GremlinClient::new(server.connect().unwrap())).collect();
    let mut timeouts = 0;
    for round in 0..6 {
        let c = &mut clients[round % 2];
        match c.submit(&count_req()) {
            Err(ProtoError::Timeout(_)) => timeouts += 1,
            other => panic!("expected server timeout, got {other:?}"),
        }
    }
    assert_eq!(timeouts, 6);
    let stats = server.stats.clone();
    assert_eq!(stats.deadline_timeouts.load(std::sync::atomic::Ordering::Relaxed), 6);
    assert_eq!(stats.evaluation_panics.load(std::sync::atomic::Ordering::Relaxed), 0);
}

#[test]
fn slow_client_dribbling_a_frame_is_served() {
    let server = GremlinServer::start(shared(8)).unwrap();
    let mut conn = server.connect().unwrap();
    let req = {
        let mut r = nepal_gremlin::protocol::request("slow", bytecode_to_json(&count_req()));
        if let nepal_gremlin::Json::Obj(m) = &mut r {
            m.insert("op".into(), nepal_gremlin::Json::Str("bytecode".into()));
        }
        r
    };
    let bytes = encode_frame(&req);
    // Dribble the frame a few bytes at a time with pauses longer than the
    // server's read timeout — the incremental reader must hold partial
    // bytes across stalls instead of desynchronizing.
    for chunk in bytes.chunks(7) {
        conn.write_all(chunk).unwrap();
        conn.flush().unwrap();
        std::thread::sleep(Duration::from_millis(8));
    }
    let resp = nepal_gremlin::protocol::read_frame(&mut conn).unwrap();
    assert_eq!(resp.get("requestId").unwrap().as_str(), Some("slow"));
    assert_eq!(resp.get("status").unwrap().get("code").unwrap().as_u64(), Some(200));
}

#[test]
fn mid_query_disconnect_does_not_poison_the_server() {
    let server = GremlinServer::start_cfg(
        shared(256),
        "127.0.0.1:0",
        None,
        ServeConfig { workers: 2, ..ServeConfig::default() },
    )
    .unwrap();
    // Fire a request and vanish before reading the response — repeatedly.
    for _ in 0..4 {
        let mut conn = server.connect().unwrap();
        let req = nepal_gremlin::protocol::request("gone", bytecode_to_json(&[GStep::V(vec![]), GStep::Id]));
        nepal_gremlin::protocol::write_frame(&mut conn, &req).unwrap();
        drop(conn);
    }
    std::thread::sleep(Duration::from_millis(100));
    // The server survives and serves a well-behaved client afterwards.
    let mut client = GremlinClient::new(server.connect().unwrap());
    let out = client.submit(&count_req()).unwrap();
    assert_eq!(out.len(), 1);
    assert_eq!(server.stats.evaluation_panics.load(std::sync::atomic::Ordering::Relaxed), 0);
}

#[test]
fn graceful_drain_finishes_inflight_and_refuses_new_work() {
    let mut server =
        GremlinServer::start_cfg(shared(64), "127.0.0.1:0", None, ServeConfig { workers: 2, ..ServeConfig::default() })
            .unwrap();
    let addr = server.addr;
    let mut client = GremlinClient::new(server.connect().unwrap());
    client.submit(&count_req()).unwrap();

    let report = server.drain(Duration::from_millis(2000));
    assert!(report.clean, "idle connections must release workers within the drain budget");

    // After drain: no acceptor. A fresh connect is refused outright, or
    // accepted by the OS backlog and then never served (EOF/ignored).
    if let Ok(s) = std::net::TcpStream::connect(addr) {
        s.set_read_timeout(Some(Duration::from_millis(200))).unwrap();
        let mut c = GremlinClient::new(s);
        assert!(c.submit(&count_req()).is_err(), "drained server must not serve new requests");
    }
}

#[test]
fn retrying_client_rides_out_a_shed() {
    // Single worker + zero queue: with the worker pinned, every new
    // arrival sheds. After the pinned connection ends, retries succeed.
    let cfg = ServeConfig { workers: 1, queue_depth: 1, retry_after_ms: 10, ..ServeConfig::default() };
    let server = GremlinServer::start_cfg(shared(8), "127.0.0.1:0", None, cfg).unwrap();
    let mut held = GremlinClient::new(server.connect().unwrap());
    held.submit(&count_req()).unwrap();
    let queued = server.connect().unwrap(); // fills the single queue slot
    std::thread::sleep(Duration::from_millis(100));

    let release = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        // Free the worker and the queue slot so retries can land.
        drop(held);
        drop(queued);
    });
    let addr = server.addr;
    let mut client = RetryingClient::new(
        move || std::net::TcpStream::connect(addr),
        RetryPolicy {
            max_attempts: 40,
            base_delay: Duration::from_millis(20),
            max_delay: Duration::from_millis(60),
            ..RetryPolicy::default()
        },
    );
    let out = client.submit(&count_req()).unwrap();
    assert_eq!(out.len(), 1);
    assert!(client.retries >= 1, "the first attempts should have been shed");
    release.join().unwrap();
}
