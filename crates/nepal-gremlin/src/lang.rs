//! A parser for textual Gremlin traversals (`g.V().hasLabel('Node:VM')…`),
//! so the mock server also accepts the Gremlin Server `eval` op that every
//! console/driver speaks, in addition to bytecode submissions.
//!
//! Supported surface (what Nepal's translator and the tests/examples use):
//!
//! ```text
//! g.V(1, 2) | g.E()
//! .hasLabel('prefix')                 — inheritance prefix matching
//! .has('key', value)                  — equality
//! .has('key', gte(value))             — P predicates: eq neq lt lte gt gte
//! .outE('prefix'?) .inE('prefix'?) .inV() .outV()
//! .repeat(__.outE('x').inV().simplePath()).times(n) [.emit()]
//! .simplePath() .path() .dedup() .limit(n) .count() .values('k') .id()
//! ```

use crate::json::Json;
use crate::traversal::{GCmp, GStep};

/// Parse error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LangError {
    pub pos: usize,
    pub msg: String,
}

impl std::fmt::Display for LangError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gremlin parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for LangError {}

struct P<'a> {
    s: &'a str,
    i: usize,
}

#[derive(Debug, Clone, PartialEq)]
enum Arg {
    Num(f64),
    Str(String),
    Pred(GCmp, Box<Arg>),
    /// An anonymous sub-traversal `__.step().step()`.
    Sub(Vec<(String, Vec<Arg>)>),
}

impl<'a> P<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, LangError> {
        Err(LangError { pos: self.i, msg: msg.into() })
    }

    fn ws(&mut self) {
        while self.i < self.s.len() && self.s.as_bytes()[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: char) -> bool {
        self.ws();
        if self.s[self.i..].starts_with(c) {
            self.i += c.len_utf8();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), LangError> {
        if self.eat(c) {
            Ok(())
        } else {
            self.err(format!("expected `{c}`"))
        }
    }

    fn ident(&mut self) -> Result<String, LangError> {
        self.ws();
        let start = self.i;
        while self.i < self.s.len() {
            let c = self.s.as_bytes()[self.i] as char;
            if c.is_alphanumeric() || c == '_' {
                self.i += 1;
            } else {
                break;
            }
        }
        if self.i == start {
            return self.err("expected identifier");
        }
        Ok(self.s[start..self.i].to_string())
    }

    fn arg(&mut self) -> Result<Arg, LangError> {
        self.ws();
        let rest = &self.s[self.i..];
        if rest.starts_with('\'') || rest.starts_with('"') {
            let quote = rest.chars().next().unwrap();
            let body = &rest[1..];
            match body.find(quote) {
                Some(end) => {
                    let v = body[..end].to_string();
                    self.i += end + 2;
                    Ok(Arg::Str(v))
                }
                None => self.err("unterminated string"),
            }
        } else if rest.starts_with("__") {
            self.i += 2;
            let mut steps = Vec::new();
            while self.eat('.') {
                steps.push(self.call()?);
            }
            Ok(Arg::Sub(steps))
        } else if rest.chars().next().is_some_and(|c| c.is_ascii_digit() || c == '-') {
            let start = self.i;
            self.i += 1;
            while self.i < self.s.len() {
                let c = self.s.as_bytes()[self.i] as char;
                if c.is_ascii_digit() || c == '.' {
                    self.i += 1;
                } else {
                    break;
                }
            }
            self.s[start..self.i]
                .parse::<f64>()
                .map(Arg::Num)
                .map_err(|_| LangError { pos: start, msg: "bad number".into() })
        } else {
            // P predicate: gte(5), eq('x'), …
            let name = self.ident()?;
            let cmp = match name.as_str() {
                "eq" => GCmp::Eq,
                "neq" => GCmp::Neq,
                "lt" => GCmp::Lt,
                "lte" => GCmp::Lte,
                "gt" => GCmp::Gt,
                "gte" => GCmp::Gte,
                "true" => return Ok(Arg::Str("true".into())),
                other => return self.err(format!("unknown predicate `{other}`")),
            };
            self.expect('(')?;
            let inner = self.arg()?;
            self.expect(')')?;
            Ok(Arg::Pred(cmp, Box::new(inner)))
        }
    }

    /// Parse `name(args…)`.
    fn call(&mut self) -> Result<(String, Vec<Arg>), LangError> {
        let name = self.ident()?;
        self.expect('(')?;
        let mut args = Vec::new();
        self.ws();
        if !self.s[self.i..].starts_with(')') {
            loop {
                args.push(self.arg()?);
                if !self.eat(',') {
                    break;
                }
            }
        }
        self.expect(')')?;
        Ok((name, args))
    }
}

fn arg_json(a: &Arg) -> Result<Json, LangError> {
    Ok(match a {
        Arg::Num(n) => Json::Num(*n),
        Arg::Str(s) => Json::Str(s.clone()),
        _ => return Err(LangError { pos: 0, msg: "expected literal".into() }),
    })
}

fn ids_of(args: &[Arg]) -> Result<Vec<u64>, LangError> {
    args.iter()
        .map(|a| match a {
            Arg::Num(n) => Ok(*n as u64),
            _ => Err(LangError { pos: 0, msg: "ids must be numbers".into() }),
        })
        .collect()
}

fn label_of(args: &[Arg]) -> Option<String> {
    match args.first() {
        Some(Arg::Str(s)) => Some(s.clone()),
        _ => None,
    }
}

/// Convert a parsed call chain into bytecode steps. `repeat(...)` is held
/// pending until its `.times(n)` modulator arrives.
fn build(calls: Vec<(String, Vec<Arg>)>) -> Result<Vec<GStep>, LangError> {
    let mut out: Vec<GStep> = Vec::new();
    let mut pending_repeat: Option<Vec<GStep>> = None;
    let e = |m: &str| LangError { pos: 0, msg: m.to_string() };
    for (name, args) in calls {
        match name.as_str() {
            "V" => out.push(GStep::V(ids_of(&args)?)),
            "E" => out.push(GStep::E(ids_of(&args)?)),
            "hasLabel" | "hasLabelPrefix" => {
                out.push(GStep::HasLabelPrefix(label_of(&args).ok_or_else(|| e("hasLabel needs a string"))?))
            }
            "has" => {
                let key = match args.first() {
                    Some(Arg::Str(s)) => s.clone(),
                    _ => return Err(e("has() needs a property key")),
                };
                match args.get(1) {
                    Some(Arg::Pred(cmp, inner)) => out.push(GStep::Has(key, *cmp, arg_json(inner)?)),
                    Some(lit) => out.push(GStep::Has(key, GCmp::Eq, arg_json(lit)?)),
                    None => return Err(e("has() needs a value")),
                }
            }
            "outE" => out.push(GStep::OutE(label_of(&args))),
            "inE" => out.push(GStep::InE(label_of(&args))),
            "inV" => out.push(GStep::InV),
            "outV" => out.push(GStep::OutV),
            "repeat" => {
                let body = match args.into_iter().next() {
                    Some(Arg::Sub(calls)) => build(calls)?,
                    _ => return Err(e("repeat() needs an anonymous traversal (__.…)")),
                };
                pending_repeat = Some(body);
            }
            "times" => {
                let body = pending_repeat.take().ok_or_else(|| e("times() without repeat()"))?;
                let n = match args.first() {
                    Some(Arg::Num(n)) => *n as u32,
                    _ => return Err(e("times() needs a count")),
                };
                out.push(GStep::Repeat(body, 1, n.max(1)));
            }
            "emit" => {} // our Repeat already emits every depth ≥ min
            "simplePath" => out.push(GStep::SimplePath),
            "path" => out.push(GStep::Path),
            "dedup" => out.push(GStep::Dedup),
            "limit" => {
                let n = match args.first() {
                    Some(Arg::Num(n)) => *n as u64,
                    _ => return Err(e("limit() needs a count")),
                };
                out.push(GStep::Limit(n));
            }
            "count" => out.push(GStep::Count),
            "values" => out.push(GStep::Values(label_of(&args).ok_or_else(|| e("values() needs a key"))?)),
            "id" => out.push(GStep::Id),
            other => return Err(e(&format!("unknown step `{other}`"))),
        }
    }
    if pending_repeat.is_some() {
        return Err(e("repeat() without a terminating times(n)"));
    }
    Ok(out)
}

/// Parse a textual traversal (`g.V()…`) into bytecode.
pub fn parse_traversal(text: &str) -> Result<Vec<GStep>, LangError> {
    let mut p = P { s: text, i: 0 };
    p.ws();
    if !p.s[p.i..].starts_with('g') {
        return p.err("traversal must start with `g`");
    }
    p.i += 1;
    let mut calls = Vec::new();
    while p.eat('.') {
        calls.push(p.call()?);
    }
    p.ws();
    if p.i != p.s.len() {
        return p.err("trailing input");
    }
    if calls.is_empty() {
        return p.err("empty traversal");
    }
    build(calls)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PropertyGraph;
    use crate::traversal::evaluate;
    use std::collections::BTreeMap;

    fn graph() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let props = |id: f64| {
            let mut m = BTreeMap::new();
            m.insert("vm_id".to_string(), Json::Num(id));
            m
        };
        g.add_vertex(1, "Node:VM", props(55.0));
        g.add_vertex(2, "Node:Host", props(7.0));
        g.add_vertex(3, "Node:Host", props(9.0));
        g.add_edge(10, "Edge:Vertical:HostedOn", 1, 2, BTreeMap::new());
        g.add_edge(11, "Edge:Connects", 2, 3, BTreeMap::new());
        g
    }

    #[test]
    fn parses_and_runs_basic_chain() {
        let g = graph();
        let steps = parse_traversal("g.V().hasLabel('Node:VM').has('vm_id', 55).id()").unwrap();
        let r = evaluate(&g, &steps).unwrap();
        assert_eq!(r, vec![Json::Num(1.0)]);
    }

    #[test]
    fn parses_predicates_and_hops() {
        let g = graph();
        let steps = parse_traversal("g.V().hasLabel('Node:Host').has('vm_id', gte(8)).id()").unwrap();
        let r = evaluate(&g, &steps).unwrap();
        assert_eq!(r, vec![Json::Num(3.0)]);
        let steps = parse_traversal("g.V(1).outE('Edge:Vertical').inV().id()").unwrap();
        let r = evaluate(&g, &steps).unwrap();
        assert_eq!(r, vec![Json::Num(2.0)]);
    }

    #[test]
    fn parses_repeat_times() {
        let g = graph();
        let steps = parse_traversal("g.V(1).repeat(__.outE().inV().simplePath()).times(2).emit().path()").unwrap();
        let r = evaluate(&g, &steps).unwrap();
        // Depth 1: 1→2; depth 2: 1→2→3.
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_traversal("V().id()").is_err()); // no `g`
        assert!(parse_traversal("g.V().unknownStep()").is_err());
        assert!(parse_traversal("g.V().repeat(__.outE())").is_err()); // no times
        assert!(parse_traversal("g.V().has('k')").is_err());
        assert!(parse_traversal("g.V().hasLabel('unterminated").is_err());
        assert!(parse_traversal("g.V() trailing").is_err());
    }

    #[test]
    fn quotes_both_kinds() {
        let a = parse_traversal("g.V().hasLabel('Node:VM')").unwrap();
        let b = parse_traversal("g.V().hasLabel(\"Node:VM\")").unwrap();
        assert_eq!(a, b);
    }
}
