//! Minimal JSON implementation for the GraphSON-style wire protocol.
//!
//! The Gremlin backend's whole point (per the paper's §5.2 and this
//! reproduction's constraints — there is no mature Rust Gremlin client) is
//! the protocol layer itself, so the JSON codec is implemented here rather
//! than pulled in as a dependency. Objects use a `BTreeMap` so serialized
//! output is deterministic (important for snapshot tests).

use std::collections::BTreeMap;
use std::fmt;

use nepal_schema::Value;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn obj(entries: Vec<(&str, Json)>) -> Json {
        Json::Obj(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|f| f as u64)
    }

    pub fn as_i64(&self) -> Option<i64> {
        self.as_f64().map(|f| f as i64)
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        write_json(self, &mut s);
        f.write_str(&s)
    }
}

/// Serialize a JSON value to a string.
pub fn write_json(j: &Json, out: &mut String) {
    match j {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Json::Str(s) => escape(s, out),
        Json::Arr(a) => {
            out.push('[');
            for (i, x) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json(x, out);
            }
            out.push(']');
        }
        Json::Obj(m) => {
            out.push('{');
            for (i, (k, v)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape(k, out);
                out.push(':');
                write_json(v, out);
            }
            out.push('}');
        }
    }
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub pos: usize,
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

struct P<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> P<'a> {
    fn err<T>(&self, msg: &str) -> Result<T, JsonError> {
        Err(JsonError { pos: self.i, msg: msg.to_string() })
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && (self.b[self.i] as char).is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            self.err(&format!("expected `{}`", c as char))
        }
    }

    fn lit(&mut self, s: &str, v: Json) -> Result<Json, JsonError> {
        if self.b[self.i..].starts_with(s.as_bytes()) {
            self.i += s.len();
            Ok(v)
        } else {
            self.err("bad literal")
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.ws();
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.i += 1;
                let mut a = Vec::new();
                self.ws();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(Json::Arr(a));
                }
                loop {
                    a.push(self.value()?);
                    self.ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            break;
                        }
                        _ => return self.err("expected `,` or `]`"),
                    }
                }
                Ok(Json::Arr(a))
            }
            Some(b'{') => {
                self.i += 1;
                let mut m = BTreeMap::new();
                self.ws();
                if self.peek() == Some(b'}') {
                    self.i += 1;
                    return Ok(Json::Obj(m));
                }
                loop {
                    self.ws();
                    let k = self.string()?;
                    self.ws();
                    self.eat(b':')?;
                    let v = self.value()?;
                    m.insert(k, v);
                    self.ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            break;
                        }
                        _ => return self.err("expected `,` or `}`"),
                    }
                }
                Ok(Json::Obj(m))
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => self.err("unexpected character"),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            if self.i + 4 >= self.b.len() {
                                return self.err("truncated \\u escape");
                            }
                            let hex = std::str::from_utf8(&self.b[self.i + 1..self.i + 5])
                                .map_err(|_| JsonError { pos: self.i, msg: "bad \\u".into() })?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError { pos: self.i, msg: "bad \\u".into() })?;
                            s.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| JsonError { pos: self.i, msg: "invalid utf8".into() })?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.i += c.len_utf8();
                }
                None => return self.err("unterminated string"),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-')
        {
            self.i += 1;
        }
        let txt = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        txt.parse::<f64>().map(Json::Num).map_err(|_| JsonError { pos: start, msg: "bad number".into() })
    }
}

/// Parse a JSON document.
pub fn parse_json(text: &str) -> Result<Json, JsonError> {
    let mut p = P { b: text.as_bytes(), i: 0 };
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return p.err("trailing input");
    }
    Ok(v)
}

// ---------------------------------------------------------------------
// Value ↔ Json codecs (GraphSON-lite tagging for non-JSON-native types)
// ---------------------------------------------------------------------

/// Encode a Nepal [`Value`] as JSON. Timestamps, IPs, sets, maps, and
/// composites get one-key tag objects so decoding is lossless.
pub fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Bool(b) => Json::Bool(*b),
        // JSON numbers are f64: integers beyond 2^53 would silently lose
        // precision, so they travel as tagged strings.
        Value::Int(i) if i.unsigned_abs() <= (1 << 53) => Json::Num(*i as f64),
        Value::Int(i) => Json::obj(vec![("@i", Json::Str(i.to_string()))]),
        Value::Float(f) => Json::obj(vec![("@f", Json::Num(*f))]),
        Value::Str(s) => Json::Str(s.clone()),
        Value::Ts(t) => Json::obj(vec![("@ts", Json::Num(*t as f64))]),
        Value::Ip(ip) => Json::obj(vec![("@ip", Json::Str(ip.to_string()))]),
        Value::List(items) => Json::Arr(items.iter().map(value_to_json).collect()),
        Value::Set(items) => Json::obj(vec![("@set", Json::Arr(items.iter().map(value_to_json).collect()))]),
        Value::Map(m) => Json::obj(vec![(
            "@map",
            Json::Arr(m.iter().map(|(k, v)| Json::Arr(vec![value_to_json(k), value_to_json(v)])).collect()),
        )]),
        Value::Composite(fields) => Json::obj(vec![("@comp", Json::Arr(fields.iter().map(value_to_json).collect()))]),
    }
}

/// Decode JSON back into a [`Value`].
pub fn json_to_value(j: &Json) -> Value {
    match j {
        Json::Null => Value::Null,
        Json::Bool(b) => Value::Bool(*b),
        Json::Num(n) => Value::Int(*n as i64),
        Json::Str(s) => Value::Str(s.clone()),
        Json::Arr(a) => Value::List(a.iter().map(json_to_value).collect()),
        Json::Obj(m) => {
            if m.len() == 1 {
                let (k, v) = m.iter().next().unwrap();
                match (k.as_str(), v) {
                    ("@f", Json::Num(f)) => return Value::Float(*f),
                    ("@i", Json::Str(s)) => {
                        if let Ok(i) = s.parse() {
                            return Value::Int(i);
                        }
                    }
                    ("@ts", Json::Num(t)) => return Value::Ts(*t as i64),
                    ("@ip", Json::Str(s)) => {
                        if let Ok(ip) = s.parse() {
                            return Value::Ip(ip);
                        }
                    }
                    ("@set", Json::Arr(a)) => return Value::set(a.iter().map(json_to_value).collect()),
                    ("@map", Json::Arr(a)) => {
                        let mut out = std::collections::BTreeMap::new();
                        for pair in a {
                            if let Json::Arr(kv) = pair {
                                if kv.len() == 2 {
                                    out.insert(json_to_value(&kv[0]), json_to_value(&kv[1]));
                                }
                            }
                        }
                        return Value::Map(out);
                    }
                    ("@comp", Json::Arr(a)) => return Value::Composite(a.iter().map(json_to_value).collect()),
                    _ => {}
                }
            }
            // Generic object → map of string keys.
            let mut out = std::collections::BTreeMap::new();
            for (k, v) in m {
                out.insert(Value::Str(k.clone()), json_to_value(v));
            }
            Value::Map(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_documents() {
        for src in [
            r#"{"a":1,"b":[true,null,"x"],"c":{"d":2.5}}"#,
            r#"[]"#,
            r#"{"requestId":"r-1","status":{"code":206},"result":{"data":[1,2]}}"#,
            r#""esc \" \\ \n A""#,
        ] {
            let j = parse_json(src).unwrap();
            let out = j.to_string();
            let j2 = parse_json(&out).unwrap();
            assert_eq!(j, j2, "round trip failed for {src}");
        }
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("12abc").is_err());
        assert!(parse_json(r#"{"a" 1}"#).is_err());
        assert!(parse_json(r#""unterminated"#).is_err());
        assert!(parse_json("[1] trailing").is_err());
    }

    #[test]
    fn integers_serialized_without_fraction() {
        assert_eq!(Json::Num(42.0).to_string(), "42");
        assert_eq!(Json::Num(2.5).to_string(), "2.5");
    }

    #[test]
    fn value_codec_round_trips() {
        use std::collections::BTreeMap;
        let mut m = BTreeMap::new();
        m.insert(Value::Str("k".into()), Value::Int(1));
        let vals = vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(-7),
            Value::Float(1.25),
            Value::Str("hello".into()),
            Value::Ts(1_500_000_000_000_000),
            Value::Ip("10.0.0.1".parse().unwrap()),
            Value::List(vec![Value::Int(1), Value::Str("x".into())]),
            Value::set(vec![Value::Int(2), Value::Int(1)]),
            Value::Map(m),
            Value::Composite(vec![Value::Int(1), Value::Str("if0".into())]),
        ];
        for v in vals {
            let j = value_to_json(&v);
            let text = j.to_string();
            let j2 = parse_json(&text).unwrap();
            assert_eq!(json_to_value(&j2), v, "codec failed for {v:?}");
        }
    }

    #[test]
    fn unicode_survives() {
        let j = parse_json(r#""héllo ☃""#).unwrap();
        assert_eq!(j, Json::Str("héllo ☃".into()));
        let out = j.to_string();
        assert_eq!(parse_json(&out).unwrap(), j);
    }
}
