//! The Gremlin-style traversal machine: bytecode, interpreter, and the
//! JSON (de)serialization used on the wire.
//!
//! Supported steps cover what Nepal's translator emits (§5.2): vertex
//! selection, label-prefix filtering (class inheritance), property
//! filters, edge/vertex hops in both directions, bounded `repeat` (the
//! `ExtendBlock` loop-unrolling operator), `simplePath` cycle pruning,
//! `path` extraction with full element detail, plus the usual `dedup`,
//! `limit`, `count`, `values`, and `id` terminators.

use std::collections::BTreeMap;

use nepal_rpe::{CancelCause, CancelToken};

use crate::graph::{label_matches_prefix, PropertyGraph};
use crate::json::Json;

/// Errors from cancellable traversal evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// Evaluation abandoned at a cancellation checkpoint.
    Cancelled(CancelCause),
    /// Malformed traversal or unsupported step.
    Other(String),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::Cancelled(CancelCause::Deadline) => write!(f, "traversal deadline exceeded"),
            EvalError::Cancelled(CancelCause::Explicit) => write!(f, "traversal cancelled"),
            EvalError::Other(m) => write!(f, "{m}"),
        }
    }
}

/// Rate-limited cancellation checker for the traversal interpreter:
/// `tick` polls the token once per `mask + 1` calls so hot per-traverser
/// loops stay cheap, `check` polls immediately (used once per step).
struct Ticker<'a> {
    tok: Option<&'a CancelToken>,
    n: u64,
}

const TRAVERSAL_CANCEL_MASK: u64 = 0x3F; // poll every 64 traversers

impl Ticker<'_> {
    fn tick(&mut self) -> Result<(), EvalError> {
        let Some(t) = self.tok else { return Ok(()) };
        self.n = self.n.wrapping_add(1);
        if self.n & TRAVERSAL_CANCEL_MASK != 0 {
            return Ok(());
        }
        match t.poll() {
            Some(c) => Err(EvalError::Cancelled(c)),
            None => Ok(()),
        }
    }

    fn check(&self) -> Result<(), EvalError> {
        match self.tok.and_then(|t| t.poll()) {
            Some(c) => Err(EvalError::Cancelled(c)),
            None => Ok(()),
        }
    }
}

/// Property comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GCmp {
    Eq,
    Neq,
    Lt,
    Lte,
    Gt,
    Gte,
}

impl GCmp {
    fn name(&self) -> &'static str {
        match self {
            GCmp::Eq => "eq",
            GCmp::Neq => "neq",
            GCmp::Lt => "lt",
            GCmp::Lte => "lte",
            GCmp::Gt => "gt",
            GCmp::Gte => "gte",
        }
    }

    fn from_name(s: &str) -> Option<GCmp> {
        Some(match s {
            "eq" => GCmp::Eq,
            "neq" => GCmp::Neq,
            "lt" => GCmp::Lt,
            "lte" => GCmp::Lte,
            "gt" => GCmp::Gt,
            "gte" => GCmp::Gte,
            _ => return None,
        })
    }

    fn test(&self, a: &Json, b: &Json) -> bool {
        match (a, b) {
            (Json::Num(x), Json::Num(y)) => self.test_ord(x.total_cmp(y)),
            (Json::Str(x), Json::Str(y)) => self.test_ord(x.cmp(y)),
            (Json::Bool(x), Json::Bool(y)) => self.test_ord(x.cmp(y)),
            // Tag objects (timestamps etc.): compare inner values.
            (Json::Obj(x), Json::Obj(y)) if x.len() == 1 && y.len() == 1 => {
                let (kx, vx) = x.iter().next().unwrap();
                let (ky, vy) = y.iter().next().unwrap();
                kx == ky && self.test(vx, vy)
            }
            _ => matches!(self, GCmp::Neq),
        }
    }

    fn test_ord(&self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            GCmp::Eq => ord == Equal,
            GCmp::Neq => ord != Equal,
            GCmp::Lt => ord == Less,
            GCmp::Lte => ord != Greater,
            GCmp::Gt => ord == Greater,
            GCmp::Gte => ord != Less,
        }
    }
}

/// One traversal step.
#[derive(Debug, Clone, PartialEq)]
pub enum GStep {
    /// `g.V()` or `g.V(id, …)`.
    V(Vec<u64>),
    /// `g.E()` or `g.E(id, …)`.
    E(Vec<u64>),
    /// Class-inheritance filter via label prefix matching.
    HasLabelPrefix(String),
    /// Property filter on the current element.
    Has(String, GCmp, Json),
    /// Outgoing edges, optionally restricted by label prefix.
    OutE(Option<String>),
    /// Incoming edges, optionally restricted by label prefix.
    InE(Option<String>),
    /// Head vertex of the current edge.
    InV,
    /// Tail vertex of the current edge.
    OutV,
    /// Bounded repetition of a sub-traversal, emitting every intermediate
    /// result whose depth is ≥ `min` (the ExtendBlock operator).
    Repeat(Vec<GStep>, u32, u32),
    /// Drop traversers that revisit an element.
    SimplePath,
    /// Emit the traverser's full path (elements with labels and props).
    Path,
    /// Deduplicate by current element.
    Dedup,
    /// Keep the first n traversers.
    Limit(u64),
    /// Terminate with the number of traversers.
    Count,
    /// Terminate with a property value of each element.
    Values(String),
    /// Terminate with the element id.
    Id,
}

/// A reference to a graph element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElemRef {
    V(u64),
    E(u64),
}

#[derive(Debug, Clone)]
struct Traverser {
    elem: ElemRef,
    path: Vec<ElemRef>,
}

fn elem_json(g: &PropertyGraph, e: ElemRef, detail: bool) -> Json {
    match e {
        ElemRef::V(id) => {
            let v = g.vertex(id);
            let mut m = BTreeMap::new();
            m.insert("id".into(), Json::Num(id as f64));
            m.insert("type".into(), Json::Str("vertex".into()));
            if let Some(v) = v {
                m.insert("label".into(), Json::Str(v.label.clone()));
                if detail {
                    m.insert("properties".into(), Json::Obj(v.props.clone()));
                }
            }
            Json::Obj(m)
        }
        ElemRef::E(id) => {
            let e = g.edge(id);
            let mut m = BTreeMap::new();
            m.insert("id".into(), Json::Num(id as f64));
            m.insert("type".into(), Json::Str("edge".into()));
            if let Some(e) = e {
                m.insert("label".into(), Json::Str(e.label.clone()));
                m.insert("outV".into(), Json::Num(e.src as f64));
                m.insert("inV".into(), Json::Num(e.dst as f64));
                if detail {
                    m.insert("properties".into(), Json::Obj(e.props.clone()));
                }
            }
            Json::Obj(m)
        }
    }
}

fn get_prop<'a>(g: &'a PropertyGraph, e: ElemRef, key: &str) -> Option<&'a Json> {
    match e {
        ElemRef::V(id) => g.vertex(id)?.props.get(key),
        ElemRef::E(id) => g.edge(id)?.props.get(key),
    }
}

fn get_label(g: &PropertyGraph, e: ElemRef) -> Option<&str> {
    match e {
        ElemRef::V(id) => g.vertex(id).map(|v| v.label.as_str()),
        ElemRef::E(id) => g.edge(id).map(|v| v.label.as_str()),
    }
}

/// Evaluate a bytecode program against a graph. Returns one JSON result
/// per surviving traverser.
pub fn evaluate(g: &PropertyGraph, steps: &[GStep]) -> Result<Vec<Json>, String> {
    evaluate_cancel(g, steps, None).map_err(|e| e.to_string())
}

/// [`evaluate`] with cooperative cancellation: the token is polled once
/// per step and at bounded intervals inside the fan-out loops (edge hops,
/// repeat frontiers), so a deadline or drain interrupts evaluation within
/// a bounded amount of work — returning a typed error, never a partial
/// result set masquerading as complete.
pub fn evaluate_cancel(
    g: &PropertyGraph,
    steps: &[GStep],
    cancel: Option<&CancelToken>,
) -> Result<Vec<Json>, EvalError> {
    let mut ts: Vec<Traverser> = Vec::new();
    let mut started = false;
    let mut want_path = false;
    let mut terminator: Option<&GStep> = None;
    let mut ticker = Ticker { tok: cancel, n: 0 };

    for step in steps {
        ticker.check()?;
        match step {
            GStep::V(ids) => {
                started = true;
                let ids: Vec<u64> = if ids.is_empty() {
                    let mut all: Vec<u64> = g.vertices.keys().copied().collect();
                    all.sort_unstable();
                    all
                } else {
                    ids.clone()
                };
                ts = ids
                    .into_iter()
                    .filter(|id| g.vertex(*id).is_some())
                    .map(|id| Traverser { elem: ElemRef::V(id), path: vec![ElemRef::V(id)] })
                    .collect();
            }
            GStep::E(ids) => {
                started = true;
                let ids: Vec<u64> = if ids.is_empty() {
                    let mut all: Vec<u64> = g.edges.keys().copied().collect();
                    all.sort_unstable();
                    all
                } else {
                    ids.clone()
                };
                ts = ids
                    .into_iter()
                    .filter(|id| g.edge(*id).is_some())
                    .map(|id| Traverser { elem: ElemRef::E(id), path: vec![ElemRef::E(id)] })
                    .collect();
            }
            _ if !started => return Err(EvalError::Other("traversal must start with V() or E()".into())),
            GStep::HasLabelPrefix(p) => {
                ts.retain(|t| get_label(g, t.elem).is_some_and(|l| label_matches_prefix(l, p)));
            }
            GStep::Has(key, cmp, val) => {
                ts.retain(|t| get_prop(g, t.elem, key).is_some_and(|p| cmp.test(p, val)));
            }
            GStep::OutE(prefix) | GStep::InE(prefix) => {
                let outgoing = matches!(step, GStep::OutE(_));
                let mut next = Vec::new();
                for t in &ts {
                    ticker.tick()?;
                    if let ElemRef::V(v) = t.elem {
                        let edges = if outgoing { g.out_edges(v) } else { g.in_edges(v) };
                        for &eid in edges {
                            if let Some(p) = prefix {
                                let Some(e) = g.edge(eid) else { continue };
                                if !label_matches_prefix(&e.label, p) {
                                    continue;
                                }
                            }
                            let mut path = t.path.clone();
                            path.push(ElemRef::E(eid));
                            next.push(Traverser { elem: ElemRef::E(eid), path });
                        }
                    }
                }
                ts = next;
            }
            GStep::InV | GStep::OutV => {
                let head = matches!(step, GStep::InV);
                let mut next = Vec::new();
                for t in &ts {
                    ticker.tick()?;
                    if let ElemRef::E(eid) = t.elem {
                        let Some(e) = g.edge(eid) else { continue };
                        let v = if head { e.dst } else { e.src };
                        let mut path = t.path.clone();
                        path.push(ElemRef::V(v));
                        next.push(Traverser { elem: ElemRef::V(v), path });
                    }
                }
                ts = next;
            }
            GStep::Repeat(body, min, max) => {
                if *max == 0 || min > max {
                    return Err(EvalError::Other("bad repeat bounds".into()));
                }
                let mut emitted: Vec<Traverser> = Vec::new();
                let mut frontier = ts.clone();
                if *min == 0 {
                    emitted.extend(frontier.iter().cloned());
                }
                for depth in 1..=*max {
                    let mut next = Vec::new();
                    for t in &frontier {
                        ticker.tick()?;
                        let sub = run_body(g, body, t).map_err(EvalError::Other)?;
                        next.extend(sub);
                    }
                    if depth >= *min {
                        emitted.extend(next.iter().cloned());
                    }
                    frontier = next;
                    if frontier.is_empty() {
                        break;
                    }
                }
                ts = emitted;
            }
            GStep::SimplePath => {
                ts.retain(|t| {
                    let mut seen = std::collections::HashSet::new();
                    t.path.iter().all(|e| seen.insert(*e))
                });
            }
            GStep::Path => {
                want_path = true;
            }
            GStep::Dedup => {
                let mut seen = std::collections::HashSet::new();
                ts.retain(|t| seen.insert(t.elem));
            }
            GStep::Limit(n) => {
                ts.truncate(*n as usize);
            }
            GStep::Count | GStep::Values(_) | GStep::Id => {
                terminator = Some(step);
            }
        }
    }

    Ok(match terminator {
        Some(GStep::Count) => vec![Json::Num(ts.len() as f64)],
        Some(GStep::Values(key)) => ts.iter().filter_map(|t| get_prop(g, t.elem, key).cloned()).collect(),
        Some(GStep::Id) => ts
            .iter()
            .map(|t| match t.elem {
                ElemRef::V(id) | ElemRef::E(id) => Json::Num(id as f64),
            })
            .collect(),
        _ if want_path => ts
            .iter()
            .map(|t| Json::obj(vec![("path", Json::Arr(t.path.iter().map(|e| elem_json(g, *e, true)).collect()))]))
            .collect(),
        _ => ts.iter().map(|t| elem_json(g, t.elem, true)).collect(),
    })
}

/// Run a repeat body for one traverser (sub-traversal without V()/E()).
fn run_body(g: &PropertyGraph, body: &[GStep], start: &Traverser) -> Result<Vec<Traverser>, String> {
    let mut ts = vec![start.clone()];
    for step in body {
        match step {
            GStep::HasLabelPrefix(p) => {
                ts.retain(|t| get_label(g, t.elem).is_some_and(|l| label_matches_prefix(l, p)));
            }
            GStep::Has(key, cmp, val) => {
                ts.retain(|t| get_prop(g, t.elem, key).is_some_and(|p| cmp.test(p, val)));
            }
            GStep::OutE(prefix) | GStep::InE(prefix) => {
                let outgoing = matches!(step, GStep::OutE(_));
                let mut next = Vec::new();
                for t in &ts {
                    if let ElemRef::V(v) = t.elem {
                        let edges = if outgoing { g.out_edges(v) } else { g.in_edges(v) };
                        for &eid in edges {
                            if let Some(p) = prefix {
                                let Some(e) = g.edge(eid) else { continue };
                                if !label_matches_prefix(&e.label, p) {
                                    continue;
                                }
                            }
                            let mut path = t.path.clone();
                            path.push(ElemRef::E(eid));
                            next.push(Traverser { elem: ElemRef::E(eid), path });
                        }
                    }
                }
                ts = next;
            }
            GStep::InV | GStep::OutV => {
                let head = matches!(step, GStep::InV);
                let mut next = Vec::new();
                for t in &ts {
                    if let ElemRef::E(eid) = t.elem {
                        let Some(e) = g.edge(eid) else { continue };
                        let v = if head { e.dst } else { e.src };
                        let mut path = t.path.clone();
                        path.push(ElemRef::V(v));
                        next.push(Traverser { elem: ElemRef::V(v), path });
                    }
                }
                ts = next;
            }
            GStep::SimplePath => {
                ts.retain(|t| {
                    let mut seen = std::collections::HashSet::new();
                    t.path.iter().all(|e| seen.insert(*e))
                });
            }
            other => return Err(format!("step {other:?} not allowed inside repeat()")),
        }
    }
    Ok(ts)
}

// ---------------------------------------------------------------------
// Bytecode (de)serialization
// ---------------------------------------------------------------------

fn ids_json(ids: &[u64]) -> Json {
    Json::Arr(ids.iter().map(|i| Json::Num(*i as f64)).collect())
}

/// Serialize a bytecode program to the wire representation.
pub fn bytecode_to_json(steps: &[GStep]) -> Json {
    Json::Arr(steps.iter().map(step_to_json).collect())
}

fn step_to_json(s: &GStep) -> Json {
    match s {
        GStep::V(ids) => Json::Arr(vec![Json::Str("V".into()), ids_json(ids)]),
        GStep::E(ids) => Json::Arr(vec![Json::Str("E".into()), ids_json(ids)]),
        GStep::HasLabelPrefix(p) => Json::Arr(vec![Json::Str("hasLabelPrefix".into()), Json::Str(p.clone())]),
        GStep::Has(k, c, v) => {
            Json::Arr(vec![Json::Str("has".into()), Json::Str(k.clone()), Json::Str(c.name().into()), v.clone()])
        }
        GStep::OutE(p) => {
            Json::Arr(vec![Json::Str("outE".into()), p.as_ref().map(|x| Json::Str(x.clone())).unwrap_or(Json::Null)])
        }
        GStep::InE(p) => {
            Json::Arr(vec![Json::Str("inE".into()), p.as_ref().map(|x| Json::Str(x.clone())).unwrap_or(Json::Null)])
        }
        GStep::InV => Json::Arr(vec![Json::Str("inV".into())]),
        GStep::OutV => Json::Arr(vec![Json::Str("outV".into())]),
        GStep::Repeat(body, min, max) => Json::Arr(vec![
            Json::Str("repeat".into()),
            bytecode_to_json(body),
            Json::Num(*min as f64),
            Json::Num(*max as f64),
        ]),
        GStep::SimplePath => Json::Arr(vec![Json::Str("simplePath".into())]),
        GStep::Path => Json::Arr(vec![Json::Str("path".into())]),
        GStep::Dedup => Json::Arr(vec![Json::Str("dedup".into())]),
        GStep::Limit(n) => Json::Arr(vec![Json::Str("limit".into()), Json::Num(*n as f64)]),
        GStep::Count => Json::Arr(vec![Json::Str("count".into())]),
        GStep::Values(k) => Json::Arr(vec![Json::Str("values".into()), Json::Str(k.clone())]),
        GStep::Id => Json::Arr(vec![Json::Str("id".into())]),
    }
}

/// Deserialize bytecode from the wire representation.
pub fn bytecode_from_json(j: &Json) -> Result<Vec<GStep>, String> {
    let arr = j.as_arr().ok_or("bytecode must be an array")?;
    arr.iter().map(step_from_json).collect()
}

fn parse_ids(j: &Json) -> Result<Vec<u64>, String> {
    j.as_arr().ok_or("ids must be an array")?.iter().map(|x| x.as_u64().ok_or_else(|| "bad id".to_string())).collect()
}

fn step_from_json(j: &Json) -> Result<GStep, String> {
    let a = j.as_arr().ok_or("step must be an array")?;
    let name = a.first().and_then(|x| x.as_str()).ok_or("missing step name")?;
    let arg = |i: usize| a.get(i).ok_or_else(|| format!("step {name}: missing arg {i}"));
    Ok(match name {
        "V" => GStep::V(parse_ids(arg(1)?)?),
        "E" => GStep::E(parse_ids(arg(1)?)?),
        "hasLabelPrefix" => GStep::HasLabelPrefix(arg(1)?.as_str().ok_or("bad prefix")?.to_string()),
        "has" => GStep::Has(
            arg(1)?.as_str().ok_or("bad key")?.to_string(),
            GCmp::from_name(arg(2)?.as_str().ok_or("bad cmp")?).ok_or("unknown cmp")?,
            arg(3)?.clone(),
        ),
        "outE" => GStep::OutE(arg(1)?.as_str().map(|s| s.to_string())),
        "inE" => GStep::InE(arg(1)?.as_str().map(|s| s.to_string())),
        "inV" => GStep::InV,
        "outV" => GStep::OutV,
        "repeat" => GStep::Repeat(
            bytecode_from_json(arg(1)?)?,
            arg(2)?.as_u64().ok_or("bad min")? as u32,
            arg(3)?.as_u64().ok_or("bad max")? as u32,
        ),
        "simplePath" => GStep::SimplePath,
        "path" => GStep::Path,
        "dedup" => GStep::Dedup,
        "limit" => GStep::Limit(arg(1)?.as_u64().ok_or("bad limit")?),
        "count" => GStep::Count,
        "values" => GStep::Values(arg(1)?.as_str().ok_or("bad key")?.to_string()),
        "id" => GStep::Id,
        other => return Err(format!("unknown step `{other}`")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn props(pairs: &[(&str, Json)]) -> BTreeMap<String, Json> {
        pairs.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()
    }

    fn graph() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        g.add_vertex(1, "Node:VNF:DNS", props(&[("vnf_id", Json::Num(1.0))]));
        g.add_vertex(2, "Node:VFC", props(&[("vfc_id", Json::Num(11.0))]));
        g.add_vertex(3, "Node:VM", props(&[("status", Json::Str("Green".into()))]));
        g.add_vertex(4, "Node:Host", props(&[("host_id", Json::Num(23245.0))]));
        g.add_edge(10, "Edge:Vertical:ComposedOf", 1, 2, props(&[]));
        g.add_edge(11, "Edge:Vertical:HostedOn", 2, 3, props(&[]));
        g.add_edge(12, "Edge:Vertical:HostedOn", 3, 4, props(&[]));
        g
    }

    #[test]
    fn v_haslabel_has_chain() {
        let g = graph();
        let r = evaluate(
            &g,
            &[
                GStep::V(vec![]),
                GStep::HasLabelPrefix("Node:VNF".into()),
                GStep::Has("vnf_id".into(), GCmp::Eq, Json::Num(1.0)),
                GStep::Id,
            ],
        )
        .unwrap();
        assert_eq!(r, vec![Json::Num(1.0)]);
    }

    #[test]
    fn hop_and_path() {
        let g = graph();
        let r = evaluate(&g, &[GStep::V(vec![1]), GStep::OutE(Some("Edge:Vertical".into())), GStep::InV, GStep::Path])
            .unwrap();
        assert_eq!(r.len(), 1);
        let path = r[0].get("path").unwrap().as_arr().unwrap();
        assert_eq!(path.len(), 3);
        assert_eq!(path[1].get("label").unwrap().as_str(), Some("Edge:Vertical:ComposedOf"));
        assert_eq!(path[2].get("id").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn repeat_emits_intermediate_depths() {
        let g = graph();
        // ExtendBlock: from the VNF, 1..3 Vertical hops.
        let r = evaluate(
            &g,
            &[
                GStep::V(vec![1]),
                GStep::Repeat(vec![GStep::OutE(Some("Edge:Vertical".into())), GStep::InV], 1, 3),
                GStep::Id,
            ],
        )
        .unwrap();
        // Reaches VFC (depth1), VM (depth2), Host (depth3).
        assert_eq!(r, vec![Json::Num(2.0), Json::Num(3.0), Json::Num(4.0)]);
    }

    #[test]
    fn simple_path_prunes_cycles() {
        let mut g = graph();
        g.add_edge(13, "Edge:Vertical:HostedOn", 4, 1, props(&[])); // cycle back
        let r = evaluate(
            &g,
            &[
                GStep::V(vec![1]),
                GStep::Repeat(vec![GStep::OutE(Some("Edge:Vertical".into())), GStep::InV, GStep::SimplePath], 4, 4),
                GStep::Id,
            ],
        )
        .unwrap();
        // Depth-4 walk would revisit vertex 1 → pruned.
        assert!(r.is_empty());
    }

    #[test]
    fn ine_and_outv_walk_backwards() {
        let g = graph();
        let r = evaluate(&g, &[GStep::V(vec![4]), GStep::InE(None), GStep::OutV, GStep::Id]).unwrap();
        assert_eq!(r, vec![Json::Num(3.0)]);
    }

    #[test]
    fn count_values_limit_dedup() {
        let g = graph();
        let r = evaluate(&g, &[GStep::V(vec![]), GStep::Count]).unwrap();
        assert_eq!(r, vec![Json::Num(4.0)]);
        let r = evaluate(&g, &[GStep::V(vec![3]), GStep::Values("status".into())]).unwrap();
        assert_eq!(r, vec![Json::Str("Green".into())]);
        let r = evaluate(&g, &[GStep::V(vec![]), GStep::Limit(2), GStep::Count]).unwrap();
        assert_eq!(r, vec![Json::Num(2.0)]);
    }

    #[test]
    fn bytecode_round_trip() {
        let steps = vec![
            GStep::V(vec![1, 2]),
            GStep::HasLabelPrefix("Node:VM".into()),
            GStep::Has("status".into(), GCmp::Eq, Json::Str("Green".into())),
            GStep::Repeat(vec![GStep::OutE(None), GStep::InV], 1, 6),
            GStep::SimplePath,
            GStep::Path,
        ];
        let j = bytecode_to_json(&steps);
        let text = j.to_string();
        let parsed = crate::json::parse_json(&text).unwrap();
        let back = bytecode_from_json(&parsed).unwrap();
        assert_eq!(steps, back);
    }

    #[test]
    fn traversal_must_start_with_v_or_e() {
        let g = graph();
        assert!(evaluate(&g, &[GStep::InV]).is_err());
    }
}
