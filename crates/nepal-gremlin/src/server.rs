//! The mock Gremlin server: serves bytecode requests over TCP or an
//! in-process duplex transport, streaming batched result frames.
//!
//! Serving is overload-safe: connections are admitted through a bounded
//! queue into a fixed worker pool (excess connections are shed with an
//! explicit status-503 frame carrying a retry hint), every request can run
//! under a deadline enforced by cooperative cancellation checkpoints, and
//! shutdown drains gracefully — stop accepting, finish in-flight work
//! within a drain budget, then cancel stragglers through the same token.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use nepal_obs::{FlightKind, Tracer, TRACK_SERVER};
use nepal_rpe::{CancelCause, CancelToken};
use parking_lot::RwLock;

use crate::graph::PropertyGraph;
use crate::json::Json;
use crate::protocol::{
    batch_responses, overload_response, response, status, write_frame_counted, FrameReader, ProtoError,
};
use crate::traversal::{bytecode_from_json, evaluate_cancel, EvalError};

/// Magic `requestId` that makes evaluation panic inside the worker's panic
/// barrier — the induced-fault hook used by crash-forensics drills (the
/// request is answered with status 500; the process-wide panic hook still
/// runs, so a flight-recorder snapshot is written if one is installed).
pub const CHAOS_PANIC_REQUEST_ID: &str = "__chaos_panic__";

/// Shared server-side wire counters (one instance per server, updated by
/// every connection thread).
#[derive(Debug, Default)]
pub struct ServerStats {
    pub requests: AtomicU64,
    pub frames_sent: AtomicU64,
    pub bytes_received: AtomicU64,
    pub bytes_sent: AtomicU64,
    /// Frames that failed to decode (bad mime, bad JSON, oversized).
    pub malformed_frames: AtomicU64,
    /// Requests whose evaluation panicked (answered with status 500).
    pub evaluation_panics: AtomicU64,
    /// Connections refused at admission (queue full) or dropped during
    /// drain — each answered with an explicit status-503 overload frame.
    pub shed: AtomicU64,
    /// Requests abandoned because their deadline passed (status 598).
    pub deadline_timeouts: AtomicU64,
    /// In-flight requests cancelled by drain/explicit cancel (status 598).
    pub cancelled_inflight: AtomicU64,
    /// Gauge: connections waiting for a worker right now.
    pub queue_depth: AtomicU64,
    /// Gauge: requests being evaluated right now.
    pub inflight: AtomicU64,
}

impl ServerStats {
    /// Counter snapshot as (name, value) pairs, for metric export.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("requests", self.requests.load(Ordering::Relaxed)),
            ("frames_sent", self.frames_sent.load(Ordering::Relaxed)),
            ("bytes_received", self.bytes_received.load(Ordering::Relaxed)),
            ("bytes_sent", self.bytes_sent.load(Ordering::Relaxed)),
            ("malformed_frames", self.malformed_frames.load(Ordering::Relaxed)),
            ("evaluation_panics", self.evaluation_panics.load(Ordering::Relaxed)),
            ("shed", self.shed.load(Ordering::Relaxed)),
            ("deadline_timeouts", self.deadline_timeouts.load(Ordering::Relaxed)),
            ("cancelled_inflight", self.cancelled_inflight.load(Ordering::Relaxed)),
            ("queue_depth", self.queue_depth.load(Ordering::Relaxed)),
            ("inflight", self.inflight.load(Ordering::Relaxed)),
        ]
    }
}

/// Admission-control and overload-safety knobs for a serving loop.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads — the hard cap on concurrently served connections.
    pub workers: usize,
    /// Connections allowed to wait for a worker before new arrivals are
    /// shed with a status-503 frame.
    pub queue_depth: usize,
    /// Per-request evaluation deadline (`None` = unbounded).
    pub deadline: Option<Duration>,
    /// How long a graceful drain lets in-flight work finish before
    /// cancelling stragglers through the drain token.
    pub drain: Duration,
    /// Retry hint echoed in shed frames, milliseconds.
    pub retry_after_ms: u64,
    /// Per-fingerprint statement-stats table: when attached, every served
    /// request records its wall/CPU time, result rows and outcome.
    pub stmt: Option<Arc<nepal_obs::StmtStats>>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 4,
            queue_depth: 16,
            deadline: None,
            drain: Duration::from_millis(2000),
            retry_after_ms: 250,
            stmt: None,
        }
    }
}

/// Per-connection serving controls: the drain signal pair plus the
/// per-request deadline. All fields default to "off", which reproduces the
/// legacy serve-until-EOF behavior.
#[derive(Debug, Clone, Default)]
pub struct ConnCtl {
    /// Soft drain: when set and true, the connection stops reading new
    /// requests and closes once idle (the in-flight request still runs).
    pub draining: Option<Arc<AtomicBool>>,
    /// Hard cancel: parent token tripped when the drain budget expires;
    /// in-flight evaluation observes it at its next checkpoint.
    pub cancel: Option<CancelToken>,
    /// Per-request evaluation deadline.
    pub deadline: Option<Duration>,
    /// Statement-stats table recording every served request (see
    /// [`ServeConfig::stmt`]).
    pub stmt: Option<Arc<nepal_obs::StmtStats>>,
}

impl ConnCtl {
    /// Build the per-request cancel token: a child of the drain token (so
    /// drain reaches in-flight work) whose deadline clock starts now.
    fn request_token(&self) -> Option<CancelToken> {
        match (&self.cancel, self.deadline) {
            (None, None) => None,
            (Some(parent), d) => Some(parent.child(d)),
            (None, Some(d)) => Some(CancelToken::with_deadline(d)),
        }
    }

    fn is_draining(&self) -> bool {
        self.draining.as_ref().is_some_and(|d| d.load(Ordering::SeqCst))
    }
}

/// A bidirectional byte transport (TCP stream or in-process pipe).
pub trait Transport: Read + Write + Send {}
impl<T: Read + Write + Send> Transport for T {}

/// Shared handle to a served graph.
pub type SharedGraph = Arc<RwLock<PropertyGraph>>;

/// Wrap a [`PropertyGraph`] for serving, without the caller having to
/// name the lock type.
pub fn shared_graph(pg: PropertyGraph) -> SharedGraph {
    Arc::new(RwLock::new(pg))
}

/// Handle one request message, producing the full response frame sequence.
pub fn handle_request(graph: &SharedGraph, req: &Json) -> Vec<Json> {
    handle_request_timed(graph, req, None)
}

/// [`handle_request`] optionally recording per-phase timings as
/// `(name, offset_ns, dur_ns)` triples relative to request receipt. Error
/// paths skip timing — only successfully evaluated requests report phases.
pub fn handle_request_timed(
    graph: &SharedGraph,
    req: &Json,
    timing: Option<&mut Vec<(String, u64, u64)>>,
) -> Vec<Json> {
    handle_request_cancel_timed(graph, req, None, timing).0
}

/// [`handle_request_timed`] under an optional cancel token. Returns the
/// response frames plus the cancellation cause if evaluation was abandoned
/// at a checkpoint — the caller maps the cause to the right counter. A
/// cancelled request is answered with a status-598 frame, never a partial
/// result set posing as complete.
pub fn handle_request_cancel_timed(
    graph: &SharedGraph,
    req: &Json,
    cancel: Option<&CancelToken>,
    mut timing: Option<&mut Vec<(String, u64, u64)>>,
) -> (Vec<Json>, Option<CancelCause>) {
    let t0 = timing.is_some().then(Instant::now);
    let request_id = req.get("requestId").and_then(|j| j.as_str()).unwrap_or("").to_string();
    // Chaos hook for crash-forensics drills: a request carrying this magic
    // id panics inside the worker's panic barrier, exercising the flight
    // recorder's panic-triggered snapshot path end to end while the server
    // answers 500 and lives on.
    if request_id == CHAOS_PANIC_REQUEST_ID {
        panic!("chaos: induced evaluation panic ({CHAOS_PANIC_REQUEST_ID})");
    }
    let op = req.get("op").and_then(|j| j.as_str()).unwrap_or("");
    let err = |msg: &str| (vec![response(&request_id, status::SERVER_ERROR, msg, Vec::new())], None);
    let gremlin = match req.get("args").and_then(|a| a.get("gremlin")) {
        Some(b) => b,
        None => return err("missing args.gremlin"),
    };
    // `bytecode` carries a step array; `eval` carries a textual traversal
    // (the op every Gremlin console/driver uses).
    let steps = match op {
        "bytecode" => match bytecode_from_json(gremlin) {
            Ok(s) => s,
            Err(e) => return err(&e),
        },
        "eval" => {
            let text = match gremlin {
                crate::json::Json::Str(t) => t,
                _ => return err("eval expects a string traversal"),
            };
            match crate::lang::parse_traversal(text) {
                Ok(s) => s,
                Err(e) => return err(&e.to_string()),
            }
        }
        other => return err(&format!("unsupported op `{other}`")),
    };
    if let (Some(t), Some(tm)) = (t0, timing.as_deref_mut()) {
        tm.push(("decode".to_string(), 0, t.elapsed().as_nanos() as u64));
    }
    let eval_off = t0.map(|t| t.elapsed().as_nanos() as u64);
    let g = graph.read();
    let outcome = evaluate_cancel(&g, &steps, cancel);
    if let (Some(t), Some(off), Some(tm)) = (t0, eval_off, timing) {
        tm.push(("evaluate".to_string(), off, (t.elapsed().as_nanos() as u64).saturating_sub(off)));
    }
    match outcome {
        Ok(results) => (batch_responses(&request_id, results), None),
        Err(EvalError::Cancelled(cause)) => {
            let msg = match cause {
                CancelCause::Deadline => "deadline exceeded during evaluation",
                CancelCause::Explicit => "request cancelled (server drain)",
            };
            (vec![response(&request_id, status::SERVER_TIMEOUT, msg, Vec::new())], Some(cause))
        }
        Err(EvalError::Other(e)) => err(&e),
    }
}

/// Attach a `serverTiming` object to the final frame's `result.meta` so the
/// client can graft the server's view of the request into its own trace.
pub fn attach_server_timing(frames: &mut [Json], total_ns: u64, spans: &[(String, u64, u64)]) {
    let Some(Json::Obj(m)) = frames.last_mut() else { return };
    let Some(Json::Obj(result)) = m.get_mut("result") else { return };
    let Some(Json::Obj(meta)) = result.get_mut("meta") else { return };
    let span_objs: Vec<Json> = spans
        .iter()
        .map(|(name, off, dur)| {
            Json::obj(vec![
                ("name", Json::Str(name.clone())),
                ("offset_ns", Json::Num(*off as f64)),
                ("dur_ns", Json::Num(*dur as f64)),
            ])
        })
        .collect();
    meta.insert(
        "serverTiming".into(),
        Json::obj(vec![("total_ns", Json::Num(total_ns as f64)), ("spans", Json::Arr(span_objs))]),
    );
}

/// [`handle_request`] with a panic barrier: a panicking evaluation is
/// answered with a status-500 frame instead of killing the connection
/// thread, so one poisoned request cannot take the server down.
pub fn handle_request_guarded(graph: &SharedGraph, req: &Json, stats: &ServerStats) -> Vec<Json> {
    handle_request_guarded_timed(graph, req, stats, None)
}

/// [`handle_request_guarded`] optionally recording per-phase timings.
pub fn handle_request_guarded_timed(
    graph: &SharedGraph,
    req: &Json,
    stats: &ServerStats,
    timing: Option<&mut Vec<(String, u64, u64)>>,
) -> Vec<Json> {
    handle_request_ctl(graph, req, stats, None, timing)
}

/// The full-fat request handler: panic barrier + cancel token + timings +
/// cancellation counters. Everything else delegates here.
pub fn handle_request_ctl(
    graph: &SharedGraph,
    req: &Json,
    stats: &ServerStats,
    cancel: Option<&CancelToken>,
    timing: Option<&mut Vec<(String, u64, u64)>>,
) -> Vec<Json> {
    let request_id = req.get("requestId").and_then(|j| j.as_str()).unwrap_or("").to_string();
    let t0 = Instant::now();
    stats.inflight.fetch_add(1, Ordering::Relaxed);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        handle_request_cancel_timed(graph, req, cancel, timing)
    }));
    stats.inflight.fetch_sub(1, Ordering::Relaxed);
    let frames = match result {
        Ok((frames, cause)) => {
            match cause {
                Some(CancelCause::Deadline) => {
                    stats.deadline_timeouts.fetch_add(1, Ordering::Relaxed);
                }
                Some(CancelCause::Explicit) => {
                    stats.cancelled_inflight.fetch_add(1, Ordering::Relaxed);
                }
                None => {}
            }
            frames
        }
        Err(_) => {
            stats.evaluation_panics.fetch_add(1, Ordering::Relaxed);
            vec![response(&request_id, status::SERVER_ERROR, "internal error: request evaluation panicked", Vec::new())]
        }
    };
    if nepal_obs::flight::recorder().is_enabled() {
        let code = frames
            .last()
            .and_then(|f| f.get("status"))
            .and_then(|s| s.get("code"))
            .and_then(|c| c.as_u64())
            .unwrap_or(0);
        nepal_obs::flight::emit(
            FlightKind::RequestDone,
            code,
            t0.elapsed().as_micros() as u64,
            frames.len() as u64,
            &request_id,
        );
    }
    frames
}

/// Serve one connection until EOF.
pub fn serve_connection(graph: SharedGraph, conn: impl Transport) {
    serve_connection_stats(graph, conn, &ServerStats::default())
}

/// [`serve_connection`] recording wire counters into shared stats. A frame
/// that fails to decode is answered with a status-597 error frame before
/// the connection closes (the byte stream is desynchronized past it); an
/// evaluation panic is answered with status 500 and the connection lives on.
pub fn serve_connection_stats(graph: SharedGraph, conn: impl Transport, stats: &ServerStats) {
    serve_connection_traced(graph, conn, stats, None)
}

/// [`serve_connection_stats`] with request tracing. Two independent layers:
///
/// 1. A request whose `args.trace` flag is set gets its decode/evaluate
///    phases measured and echoed back as `result.meta.serverTiming` on the
///    final frame, regardless of whether this server has a tracer — so an
///    in-process pipe still yields cross-wire traces for the *client's*
///    tracer.
/// 2. If `tracer` is given, every request also records its own server-side
///    trace (`gremlin:request` on the server track) into that tracer's ring.
pub fn serve_connection_traced(graph: SharedGraph, conn: impl Transport, stats: &ServerStats, tracer: Option<&Tracer>) {
    serve_connection_ctl(graph, conn, stats, tracer, &ConnCtl::default())
}

/// [`serve_connection_traced`] under serving controls: an incremental
/// [`FrameReader`] (stall-tolerant on transports with a read timeout),
/// per-request deadline tokens, and drain observation between requests.
pub fn serve_connection_ctl(
    graph: SharedGraph,
    mut conn: impl Transport,
    stats: &ServerStats,
    tracer: Option<&Tracer>,
    ctl: &ConnCtl,
) {
    let mut reader = FrameReader::new();
    loop {
        // Pull the next request; between read timeouts, observe drain so
        // idle connections release their worker promptly.
        let req = loop {
            if ctl.is_draining() {
                return;
            }
            match reader.poll_frame(&mut conn) {
                Ok(Some((r, n))) => {
                    stats.bytes_received.fetch_add(n, Ordering::Relaxed);
                    break r;
                }
                Ok(None) => continue, // read timed out mid-wait; re-check drain
                Err(ProtoError::BadFrame(m)) => {
                    // Decodable framing failed: tell the peer why, then close —
                    // we can no longer find the next frame boundary.
                    stats.malformed_frames.fetch_add(1, Ordering::Relaxed);
                    let frame = response("", status::MALFORMED_REQUEST, &format!("malformed frame: {m}"), Vec::new());
                    let _ = write_frame_counted(&mut conn, &frame);
                    return;
                }
                Err(_) => return, // EOF or I/O error → close connection
            }
        };
        stats.requests.fetch_add(1, Ordering::Relaxed);
        let want_timing = matches!(req.get("args").and_then(|a| a.get("trace")), Some(Json::Bool(true)));
        let srv_span = match tracer {
            Some(t) => t.start_trace_on("gremlin:request", TRACK_SERVER),
            None => nepal_obs::SpanHandle::none(),
        };
        let measure = want_timing || srv_span.is_active();
        let metered = ctl.stmt.as_ref().is_some_and(|s| s.is_enabled());
        let t0 = (measure || metered).then(Instant::now);
        // Worker-thread CPU delta around handling: evaluation runs on this
        // thread, so the pair brackets the request's actual CPU cost.
        let c0 = metered.then(nepal_obs::thread_cpu_ns);
        let mut timing: Vec<(String, u64, u64)> = Vec::new();
        let timing_slot = if measure { Some(&mut timing) } else { None };
        let token = ctl.request_token();
        let mut frames = handle_request_ctl(&graph, &req, stats, token.as_ref(), timing_slot);
        if let (true, Some(stmt), Some(t)) = (metered, &ctl.stmt, t0) {
            let cpu_ns = c0.map(|c| nepal_obs::thread_cpu_ns().saturating_sub(c)).unwrap_or(0);
            record_stmt(stmt, &req, &frames, t.elapsed().as_nanos() as u64, cpu_ns);
        }
        if let Some(t) = t0 {
            let total_ns = t.elapsed().as_nanos() as u64;
            if srv_span.is_active() {
                let rid = req.get("requestId").and_then(|j| j.as_str()).unwrap_or("");
                srv_span.attr("requestId", rid);
                srv_span.attr("total_ns", total_ns);
                for (name, off, dur) in &timing {
                    srv_span.remote_span(name, *off, *dur, TRACK_SERVER, Vec::new());
                }
            }
            if want_timing {
                attach_server_timing(&mut frames, total_ns, &timing);
            }
        }
        drop(srv_span);
        for frame in frames {
            match write_frame_counted(&mut conn, &frame) {
                Ok(n) => {
                    stats.frames_sent.fetch_add(1, Ordering::Relaxed);
                    stats.bytes_sent.fetch_add(n, Ordering::Relaxed);
                }
                Err(_) => return,
            }
        }
    }
}

/// Record one served request into the per-fingerprint statement table.
/// The statement shape is the request's op plus its gremlin payload, rows
/// are the result items streamed back across all frames, and the outcome
/// is derived from the final frame's status code.
fn record_stmt(stmt: &nepal_obs::StmtStats, req: &Json, frames: &[Json], wall_ns: u64, cpu_ns: u64) {
    let op = req.get("op").and_then(|j| j.as_str()).unwrap_or("bytecode");
    let gremlin = req.get("args").and_then(|a| a.get("gremlin")).map(|g| g.to_string()).unwrap_or_default();
    let text = format!("gremlin {op} {gremlin}");
    let rows: u64 = frames
        .iter()
        .filter_map(|f| f.get("result").and_then(|r| r.get("data")).and_then(|d| d.as_arr()))
        .map(|a| a.len() as u64)
        .sum();
    let code =
        frames.last().and_then(|f| f.get("status")).and_then(|s| s.get("code")).and_then(|c| c.as_u64()).unwrap_or(0)
            as u32;
    let outcome = match code {
        status::SUCCESS | status::NO_CONTENT | status::PARTIAL_CONTENT => nepal_obs::StmtOutcome::Ok,
        status::SERVER_TIMEOUT => nepal_obs::StmtOutcome::Deadline,
        _ => nepal_obs::StmtOutcome::Error,
    };
    let meter = nepal_obs::ResourceMeter::new();
    meter.add_cpu_ns(cpu_ns);
    stmt.record(nepal_obs::fingerprint(&text), &text, outcome, wall_ns, rows, Some(&meter.snapshot()));
}

/// Bounded connection queue: the accept loop pushes, workers pop. `push`
/// fails (returning the stream) when full — the caller sheds it.
struct ConnQueue {
    q: Mutex<VecDeque<TcpStream>>,
    cv: Condvar,
    closed: AtomicBool,
    cap: usize,
    /// Live depth mirror (`stats.queue_depth`), written under the queue
    /// lock so the gauge can never be left stale by a push/pop store race.
    stats: Arc<ServerStats>,
}

impl ConnQueue {
    fn new(cap: usize, stats: Arc<ServerStats>) -> ConnQueue {
        ConnQueue { q: Mutex::new(VecDeque::new()), cv: Condvar::new(), closed: AtomicBool::new(false), cap, stats }
    }

    fn push(&self, s: TcpStream) -> Result<(), TcpStream> {
        let mut q = self.q.lock().unwrap();
        if q.len() >= self.cap || self.closed.load(Ordering::SeqCst) {
            return Err(s);
        }
        q.push_back(s);
        self.stats.queue_depth.store(q.len() as u64, Ordering::Relaxed);
        drop(q);
        self.cv.notify_one();
        Ok(())
    }

    /// Block until a connection is available or the queue is closed and
    /// empty (worker shutdown). The wait is bounded so workers also notice
    /// `closed` flipped without a notify.
    fn pop(&self) -> Option<TcpStream> {
        let mut q = self.q.lock().unwrap();
        loop {
            if let Some(s) = q.pop_front() {
                self.stats.queue_depth.store(q.len() as u64, Ordering::Relaxed);
                return Some(s);
            }
            if self.closed.load(Ordering::SeqCst) {
                return None;
            }
            let (guard, _) = self.cv.wait_timeout(q, Duration::from_millis(50)).unwrap();
            q = guard;
        }
    }

    fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        self.cv.notify_all();
    }

    fn drain_pending(&self) -> Vec<TcpStream> {
        self.q.lock().unwrap().drain(..).collect()
    }
}

/// Outcome of a graceful drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Every worker finished its in-flight work within the drain budget.
    pub clean: bool,
    /// Queued (never-served) connections shed during drain.
    pub shed_queued: u64,
}

/// A running TCP Gremlin server: bounded-queue admission into a fixed
/// worker pool, per-request deadlines, graceful drain on shutdown.
pub struct GremlinServer {
    pub addr: std::net::SocketAddr,
    /// Wire counters aggregated across all connections.
    pub stats: Arc<ServerStats>,
    accept_handle: Option<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
    shutdown: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
    drain_cancel: CancelToken,
    queue: Arc<ConnQueue>,
    drain_budget: Duration,
    retry_after_ms: u64,
}

impl GremlinServer {
    /// Bind to `127.0.0.1:0` (ephemeral port) and serve `graph` with the
    /// default admission limits.
    pub fn start(graph: SharedGraph) -> std::io::Result<GremlinServer> {
        GremlinServer::start_addr(graph, "127.0.0.1:0", None)
    }

    /// [`GremlinServer::start`] on an explicit address, optionally recording
    /// per-request server-side traces into `tracer`'s ring.
    pub fn start_addr(graph: SharedGraph, bind: &str, tracer: Option<Tracer>) -> std::io::Result<GremlinServer> {
        GremlinServer::start_cfg(graph, bind, tracer, ServeConfig::default())
    }

    /// [`GremlinServer::start_addr`] with explicit serving limits.
    pub fn start_cfg(
        graph: SharedGraph,
        bind: &str,
        tracer: Option<Tracer>,
        cfg: ServeConfig,
    ) -> std::io::Result<GremlinServer> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let draining = Arc::new(AtomicBool::new(false));
        let drain_cancel = CancelToken::new();
        let stats = Arc::new(ServerStats::default());
        let queue = Arc::new(ConnQueue::new(cfg.queue_depth.max(1), stats.clone()));
        listener.set_nonblocking(true)?;

        // Accept loop: admit into the bounded queue or shed with a 503.
        let sd = shutdown.clone();
        let q = queue.clone();
        let st = stats.clone();
        let retry_ms = cfg.retry_after_ms;
        let accept_handle = thread::spawn(move || {
            loop {
                if sd.load(Ordering::SeqCst) {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nodelay(true).ok();
                        stream.set_nonblocking(false).ok();
                        // Bounded read so serving loops can interleave
                        // drain checks; bounded write so a stalled client
                        // can't wedge a worker (or this accept loop).
                        stream.set_read_timeout(Some(Duration::from_millis(50))).ok();
                        stream.set_write_timeout(Some(Duration::from_millis(1000))).ok();
                        if let Err(mut s) = q.push(stream) {
                            shed_connection(&mut s, &st, retry_ms);
                        } else if nepal_obs::flight::recorder().is_enabled() {
                            nepal_obs::flight::emit(
                                FlightKind::AdmissionAccept,
                                st.queue_depth.load(Ordering::Relaxed),
                                0,
                                0,
                                "accept",
                            );
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        });

        // Worker pool: each thread serves one connection at a time.
        let ctl = ConnCtl {
            draining: Some(draining.clone()),
            cancel: Some(drain_cancel.clone()),
            deadline: cfg.deadline,
            stmt: cfg.stmt.clone(),
        };
        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let g = graph.clone();
                let st = stats.clone();
                let q = queue.clone();
                let tr = tracer.clone();
                let ctl = ctl.clone();
                thread::spawn(move || {
                    while let Some(stream) = q.pop() {
                        serve_connection_ctl(g.clone(), stream, &st, tr.as_ref(), &ctl);
                    }
                })
            })
            .collect();

        Ok(GremlinServer {
            addr,
            stats,
            accept_handle: Some(accept_handle),
            workers,
            shutdown,
            draining,
            drain_cancel,
            queue,
            drain_budget: cfg.drain,
            retry_after_ms: cfg.retry_after_ms,
        })
    }

    /// Connect a new client stream to this server.
    pub fn connect(&self) -> std::io::Result<TcpStream> {
        let s = TcpStream::connect(self.addr)?;
        s.set_nodelay(true)?;
        Ok(s)
    }

    /// Graceful shutdown: stop accepting, shed queued connections with
    /// overload frames, let in-flight work finish within `budget`, then
    /// cancel stragglers through the drain token and join every worker.
    pub fn drain(&mut self, budget: Duration) -> DrainReport {
        let t0 = Instant::now();
        nepal_obs::flight::emit(
            FlightKind::DrainStart,
            budget.as_millis() as u64,
            self.stats.inflight.load(Ordering::Relaxed),
            self.stats.queue_depth.load(Ordering::Relaxed),
            "drain",
        );
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        self.queue.close();
        let mut shed_queued = 0u64;
        for mut s in self.queue.drain_pending() {
            shed_connection(&mut s, &self.stats, self.retry_after_ms);
            shed_queued += 1;
        }
        self.stats.queue_depth.store(0, Ordering::Relaxed);
        // Soft drain: idle connections close at their next read timeout;
        // in-flight requests keep running.
        self.draining.store(true, Ordering::SeqCst);
        let deadline = Instant::now() + budget;
        let mut clean = true;
        while self.workers.iter().any(|w| !w.is_finished()) {
            if Instant::now() >= deadline {
                // Hard drain: cancel in-flight evaluation cooperatively.
                clean = false;
                self.drain_cancel.cancel();
                break;
            }
            thread::sleep(Duration::from_millis(5));
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        nepal_obs::flight::emit(
            FlightKind::DrainEnd,
            clean as u64,
            shed_queued,
            t0.elapsed().as_millis() as u64,
            if clean { "clean" } else { "forced" },
        );
        DrainReport { clean, shed_queued }
    }
}

/// Answer a shed connection with an explicit 503 overload frame (best
/// effort — the client may already be gone) and count it.
fn shed_connection(s: &mut TcpStream, stats: &ServerStats, retry_after_ms: u64) {
    stats.shed.fetch_add(1, Ordering::Relaxed);
    nepal_obs::flight::emit(
        FlightKind::AdmissionShed,
        stats.queue_depth.load(Ordering::Relaxed),
        retry_after_ms,
        0,
        "queue-full",
    );
    s.set_write_timeout(Some(Duration::from_millis(200))).ok();
    let frame = overload_response("", "server overloaded: connection queue full", retry_after_ms);
    let _ = write_frame_counted(s, &frame);
}

impl Drop for GremlinServer {
    fn drop(&mut self) {
        if self.accept_handle.is_some() || !self.workers.is_empty() {
            self.drain(self.drain_budget);
        }
    }
}

/// In-process duplex transport built from crossbeam channels — the
/// zero-socket path used by unit tests and the embedded backend.
pub struct PipeEnd {
    tx: crossbeam::channel::Sender<Vec<u8>>,
    rx: crossbeam::channel::Receiver<Vec<u8>>,
    buf: Vec<u8>,
}

/// Create a connected pair of in-process transports.
pub fn pipe_pair() -> (PipeEnd, PipeEnd) {
    let (atx, arx) = crossbeam::channel::unbounded();
    let (btx, brx) = crossbeam::channel::unbounded();
    (PipeEnd { tx: atx, rx: brx, buf: Vec::new() }, PipeEnd { tx: btx, rx: arx, buf: Vec::new() })
}

impl Read for PipeEnd {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        while self.buf.is_empty() {
            match self.rx.recv() {
                Ok(chunk) => self.buf = chunk,
                Err(_) => return Ok(0), // EOF
            }
        }
        let n = out.len().min(self.buf.len());
        out[..n].copy_from_slice(&self.buf[..n]);
        self.buf.drain(..n);
        Ok(n)
    }
}

impl Write for PipeEnd {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.tx.send(data.to_vec()).map_err(|_| std::io::Error::new(std::io::ErrorKind::BrokenPipe, "peer gone"))?;
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Spawn an in-process server thread over a pipe; returns the client end.
pub fn serve_in_process(graph: SharedGraph) -> PipeEnd {
    serve_in_process_stats(graph).0
}

/// [`serve_in_process`] also returning the server's shared wire counters.
pub fn serve_in_process_stats(graph: SharedGraph) -> (PipeEnd, Arc<ServerStats>) {
    let (client, server) = pipe_pair();
    let stats = Arc::new(ServerStats::default());
    let st = stats.clone();
    thread::spawn(move || serve_connection_stats(graph, server, &st));
    (client, stats)
}

/// [`serve_in_process_stats`] with the server recording its own traces
/// into `tracer`'s ring.
pub fn serve_in_process_traced(graph: SharedGraph, tracer: Tracer) -> (PipeEnd, Arc<ServerStats>) {
    let (client, server) = pipe_pair();
    let stats = Arc::new(ServerStats::default());
    let st = stats.clone();
    thread::spawn(move || serve_connection_traced(graph, server, &st, Some(&tracer)));
    (client, stats)
}

/// [`serve_in_process_stats`] under explicit serving controls (deadline,
/// drain signals) — the zero-socket path for overload/fault tests.
pub fn serve_in_process_ctl(graph: SharedGraph, ctl: ConnCtl) -> (PipeEnd, Arc<ServerStats>) {
    let (client, server) = pipe_pair();
    let stats = Arc::new(ServerStats::default());
    let st = stats.clone();
    thread::spawn(move || serve_connection_ctl(graph, server, &st, None, &ctl));
    (client, stats)
}

#[allow(unused)]
fn _proto_error_is_used(e: ProtoError) -> String {
    e.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::protocol::{read_frame, request, write_frame};
    use crate::traversal::{bytecode_to_json, GStep};
    use std::collections::BTreeMap;

    fn shared() -> SharedGraph {
        let mut g = PropertyGraph::new();
        g.add_vertex(1, "Node:VM", BTreeMap::new());
        g.add_vertex(2, "Node:Host", BTreeMap::new());
        g.add_edge(3, "Edge:HostedOn", 1, 2, BTreeMap::new());
        Arc::new(RwLock::new(g))
    }

    #[test]
    fn handles_bytecode_request() {
        let g = shared();
        let req = request("q1", bytecode_to_json(&[GStep::V(vec![]), GStep::Count]));
        let frames = handle_request(&g, &req);
        assert_eq!(frames.len(), 1);
        let data = frames[0].get("result").unwrap().get("data").unwrap().as_arr().unwrap();
        assert_eq!(data[0], Json::Num(2.0));
    }

    #[test]
    fn bad_op_and_bad_bytecode_are_500() {
        let g = shared();
        let mut req = request("q1", Json::Arr(vec![]));
        if let Json::Obj(m) = &mut req {
            m.insert("op".into(), Json::Str("eval".into()));
        }
        let frames = handle_request(&g, &req);
        assert_eq!(frames[0].get("status").unwrap().get("code").unwrap().as_u64(), Some(500));
        let req2 = request("q2", Json::Arr(vec![Json::Arr(vec![Json::Str("nope".into())])]));
        let frames2 = handle_request(&g, &req2);
        assert_eq!(frames2[0].get("status").unwrap().get("code").unwrap().as_u64(), Some(500));
    }

    #[test]
    fn in_process_pipe_round_trip() {
        let g = shared();
        let mut client = serve_in_process(g);
        let req = request("q1", bytecode_to_json(&[GStep::V(vec![1]), GStep::Id]));
        write_frame(&mut client, &req).unwrap();
        let resp = read_frame(&mut client).unwrap();
        assert_eq!(resp.get("requestId").unwrap().as_str(), Some("q1"));
        let data = resp.get("result").unwrap().get("data").unwrap().as_arr().unwrap();
        assert_eq!(data[0], Json::Num(1.0));
    }

    #[test]
    fn served_requests_land_in_statement_stats() {
        let g = shared();
        let stmt = Arc::new(nepal_obs::StmtStats::new(8));
        let ctl = ConnCtl { stmt: Some(stmt.clone()), ..ConnCtl::default() };
        let (mut client, _) = serve_in_process_ctl(g, ctl);
        let req = request("q1", bytecode_to_json(&[GStep::V(vec![]), GStep::Count]));
        write_frame(&mut client, &req).unwrap();
        let _ = read_frame(&mut client).unwrap();
        // Same shape again: aggregates under one fingerprint.
        let req2 = request("q2", bytecode_to_json(&[GStep::V(vec![]), GStep::Count]));
        write_frame(&mut client, &req2).unwrap();
        let _ = read_frame(&mut client).unwrap();
        drop(client);
        let top = stmt.top(5, nepal_obs::StmtSort::Calls);
        assert_eq!(top.len(), 1, "one fingerprint for the repeated shape");
        assert_eq!(top[0].calls, 2);
        assert_eq!(top[0].rows, 2, "each count() returns one row");
        assert!(top[0].text.starts_with("gremlin bytecode"), "{}", top[0].text);
        assert!(top[0].wall_ns_total > 0);
    }

    #[test]
    fn tcp_server_round_trip() {
        let g = shared();
        let server = GremlinServer::start(g).unwrap();
        let mut conn = server.connect().unwrap();
        let req = request("q1", bytecode_to_json(&[GStep::V(vec![]), GStep::Count]));
        write_frame(&mut conn, &req).unwrap();
        let resp = read_frame(&mut conn).unwrap();
        let code = resp.get("status").unwrap().get("code").unwrap().as_u64();
        assert_eq!(code, Some(200));
        // A second request on the same connection (session reuse).
        let req2 = request("q2", bytecode_to_json(&[GStep::V(vec![2]), GStep::Id]));
        write_frame(&mut conn, &req2).unwrap();
        let resp2 = read_frame(&mut conn).unwrap();
        assert_eq!(resp2.get("requestId").unwrap().as_str(), Some("q2"));
    }
}
