//! The mock Gremlin server: serves bytecode requests over TCP or an
//! in-process duplex transport, streaming batched result frames.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use nepal_obs::{Tracer, TRACK_SERVER};
use parking_lot::RwLock;

use crate::graph::PropertyGraph;
use crate::json::Json;
use crate::protocol::{batch_responses, read_frame_counted, response, status, write_frame_counted, ProtoError};
use crate::traversal::{bytecode_from_json, evaluate};

/// Shared server-side wire counters (one instance per server, updated by
/// every connection thread).
#[derive(Debug, Default)]
pub struct ServerStats {
    pub requests: AtomicU64,
    pub frames_sent: AtomicU64,
    pub bytes_received: AtomicU64,
    pub bytes_sent: AtomicU64,
    /// Frames that failed to decode (bad mime, bad JSON, oversized).
    pub malformed_frames: AtomicU64,
    /// Requests whose evaluation panicked (answered with status 500).
    pub evaluation_panics: AtomicU64,
}

impl ServerStats {
    /// Counter snapshot as (name, value) pairs, for metric export.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("requests", self.requests.load(Ordering::Relaxed)),
            ("frames_sent", self.frames_sent.load(Ordering::Relaxed)),
            ("bytes_received", self.bytes_received.load(Ordering::Relaxed)),
            ("bytes_sent", self.bytes_sent.load(Ordering::Relaxed)),
            ("malformed_frames", self.malformed_frames.load(Ordering::Relaxed)),
            ("evaluation_panics", self.evaluation_panics.load(Ordering::Relaxed)),
        ]
    }
}

/// A bidirectional byte transport (TCP stream or in-process pipe).
pub trait Transport: Read + Write + Send {}
impl<T: Read + Write + Send> Transport for T {}

/// Shared handle to a served graph.
pub type SharedGraph = Arc<RwLock<PropertyGraph>>;

/// Handle one request message, producing the full response frame sequence.
pub fn handle_request(graph: &SharedGraph, req: &Json) -> Vec<Json> {
    handle_request_timed(graph, req, None)
}

/// [`handle_request`] optionally recording per-phase timings as
/// `(name, offset_ns, dur_ns)` triples relative to request receipt. Error
/// paths skip timing — only successfully evaluated requests report phases.
pub fn handle_request_timed(
    graph: &SharedGraph,
    req: &Json,
    mut timing: Option<&mut Vec<(String, u64, u64)>>,
) -> Vec<Json> {
    let t0 = timing.is_some().then(Instant::now);
    let request_id = req.get("requestId").and_then(|j| j.as_str()).unwrap_or("").to_string();
    let op = req.get("op").and_then(|j| j.as_str()).unwrap_or("");
    let gremlin = match req.get("args").and_then(|a| a.get("gremlin")) {
        Some(b) => b,
        None => return vec![response(&request_id, status::SERVER_ERROR, "missing args.gremlin", Vec::new())],
    };
    // `bytecode` carries a step array; `eval` carries a textual traversal
    // (the op every Gremlin console/driver uses).
    let steps = match op {
        "bytecode" => match bytecode_from_json(gremlin) {
            Ok(s) => s,
            Err(e) => return vec![response(&request_id, status::SERVER_ERROR, &e, Vec::new())],
        },
        "eval" => {
            let text = match gremlin {
                crate::json::Json::Str(t) => t,
                _ => {
                    return vec![response(
                        &request_id,
                        status::SERVER_ERROR,
                        "eval expects a string traversal",
                        Vec::new(),
                    )]
                }
            };
            match crate::lang::parse_traversal(text) {
                Ok(s) => s,
                Err(e) => return vec![response(&request_id, status::SERVER_ERROR, &e.to_string(), Vec::new())],
            }
        }
        other => {
            return vec![response(&request_id, status::SERVER_ERROR, &format!("unsupported op `{other}`"), Vec::new())]
        }
    };
    if let (Some(t), Some(tm)) = (t0, timing.as_deref_mut()) {
        tm.push(("decode".to_string(), 0, t.elapsed().as_nanos() as u64));
    }
    let eval_off = t0.map(|t| t.elapsed().as_nanos() as u64);
    let g = graph.read();
    let outcome = evaluate(&g, &steps);
    if let (Some(t), Some(off), Some(tm)) = (t0, eval_off, timing) {
        tm.push(("evaluate".to_string(), off, (t.elapsed().as_nanos() as u64).saturating_sub(off)));
    }
    match outcome {
        Ok(results) => batch_responses(&request_id, results),
        Err(e) => vec![response(&request_id, status::SERVER_ERROR, &e, Vec::new())],
    }
}

/// Attach a `serverTiming` object to the final frame's `result.meta` so the
/// client can graft the server's view of the request into its own trace.
pub fn attach_server_timing(frames: &mut [Json], total_ns: u64, spans: &[(String, u64, u64)]) {
    let Some(Json::Obj(m)) = frames.last_mut() else { return };
    let Some(Json::Obj(result)) = m.get_mut("result") else { return };
    let Some(Json::Obj(meta)) = result.get_mut("meta") else { return };
    let span_objs: Vec<Json> = spans
        .iter()
        .map(|(name, off, dur)| {
            Json::obj(vec![
                ("name", Json::Str(name.clone())),
                ("offset_ns", Json::Num(*off as f64)),
                ("dur_ns", Json::Num(*dur as f64)),
            ])
        })
        .collect();
    meta.insert(
        "serverTiming".into(),
        Json::obj(vec![("total_ns", Json::Num(total_ns as f64)), ("spans", Json::Arr(span_objs))]),
    );
}

/// [`handle_request`] with a panic barrier: a panicking evaluation is
/// answered with a status-500 frame instead of killing the connection
/// thread, so one poisoned request cannot take the server down.
pub fn handle_request_guarded(graph: &SharedGraph, req: &Json, stats: &ServerStats) -> Vec<Json> {
    handle_request_guarded_timed(graph, req, stats, None)
}

/// [`handle_request_guarded`] optionally recording per-phase timings.
pub fn handle_request_guarded_timed(
    graph: &SharedGraph,
    req: &Json,
    stats: &ServerStats,
    timing: Option<&mut Vec<(String, u64, u64)>>,
) -> Vec<Json> {
    let request_id = req.get("requestId").and_then(|j| j.as_str()).unwrap_or("").to_string();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handle_request_timed(graph, req, timing)));
    match result {
        Ok(frames) => frames,
        Err(_) => {
            stats.evaluation_panics.fetch_add(1, Ordering::Relaxed);
            vec![response(&request_id, status::SERVER_ERROR, "internal error: request evaluation panicked", Vec::new())]
        }
    }
}

/// Serve one connection until EOF.
pub fn serve_connection(graph: SharedGraph, conn: impl Transport) {
    serve_connection_stats(graph, conn, &ServerStats::default())
}

/// [`serve_connection`] recording wire counters into shared stats. A frame
/// that fails to decode is answered with a status-597 error frame before
/// the connection closes (the byte stream is desynchronized past it); an
/// evaluation panic is answered with status 500 and the connection lives on.
pub fn serve_connection_stats(graph: SharedGraph, conn: impl Transport, stats: &ServerStats) {
    serve_connection_traced(graph, conn, stats, None)
}

/// [`serve_connection_stats`] with request tracing. Two independent layers:
///
/// 1. A request whose `args.trace` flag is set gets its decode/evaluate
///    phases measured and echoed back as `result.meta.serverTiming` on the
///    final frame, regardless of whether this server has a tracer — so an
///    in-process pipe still yields cross-wire traces for the *client's*
///    tracer.
/// 2. If `tracer` is given, every request also records its own server-side
///    trace (`gremlin:request` on the server track) into that tracer's ring.
pub fn serve_connection_traced(
    graph: SharedGraph,
    mut conn: impl Transport,
    stats: &ServerStats,
    tracer: Option<&Tracer>,
) {
    loop {
        let req = match read_frame_counted(&mut conn) {
            Ok((r, n)) => {
                stats.bytes_received.fetch_add(n, Ordering::Relaxed);
                r
            }
            Err(ProtoError::BadFrame(m)) => {
                // Decodable framing failed: tell the peer why, then close —
                // we can no longer find the next frame boundary.
                stats.malformed_frames.fetch_add(1, Ordering::Relaxed);
                let frame = response("", status::MALFORMED_REQUEST, &format!("malformed frame: {m}"), Vec::new());
                let _ = write_frame_counted(&mut conn, &frame);
                return;
            }
            Err(_) => return, // EOF or I/O error → close connection
        };
        stats.requests.fetch_add(1, Ordering::Relaxed);
        let want_timing = matches!(req.get("args").and_then(|a| a.get("trace")), Some(Json::Bool(true)));
        let srv_span = match tracer {
            Some(t) => t.start_trace_on("gremlin:request", TRACK_SERVER),
            None => nepal_obs::SpanHandle::none(),
        };
        let measure = want_timing || srv_span.is_active();
        let t0 = measure.then(Instant::now);
        let mut timing: Vec<(String, u64, u64)> = Vec::new();
        let timing_slot = if measure { Some(&mut timing) } else { None };
        let mut frames = handle_request_guarded_timed(&graph, &req, stats, timing_slot);
        if let Some(t) = t0 {
            let total_ns = t.elapsed().as_nanos() as u64;
            if srv_span.is_active() {
                let rid = req.get("requestId").and_then(|j| j.as_str()).unwrap_or("");
                srv_span.attr("requestId", rid);
                srv_span.attr("total_ns", total_ns);
                for (name, off, dur) in &timing {
                    srv_span.remote_span(name, *off, *dur, TRACK_SERVER, Vec::new());
                }
            }
            if want_timing {
                attach_server_timing(&mut frames, total_ns, &timing);
            }
        }
        drop(srv_span);
        for frame in frames {
            match write_frame_counted(&mut conn, &frame) {
                Ok(n) => {
                    stats.frames_sent.fetch_add(1, Ordering::Relaxed);
                    stats.bytes_sent.fetch_add(n, Ordering::Relaxed);
                }
                Err(_) => return,
            }
        }
    }
}

/// A running TCP Gremlin server.
pub struct GremlinServer {
    pub addr: std::net::SocketAddr,
    /// Wire counters aggregated across all connections.
    pub stats: Arc<ServerStats>,
    handle: Option<thread::JoinHandle<()>>,
    shutdown: Arc<std::sync::atomic::AtomicBool>,
}

impl GremlinServer {
    /// Bind to `127.0.0.1:0` (ephemeral port) and serve `graph` with a
    /// thread per connection.
    pub fn start(graph: SharedGraph) -> std::io::Result<GremlinServer> {
        GremlinServer::start_addr(graph, "127.0.0.1:0", None)
    }

    /// [`GremlinServer::start`] on an explicit address, optionally recording
    /// per-request server-side traces into `tracer`'s ring.
    pub fn start_addr(graph: SharedGraph, bind: &str, tracer: Option<Tracer>) -> std::io::Result<GremlinServer> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());
        let sd = shutdown.clone();
        let server_stats = stats.clone();
        listener.set_nonblocking(true)?;
        let handle = thread::spawn(move || {
            let mut workers: Vec<thread::JoinHandle<()>> = Vec::new();
            loop {
                if sd.load(std::sync::atomic::Ordering::SeqCst) {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nodelay(true).ok();
                        stream.set_nonblocking(false).ok();
                        let g = graph.clone();
                        let st = server_stats.clone();
                        let tr = tracer.clone();
                        workers.push(thread::spawn(move || serve_connection_traced(g, stream, &st, tr.as_ref())));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        thread::sleep(std::time::Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
            // Workers exit when their peers hang up.
        });
        Ok(GremlinServer { addr, stats, handle: Some(handle), shutdown })
    }

    /// Connect a new client stream to this server.
    pub fn connect(&self) -> std::io::Result<TcpStream> {
        let s = TcpStream::connect(self.addr)?;
        s.set_nodelay(true)?;
        Ok(s)
    }
}

impl Drop for GremlinServer {
    fn drop(&mut self) {
        self.shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// In-process duplex transport built from crossbeam channels — the
/// zero-socket path used by unit tests and the embedded backend.
pub struct PipeEnd {
    tx: crossbeam::channel::Sender<Vec<u8>>,
    rx: crossbeam::channel::Receiver<Vec<u8>>,
    buf: Vec<u8>,
}

/// Create a connected pair of in-process transports.
pub fn pipe_pair() -> (PipeEnd, PipeEnd) {
    let (atx, arx) = crossbeam::channel::unbounded();
    let (btx, brx) = crossbeam::channel::unbounded();
    (PipeEnd { tx: atx, rx: brx, buf: Vec::new() }, PipeEnd { tx: btx, rx: arx, buf: Vec::new() })
}

impl Read for PipeEnd {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        while self.buf.is_empty() {
            match self.rx.recv() {
                Ok(chunk) => self.buf = chunk,
                Err(_) => return Ok(0), // EOF
            }
        }
        let n = out.len().min(self.buf.len());
        out[..n].copy_from_slice(&self.buf[..n]);
        self.buf.drain(..n);
        Ok(n)
    }
}

impl Write for PipeEnd {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.tx.send(data.to_vec()).map_err(|_| std::io::Error::new(std::io::ErrorKind::BrokenPipe, "peer gone"))?;
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Spawn an in-process server thread over a pipe; returns the client end.
pub fn serve_in_process(graph: SharedGraph) -> PipeEnd {
    serve_in_process_stats(graph).0
}

/// [`serve_in_process`] also returning the server's shared wire counters.
pub fn serve_in_process_stats(graph: SharedGraph) -> (PipeEnd, Arc<ServerStats>) {
    let (client, server) = pipe_pair();
    let stats = Arc::new(ServerStats::default());
    let st = stats.clone();
    thread::spawn(move || serve_connection_stats(graph, server, &st));
    (client, stats)
}

/// [`serve_in_process_stats`] with the server recording its own traces
/// into `tracer`'s ring.
pub fn serve_in_process_traced(graph: SharedGraph, tracer: Tracer) -> (PipeEnd, Arc<ServerStats>) {
    let (client, server) = pipe_pair();
    let stats = Arc::new(ServerStats::default());
    let st = stats.clone();
    thread::spawn(move || serve_connection_traced(graph, server, &st, Some(&tracer)));
    (client, stats)
}

#[allow(unused)]
fn _proto_error_is_used(e: ProtoError) -> String {
    e.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::protocol::{read_frame, request, write_frame};
    use crate::traversal::{bytecode_to_json, GStep};
    use std::collections::BTreeMap;

    fn shared() -> SharedGraph {
        let mut g = PropertyGraph::new();
        g.add_vertex(1, "Node:VM", BTreeMap::new());
        g.add_vertex(2, "Node:Host", BTreeMap::new());
        g.add_edge(3, "Edge:HostedOn", 1, 2, BTreeMap::new());
        Arc::new(RwLock::new(g))
    }

    #[test]
    fn handles_bytecode_request() {
        let g = shared();
        let req = request("q1", bytecode_to_json(&[GStep::V(vec![]), GStep::Count]));
        let frames = handle_request(&g, &req);
        assert_eq!(frames.len(), 1);
        let data = frames[0].get("result").unwrap().get("data").unwrap().as_arr().unwrap();
        assert_eq!(data[0], Json::Num(2.0));
    }

    #[test]
    fn bad_op_and_bad_bytecode_are_500() {
        let g = shared();
        let mut req = request("q1", Json::Arr(vec![]));
        if let Json::Obj(m) = &mut req {
            m.insert("op".into(), Json::Str("eval".into()));
        }
        let frames = handle_request(&g, &req);
        assert_eq!(frames[0].get("status").unwrap().get("code").unwrap().as_u64(), Some(500));
        let req2 = request("q2", Json::Arr(vec![Json::Arr(vec![Json::Str("nope".into())])]));
        let frames2 = handle_request(&g, &req2);
        assert_eq!(frames2[0].get("status").unwrap().get("code").unwrap().as_u64(), Some(500));
    }

    #[test]
    fn in_process_pipe_round_trip() {
        let g = shared();
        let mut client = serve_in_process(g);
        let req = request("q1", bytecode_to_json(&[GStep::V(vec![1]), GStep::Id]));
        write_frame(&mut client, &req).unwrap();
        let resp = read_frame(&mut client).unwrap();
        assert_eq!(resp.get("requestId").unwrap().as_str(), Some("q1"));
        let data = resp.get("result").unwrap().get("data").unwrap().as_arr().unwrap();
        assert_eq!(data[0], Json::Num(1.0));
    }

    #[test]
    fn tcp_server_round_trip() {
        let g = shared();
        let server = GremlinServer::start(g).unwrap();
        let mut conn = server.connect().unwrap();
        let req = request("q1", bytecode_to_json(&[GStep::V(vec![]), GStep::Count]));
        write_frame(&mut conn, &req).unwrap();
        let resp = read_frame(&mut conn).unwrap();
        let code = resp.get("status").unwrap().get("code").unwrap().as_u64();
        assert_eq!(code, Some(200));
        // A second request on the same connection (session reuse).
        let req2 = request("q2", bytecode_to_json(&[GStep::V(vec![2]), GStep::Id]));
        write_frame(&mut conn, &req2).unwrap();
        let resp2 = read_frame(&mut conn).unwrap();
        assert_eq!(resp2.get("requestId").unwrap().as_str(), Some("q2"));
    }
}
