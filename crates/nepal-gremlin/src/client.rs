//! The Gremlin client: submits bytecode and assembles streamed results.
//!
//! Also provides [`Channel`], the result-forwarding primitive from §5.2:
//! "we have implemented channels for our Python framework which collect
//! results from one or more Gremlin queries and supplies them to one or
//! more Gremlin queries" — the glue that implements `Union` operators when
//! evaluating a Nepal plan against a Gremlin backend.

use nepal_obs::{SpanHandle, TRACK_SERVER};

use crate::json::Json;
use crate::protocol::{read_frame_counted, request, status, write_frame_counted, ProtoError};
use crate::server::Transport;
use crate::traversal::{bytecode_to_json, GStep};

/// Cumulative wire-level counters for one client connection.
#[derive(Debug, Default, Clone, Copy)]
pub struct WireStats {
    /// Requests submitted (== round trips).
    pub requests: u64,
    pub frames_sent: u64,
    pub frames_received: u64,
    pub bytes_sent: u64,
    pub bytes_received: u64,
    /// Status-206 frames received (streamed result batches before the
    /// terminal frame).
    pub partial_batches: u64,
}

/// A Gremlin client over any transport.
pub struct GremlinClient<T: Transport> {
    conn: T,
    next_id: u64,
    /// Number of submitted requests (round trips) — the metric the
    /// ExtendBlock optimization exists to reduce.
    pub round_trips: u64,
    /// Wire-level counters, cumulative over the connection's lifetime.
    pub wire: WireStats,
}

impl<T: Transport> GremlinClient<T> {
    pub fn new(conn: T) -> Self {
        GremlinClient { conn, next_id: 0, round_trips: 0, wire: WireStats::default() }
    }

    /// Snapshot of the connection's wire counters.
    pub fn wire_stats(&self) -> WireStats {
        self.wire
    }

    /// Submit a bytecode traversal and collect the full result stream.
    pub fn submit(&mut self, steps: &[GStep]) -> Result<Vec<Json>, ProtoError> {
        self.submit_spanned(steps, &SpanHandle::none())
    }

    /// [`GremlinClient::submit`] under a live span: the round trip becomes
    /// a `gremlin:round-trip` child span, the server is asked to time the
    /// request, and its reported phases are grafted into the trace as
    /// remote spans on the server track (correlated by request id).
    pub fn submit_spanned(&mut self, steps: &[GStep], span: &SpanHandle) -> Result<Vec<Json>, ProtoError> {
        let req_body = bytecode_to_json(steps);
        self.submit_raw("bytecode", req_body, span)
    }

    /// Submit a textual traversal (`g.V()…`) via the `eval` op.
    pub fn submit_text(&mut self, traversal: &str) -> Result<Vec<Json>, ProtoError> {
        self.submit_text_spanned(traversal, &SpanHandle::none())
    }

    /// [`GremlinClient::submit_text`] under a live span.
    pub fn submit_text_spanned(&mut self, traversal: &str, span: &SpanHandle) -> Result<Vec<Json>, ProtoError> {
        self.submit_raw("eval", Json::Str(traversal.to_string()), span)
    }

    fn submit_raw(&mut self, op: &str, gremlin: Json, span: &SpanHandle) -> Result<Vec<Json>, ProtoError> {
        self.next_id += 1;
        self.round_trips += 1;
        self.wire.requests += 1;
        let id = format!("req-{}", self.next_id);
        let rt_span = span.child("gremlin:round-trip");
        rt_span.attr("request_id", &id);
        rt_span.attr("op", op);
        let mut req = request(&id, gremlin);
        if let Json::Obj(m) = &mut req {
            m.insert("op".into(), Json::Str(op.to_string()));
            // Ask the server for per-request timings so one trace covers
            // both sides of the wire.
            if rt_span.is_active() {
                if let Some(Json::Obj(args)) = m.get_mut("args") {
                    args.insert("trace".into(), Json::Bool(true));
                }
            }
        }
        let sent = write_frame_counted(&mut self.conn, &req)?;
        self.wire.frames_sent += 1;
        self.wire.bytes_sent += sent;
        let mut out = Vec::new();
        let mut frames = 0u64;
        let mut bytes = 0u64;
        loop {
            let (frame, received) = read_frame_counted(&mut self.conn)?;
            self.wire.frames_received += 1;
            self.wire.bytes_received += received;
            frames += 1;
            bytes += received;
            let rid = frame.get("requestId").and_then(|j| j.as_str()).unwrap_or("");
            let code = frame.get("status").and_then(|s| s.get("code")).and_then(|c| c.as_u64()).unwrap_or(0) as u32;
            let msg =
                frame.get("status").and_then(|s| s.get("message")).and_then(|m| m.as_str()).unwrap_or("").to_string();
            // Admission sheds happen before the server reads the request,
            // so the overload frame can't echo our request id — classify
            // it by status before the id check.
            if code == status::OVERLOADED {
                let retry_after_ms = frame
                    .get("status")
                    .and_then(|s| s.get("attributes"))
                    .and_then(|a| a.get("retryAfterMs"))
                    .and_then(|v| v.as_u64())
                    .unwrap_or(0);
                return Err(ProtoError::Overloaded { message: msg, retry_after_ms });
            }
            if rid != id {
                return Err(ProtoError::BadFrame(format!("response for `{rid}`, expected `{id}`")));
            }
            match code {
                status::PARTIAL_CONTENT | status::SUCCESS => {
                    if code == status::PARTIAL_CONTENT {
                        self.wire.partial_batches += 1;
                    }
                    if let Some(data) = frame.get("result").and_then(|r| r.get("data")).and_then(|d| d.as_arr()) {
                        out.extend(data.iter().cloned());
                    }
                    if code == status::SUCCESS {
                        absorb_server_timing(&frame, &rt_span, &id);
                        rt_span.attr("frames_received", frames);
                        rt_span.attr("bytes_received", bytes);
                        rt_span.attr("results", out.len());
                        return Ok(out);
                    }
                }
                status::NO_CONTENT => {
                    absorb_server_timing(&frame, &rt_span, &id);
                    rt_span.attr("frames_received", frames);
                    rt_span.attr("bytes_received", bytes);
                    return Ok(out);
                }
                status::SERVER_TIMEOUT => return Err(ProtoError::Timeout(msg)),
                _ => return Err(ProtoError::Server(msg)),
            }
        }
    }
}

/// Bounded jittered exponential backoff for transient failures.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (first try included). 1 = no retries.
    pub max_attempts: u32,
    /// Backoff before retry k (1-based) is `base * 2^(k-1)` capped at
    /// `max_delay`, jittered down by up to half.
    pub base_delay: std::time::Duration,
    pub max_delay: std::time::Duration,
    /// Seed for the deterministic jitter sequence.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_delay: std::time::Duration::from_millis(20),
            max_delay: std::time::Duration::from_millis(500),
            jitter_seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry `attempt` (1-based): exponential, capped,
    /// jittered down by up to 50% so synchronized clients spread out.
    /// Deterministic in (seed, attempt) — tests can assert exact values.
    pub fn backoff(&self, attempt: u32) -> std::time::Duration {
        let exp = self.base_delay.saturating_mul(1u32 << attempt.saturating_sub(1).min(16));
        let capped = exp.min(self.max_delay);
        // splitmix64 round over (seed, attempt) for the jitter fraction.
        let mut z = self.jitter_seed.wrapping_add(attempt as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let jitter_permille = (z % 500) as u32; // 0..=499 → up to 50% off
        capped.mul_f64(1.0 - jitter_permille as f64 / 1000.0)
    }
}

/// A [`GremlinClient`] that reconnects and retries transient failures
/// (connect/IO errors, explicit 503 sheds) with jittered exponential
/// backoff. Only safe for idempotent requests — which every read-only
/// traversal here is. Non-transient errors (malformed frames, evaluation
/// errors, deadline timeouts) surface immediately.
pub struct RetryingClient<T: Transport, F: FnMut() -> std::io::Result<T>> {
    connect: F,
    client: Option<GremlinClient<T>>,
    policy: RetryPolicy,
    /// Retries performed (excludes first attempts) — the retry counter
    /// metric source.
    pub retries: u64,
    /// Sheds (503) observed across all attempts.
    pub sheds_seen: u64,
}

impl<T: Transport, F: FnMut() -> std::io::Result<T>> RetryingClient<T, F> {
    pub fn new(connect: F, policy: RetryPolicy) -> Self {
        RetryingClient { connect, client: None, policy, retries: 0, sheds_seen: 0 }
    }

    /// Wire counters of the current underlying connection, if any.
    pub fn wire_stats(&self) -> Option<WireStats> {
        self.client.as_ref().map(|c| c.wire)
    }

    /// Submit with retries. On a transient failure the connection is torn
    /// down, the policy's backoff (or the server's `Retry-After` hint, if
    /// larger) is slept, and the request is resubmitted on a fresh
    /// connection — up to `max_attempts` total tries.
    pub fn submit(&mut self, steps: &[GStep]) -> Result<Vec<Json>, ProtoError> {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let result = self.try_once(steps);
            let err = match result {
                Ok(out) => return Ok(out),
                Err(e) => e,
            };
            if matches!(err, ProtoError::Overloaded { .. }) {
                self.sheds_seen += 1;
            }
            if !err.is_transient() || attempt >= self.policy.max_attempts {
                return Err(err);
            }
            // A failed transport is not trustworthy for the next attempt.
            self.client = None;
            self.retries += 1;
            let mut delay = self.policy.backoff(attempt);
            if let ProtoError::Overloaded { retry_after_ms, .. } = &err {
                delay = delay.max(std::time::Duration::from_millis(*retry_after_ms));
            }
            std::thread::sleep(delay);
        }
    }

    fn try_once(&mut self, steps: &[GStep]) -> Result<Vec<Json>, ProtoError> {
        if self.client.is_none() {
            let conn = (self.connect)().map_err(ProtoError::Io)?;
            self.client = Some(GremlinClient::new(conn));
        }
        self.client.as_mut().expect("client just ensured").submit(steps)
    }
}

/// Graft the server's echoed `result.meta.serverTiming` phases into the
/// round-trip span as remote spans on the server track, placed relative to
/// the round trip's start.
fn absorb_server_timing(frame: &Json, rt_span: &SpanHandle, request_id: &str) {
    if !rt_span.is_active() {
        return;
    }
    let Some(st) = frame.get("result").and_then(|r| r.get("meta")).and_then(|m| m.get("serverTiming")) else {
        return;
    };
    if let Some(total) = st.get("total_ns").and_then(|t| t.as_u64()) {
        rt_span.attr("server_total_ns", total);
    }
    if let Some(spans) = st.get("spans").and_then(|s| s.as_arr()) {
        for s in spans {
            let name = s.get("name").and_then(|n| n.as_str()).unwrap_or("server");
            let off = s.get("offset_ns").and_then(|v| v.as_u64()).unwrap_or(0);
            let dur = s.get("dur_ns").and_then(|v| v.as_u64()).unwrap_or(0);
            rt_span.remote_span(name, off, dur, TRACK_SERVER, vec![("requestId".to_string(), request_id.to_string())]);
        }
    }
}

/// A channel collects results from one or more queries and feeds them to
/// the next query in the plan (the paper's `Union` implementation).
#[derive(Debug, Default, Clone)]
pub struct Channel {
    items: Vec<Json>,
}

impl Channel {
    pub fn new() -> Channel {
        Channel::default()
    }

    /// Collect results from a query.
    pub fn collect(&mut self, results: Vec<Json>) {
        self.items.extend(results);
    }

    /// Drain the channel's contents for the next query.
    pub fn drain(&mut self) -> Vec<Json> {
        std::mem::take(&mut self.items)
    }

    /// Distinct element ids currently in the channel.
    pub fn ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> =
            self.items.iter().filter_map(|j| j.get("id").and_then(|i| i.as_u64()).or_else(|| j.as_u64())).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PropertyGraph;
    use crate::server::{serve_in_process, GremlinServer};
    use parking_lot::RwLock;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    fn shared() -> Arc<RwLock<PropertyGraph>> {
        let mut g = PropertyGraph::new();
        for i in 0..200 {
            g.add_vertex(i, "Node:VM", BTreeMap::new());
        }
        Arc::new(RwLock::new(g))
    }

    #[test]
    fn client_assembles_partial_frames() {
        // 200 vertices → 4 frames of ≤64 at the protocol layer.
        let mut client = GremlinClient::new(serve_in_process(shared()));
        let results = client.submit(&[GStep::V(vec![]), GStep::Id]).unwrap();
        assert_eq!(results.len(), 200);
        assert_eq!(client.round_trips, 1);
    }

    #[test]
    fn server_error_surfaces_as_proto_error() {
        let mut client = GremlinClient::new(serve_in_process(shared()));
        let err = client.submit(&[GStep::InV]).unwrap_err();
        assert!(matches!(err, ProtoError::Server(_)));
        // The connection survives the error.
        let ok = client.submit(&[GStep::V(vec![0]), GStep::Id]).unwrap();
        assert_eq!(ok.len(), 1);
    }

    #[test]
    fn works_over_tcp_too() {
        let server = GremlinServer::start(shared()).unwrap();
        let mut client = GremlinClient::new(server.connect().unwrap());
        let results = client.submit(&[GStep::V(vec![]), GStep::Limit(5), GStep::Id]).unwrap();
        assert_eq!(results.len(), 5);
    }

    #[test]
    fn backoff_is_bounded_and_jittered() {
        let p = RetryPolicy::default();
        let mut prev_uncapped = std::time::Duration::ZERO;
        for attempt in 1..=8 {
            let d = p.backoff(attempt);
            assert!(d <= p.max_delay, "attempt {attempt}: {d:?} exceeds cap");
            // Jitter keeps at least half the nominal delay.
            let nominal = p.base_delay.saturating_mul(1 << (attempt - 1)).min(p.max_delay);
            assert!(d >= nominal / 2, "attempt {attempt}: {d:?} under-jittered");
            prev_uncapped = prev_uncapped.max(d);
        }
        // Deterministic per (seed, attempt).
        assert_eq!(p.backoff(3), p.backoff(3));
        let other = RetryPolicy { jitter_seed: 7, ..RetryPolicy::default() };
        assert!((1..=8).any(|a| other.backoff(a) != p.backoff(a)), "different seeds should jitter differently");
    }

    #[test]
    fn retrying_client_survives_connect_failures() {
        let g = shared();
        let mut failures_left = 2;
        let mut client = RetryingClient::new(
            move || {
                if failures_left > 0 {
                    failures_left -= 1;
                    return Err(std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "flaky"));
                }
                Ok(serve_in_process(g.clone()))
            },
            RetryPolicy {
                max_attempts: 4,
                base_delay: std::time::Duration::from_millis(1),
                max_delay: std::time::Duration::from_millis(2),
                ..RetryPolicy::default()
            },
        );
        let results = client.submit(&[GStep::V(vec![]), GStep::Count]).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(client.retries, 2);
    }

    #[test]
    fn retrying_client_gives_up_after_max_attempts() {
        let mut client: RetryingClient<crate::server::PipeEnd, _> = RetryingClient::new(
            || Err(std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "down")),
            RetryPolicy {
                max_attempts: 3,
                base_delay: std::time::Duration::from_millis(1),
                max_delay: std::time::Duration::from_millis(1),
                ..RetryPolicy::default()
            },
        );
        let err = client.submit(&[GStep::V(vec![]), GStep::Count]).unwrap_err();
        assert!(matches!(err, ProtoError::Io(_)));
        assert_eq!(client.retries, 2); // 3 attempts = 2 retries
    }

    #[test]
    fn retrying_client_does_not_retry_evaluation_errors() {
        let g = shared();
        let mut client = RetryingClient::new(move || Ok(serve_in_process(g.clone())), RetryPolicy::default());
        // InV without V() is a server-side evaluation error: permanent.
        let err = client.submit(&[GStep::InV]).unwrap_err();
        assert!(matches!(err, ProtoError::Server(_)));
        assert_eq!(client.retries, 0);
    }

    #[test]
    fn channel_collects_and_feeds() {
        let mut ch = Channel::new();
        ch.collect(vec![Json::obj(vec![("id", Json::Num(3.0))]), Json::Num(1.0)]);
        ch.collect(vec![Json::Num(3.0)]);
        assert_eq!(ch.len(), 3);
        assert_eq!(ch.ids(), vec![1, 3]);
        assert_eq!(ch.drain().len(), 3);
        assert!(ch.is_empty());
    }
}
