//! The Gremlin client: submits bytecode and assembles streamed results.
//!
//! Also provides [`Channel`], the result-forwarding primitive from §5.2:
//! "we have implemented channels for our Python framework which collect
//! results from one or more Gremlin queries and supplies them to one or
//! more Gremlin queries" — the glue that implements `Union` operators when
//! evaluating a Nepal plan against a Gremlin backend.

use nepal_obs::{SpanHandle, TRACK_SERVER};

use crate::json::Json;
use crate::protocol::{read_frame_counted, request, status, write_frame_counted, ProtoError};
use crate::server::Transport;
use crate::traversal::{bytecode_to_json, GStep};

/// Cumulative wire-level counters for one client connection.
#[derive(Debug, Default, Clone, Copy)]
pub struct WireStats {
    /// Requests submitted (== round trips).
    pub requests: u64,
    pub frames_sent: u64,
    pub frames_received: u64,
    pub bytes_sent: u64,
    pub bytes_received: u64,
    /// Status-206 frames received (streamed result batches before the
    /// terminal frame).
    pub partial_batches: u64,
}

/// A Gremlin client over any transport.
pub struct GremlinClient<T: Transport> {
    conn: T,
    next_id: u64,
    /// Number of submitted requests (round trips) — the metric the
    /// ExtendBlock optimization exists to reduce.
    pub round_trips: u64,
    /// Wire-level counters, cumulative over the connection's lifetime.
    pub wire: WireStats,
}

impl<T: Transport> GremlinClient<T> {
    pub fn new(conn: T) -> Self {
        GremlinClient { conn, next_id: 0, round_trips: 0, wire: WireStats::default() }
    }

    /// Snapshot of the connection's wire counters.
    pub fn wire_stats(&self) -> WireStats {
        self.wire
    }

    /// Submit a bytecode traversal and collect the full result stream.
    pub fn submit(&mut self, steps: &[GStep]) -> Result<Vec<Json>, ProtoError> {
        self.submit_spanned(steps, &SpanHandle::none())
    }

    /// [`GremlinClient::submit`] under a live span: the round trip becomes
    /// a `gremlin:round-trip` child span, the server is asked to time the
    /// request, and its reported phases are grafted into the trace as
    /// remote spans on the server track (correlated by request id).
    pub fn submit_spanned(&mut self, steps: &[GStep], span: &SpanHandle) -> Result<Vec<Json>, ProtoError> {
        let req_body = bytecode_to_json(steps);
        self.submit_raw("bytecode", req_body, span)
    }

    /// Submit a textual traversal (`g.V()…`) via the `eval` op.
    pub fn submit_text(&mut self, traversal: &str) -> Result<Vec<Json>, ProtoError> {
        self.submit_text_spanned(traversal, &SpanHandle::none())
    }

    /// [`GremlinClient::submit_text`] under a live span.
    pub fn submit_text_spanned(&mut self, traversal: &str, span: &SpanHandle) -> Result<Vec<Json>, ProtoError> {
        self.submit_raw("eval", Json::Str(traversal.to_string()), span)
    }

    fn submit_raw(&mut self, op: &str, gremlin: Json, span: &SpanHandle) -> Result<Vec<Json>, ProtoError> {
        self.next_id += 1;
        self.round_trips += 1;
        self.wire.requests += 1;
        let id = format!("req-{}", self.next_id);
        let rt_span = span.child("gremlin:round-trip");
        rt_span.attr("request_id", &id);
        rt_span.attr("op", op);
        let mut req = request(&id, gremlin);
        if let Json::Obj(m) = &mut req {
            m.insert("op".into(), Json::Str(op.to_string()));
            // Ask the server for per-request timings so one trace covers
            // both sides of the wire.
            if rt_span.is_active() {
                if let Some(Json::Obj(args)) = m.get_mut("args") {
                    args.insert("trace".into(), Json::Bool(true));
                }
            }
        }
        let sent = write_frame_counted(&mut self.conn, &req)?;
        self.wire.frames_sent += 1;
        self.wire.bytes_sent += sent;
        let mut out = Vec::new();
        let mut frames = 0u64;
        let mut bytes = 0u64;
        loop {
            let (frame, received) = read_frame_counted(&mut self.conn)?;
            self.wire.frames_received += 1;
            self.wire.bytes_received += received;
            frames += 1;
            bytes += received;
            let rid = frame.get("requestId").and_then(|j| j.as_str()).unwrap_or("");
            if rid != id {
                return Err(ProtoError::BadFrame(format!("response for `{rid}`, expected `{id}`")));
            }
            let code = frame.get("status").and_then(|s| s.get("code")).and_then(|c| c.as_u64()).unwrap_or(0) as u32;
            let msg =
                frame.get("status").and_then(|s| s.get("message")).and_then(|m| m.as_str()).unwrap_or("").to_string();
            match code {
                status::PARTIAL_CONTENT | status::SUCCESS => {
                    if code == status::PARTIAL_CONTENT {
                        self.wire.partial_batches += 1;
                    }
                    if let Some(data) = frame.get("result").and_then(|r| r.get("data")).and_then(|d| d.as_arr()) {
                        out.extend(data.iter().cloned());
                    }
                    if code == status::SUCCESS {
                        absorb_server_timing(&frame, &rt_span, &id);
                        rt_span.attr("frames_received", frames);
                        rt_span.attr("bytes_received", bytes);
                        rt_span.attr("results", out.len());
                        return Ok(out);
                    }
                }
                status::NO_CONTENT => {
                    absorb_server_timing(&frame, &rt_span, &id);
                    rt_span.attr("frames_received", frames);
                    rt_span.attr("bytes_received", bytes);
                    return Ok(out);
                }
                _ => return Err(ProtoError::Server(msg)),
            }
        }
    }
}

/// Graft the server's echoed `result.meta.serverTiming` phases into the
/// round-trip span as remote spans on the server track, placed relative to
/// the round trip's start.
fn absorb_server_timing(frame: &Json, rt_span: &SpanHandle, request_id: &str) {
    if !rt_span.is_active() {
        return;
    }
    let Some(st) = frame.get("result").and_then(|r| r.get("meta")).and_then(|m| m.get("serverTiming")) else {
        return;
    };
    if let Some(total) = st.get("total_ns").and_then(|t| t.as_u64()) {
        rt_span.attr("server_total_ns", total);
    }
    if let Some(spans) = st.get("spans").and_then(|s| s.as_arr()) {
        for s in spans {
            let name = s.get("name").and_then(|n| n.as_str()).unwrap_or("server");
            let off = s.get("offset_ns").and_then(|v| v.as_u64()).unwrap_or(0);
            let dur = s.get("dur_ns").and_then(|v| v.as_u64()).unwrap_or(0);
            rt_span.remote_span(name, off, dur, TRACK_SERVER, vec![("requestId".to_string(), request_id.to_string())]);
        }
    }
}

/// A channel collects results from one or more queries and feeds them to
/// the next query in the plan (the paper's `Union` implementation).
#[derive(Debug, Default, Clone)]
pub struct Channel {
    items: Vec<Json>,
}

impl Channel {
    pub fn new() -> Channel {
        Channel::default()
    }

    /// Collect results from a query.
    pub fn collect(&mut self, results: Vec<Json>) {
        self.items.extend(results);
    }

    /// Drain the channel's contents for the next query.
    pub fn drain(&mut self) -> Vec<Json> {
        std::mem::take(&mut self.items)
    }

    /// Distinct element ids currently in the channel.
    pub fn ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> =
            self.items.iter().filter_map(|j| j.get("id").and_then(|i| i.as_u64()).or_else(|| j.as_u64())).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PropertyGraph;
    use crate::server::{serve_in_process, GremlinServer};
    use parking_lot::RwLock;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    fn shared() -> Arc<RwLock<PropertyGraph>> {
        let mut g = PropertyGraph::new();
        for i in 0..200 {
            g.add_vertex(i, "Node:VM", BTreeMap::new());
        }
        Arc::new(RwLock::new(g))
    }

    #[test]
    fn client_assembles_partial_frames() {
        // 200 vertices → 4 frames of ≤64 at the protocol layer.
        let mut client = GremlinClient::new(serve_in_process(shared()));
        let results = client.submit(&[GStep::V(vec![]), GStep::Id]).unwrap();
        assert_eq!(results.len(), 200);
        assert_eq!(client.round_trips, 1);
    }

    #[test]
    fn server_error_surfaces_as_proto_error() {
        let mut client = GremlinClient::new(serve_in_process(shared()));
        let err = client.submit(&[GStep::InV]).unwrap_err();
        assert!(matches!(err, ProtoError::Server(_)));
        // The connection survives the error.
        let ok = client.submit(&[GStep::V(vec![0]), GStep::Id]).unwrap();
        assert_eq!(ok.len(), 1);
    }

    #[test]
    fn works_over_tcp_too() {
        let server = GremlinServer::start(shared()).unwrap();
        let mut client = GremlinClient::new(server.connect().unwrap());
        let results = client.submit(&[GStep::V(vec![]), GStep::Limit(5), GStep::Id]).unwrap();
        assert_eq!(results.len(), 5);
    }

    #[test]
    fn channel_collects_and_feeds() {
        let mut ch = Channel::new();
        ch.collect(vec![Json::obj(vec![("id", Json::Num(3.0))]), Json::Num(1.0)]);
        ch.collect(vec![Json::Num(3.0)]);
        assert_eq!(ch.len(), 3);
        assert_eq!(ch.ids(), vec![1, 3]);
        assert_eq!(ch.drain().len(), 3);
        assert!(ch.is_empty());
    }
}
