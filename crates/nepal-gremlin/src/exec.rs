//! Gremlin-backend evaluation of RPE plans.
//!
//! The client-side framework of §5.2: `Select` and `Extend` operators are
//! sent to the server as traversals, results are collected by the
//! management code (channels), and the NFA walk proceeds client-side over
//! the fetched adjacency. The `ExtendBlock` fast path recognizes simple
//! repetition payloads and ships them as a single `repeat(...)` traversal,
//! "keeping the data in the Gremlin database for multiple operators
//! (avoiding data transfer overheads), and performing loop unrolling".

use std::collections::{BTreeMap, HashMap, HashSet};

use nepal_graph::Uid;
use nepal_obs::SpanHandle;
use nepal_rpe::{BoundAtom, BoundPred, EvalOptions, Label, Norm, Pathway, RpePlan, Seeds};
use nepal_schema::{ClassKind, Schema, Ts, Value};

use crate::client::GremlinClient;
use crate::graph::label_matches_prefix;
use crate::json::{json_to_value, Json};
use crate::load::OPEN_TS;
use crate::protocol::ProtoError;
use crate::server::Transport;
use crate::traversal::{GCmp, GStep};

/// Temporal scope supported by the Gremlin backend (see `load`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GremlinTime {
    Current,
    AsOf(Ts),
}

/// Evaluation result plus the number of protocol round trips.
#[derive(Debug)]
pub struct GremlinExecResult {
    pub pathways: Vec<Pathway>,
    pub round_trips: u64,
}

/// Cached info about a fetched element.
#[derive(Debug, Clone)]
struct ElemInfo {
    is_node: bool,
    label: String,
    props: BTreeMap<String, Value>,
    src: u64,
    dst: u64,
    sys_from: Ts,
    sys_to: Ts,
}

impl ElemInfo {
    fn from_json(j: &Json) -> Option<(u64, ElemInfo)> {
        let id = j.get("id")?.as_u64()?;
        let is_node = j.get("type")?.as_str()? == "vertex";
        let label = j.get("label")?.as_str()?.to_string();
        let mut props = BTreeMap::new();
        let mut sys_from = 0;
        let mut sys_to = OPEN_TS;
        if let Some(Json::Obj(m)) = j.get("properties") {
            for (k, v) in m {
                match k.as_str() {
                    "sys_from" => sys_from = v.as_i64().unwrap_or(0),
                    "sys_to" => sys_to = v.as_i64().unwrap_or(OPEN_TS),
                    _ => {
                        props.insert(k.clone(), json_to_value(v));
                    }
                }
            }
        }
        let src = j.get("outV").and_then(|x| x.as_u64()).unwrap_or(0);
        let dst = j.get("inV").and_then(|x| x.as_u64()).unwrap_or(0);
        Some((id, ElemInfo { is_node, label, props, src, dst, sys_from, sys_to }))
    }

    fn alive(&self, time: GremlinTime) -> bool {
        match time {
            GremlinTime::Current => self.sys_to >= OPEN_TS,
            GremlinTime::AsOf(t) => self.sys_from <= t && t < self.sys_to,
        }
    }
}

/// Evaluate one predicate against name-keyed properties (mirrors
/// [`BoundPred::eval`], which indexes by layout position).
fn pred_by_name(props: &BTreeMap<String, Value>, p: &BoundPred) -> bool {
    match props.get(&p.field_name) {
        None => false,
        Some(v) => {
            let fields = [v.clone()];
            let probe = BoundPred {
                field_idx: 0,
                field_name: p.field_name.clone(),
                sub_path: p.sub_path.clone(),
                op: p.op,
                value: p.value.clone(),
            };
            probe.eval(&fields)
        }
    }
}

struct GremlinEval<'a, T: Transport> {
    client: &'a mut GremlinClient<T>,
    plan: &'a RpePlan,
    time: GremlinTime,
    /// Label-prefix per atom occurrence.
    prefixes: Vec<String>,
    elems: HashMap<u64, ElemInfo>,
    out_cache: HashMap<u64, Vec<(u64, u64)>>,
    in_cache: HashMap<u64, Vec<(u64, u64)>>,
    /// Parent span for all round trips this evaluation performs.
    span: &'a SpanHandle,
}

impl<'a, T: Transport> GremlinEval<'a, T> {
    fn alive_steps(&self) -> Vec<GStep> {
        match self.time {
            GremlinTime::Current => vec![GStep::Has("sys_to".into(), GCmp::Gte, Json::Num(OPEN_TS as f64))],
            GremlinTime::AsOf(t) => vec![
                GStep::Has("sys_from".into(), GCmp::Lte, Json::Num(t as f64)),
                GStep::Has("sys_to".into(), GCmp::Gt, Json::Num(t as f64)),
            ],
        }
    }

    /// `Select`: fetch anchor candidates via a hasLabelPrefix traversal,
    /// pushing equality predicates down as `has()` steps.
    fn select(&mut self, atom_idx: u32) -> Result<Vec<u64>, ProtoError> {
        let atom = &self.plan.atoms[atom_idx as usize];
        let mut steps: Vec<GStep> = if atom.is_node { vec![GStep::V(vec![])] } else { vec![GStep::E(vec![])] };
        steps.push(GStep::HasLabelPrefix(self.prefixes[atom_idx as usize].clone()));
        for p in &atom.preds {
            if p.op == nepal_rpe::CmpOp::Eq {
                if let Some(j) = scalar_json(&p.value) {
                    steps.push(GStep::Has(p.field_name.clone(), GCmp::Eq, j));
                }
            }
        }
        steps.extend(self.alive_steps());
        let sel_span = self.span.child("Select");
        sel_span.attr("atom", &atom.display);
        let results = self.client.submit_spanned(&steps, &sel_span)?;
        let mut ids = Vec::new();
        for r in &results {
            if let Some((id, info)) = ElemInfo::from_json(r) {
                // Verify remaining predicates client-side.
                if atom.preds.iter().all(|p| pred_by_name(&info.props, p)) {
                    ids.push(id);
                    self.elems.insert(id, info);
                }
            }
        }
        sel_span.attr("rows_in", results.len());
        sel_span.attr("rows_out", ids.len());
        Ok(ids)
    }

    /// Batched adjacency fetch: one traversal per direction per frontier.
    fn fetch_adj(&mut self, ids: &[u64], outgoing: bool) -> Result<(), ProtoError> {
        let missing: Vec<u64> = ids
            .iter()
            .copied()
            .filter(|id| if outgoing { !self.out_cache.contains_key(id) } else { !self.in_cache.contains_key(id) })
            .collect();
        if missing.is_empty() {
            return Ok(());
        }
        for &id in &missing {
            if outgoing {
                self.out_cache.entry(id).or_default();
            } else {
                self.in_cache.entry(id).or_default();
            }
        }
        let hop = if outgoing { GStep::OutE(None) } else { GStep::InE(None) };
        let next = if outgoing { GStep::InV } else { GStep::OutV };
        let steps = vec![GStep::V(missing.clone()), hop, next, GStep::Path];
        let adj_span = self.span.child(if outgoing { "Extend(fwd)" } else { "Extend(bwd)" });
        adj_span.attr("frontier", missing.len());
        let results = self.client.submit_spanned(&steps, &adj_span)?;
        for r in &results {
            let Some(path) = r.get("path").and_then(|p| p.as_arr()) else { continue };
            if path.len() != 3 {
                continue;
            }
            let Some((vid, vinfo)) = ElemInfo::from_json(&path[0]) else { continue };
            let Some((eid, einfo)) = ElemInfo::from_json(&path[1]) else { continue };
            let Some((oid, oinfo)) = ElemInfo::from_json(&path[2]) else { continue };
            self.elems.entry(vid).or_insert(vinfo);
            self.elems.entry(eid).or_insert(einfo);
            self.elems.entry(oid).or_insert(oinfo);
            let cache = if outgoing { &mut self.out_cache } else { &mut self.in_cache };
            cache.entry(vid).or_default().push((eid, oid));
        }
        Ok(())
    }

    /// Does a fetched element satisfy a label under the time scope?
    fn matches(&self, id: u64, label: Label) -> bool {
        let Some(info) = self.elems.get(&id) else { return false };
        if !info.alive(self.time) {
            return false;
        }
        match label {
            Label::AnyNode => info.is_node,
            Label::AnyEdge => !info.is_node,
            Label::Atom(a) => {
                let atom = &self.plan.atoms[a as usize];
                atom.is_node == info.is_node
                    && label_matches_prefix(&info.label, &self.prefixes[a as usize])
                    && atom.preds.iter().all(|p| pred_by_name(&info.props, p))
            }
        }
    }

    fn step_states(&self, states: &[u32], id: u64, forwards: bool) -> Vec<u32> {
        let mut next = Vec::new();
        for &s in states {
            let trans: &[(Label, u32)] =
                if forwards { &self.plan.nfa.trans[s as usize] } else { &self.plan.nfa.rev[s as usize] };
            for &(label, t) in trans {
                if self.matches(id, label) && !next.contains(&t) {
                    next.push(t);
                }
            }
        }
        next
    }

    /// DFS in one direction, batching adjacency fetches per depth level.
    fn search(
        &mut self,
        init_path: Vec<u64>,
        init_states: Vec<u32>,
        forwards: bool,
        cap: usize,
        out: &mut Vec<Vec<u64>>,
    ) -> Result<(), ProtoError> {
        let mut frontier = vec![(init_path, init_states)];
        while !frontier.is_empty() {
            // Emit acceptances.
            for (path, states) in &frontier {
                let ok = if forwards {
                    states.iter().any(|&s| self.plan.nfa.accepts[s as usize])
                } else {
                    states.contains(&self.plan.nfa.start)
                };
                if ok {
                    out.push(path.clone());
                }
            }
            // Batch-fetch adjacency for every frontier head.
            let heads: Vec<u64> =
                frontier.iter().filter(|(p, _)| p.len() + 2 <= cap).map(|(p, _)| *p.last().unwrap()).collect();
            self.fetch_adj(&heads, forwards)?;
            let mut next_frontier = Vec::new();
            for (path, states) in frontier {
                if path.len() + 2 > cap {
                    continue;
                }
                let head = *path.last().unwrap();
                let adj = if forwards {
                    self.out_cache.get(&head).cloned().unwrap_or_default()
                } else {
                    self.in_cache.get(&head).cloned().unwrap_or_default()
                };
                for (eid, oid) in adj {
                    if path.contains(&eid) || path.contains(&oid) {
                        continue;
                    }
                    let s1 = self.step_states(&states, eid, forwards);
                    if s1.is_empty() {
                        continue;
                    }
                    let s2 = self.step_states(&s1, oid, forwards);
                    if s2.is_empty() {
                        continue;
                    }
                    let mut np = path.clone();
                    np.push(eid);
                    np.push(oid);
                    next_frontier.push((np, s2));
                }
            }
            frontier = next_frontier;
        }
        Ok(())
    }
}

fn scalar_json(v: &Value) -> Option<Json> {
    match v {
        Value::Int(i) => Some(Json::Num(*i as f64)),
        Value::Str(s) => Some(Json::Str(s.clone())),
        Value::Bool(b) => Some(Json::Bool(*b)),
        _ => None,
    }
}

/// Detect the `node-atom -> [edge-atom]{min,max} -> node-atom` shape that
/// the ExtendBlock operator ships as a single `repeat` traversal.
fn extend_block_shape(plan: &RpePlan) -> Option<(u32, u32, u32, u32, u32)> {
    // norm is Alt of chains (expanded repetition) inside a Seq.
    let Norm::Seq(parts) = &plan.norm else { return None };
    if parts.len() != 3 {
        return None;
    }
    let Norm::Atom(first) = parts[0] else { return None };
    let Norm::Atom(last) = parts[2] else { return None };
    if !plan.atoms[first as usize].is_node || !plan.atoms[last as usize].is_node {
        return None;
    }
    let (mut min, mut max, mut edge_atom) = (u32::MAX, 0u32, None);
    let chains: Vec<&Norm> = match &parts[1] {
        Norm::Alt(alts) => alts.iter().collect(),
        single => vec![single],
    };
    for chain in chains {
        let atoms: Vec<u32> = match chain {
            Norm::Atom(a) => vec![*a],
            Norm::Seq(seq) => seq
                .iter()
                .map(|n| match n {
                    Norm::Atom(a) => Some(*a),
                    _ => None,
                })
                .collect::<Option<Vec<_>>>()?,
            _ => return None,
        };
        let a0 = *atoms.first()?;
        if atoms.iter().any(|&a| a != a0) || plan.atoms[a0 as usize].is_node {
            return None;
        }
        if !plan.atoms[a0 as usize].preds.is_empty() {
            return None;
        }
        match edge_atom {
            None => edge_atom = Some(a0),
            Some(e) if e == a0 => {}
            _ => return None,
        }
        min = min.min(atoms.len() as u32);
        max = max.max(atoms.len() as u32);
    }
    Some((first, edge_atom?, min, max, last))
}

/// Evaluate a planned RPE against a Gremlin server.
pub fn evaluate_gremlin<T: Transport>(
    client: &mut GremlinClient<T>,
    schema: &Schema,
    plan: &RpePlan,
    time: GremlinTime,
    seeds: Seeds,
    opts: &EvalOptions,
    use_extend_block: bool,
) -> Result<GremlinExecResult, ProtoError> {
    evaluate_gremlin_spanned(client, schema, plan, time, seeds, opts, use_extend_block, &SpanHandle::none())
}

/// [`evaluate_gremlin`] under a live span: every protocol round trip
/// becomes a child span, with server-reported phases grafted in.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_gremlin_spanned<T: Transport>(
    client: &mut GremlinClient<T>,
    schema: &Schema,
    plan: &RpePlan,
    time: GremlinTime,
    seeds: Seeds,
    opts: &EvalOptions,
    use_extend_block: bool,
    span: &SpanHandle,
) -> Result<GremlinExecResult, ProtoError> {
    let start_trips = client.round_trips;
    let prefixes: Vec<String> = plan.atoms.iter().map(|a| schema.path_name(a.class)).collect();
    let mut ev = GremlinEval {
        client,
        plan,
        time,
        prefixes,
        elems: HashMap::new(),
        out_cache: HashMap::new(),
        in_cache: HashMap::new(),
        span,
    };
    let cap = opts.max_elements.map(|m| m.min(plan.max_elements)).unwrap_or(plan.max_elements);
    let mut results: HashSet<Vec<u64>> = HashSet::new();

    // --- ExtendBlock fast path ---
    if use_extend_block && matches!(seeds, Seeds::Anchor) {
        if let Some((first, edge_atom, min, max, last)) = extend_block_shape(plan) {
            if plan.anchor.atoms == [first] || plan.anchor.atoms == [last] {
                let anchored_first = plan.anchor.atoms == [first];
                let anchor_atom = if anchored_first { first } else { last };
                let other_atom = if anchored_first { last } else { first };
                let ids = ev.select(anchor_atom)?;
                if !ids.is_empty() {
                    let prefix = ev.prefixes[edge_atom as usize].clone();
                    let mut body =
                        vec![if anchored_first { GStep::OutE(Some(prefix)) } else { GStep::InE(Some(prefix)) }];
                    body.extend(ev.alive_steps());
                    body.push(if anchored_first { GStep::InV } else { GStep::OutV });
                    body.extend(ev.alive_steps());
                    body.push(GStep::SimplePath);
                    let steps = vec![GStep::V(ids), GStep::Repeat(body, min, max), GStep::Path];
                    let eb_span = ev.span.child("ExtendBlock");
                    eb_span.attr("min", min);
                    eb_span.attr("max", max);
                    let raw = ev.client.submit_spanned(&steps, &eb_span)?;
                    eb_span.attr("paths", raw.len());
                    drop(eb_span);
                    let other = &plan.atoms[other_atom as usize];
                    let other_prefix = ev.prefixes[other_atom as usize].clone();
                    for r in &raw {
                        let Some(path) = r.get("path").and_then(|p| p.as_arr()) else { continue };
                        let mut uids = Vec::with_capacity(path.len());
                        let mut infos = Vec::with_capacity(path.len());
                        for el in path {
                            let Some((id, info)) = ElemInfo::from_json(el) else { continue };
                            uids.push(id);
                            infos.push(info);
                        }
                        let Some(end) = infos.last() else { continue };
                        if !label_matches_prefix(&end.label, &other_prefix)
                            || !other.preds.iter().all(|p| pred_by_name(&end.props, p))
                            || !end.alive(time)
                        {
                            continue;
                        }
                        if !anchored_first {
                            uids.reverse();
                        }
                        results.insert(uids);
                    }
                }
                return Ok(finish(results, opts, ev.client.round_trips - start_trips));
            }
        }
    }

    // --- Generic path: anchored bidirectional walk with batched fetches ---
    match seeds {
        Seeds::Anchor => {
            for &occ in &plan.anchor.atoms {
                let ids = ev.select(occ)?;
                let atom: &BoundAtom = &plan.atoms[occ as usize];
                let seed_trans = plan.nfa.seeds_for(occ);
                for id in ids {
                    for tr in &seed_trans {
                        let mut fwd: Vec<Vec<u64>> = Vec::new();
                        let mut bwd: Vec<Vec<u64>> = Vec::new();
                        if atom.is_node {
                            ev.search(vec![id], vec![tr.to], true, cap, &mut fwd)?;
                            // Backward: the seed node itself may be leftmost.
                            if tr.from == plan.nfa.start {
                                bwd.push(vec![id]);
                            }
                            ev.search(vec![id], vec![tr.from], false, cap, &mut bwd)?;
                        } else {
                            let (src, dst) = {
                                let info = ev.elems.get(&id).cloned();
                                match info {
                                    Some(i) => (i.src, i.dst),
                                    None => continue,
                                }
                            };
                            // Fetch endpoint infos via adjacency of src.
                            ev.fetch_adj(&[src], true)?;
                            let s2 = ev.step_states(&[tr.to], dst, true);
                            if s2.is_empty() {
                                continue;
                            }
                            ev.search(vec![id, dst], s2, true, cap, &mut fwd)?;
                            let b1 = ev.step_states(&[tr.from], src, false);
                            if b1.is_empty() {
                                continue;
                            }
                            ev.search(vec![id, src], b1, false, cap, &mut bwd)?;
                        }
                        for b in &bwd {
                            'combine: for f in &fwd {
                                let tail = &b[1..];
                                for u in tail {
                                    if f.contains(u) {
                                        continue 'combine;
                                    }
                                }
                                let mut elems: Vec<u64> = tail.to_vec();
                                elems.reverse();
                                elems.extend_from_slice(f);
                                if elems.len() <= cap {
                                    results.insert(elems);
                                }
                            }
                        }
                    }
                }
            }
        }
        Seeds::Sources(srcs) => {
            let ids: Vec<u64> = srcs.iter().map(|u| u.0).collect();
            // Prime the element cache.
            let steps = vec![GStep::V(ids.clone())];
            for r in ev.client.submit_spanned(&steps, ev.span)? {
                if let Some((id, info)) = ElemInfo::from_json(&r) {
                    ev.elems.insert(id, info);
                }
            }
            for id in ids {
                let s1 = ev.step_states(&[plan.nfa.start], id, true);
                if s1.is_empty() {
                    continue;
                }
                let mut fwd = Vec::new();
                ev.search(vec![id], s1, true, cap, &mut fwd)?;
                results.extend(fwd);
            }
        }
        Seeds::Targets(tgts) => {
            let ids: Vec<u64> = tgts.iter().map(|u| u.0).collect();
            let steps = vec![GStep::V(ids.clone())];
            for r in ev.client.submit_spanned(&steps, ev.span)? {
                if let Some((id, info)) = ElemInfo::from_json(&r) {
                    ev.elems.insert(id, info);
                }
            }
            let accepts: Vec<u32> = (0..plan.nfa.n_states as u32).filter(|&s| plan.nfa.accepts[s as usize]).collect();
            for id in ids {
                let b1 = ev.step_states(&accepts, id, false);
                if b1.is_empty() {
                    continue;
                }
                let mut bwd = Vec::new();
                ev.search(vec![id], b1, false, cap, &mut bwd)?;
                for mut b in bwd {
                    b.reverse();
                    results.insert(b);
                }
            }
        }
    }
    let trips = ev.client.round_trips - start_trips;
    Ok(finish(results, opts, trips))
}

fn finish(results: HashSet<Vec<u64>>, opts: &EvalOptions, round_trips: u64) -> GremlinExecResult {
    let mut pathways: Vec<Pathway> =
        results.into_iter().map(|elems| Pathway { elems: elems.into_iter().map(Uid).collect(), times: None }).collect();
    pathways.sort_by(|a, b| a.elems.cmp(&b.elems));
    if let Some(limit) = opts.limit {
        pathways.truncate(limit);
    }
    GremlinExecResult { pathways, round_trips }
}

#[allow(unused)]
fn _kind_used(k: ClassKind) -> bool {
    k == ClassKind::Node
}
