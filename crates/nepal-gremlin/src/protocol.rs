//! The wire protocol: GraphSON-lite request/response messages with
//! Gremlin-Server-style framing and streamed partial results.
//!
//! Frame layout (mirroring the TinkerPop driver handshake):
//! `u8 mime_len | mime bytes | u32-be payload_len | payload (JSON)`.
//!
//! Requests: `{"requestId": "…", "op": "bytecode", "processor":
//! "traversal", "args": {"gremlin": <bytecode>, "aliases": {"g": "g"}}}`.
//!
//! Responses stream in batches: status 206 (partial content) frames carry
//! `result.data` arrays, a final 200 (success) carries the last batch (or
//! 204 no-content), and 500 (server error) carries the message.

use std::io::{Read, Write};

use crate::json::{parse_json, Json};

/// The protocol mime type advertised in every frame.
pub const MIME: &str = "application/vnd.nepal-gremlin-v1.0+json";

/// Response status codes (the subset of Gremlin Server codes we use).
pub mod status {
    pub const SUCCESS: u32 = 200;
    pub const NO_CONTENT: u32 = 204;
    pub const PARTIAL_CONTENT: u32 = 206;
    /// The server shed this connection/request under overload. The frame's
    /// `status.attributes.retryAfterMs` hints when to retry.
    pub const OVERLOADED: u32 = 503;
    pub const SERVER_ERROR: u32 = 500;
    /// Request frame could not be decoded (Gremlin Server's request
    /// serialization error).
    pub const MALFORMED_REQUEST: u32 = 597;
    /// The server abandoned evaluation at a cancellation checkpoint
    /// (deadline passed, or the server is draining).
    pub const SERVER_TIMEOUT: u32 = 598;
}

/// Number of results per partial-content frame.
pub const BATCH_SIZE: usize = 64;

/// Protocol-level errors.
#[derive(Debug)]
pub enum ProtoError {
    Io(std::io::Error),
    BadFrame(String),
    Server(String),
    /// Status-503 shed: the server refused the request under overload and
    /// suggested a retry delay.
    Overloaded {
        message: String,
        retry_after_ms: u64,
    },
    /// Status-598: the server abandoned evaluation (deadline or drain).
    Timeout(String),
}

impl ProtoError {
    /// Would retrying the same request later plausibly succeed? True for
    /// transport failures and explicit overload sheds; false for malformed
    /// frames and server-side evaluation errors.
    pub fn is_transient(&self) -> bool {
        matches!(self, ProtoError::Io(_) | ProtoError::Overloaded { .. })
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "io error: {e}"),
            ProtoError::BadFrame(m) => write!(f, "bad frame: {m}"),
            ProtoError::Server(m) => write!(f, "server error: {m}"),
            ProtoError::Overloaded { message, retry_after_ms } => {
                write!(f, "server overloaded (retry after {retry_after_ms} ms): {message}")
            }
            ProtoError::Timeout(m) => write!(f, "server timeout: {m}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// Encode one frame.
pub fn encode_frame(payload: &Json) -> Vec<u8> {
    let body = payload.to_string().into_bytes();
    let mut out = Vec::with_capacity(1 + MIME.len() + 4 + body.len());
    out.push(MIME.len() as u8);
    out.extend_from_slice(MIME.as_bytes());
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(&body);
    out
}

/// Read one frame from a stream.
pub fn read_frame(r: &mut impl Read) -> Result<Json, ProtoError> {
    read_frame_counted(r).map(|(j, _)| j)
}

/// [`read_frame`] plus the number of wire bytes the frame occupied.
pub fn read_frame_counted(r: &mut impl Read) -> Result<(Json, u64), ProtoError> {
    let mut b1 = [0u8; 1];
    r.read_exact(&mut b1)?;
    let mime_len = b1[0] as usize;
    let mut mime = vec![0u8; mime_len];
    r.read_exact(&mut mime)?;
    if mime != MIME.as_bytes() {
        return Err(ProtoError::BadFrame(format!("unexpected mime `{}`", String::from_utf8_lossy(&mime))));
    }
    let mut len4 = [0u8; 4];
    r.read_exact(&mut len4)?;
    let len = u32::from_be_bytes(len4) as usize;
    if len > 64 << 20 {
        return Err(ProtoError::BadFrame(format!("oversized frame ({len} bytes)")));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let wire_bytes = (1 + mime_len + 4 + len) as u64;
    let text = String::from_utf8(body).map_err(|e| ProtoError::BadFrame(e.to_string()))?;
    let json = parse_json(&text).map_err(|e| ProtoError::BadFrame(e.to_string()))?;
    Ok((json, wire_bytes))
}

/// An incremental frame decoder that tolerates read timeouts mid-frame.
///
/// [`read_frame`] uses `read_exact`, which discards already-consumed bytes
/// when a read times out — a stalled client would desynchronize the stream.
/// `FrameReader` buffers partial bytes across polls, so a serving loop can
/// interleave frame reads with drain/cancellation checks on a transport
/// with a read timeout, and a slow client that dribbles bytes still parses.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Bytes buffered toward the next frame (0 when between frames).
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Pull bytes from `r` until one full frame is decoded.
    ///
    /// - `Ok(Some((json, wire_bytes)))` — a complete frame.
    /// - `Ok(None)` — the read would block / timed out; buffered partial
    ///   bytes are retained, call again later.
    /// - `Err(..)` — EOF, I/O failure, or an undecodable frame (the stream
    ///   is desynchronized past it; the caller should close).
    pub fn poll_frame(&mut self, r: &mut impl Read) -> Result<Option<(Json, u64)>, ProtoError> {
        loop {
            if let Some(need) = self.buffered_frame_len()? {
                if self.buf.len() >= need {
                    let frame: Vec<u8> = self.buf.drain(..need).collect();
                    let json = decode_frame_body(&frame)?;
                    return Ok(Some((json, need as u64)));
                }
            }
            let mut chunk = [0u8; 4096];
            match r.read(&mut chunk) {
                Ok(0) => {
                    return Err(ProtoError::Io(std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "peer closed")))
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut | std::io::ErrorKind::Interrupted
                    ) =>
                {
                    return Ok(None)
                }
                Err(e) => return Err(ProtoError::Io(e)),
            }
        }
    }

    /// Total wire length of the buffered frame, once enough header bytes
    /// are present to know it. Validates mime and size as soon as possible
    /// so garbage fails fast instead of stalling on a bogus length.
    fn buffered_frame_len(&self) -> Result<Option<usize>, ProtoError> {
        if self.buf.is_empty() {
            return Ok(None);
        }
        let mime_len = self.buf[0] as usize;
        if self.buf.len() > mime_len && self.buf[1..1 + mime_len] != *MIME.as_bytes() {
            return Err(ProtoError::BadFrame(format!(
                "unexpected mime `{}`",
                String::from_utf8_lossy(&self.buf[1..1 + mime_len])
            )));
        }
        if self.buf.len() < 1 + mime_len + 4 {
            return Ok(None);
        }
        let len4: [u8; 4] = self.buf[1 + mime_len..1 + mime_len + 4].try_into().unwrap();
        let len = u32::from_be_bytes(len4) as usize;
        if len > 64 << 20 {
            return Err(ProtoError::BadFrame(format!("oversized frame ({len} bytes)")));
        }
        Ok(Some(1 + mime_len + 4 + len))
    }
}

/// Decode the JSON payload of one complete wire frame.
fn decode_frame_body(frame: &[u8]) -> Result<Json, ProtoError> {
    let mime_len = frame[0] as usize;
    let body = &frame[1 + mime_len + 4..];
    let text = std::str::from_utf8(body).map_err(|e| ProtoError::BadFrame(e.to_string()))?;
    parse_json(text).map_err(|e| ProtoError::BadFrame(e.to_string()))
}

/// Write one frame to a stream.
pub fn write_frame(w: &mut impl Write, payload: &Json) -> Result<(), ProtoError> {
    write_frame_counted(w, payload).map(|_| ())
}

/// [`write_frame`] plus the number of wire bytes written.
pub fn write_frame_counted(w: &mut impl Write, payload: &Json) -> Result<u64, ProtoError> {
    let bytes = encode_frame(payload);
    w.write_all(&bytes)?;
    w.flush()?;
    Ok(bytes.len() as u64)
}

/// Build a bytecode-submission request message.
pub fn request(request_id: &str, bytecode: Json) -> Json {
    Json::obj(vec![
        ("requestId", Json::Str(request_id.to_string())),
        ("op", Json::Str("bytecode".into())),
        ("processor", Json::Str("traversal".into())),
        ("args", Json::obj(vec![("gremlin", bytecode), ("aliases", Json::obj(vec![("g", Json::Str("g".into()))]))])),
    ])
}

/// Build one response frame.
pub fn response(request_id: &str, code: u32, message: &str, data: Vec<Json>) -> Json {
    Json::obj(vec![
        ("requestId", Json::Str(request_id.to_string())),
        ("status", Json::obj(vec![("code", Json::Num(code as f64)), ("message", Json::Str(message.to_string()))])),
        ("result", Json::obj(vec![("data", Json::Arr(data)), ("meta", Json::obj(vec![]))])),
    ])
}

/// Build an overload-shed response: status 503 with a `retryAfterMs` hint
/// in the status attributes (the framed analogue of HTTP `Retry-After`).
pub fn overload_response(request_id: &str, message: &str, retry_after_ms: u64) -> Json {
    Json::obj(vec![
        ("requestId", Json::Str(request_id.to_string())),
        (
            "status",
            Json::obj(vec![
                ("code", Json::Num(status::OVERLOADED as f64)),
                ("message", Json::Str(message.to_string())),
                ("attributes", Json::obj(vec![("retryAfterMs", Json::Num(retry_after_ms as f64))])),
            ]),
        ),
        ("result", Json::obj(vec![("data", Json::Arr(Vec::new())), ("meta", Json::obj(vec![]))])),
    ])
}

/// Split results into response frames: 0+ partials then a final frame.
pub fn batch_responses(request_id: &str, results: Vec<Json>) -> Vec<Json> {
    if results.is_empty() {
        return vec![response(request_id, status::NO_CONTENT, "", Vec::new())];
    }
    let mut frames = Vec::new();
    let mut iter = results.into_iter().peekable();
    loop {
        let mut batch = Vec::with_capacity(BATCH_SIZE);
        while batch.len() < BATCH_SIZE {
            match iter.next() {
                Some(x) => batch.push(x),
                None => break,
            }
        }
        let last = iter.peek().is_none();
        let code = if last { status::SUCCESS } else { status::PARTIAL_CONTENT };
        frames.push(response(request_id, code, "", batch));
        if last {
            break;
        }
    }
    frames
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let msg = request("r-1", Json::Arr(vec![]));
        let bytes = encode_frame(&msg);
        let mut cursor = std::io::Cursor::new(bytes);
        let back = read_frame(&mut cursor).unwrap();
        assert_eq!(back.get("requestId").unwrap().as_str(), Some("r-1"));
        assert_eq!(back.get("op").unwrap().as_str(), Some("bytecode"));
    }

    #[test]
    fn wrong_mime_rejected() {
        let msg = request("r-1", Json::Arr(vec![]));
        let mut bytes = encode_frame(&msg);
        bytes[1] = b'X'; // corrupt the mime string
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(matches!(read_frame(&mut cursor), Err(ProtoError::BadFrame(_))));
    }

    #[test]
    fn truncated_frame_is_io_error() {
        let msg = request("r-1", Json::Arr(vec![]));
        let bytes = encode_frame(&msg);
        let mut cursor = std::io::Cursor::new(&bytes[..bytes.len() - 3]);
        assert!(matches!(read_frame(&mut cursor), Err(ProtoError::Io(_))));
    }

    #[test]
    fn batching_produces_partials_then_final() {
        let results: Vec<Json> = (0..150).map(|i| Json::Num(i as f64)).collect();
        let frames = batch_responses("r", results);
        assert_eq!(frames.len(), 3);
        let code = |f: &Json| f.get("status").unwrap().get("code").unwrap().as_u64().unwrap();
        assert_eq!(code(&frames[0]), 206);
        assert_eq!(code(&frames[1]), 206);
        assert_eq!(code(&frames[2]), 200);
        let n: usize =
            frames.iter().map(|f| f.get("result").unwrap().get("data").unwrap().as_arr().unwrap().len()).sum();
        assert_eq!(n, 150);
    }

    #[test]
    fn empty_results_are_no_content() {
        let frames = batch_responses("r", Vec::new());
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].get("status").unwrap().get("code").unwrap().as_u64(), Some(204));
    }

    /// A reader that yields `data` in fixed-size dribbles with a
    /// WouldBlock between each — a stalled/slow client stand-in.
    struct Dribble {
        data: Vec<u8>,
        pos: usize,
        chunk: usize,
        ready: bool,
    }

    impl std::io::Read for Dribble {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            if !self.ready {
                self.ready = true;
                return Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "stall"));
            }
            self.ready = false;
            let n = self.chunk.min(self.data.len() - self.pos).min(out.len());
            if n == 0 {
                return Ok(0); // EOF
            }
            out[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn frame_reader_survives_mid_frame_stalls() {
        let msg = request("slow-1", Json::Arr(vec![]));
        let bytes = encode_frame(&msg);
        let total = bytes.len() as u64;
        let mut r = Dribble { data: bytes, pos: 0, chunk: 3, ready: false };
        let mut reader = FrameReader::new();
        let mut polls = 0u32;
        loop {
            polls += 1;
            assert!(polls < 10_000, "reader failed to make progress");
            match reader.poll_frame(&mut r).unwrap() {
                Some((json, n)) => {
                    assert_eq!(json.get("requestId").unwrap().as_str(), Some("slow-1"));
                    assert_eq!(n, total);
                    break;
                }
                None => continue, // stalled mid-frame; partial bytes retained
            }
        }
        assert!(polls > 2, "test should have exercised at least one stall");
        assert_eq!(reader.pending_bytes(), 0);
    }

    #[test]
    fn frame_reader_rejects_bad_mime_before_full_frame() {
        let msg = request("r", Json::Arr(vec![]));
        let mut bytes = encode_frame(&msg);
        bytes[1] = b'X';
        // Only the header is available — the bad mime must fail fast
        // rather than waiting for the (never-arriving) body.
        let mut cursor = std::io::Cursor::new(&bytes[..1 + MIME.len()]);
        let mut reader = FrameReader::new();
        assert!(matches!(reader.poll_frame(&mut cursor), Err(ProtoError::BadFrame(_))));
    }

    #[test]
    fn frame_reader_eof_mid_frame_is_io_error() {
        let msg = request("r", Json::Arr(vec![]));
        let bytes = encode_frame(&msg);
        let mut cursor = std::io::Cursor::new(&bytes[..bytes.len() - 2]);
        let mut reader = FrameReader::new();
        assert!(matches!(reader.poll_frame(&mut cursor), Err(ProtoError::Io(_))));
    }

    #[test]
    fn frame_reader_decodes_back_to_back_frames() {
        let a = encode_frame(&request("a", Json::Arr(vec![])));
        let b = encode_frame(&request("b", Json::Arr(vec![])));
        let mut all = a.clone();
        all.extend_from_slice(&b);
        let mut cursor = std::io::Cursor::new(all);
        let mut reader = FrameReader::new();
        let (f1, _) = reader.poll_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(f1.get("requestId").unwrap().as_str(), Some("a"));
        let (f2, _) = reader.poll_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(f2.get("requestId").unwrap().as_str(), Some("b"));
    }

    #[test]
    fn overload_frame_carries_retry_hint() {
        let f = overload_response("r9", "queue full", 250);
        assert_eq!(f.get("status").unwrap().get("code").unwrap().as_u64(), Some(503));
        let retry = f.get("status").unwrap().get("attributes").unwrap().get("retryAfterMs").unwrap().as_u64();
        assert_eq!(retry, Some(250));
    }

    #[test]
    fn exact_batch_boundary() {
        let results: Vec<Json> = (0..BATCH_SIZE).map(|i| Json::Num(i as f64)).collect();
        let frames = batch_responses("r", results);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].get("status").unwrap().get("code").unwrap().as_u64(), Some(200));
    }
}
