//! The wire protocol: GraphSON-lite request/response messages with
//! Gremlin-Server-style framing and streamed partial results.
//!
//! Frame layout (mirroring the TinkerPop driver handshake):
//! `u8 mime_len | mime bytes | u32-be payload_len | payload (JSON)`.
//!
//! Requests: `{"requestId": "…", "op": "bytecode", "processor":
//! "traversal", "args": {"gremlin": <bytecode>, "aliases": {"g": "g"}}}`.
//!
//! Responses stream in batches: status 206 (partial content) frames carry
//! `result.data` arrays, a final 200 (success) carries the last batch (or
//! 204 no-content), and 500 (server error) carries the message.

use std::io::{Read, Write};

use crate::json::{parse_json, Json};

/// The protocol mime type advertised in every frame.
pub const MIME: &str = "application/vnd.nepal-gremlin-v1.0+json";

/// Response status codes (the subset of Gremlin Server codes we use).
pub mod status {
    pub const SUCCESS: u32 = 200;
    pub const NO_CONTENT: u32 = 204;
    pub const PARTIAL_CONTENT: u32 = 206;
    pub const SERVER_ERROR: u32 = 500;
    /// Request frame could not be decoded (Gremlin Server's request
    /// serialization error).
    pub const MALFORMED_REQUEST: u32 = 597;
}

/// Number of results per partial-content frame.
pub const BATCH_SIZE: usize = 64;

/// Protocol-level errors.
#[derive(Debug)]
pub enum ProtoError {
    Io(std::io::Error),
    BadFrame(String),
    Server(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "io error: {e}"),
            ProtoError::BadFrame(m) => write!(f, "bad frame: {m}"),
            ProtoError::Server(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// Encode one frame.
pub fn encode_frame(payload: &Json) -> Vec<u8> {
    let body = payload.to_string().into_bytes();
    let mut out = Vec::with_capacity(1 + MIME.len() + 4 + body.len());
    out.push(MIME.len() as u8);
    out.extend_from_slice(MIME.as_bytes());
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(&body);
    out
}

/// Read one frame from a stream.
pub fn read_frame(r: &mut impl Read) -> Result<Json, ProtoError> {
    read_frame_counted(r).map(|(j, _)| j)
}

/// [`read_frame`] plus the number of wire bytes the frame occupied.
pub fn read_frame_counted(r: &mut impl Read) -> Result<(Json, u64), ProtoError> {
    let mut b1 = [0u8; 1];
    r.read_exact(&mut b1)?;
    let mime_len = b1[0] as usize;
    let mut mime = vec![0u8; mime_len];
    r.read_exact(&mut mime)?;
    if mime != MIME.as_bytes() {
        return Err(ProtoError::BadFrame(format!("unexpected mime `{}`", String::from_utf8_lossy(&mime))));
    }
    let mut len4 = [0u8; 4];
    r.read_exact(&mut len4)?;
    let len = u32::from_be_bytes(len4) as usize;
    if len > 64 << 20 {
        return Err(ProtoError::BadFrame(format!("oversized frame ({len} bytes)")));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let wire_bytes = (1 + mime_len + 4 + len) as u64;
    let text = String::from_utf8(body).map_err(|e| ProtoError::BadFrame(e.to_string()))?;
    let json = parse_json(&text).map_err(|e| ProtoError::BadFrame(e.to_string()))?;
    Ok((json, wire_bytes))
}

/// Write one frame to a stream.
pub fn write_frame(w: &mut impl Write, payload: &Json) -> Result<(), ProtoError> {
    write_frame_counted(w, payload).map(|_| ())
}

/// [`write_frame`] plus the number of wire bytes written.
pub fn write_frame_counted(w: &mut impl Write, payload: &Json) -> Result<u64, ProtoError> {
    let bytes = encode_frame(payload);
    w.write_all(&bytes)?;
    w.flush()?;
    Ok(bytes.len() as u64)
}

/// Build a bytecode-submission request message.
pub fn request(request_id: &str, bytecode: Json) -> Json {
    Json::obj(vec![
        ("requestId", Json::Str(request_id.to_string())),
        ("op", Json::Str("bytecode".into())),
        ("processor", Json::Str("traversal".into())),
        ("args", Json::obj(vec![("gremlin", bytecode), ("aliases", Json::obj(vec![("g", Json::Str("g".into()))]))])),
    ])
}

/// Build one response frame.
pub fn response(request_id: &str, code: u32, message: &str, data: Vec<Json>) -> Json {
    Json::obj(vec![
        ("requestId", Json::Str(request_id.to_string())),
        ("status", Json::obj(vec![("code", Json::Num(code as f64)), ("message", Json::Str(message.to_string()))])),
        ("result", Json::obj(vec![("data", Json::Arr(data)), ("meta", Json::obj(vec![]))])),
    ])
}

/// Split results into response frames: 0+ partials then a final frame.
pub fn batch_responses(request_id: &str, results: Vec<Json>) -> Vec<Json> {
    if results.is_empty() {
        return vec![response(request_id, status::NO_CONTENT, "", Vec::new())];
    }
    let mut frames = Vec::new();
    let mut iter = results.into_iter().peekable();
    loop {
        let mut batch = Vec::with_capacity(BATCH_SIZE);
        while batch.len() < BATCH_SIZE {
            match iter.next() {
                Some(x) => batch.push(x),
                None => break,
            }
        }
        let last = iter.peek().is_none();
        let code = if last { status::SUCCESS } else { status::PARTIAL_CONTENT };
        frames.push(response(request_id, code, "", batch));
        if last {
            break;
        }
    }
    frames
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let msg = request("r-1", Json::Arr(vec![]));
        let bytes = encode_frame(&msg);
        let mut cursor = std::io::Cursor::new(bytes);
        let back = read_frame(&mut cursor).unwrap();
        assert_eq!(back.get("requestId").unwrap().as_str(), Some("r-1"));
        assert_eq!(back.get("op").unwrap().as_str(), Some("bytecode"));
    }

    #[test]
    fn wrong_mime_rejected() {
        let msg = request("r-1", Json::Arr(vec![]));
        let mut bytes = encode_frame(&msg);
        bytes[1] = b'X'; // corrupt the mime string
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(matches!(read_frame(&mut cursor), Err(ProtoError::BadFrame(_))));
    }

    #[test]
    fn truncated_frame_is_io_error() {
        let msg = request("r-1", Json::Arr(vec![]));
        let bytes = encode_frame(&msg);
        let mut cursor = std::io::Cursor::new(&bytes[..bytes.len() - 3]);
        assert!(matches!(read_frame(&mut cursor), Err(ProtoError::Io(_))));
    }

    #[test]
    fn batching_produces_partials_then_final() {
        let results: Vec<Json> = (0..150).map(|i| Json::Num(i as f64)).collect();
        let frames = batch_responses("r", results);
        assert_eq!(frames.len(), 3);
        let code = |f: &Json| f.get("status").unwrap().get("code").unwrap().as_u64().unwrap();
        assert_eq!(code(&frames[0]), 206);
        assert_eq!(code(&frames[1]), 206);
        assert_eq!(code(&frames[2]), 200);
        let n: usize =
            frames.iter().map(|f| f.get("result").unwrap().get("data").unwrap().as_arr().unwrap().len()).sum();
        assert_eq!(n, 150);
    }

    #[test]
    fn empty_results_are_no_content() {
        let frames = batch_responses("r", Vec::new());
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].get("status").unwrap().get("code").unwrap().as_u64(), Some(204));
    }

    #[test]
    fn exact_batch_boundary() {
        let results: Vec<Json> = (0..BATCH_SIZE).map(|i| Json::Num(i as f64)).collect();
        let frames = batch_responses("r", results);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].get("status").unwrap().get("code").unwrap().as_u64(), Some(200));
    }
}
