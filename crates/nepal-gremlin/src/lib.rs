//! # nepal-gremlin — the Gremlin backend substrate
//!
//! Everything the paper's Gremlin target needs, built from scratch because
//! no mature Rust Gremlin client exists:
//!
//! - [`graph`] — a schema-free property graph with inheritance-path labels
//!   and prefix matching (§5.2's class encoding).
//! - [`traversal`] — a Gremlin-style traversal machine with bytecode
//!   (de)serialization, including `repeat` for the ExtendBlock operator.
//! - [`json`] — hand-rolled JSON / GraphSON-lite codecs.
//! - [`protocol`] — framed request/response wire protocol with streamed
//!   206/200/204/500 result batches.
//! - [`server`] / [`client`] — a mock Gremlin Server (TCP and in-process)
//!   and the driver, plus the result-forwarding [`client::Channel`]s.
//! - [`load`] / [`exec`] — graph loading and client-side RPE plan
//!   evaluation with the ExtendBlock fast path.

pub mod client;
pub mod exec;
pub mod graph;
pub mod json;
pub mod lang;
pub mod load;
pub mod protocol;
pub mod server;
pub mod traversal;

pub use client::{Channel, GremlinClient, RetryPolicy, RetryingClient, WireStats};
pub use exec::{evaluate_gremlin, evaluate_gremlin_spanned, GremlinExecResult, GremlinTime};
pub use graph::{label_matches_prefix, GEdge, GVertex, PropertyGraph};
pub use json::{parse_json, Json};
pub use lang::{parse_traversal, LangError};
pub use load::{property_graph_from, OPEN_TS};
pub use protocol::{overload_response, FrameReader, ProtoError, MIME};
pub use server::{
    attach_server_timing, pipe_pair, serve_connection_ctl, serve_connection_traced, serve_in_process,
    serve_in_process_ctl, serve_in_process_stats, serve_in_process_traced, shared_graph, ConnCtl, DrainReport,
    GremlinServer, ServeConfig, ServerStats, SharedGraph, CHAOS_PANIC_REQUEST_ID,
};
pub use traversal::{bytecode_from_json, bytecode_to_json, evaluate_cancel, EvalError, GCmp, GStep};
