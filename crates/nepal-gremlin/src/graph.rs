//! A schema-free property graph, the storage model of the Gremlin backend.
//!
//! Labels encode the Nepal class hierarchy as inheritance paths
//! (`Node:Container:VM:VMWare`), and concept membership is tested by
//! **prefix matching** — exactly the paper's §5.2: "we implement
//! inheritance by using the inheritance path of a node/edge … as the label
//! … and using prefix matching to find all nodes that are VM or are
//! subclassed from VM."

use std::collections::{BTreeMap, HashMap};

use crate::json::Json;

/// A stored vertex.
#[derive(Debug, Clone)]
pub struct GVertex {
    pub id: u64,
    pub label: String,
    pub props: BTreeMap<String, Json>,
}

/// A stored edge.
#[derive(Debug, Clone)]
pub struct GEdge {
    pub id: u64,
    pub label: String,
    pub src: u64,
    pub dst: u64,
    pub props: BTreeMap<String, Json>,
}

/// The property graph.
#[derive(Debug, Default)]
pub struct PropertyGraph {
    pub(crate) vertices: HashMap<u64, GVertex>,
    pub(crate) edges: HashMap<u64, GEdge>,
    out: HashMap<u64, Vec<u64>>,
    inc: HashMap<u64, Vec<u64>>,
    /// exact label → vertex ids (BTreeMap enables prefix range scans).
    label_index_v: BTreeMap<String, Vec<u64>>,
    label_index_e: BTreeMap<String, Vec<u64>>,
}

impl PropertyGraph {
    pub fn new() -> PropertyGraph {
        PropertyGraph::default()
    }

    pub fn add_vertex(&mut self, id: u64, label: impl Into<String>, props: BTreeMap<String, Json>) {
        let label = label.into();
        self.label_index_v.entry(label.clone()).or_default().push(id);
        self.vertices.insert(id, GVertex { id, label, props });
    }

    pub fn add_edge(&mut self, id: u64, label: impl Into<String>, src: u64, dst: u64, props: BTreeMap<String, Json>) {
        let label = label.into();
        self.label_index_e.entry(label.clone()).or_default().push(id);
        self.edges.insert(id, GEdge { id, label, src, dst, props });
        self.out.entry(src).or_default().push(id);
        self.inc.entry(dst).or_default().push(id);
    }

    pub fn vertex(&self, id: u64) -> Option<&GVertex> {
        self.vertices.get(&id)
    }

    pub fn edge(&self, id: u64) -> Option<&GEdge> {
        self.edges.get(&id)
    }

    pub fn out_edges(&self, v: u64) -> &[u64] {
        self.out.get(&v).map(|x| x.as_slice()).unwrap_or(&[])
    }

    pub fn in_edges(&self, v: u64) -> &[u64] {
        self.inc.get(&v).map(|x| x.as_slice()).unwrap_or(&[])
    }

    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Prefix-match vertex ids: every vertex whose label equals the prefix
    /// or continues it at a `:` boundary.
    pub fn vertices_with_label_prefix(&self, prefix: &str) -> Vec<u64> {
        prefix_scan(&self.label_index_v, prefix)
    }

    /// Prefix-match edge ids.
    pub fn edges_with_label_prefix(&self, prefix: &str) -> Vec<u64> {
        prefix_scan(&self.label_index_e, prefix)
    }
}

/// Does `label` denote the concept `prefix` or a subclass of it?
pub fn label_matches_prefix(label: &str, prefix: &str) -> bool {
    label == prefix
        || (label.len() > prefix.len() && label.starts_with(prefix) && label.as_bytes()[prefix.len()] == b':')
}

fn prefix_scan(index: &BTreeMap<String, Vec<u64>>, prefix: &str) -> Vec<u64> {
    let mut out = Vec::new();
    for (label, ids) in index.range(prefix.to_string()..) {
        if !label.starts_with(prefix) {
            break;
        }
        if label_matches_prefix(label, prefix) {
            out.extend_from_slice(ids);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        g.add_vertex(1, "Node:Container:VM:VMWare", BTreeMap::new());
        g.add_vertex(2, "Node:Container:VM:OnMetal", BTreeMap::new());
        g.add_vertex(3, "Node:Container:Docker", BTreeMap::new());
        g.add_vertex(4, "Node:Host", BTreeMap::new());
        g.add_vertex(5, "Node:VMOther", BTreeMap::new()); // tricky near-prefix
        g.add_edge(10, "Edge:Vertical:HostedOn", 1, 4, BTreeMap::new());
        g
    }

    #[test]
    fn prefix_matching_finds_subclasses() {
        let g = graph();
        let vms = g.vertices_with_label_prefix("Node:Container:VM");
        assert_eq!(vms.len(), 2);
        let containers = g.vertices_with_label_prefix("Node:Container");
        assert_eq!(containers.len(), 3);
        let all = g.vertices_with_label_prefix("Node");
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn prefix_matching_respects_segment_boundaries() {
        let g = graph();
        // "Node:VMOther" must NOT match prefix "Node:VM".
        let vms = g.vertices_with_label_prefix("Node:VM");
        assert!(vms.is_empty());
        assert!(!label_matches_prefix("Node:VMOther", "Node:VM"));
        assert!(label_matches_prefix("Node:VM:X", "Node:VM"));
        assert!(label_matches_prefix("Node:VM", "Node:VM"));
    }

    #[test]
    fn adjacency() {
        let g = graph();
        assert_eq!(g.out_edges(1), &[10]);
        assert_eq!(g.in_edges(4), &[10]);
        assert!(g.out_edges(4).is_empty());
        let e = g.edge(10).unwrap();
        assert_eq!((e.src, e.dst), (1, 4));
    }
}
