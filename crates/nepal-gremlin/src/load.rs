//! Loading a temporal graph into the property-graph backend.
//!
//! Labels are inheritance paths (`Node:Container:VM`, §5.2). Each element
//! carries its field values as properties plus its assertion lifespan as
//! `sys_from` / `sys_to` properties (`sys_to = OPEN_TS` while asserted).
//!
//! Property graphs do not version properties, so this backend stores the
//! *latest* field values along with the full lifespan: `Current` queries
//! are exact; `AsOf` queries are exact for topology/liveness and use the
//! latest field values for predicates (the paper's Gremlin deployment had
//! the same shape — full temporal support lived on the Postgres side,
//! §5.3, with Gremlin property versioning cited only as related work).

use std::collections::BTreeMap;

use nepal_graph::{TemporalGraph, FOREVER};
use nepal_schema::{Ts, EDGE, NODE};

use crate::graph::PropertyGraph;
use crate::json::{value_to_json, Json};

/// Sentinel for "still asserted" — JSON numbers cannot carry `i64::MAX`
/// exactly, so open intervals use this far-future microsecond timestamp
/// (≈ year 2255), safely inside f64's exact-integer range.
pub const OPEN_TS: Ts = 9_000_000_000_000_000;

fn clamp_ts(t: Ts) -> Ts {
    if t == FOREVER || t > OPEN_TS {
        OPEN_TS
    } else {
        t
    }
}

/// Build a property graph from a temporal graph.
pub fn property_graph_from(g: &TemporalGraph) -> PropertyGraph {
    let schema = g.schema().clone();
    let mut pg = PropertyGraph::new();
    for kind_root in [NODE, EDGE] {
        let is_node = kind_root == NODE;
        for class in schema.descendants(kind_root) {
            let label = schema.path_name(class);
            let field_names: Vec<String> = schema.all_fields(class).iter().map(|f| f.name.clone()).collect();
            for &uid in g.extent_exact(class) {
                let versions = g.versions(uid);
                let Some(last) = versions.last() else { continue };
                let first = versions.first().unwrap();
                // The chain head is always stored full, so this never
                // materializes a delta.
                let mut props: BTreeMap<String, Json> =
                    field_names.iter().zip(last.fields()).map(|(n, v)| (n.clone(), value_to_json(v))).collect();
                props.insert("sys_from".into(), Json::Num(clamp_ts(first.span.from) as f64));
                props.insert("sys_to".into(), Json::Num(clamp_ts(last.span.to) as f64));
                if is_node {
                    pg.add_vertex(uid.0, label.clone(), props);
                } else {
                    let e = g.edge(uid).expect("edge extent");
                    pg.add_edge(uid.0, label.clone(), e.src.0, e.dst.0, props);
                }
            }
        }
    }
    pg
}

#[cfg(test)]
mod tests {
    use super::*;
    use nepal_schema::dsl::parse_schema;
    use nepal_schema::Value;
    use std::sync::Arc;

    #[test]
    fn loads_labels_props_and_lifespans() {
        let s = Arc::new(
            parse_schema(
                r#"
                node Container { status: str }
                node VM : Container { vm_id: int unique }
                node Host { host_id: int unique }
                edge HostedOn { }
                "#,
            )
            .unwrap(),
        );
        let mut g = TemporalGraph::new(s.clone());
        let c = |n: &str| s.class_by_name(n).unwrap();
        let vm = g.insert_node(c("VM"), vec![Value::Str("Green".into()), Value::Int(55)], 100).unwrap();
        let h = g.insert_node(c("Host"), vec![Value::Int(7)], 100).unwrap();
        let e = g.insert_edge(c("HostedOn"), vm, h, vec![], 100).unwrap();
        g.update(vm, &[(0, Value::Str("Red".into()))], 200).unwrap();
        g.delete(e, 300).unwrap();

        let pg = property_graph_from(&g);
        let v = pg.vertex(vm.0).unwrap();
        assert_eq!(v.label, "Node:Container:VM");
        // Latest field values.
        assert_eq!(v.props.get("status"), Some(&Json::Str("Red".into())));
        assert_eq!(v.props.get("sys_from"), Some(&Json::Num(100.0)));
        assert_eq!(v.props.get("sys_to"), Some(&Json::Num(OPEN_TS as f64)));
        // The deleted edge keeps its closed lifespan.
        let ed = pg.edge(e.0).unwrap();
        assert_eq!(ed.props.get("sys_to"), Some(&Json::Num(300.0)));
        assert_eq!((ed.src, ed.dst), (vm.0, h.0));
        // Prefix matching works on the loaded labels.
        assert_eq!(pg.vertices_with_label_prefix("Node:Container").len(), 1);
    }
}
