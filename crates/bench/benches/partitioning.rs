//! Criterion bench for the Table-3 in-text experiment: the effect of
//! splitting the single legacy edge class into 66 `type_indicator`
//! subclasses on the two slowest queries (§6). Also benches the anchored
//! evaluator against a full-scan baseline — the ablation DESIGN.md calls
//! out for anchor-first evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use nepal_bench::table2_queries;
use nepal_graph::{GraphView, TimeFilter};
use nepal_rpe::{evaluate, parse_rpe, plan_rpe, EvalOptions, GraphEstimator, RpePlan, Seeds};
use nepal_workload::{generate_legacy, LegacyParams, LegacyTopology};

fn plan_of(topo: &LegacyTopology, rpe: &str) -> RpePlan {
    plan_rpe(topo.graph.schema(), &parse_rpe(rpe).unwrap(), &GraphEstimator { graph: &topo.graph }).unwrap()
}

fn bench_partitioning(c: &mut Criterion) {
    let base = LegacyParams { nodes: 20_000, edges: 90_000, ..Default::default() };
    let single = generate_legacy(LegacyParams { edge_subclasses: 1, ..base.clone() });
    let parted = generate_legacy(LegacyParams { edge_subclasses: 66, ..base });
    let q_single = table2_queries(&single, 4, false, 1.0);
    let q_parted = table2_queries(&parted, 4, true, 1.0);
    let mut group = c.benchmark_group("partitioning");
    group.sample_size(15);
    for name in ["Reverse path", "Bottom-up"] {
        for (mode, topo, queries) in [("1class", &single, &q_single), ("66classes", &parted, &q_parted)] {
            let rpes = &queries.iter().find(|(n, _)| n == name).unwrap().1;
            let plans: Vec<RpePlan> = rpes.iter().map(|r| plan_of(topo, r)).collect();
            group.bench_function(format!("{name}/{mode}"), |b| {
                let view = GraphView::new(&topo.graph, TimeFilter::Current);
                b.iter(|| {
                    let mut total = 0usize;
                    for plan in &plans {
                        total += evaluate(&view, plan, Seeds::Anchor, &EvalOptions::default()).len();
                    }
                    total
                })
            });
        }
    }

    // Ablation: anchored evaluation vs scanning every node as a source.
    let topo = &single;
    let anchor_q = {
        let (_, rpes) = &q_single.iter().find(|(n, _)| n == "Top-down").unwrap().clone();
        rpes[0].clone()
    };
    let plan = plan_of(topo, &anchor_q);
    group.bench_function("anchored-vs-scan/anchored", |b| {
        let view = GraphView::new(&topo.graph, TimeFilter::Current);
        b.iter(|| evaluate(&view, &plan, Seeds::Anchor, &EvalOptions::default()).len())
    });
    let all_top: Vec<nepal_graph::Uid> = topo.levels[0].clone();
    group.bench_function("anchored-vs-scan/scan-all-sources", |b| {
        let view = GraphView::new(&topo.graph, TimeFilter::Current);
        b.iter(|| evaluate(&view, &plan, Seeds::Sources(&all_top), &EvalOptions::default()).len())
    });
    group.finish();
}

criterion_group!(benches, bench_partitioning);
criterion_main!(benches);
