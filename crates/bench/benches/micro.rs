//! Microbenchmarks for the building blocks: RPE parsing and planning,
//! interval algebra, snapshot ingestion, the Gremlin wire protocol, and
//! the profiling overhead (disabled vs. enabled).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use nepal_core::engine_over;
use nepal_graph::{Interval, IntervalSet, SnapshotLoader, SnapshotNode, TemporalGraph};
use nepal_gremlin::{parse_json, Json};
use nepal_rpe::{parse_rpe, plan_rpe, HintEstimator};
use nepal_schema::dsl::parse_schema;
use nepal_schema::{Schema, Value};
use nepal_workload::{generate_virtualized, onap_schema, VirtParams};

const RPE: &str = "VNF()->[HostedOn()]{1,3}->(VM(vm_id=55)|Docker(docker_id=66))->HostedOn(){1,2}->Host()";

fn bench_rpe(c: &mut Criterion) {
    let schema = onap_schema();
    c.bench_function("rpe/parse", |b| b.iter(|| parse_rpe(std::hint::black_box(RPE)).unwrap()));
    let ast = parse_rpe(RPE).unwrap();
    c.bench_function("rpe/plan", |b| b.iter(|| plan_rpe(&schema, std::hint::black_box(&ast), &HintEstimator).unwrap()));
}

fn bench_intervals(c: &mut Criterion) {
    let a = IntervalSet::from_intervals((0..50).map(|i| Interval::new(i * 100, i * 100 + 60)).collect());
    let b2 = IntervalSet::from_intervals((0..50).map(|i| Interval::new(i * 100 + 30, i * 100 + 90)).collect());
    c.bench_function("interval/intersect-50x50", |b| {
        b.iter(|| std::hint::black_box(&a).intersect(std::hint::black_box(&b2)))
    });
    c.bench_function("interval/union-50x50", |b| b.iter(|| std::hint::black_box(&a).union(std::hint::black_box(&b2))));
}

fn bench_snapshot(c: &mut Criterion) {
    let schema: Arc<Schema> = Arc::new(parse_schema("node VM { ext: str unique, status: str }").unwrap());
    let vm = schema.class_by_name("VM").unwrap();
    let nodes: Vec<SnapshotNode> = (0..500)
        .map(|i| SnapshotNode {
            ext_id: format!("vm-{i}"),
            class: vm,
            fields: vec![Value::Str(format!("vm-{i}")), Value::Str("Green".into())],
        })
        .collect();
    c.bench_function("snapshot/apply-500-unchanged", |b| {
        let mut g = TemporalGraph::new(schema.clone());
        let mut loader = SnapshotLoader::new();
        loader.apply(&mut g, 0, &nodes, &[]).unwrap();
        let mut ts = 1;
        b.iter(|| {
            ts += 1;
            loader.apply(&mut g, ts, &nodes, &[]).unwrap()
        })
    });
}

fn bench_protocol(c: &mut Criterion) {
    let doc = r#"{"requestId":"r-1","status":{"code":206,"message":""},"result":{"data":[{"id":1,"label":"Node:VM","properties":{"vm_id":55,"status":"Green"}},{"id":2,"label":"Node:Host","properties":{"host_id":7}}],"meta":{}}}"#;
    c.bench_function("protocol/parse-response-frame", |b| b.iter(|| parse_json(std::hint::black_box(doc)).unwrap()));
    let j = parse_json(doc).unwrap();
    c.bench_function("protocol/serialize-response-frame", |b| b.iter(|| std::hint::black_box(&j).to_string()));
    let _ = Json::Null;
}

fn bench_profiling_overhead(c: &mut Criterion) {
    // The same query, executed through the plain path (profiling disabled:
    // no clock reads, no OpStats) and the profiled path. The acceptance
    // target is <5% overhead for the *disabled* path relative to the seed,
    // which these two series make visible side by side.
    let topo = generate_virtualized(VirtParams::default());
    let mut engine = engine_over(Arc::new(topo.graph));
    let q = "Retrieve P From PATHS P Where P MATCHES VNF()->[Vertical()]{1,6}->Host()";
    let parsed = nepal_core::parse_query(q).unwrap();
    c.bench_function("profile/execute-disabled", |b| b.iter(|| engine.execute(std::hint::black_box(&parsed)).unwrap()));
    c.bench_function("profile/execute-enabled", |b| {
        b.iter(|| engine.execute_profiled(std::hint::black_box(&parsed)).unwrap())
    });
}

criterion_group!(benches, bench_rpe, bench_intervals, bench_snapshot, bench_protocol, bench_profiling_overhead);
criterion_main!(benches);
