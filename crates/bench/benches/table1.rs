//! Criterion bench for Table 1: the five query families on the
//! virtualized service graph (~2k nodes / ~11k edges), against the current
//! snapshot and against the 60-day history database.

use criterion::{criterion_group, criterion_main, Criterion};
use nepal_bench::{build_virtualized, table1_queries};
use nepal_graph::{GraphView, TimeFilter};
use nepal_rpe::{evaluate, parse_rpe, plan_rpe, EvalOptions, GraphEstimator, RpePlan, Seeds};

fn bench_table1(c: &mut Criterion) {
    let (snap, hist) = build_virtualized(42);
    let queries = table1_queries(&snap, 8);
    let mut group = c.benchmark_group("table1");
    group.sample_size(20);
    for (name, rpes) in &queries {
        // Pre-plan the instances once; measure evaluation (as §6 does).
        let plans: Vec<RpePlan> = rpes
            .iter()
            .take(4)
            .map(|r| {
                plan_rpe(snap.graph.schema(), &parse_rpe(r).unwrap(), &GraphEstimator { graph: &snap.graph }).unwrap()
            })
            .collect();
        group.bench_function(format!("{name}/snapshot"), |b| {
            let view = GraphView::new(&snap.graph, TimeFilter::Current);
            b.iter(|| {
                let mut total = 0usize;
                for plan in &plans {
                    total += evaluate(&view, plan, Seeds::Anchor, &EvalOptions::default()).len();
                }
                total
            })
        });
        group.bench_function(format!("{name}/history"), |b| {
            let view = GraphView::new(&hist, TimeFilter::Current);
            b.iter(|| {
                let mut total = 0usize;
                for plan in &plans {
                    total += evaluate(&view, plan, Seeds::Anchor, &EvalOptions::default()).len();
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
