//! Criterion bench for Table 2: the four legacy-topology query families.
//! Runs on a 20k-node slice of the legacy graph so criterion's repeated
//! sampling stays fast; `reproduce table2 [--full]` measures the large
//! configurations.

use criterion::{criterion_group, criterion_main, Criterion};
use nepal_bench::table2_queries;
use nepal_graph::{GraphView, TimeFilter};
use nepal_rpe::{evaluate, parse_rpe, plan_rpe, EvalOptions, GraphEstimator, RpePlan, Seeds};
use nepal_workload::{generate_legacy, LegacyParams};

fn bench_table2(c: &mut Criterion) {
    let topo = generate_legacy(LegacyParams { nodes: 20_000, edges: 90_000, ..Default::default() });
    let queries = table2_queries(&topo, 6, false, 0.32);
    let mut group = c.benchmark_group("table2");
    group.sample_size(15);
    for (name, rpes) in &queries {
        let plans: Vec<RpePlan> = rpes
            .iter()
            .take(3)
            .map(|r| {
                plan_rpe(topo.graph.schema(), &parse_rpe(r).unwrap(), &GraphEstimator { graph: &topo.graph }).unwrap()
            })
            .collect();
        group.bench_function(name.clone(), |b| {
            let view = GraphView::new(&topo.graph, TimeFilter::Current);
            b.iter(|| {
                let mut total = 0usize;
                for plan in &plans {
                    total += evaluate(&view, plan, Seeds::Anchor, &EvalOptions::default()).len();
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
